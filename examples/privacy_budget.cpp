// Managing a privacy budget across multiple releases — the sequential
// composition protocol of Section 2.1.
//
// A data owner grants a total budget of epsilon = 1.0. The analyst
// spends slices of it on different query sequences; the accountant
// enforces the bound and keeps an audit ledger.

#include <cstdio>

#include "common/rng.h"
#include "data/nettrace.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"
#include "mechanism/privacy_accountant.h"

int main() {
  using namespace dphist;

  NetTraceConfig config;
  config.num_hosts = 16384;
  config.num_connections = 80000;
  Histogram trace = GenerateNetTrace(config);

  PrivacyAccountant accountant(1.0);
  Rng rng(99);
  std::printf("total privacy budget: %.2f\n\n", accountant.total_budget());

  // Release 1: a universal histogram at eps = 0.5.
  {
    Status s = accountant.Spend(0.5, "universal histogram (H-bar)");
    std::printf("[1] universal histogram at eps=0.5: %s\n",
                s.ToString().c_str());
    UniversalOptions options;
    options.epsilon = 0.5;
    HBarEstimator h_bar(trace, options, &rng);
    std::printf("    total connections ~ %.0f (true %.0f)\n",
                h_bar.RangeCount(Interval(0, trace.size() - 1)),
                trace.Total());
  }

  // Release 2: a degree-sequence (unattributed) release at eps = 0.3.
  {
    Status s = accountant.Spend(0.3, "degree sequence (S-bar)");
    std::printf("[2] degree sequence at eps=0.3: %s\n",
                s.ToString().c_str());
    std::vector<double> noisy = SampleNoisySortedCounts(trace, 0.3, &rng);
    std::vector<double> inferred =
        ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
    std::printf("    busiest host ~ %.0f connections (true %.0f)\n",
                inferred.back(), TrueSortedCounts(trace).back());
  }

  // Release 3: the analyst over-reaches; the accountant refuses.
  {
    Status s = accountant.Spend(0.5, "another histogram");
    std::printf("[3] third release at eps=0.5: %s\n", s.ToString().c_str());
  }

  // A smaller release still fits.
  {
    Status s = accountant.Spend(0.2, "follow-up at reduced epsilon");
    std::printf("[4] follow-up at eps=0.2: %s\n", s.ToString().c_str());
  }

  std::printf("\naudit ledger (%0.2f of %0.2f spent):\n", accountant.spent(),
              accountant.total_budget());
  for (const auto& entry : accountant.ledger()) {
    std::printf("  eps=%.2f  %s\n", entry.epsilon, entry.purpose.c_str());
  }
  return 0;
}
