// Publishing the degree sequence of a private social network — the
// unattributed-histogram task of Section 3.
//
// Differential privacy protects individual friendships. The sorted query
// S has sensitivity 1 (Proposition 3), so we can release the full degree
// sequence at the same noise level as a single histogram — and isotonic
// regression then exploits the known ordering to strip most of the noise
// from the (heavily duplicated) power-law degrees.

#include <cstdio>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/social_network.h"
#include "estimators/unattributed.h"

int main() {
  using namespace dphist;

  // An ~11K-node friendship graph (the paper's Social Network scale).
  SocialNetworkConfig config;
  config.num_nodes = 11000;
  config.edges_per_node = 4;
  Histogram degrees = GenerateSocialNetworkDegrees(config);
  std::printf("graph: %lld nodes, %.0f edge-endpoints, max degree %.0f\n",
              static_cast<long long>(degrees.size()), degrees.Total(),
              degrees.SortedCounts().back());

  const double epsilon = 0.1;
  Rng rng(7);

  // One interaction with the private data...
  std::vector<double> noisy =
      SampleNoisySortedCounts(degrees, epsilon, &rng);
  // ...then pure post-processing.
  std::vector<double> inferred =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  std::vector<double> baseline =
      ApplyUnattributedEstimator(UnattributedEstimator::kSTildeRounded,
                                 noisy);
  std::vector<double> truth = TrueSortedCounts(degrees);

  std::printf("\nepsilon = %.2f\n", epsilon);
  std::printf("squared error, S~ (raw noisy):    %12.1f\n",
              SquaredError(noisy, truth));
  std::printf("squared error, S~r (sort+round):  %12.1f\n",
              SquaredError(baseline, truth));
  std::printf("squared error, S-bar (inference): %12.1f\n",
              SquaredError(inferred, truth));

  // Show the tail of the sequence (the hubs) — the interesting part of a
  // degree sequence, and the hardest to estimate.
  std::printf("\n%8s  %8s  %10s  %10s\n", "rank", "true", "noisy",
              "inferred");
  std::size_t n = truth.size();
  for (std::size_t i = n - 10; i < n; ++i) {
    std::printf("%8zu  %8.0f  %10.2f  %10.2f\n", n - i, truth[i], noisy[i],
                inferred[i]);
  }
  return 0;
}
