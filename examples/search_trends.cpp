// Private search-trend analytics over time — the Search Logs task of
// Section 5.2.
//
// A search engine wants to publish how often one query term was searched
// over six years (16 slots/day) without revealing any individual's
// searches. After one epsilon-DP release, analysts can ask for any time
// window: days, weeks, the burst month, the whole history.

#include <cstdio>

#include "common/rng.h"
#include "data/search_logs.h"
#include "estimators/universal.h"

int main() {
  using namespace dphist;

  TemporalSeriesConfig config;
  config.num_slots = 32768;  // ~5.6 years at 16 slots/day
  Histogram series = GenerateTemporalSeries(config);
  std::printf("series: %lld time slots, %.0f total searches\n",
              static_cast<long long>(series.size()), series.Total());

  UniversalOptions options;
  options.epsilon = 1.0;
  Rng rng(5);
  HBarEstimator h_bar(series, options, &rng);

  const std::int64_t slots_per_day = config.slots_per_day;
  const std::int64_t slots_per_week = 7 * slots_per_day;
  struct Window {
    const char* label;
    Interval range;
  };
  std::int64_t burst = static_cast<std::int64_t>(0.7 * 32768);
  Window windows[] = {
      {"one quiet day (year 1)", Interval(160, 160 + slots_per_day - 1)},
      {"one week before burst",
       Interval(burst - 2 * slots_per_week, burst - slots_per_week - 1)},
      {"burst week", Interval(burst, burst + slots_per_week - 1)},
      {"first half of history", Interval(0, 16383)},
      {"full history", Interval(0, 32767)},
  };

  std::printf("\nepsilon = %.2f\n", options.epsilon);
  std::printf("%-26s  %10s  %10s  %9s\n", "window", "true", "H-bar",
              "rel.err");
  for (const Window& w : windows) {
    double truth = series.Count(w.range);
    double estimate = h_bar.RangeCount(w.range);
    double rel = truth > 0 ? (estimate - truth) / truth * 100.0 : 0.0;
    std::printf("%-26s  %10.0f  %10.0f  %8.1f%%\n", w.label, truth,
                estimate, rel);
  }
  std::printf(
      "\nall windows were answered from ONE private release; asking more "
      "windows costs no additional privacy budget.\n");
  return 0;
}
