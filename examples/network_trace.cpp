// A universal histogram over network-trace data — the Section 4 task.
//
// The data owner publishes one epsilon-DP hierarchical histogram of
// per-host connection counts; afterwards ANY range query over the
// address space can be answered from the published (inferred) counts,
// with no further privacy cost. We compare the three strategies of the
// paper on ranges of growing size, and demonstrate the consistency
// property that motivates constrained inference.

#include <cstdio>

#include "common/rng.h"
#include "data/nettrace.h"
#include "estimators/universal.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"

int main() {
  using namespace dphist;

  NetTraceConfig config;
  config.num_hosts = 65536;
  config.num_connections = 300000;
  Histogram trace = GenerateNetTrace(config);
  std::printf("trace: %lld hosts, %.0f connections, %lld active hosts\n",
              static_cast<long long>(trace.size()), trace.Total(),
              static_cast<long long>(trace.NonZeroCount()));

  UniversalOptions options;
  options.epsilon = 0.1;
  Rng rng(11);

  // Each estimator construction is one interaction with the private data.
  LTildeEstimator l_tilde(trace, options, &rng);
  HTildeEstimator h_tilde(trace, options, &rng);
  HBarEstimator h_bar(trace, options, &rng);

  std::printf("\nepsilon = %.2f, tree height = %lld\n", options.epsilon,
              static_cast<long long>(h_bar.tree().height()));
  std::printf("\n%22s  %10s  %10s  %10s  %10s\n", "range", "true", "L~",
              "H~", "H-bar");
  for (std::int64_t size : {1, 16, 256, 4096, 65536}) {
    Interval q(0, size - 1);
    std::printf("%22s  %10.0f  %10.0f  %10.0f  %10.0f\n",
                q.ToString().c_str(), trace.Count(q), l_tilde.RangeCount(q),
                h_tilde.RangeCount(q), h_bar.RangeCount(q));
  }

  // The consistency dividend. Build H~ and H-bar from the SAME noisy
  // draw (no pruning/rounding, to show the pure inference property):
  // H-bar's answers are exactly additive — the two halves of any
  // interval sum to the interval — while H~'s raw counts disagree.
  UniversalOptions raw = options;
  raw.round_to_nonnegative_integers = false;
  raw.prune_nonpositive_subtrees = false;
  HierarchicalQuery query(trace.size(), raw.branching);
  LaplaceMechanism mechanism(raw.epsilon);
  std::vector<double> noisy = mechanism.AnswerQuery(query, trace, &rng);
  HTildeEstimator ht_shared(trace.size(), raw, noisy);
  HBarEstimator hb_shared(trace.size(), raw, noisy);

  Interval whole(1024, 2047), left(1024, 1535), right(1536, 2047);
  std::printf("\nconsistency: does count(%s) equal count(%s) + count(%s)?\n",
              whole.ToString().c_str(), left.ToString().c_str(),
              right.ToString().c_str());
  double ht_gap = ht_shared.RangeCount(whole) -
                  (ht_shared.RangeCount(left) + ht_shared.RangeCount(right));
  double hb_gap = hb_shared.RangeCount(whole) -
                  (hb_shared.RangeCount(left) + hb_shared.RangeCount(right));
  std::printf("  H~:    whole %.1f vs halves %.1f  (gap %.2f)\n",
              ht_shared.RangeCount(whole),
              ht_shared.RangeCount(left) + ht_shared.RangeCount(right),
              ht_gap);
  std::printf("  H-bar: whole %.1f vs halves %.1f  (gap %.2g — consistent "
              "by construction)\n",
              hb_shared.RangeCount(whole),
              hb_shared.RangeCount(left) + hb_shared.RangeCount(right),
              hb_gap);
  return 0;
}
