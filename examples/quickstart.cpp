// Quickstart: the paper's student-grades example in ~60 lines.
//
// A data owner holds per-student grades. An analyst wants the total
// number of students, the number passing, and the per-grade counts —
// all under epsilon-differential privacy. We ask all seven queries at
// once (sensitivity 3), then use constrained inference to resolve the
// inconsistencies the noise introduces. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "inference/constrained_ls.h"
#include "mechanism/laplace_mechanism.h"

int main() {
  using namespace dphist;

  // The private data: true answers to (x_t, x_p, x_A, x_B, x_C, x_D, x_F).
  const std::vector<double> truth = {200, 170, 60, 55, 35, 20, 30};

  // One student affects her grade count, the passing count, and the
  // total: sensitivity 3. The Laplace mechanism adds Lap(3/eps) noise.
  const double epsilon = 0.5;
  const double sensitivity = 3.0;
  LaplaceMechanism mechanism(epsilon);
  Rng rng(2024);
  std::vector<double> noisy =
      mechanism.Perturb(truth, sensitivity / epsilon, &rng);

  // The consistency constraints are properties of the queries, known to
  // the analyst a priori: x_t = x_p + x_F and x_p = x_A+x_B+x_C+x_D.
  ConstraintSystem constraints(7);
  constraints.AddSumConstraint(0, {1, 6});
  constraints.AddSumConstraint(1, {2, 3, 4, 5});

  // Constrained inference: the closest consistent answer (pure
  // post-processing — the epsilon-DP guarantee is untouched).
  auto inferred = ConstrainedLeastSquares(constraints, noisy);
  if (!inferred.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 inferred.status().ToString().c_str());
    return 1;
  }

  const char* names[7] = {"total", "passing", "A", "B", "C", "D", "F"};
  std::printf("%-8s  %8s  %10s  %10s\n", "query", "truth", "noisy",
              "inferred");
  for (int i = 0; i < 7; ++i) {
    std::printf("%-8s  %8.0f  %10.2f  %10.2f\n", names[i], truth[i],
                noisy[i], inferred.value()[i]);
  }
  std::printf(
      "\nnoisy answers violate the constraints by %.2f; "
      "inferred answers by %.2g\n",
      constraints.MaxViolation(noisy),
      constraints.MaxViolation(inferred.value()));
  return 0;
}
