// Continually releasing a running count over a private event stream —
// the Chan et al. binary mechanism Section 6 relates to H.
//
// Scenario: a service wants a live dashboard of cumulative sign-ups
// without ever exposing an individual's contribution. The whole stream
// of releases (one per step, forever up to the horizon) is covered by a
// single epsilon.

#include <cstdio>

#include "common/laplace.h"
#include "common/rng.h"
#include "data/search_logs.h"
#include "estimators/continual_counter.h"

int main() {
  using namespace dphist;

  // A bursty event stream: reuse the temporal generator (16 slots/day).
  TemporalSeriesConfig config;
  config.num_slots = 4096;
  Histogram stream = GenerateTemporalSeries(config);

  const double epsilon = 1.0;
  Rng rng(31);
  ContinualCounter counter(stream.size(), epsilon, rng);

  // Naive comparator: per-step noise scaled for the whole release
  // sequence (each item is in every later prefix).
  LaplaceDistribution naive_noise(static_cast<double>(stream.size()) /
                                  epsilon);
  Rng naive_rng(32);
  double naive_running = 0.0;

  std::printf("horizon %lld steps, eps=%.1f, per-node noise scale %.1f\n\n",
              static_cast<long long>(stream.size()), epsilon,
              counter.noise_scale());
  std::printf("%8s  %12s  %16s  %16s\n", "step", "true total",
              "binary mechanism", "naive counter");
  double true_total = 0.0;
  for (std::int64_t t = 0; t < stream.size(); ++t) {
    double value = stream.At(t);
    counter.Observe(value);
    true_total += value;
    naive_running += value + naive_noise.Sample(&naive_rng);
    if ((t + 1) % 512 == 0) {
      std::printf("%8lld  %12.0f  %16.1f  %16.1f\n",
                  static_cast<long long>(t + 1), true_total,
                  counter.RunningTotal(), naive_running);
    }
  }
  std::printf(
      "\nthe binary mechanism's error stays poly-log in the horizon at "
      "every step; the naive counter drifts with sqrt(t) * horizon "
      "noise.\n");
  return 0;
}
