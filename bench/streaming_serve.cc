// Streaming-serve benchmark: steady-state throughput of the long-lived
// runtime plus the reader-visible cost of an online replan, emitting
// JSON so BENCH_streaming.json tracks both across PRs (see
// tools/run_bench.sh).
//
// Protocol: one client thread streams batches of random ranges through
// a QueryService managed by an EpochManager (exactly the `dphist serve
// --stdin` wiring). After a warmup, --measure batches establish the
// steady state (aggregate qps and median batch latency). Then, --repeats
// times, a helper thread runs a synchronous manager replan — export the
// observed profile, ChoosePlan, rebuild the snapshot, swap — while the
// client keeps streaming; every batch latency inside the replan window
// is recorded. The reported "replan pause" is the worst batch latency a
// reader saw while a replan was in flight: with the swap happening off
// the serving thread it should sit near the steady median on a
// multi-core host, while on a single core the replan's build competes
// for the only core and the honest pause is larger (reported as such;
// see README "Streaming serving" for the 1-core caveat).
//
// Flags (DPHIST_* env equivalents): --domain-log2, --strategy,
// --branching, --epsilon, --batch, --measure, --warmup, --repeats,
// --cache, --seed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "service/query_service.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Median(std::vector<double> values) {
  DPHIST_CHECK_MSG(!values.empty(), "median of nothing");
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct ReplanWindow {
  double replan_seconds;      // helper-thread replan wall time
  double max_batch_latency;   // worst batch latency inside the window
  double min_batch_latency;
  std::uint64_t batches;      // batches answered during the window
  std::uint64_t epoch_after;  // epoch observed once the swap landed
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 14, "DPHIST_DOMAIN_LOG2");
  const std::int64_t n = std::int64_t{1} << domain_log2;
  const std::string strategy_name =
      flags.GetString("strategy", "hbar", "DPHIST_STRATEGY");
  const std::int64_t branching =
      flags.GetInt("branching", 2, "DPHIST_BRANCHING");
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::int64_t batch_size = flags.GetInt("batch", 64, "DPHIST_BATCH");
  const std::int64_t warmup_batches =
      flags.GetInt("warmup", 200, "DPHIST_WARMUP");
  const std::int64_t measure_batches =
      flags.GetInt("measure", 2000, "DPHIST_MEASURE");
  const std::int64_t repeats = flags.GetInt("repeats", 5, "DPHIST_REPEATS");
  const std::int64_t cache_capacity =
      flags.GetInt("cache", 1 << 15, "DPHIST_CACHE");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");

  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  QueryServiceOptions service_options;
  service_options.cache_capacity = cache_capacity;
  QueryService service(service_options);

  runtime::EpochManagerOptions manager_options;
  manager_options.base.epsilon = epsilon;
  manager_options.base.strategy = strategy.value();
  manager_options.base.branching = branching;
  runtime::EpochManager manager(&service, data, manager_options, seed);
  DPHIST_CHECK_MSG(manager.PublishInitial().ok(), "initial publish failed");

  // Mixed-length random workload, regenerated per batch from a
  // deterministic stream.
  Rng workload_rng(13);
  std::vector<Interval> batch(static_cast<std::size_t>(batch_size),
                              Interval(0, 0));
  std::vector<double> answers(static_cast<std::size_t>(batch_size));
  auto fill_batch = [&] {
    for (auto& range : batch) {
      const std::int64_t lo = workload_rng.NextInt(0, n - 1);
      range = Interval(lo, workload_rng.NextInt(lo, n - 1));
    }
  };
  auto run_batch = [&]() -> std::uint64_t {
    fill_batch();
    return service.QueryBatch(batch.data(), batch.size(), answers.data());
  };

  for (std::int64_t i = 0; i < warmup_batches; ++i) run_batch();

  // Steady state: no replan in flight.
  std::vector<double> steady_latencies;
  steady_latencies.reserve(static_cast<std::size_t>(measure_batches));
  const double steady_start = NowSeconds();
  for (std::int64_t i = 0; i < measure_batches; ++i) {
    const double t0 = NowSeconds();
    run_batch();
    steady_latencies.push_back(NowSeconds() - t0);
  }
  const double steady_elapsed = NowSeconds() - steady_start;
  const double steady_qps =
      static_cast<double>(measure_batches * batch_size) / steady_elapsed;
  const double steady_median_latency = Median(steady_latencies);

  // Replan windows: a helper thread replans while the client streams.
  std::vector<ReplanWindow> windows;
  for (std::int64_t r = 0; r < repeats; ++r) {
    std::atomic<bool> replan_done{false};
    double replan_seconds = 0.0;
    std::thread helper([&] {
      const double t0 = NowSeconds();
      auto outcome = manager.ReplanNow();
      replan_seconds = NowSeconds() - t0;
      DPHIST_CHECK_MSG(outcome.ok(), "replan failed");
      replan_done.store(true, std::memory_order_release);
    });
    ReplanWindow window{};
    window.min_batch_latency = 1e99;
    while (!replan_done.load(std::memory_order_acquire)) {
      const double t0 = NowSeconds();
      window.epoch_after = run_batch();
      const double latency = NowSeconds() - t0;
      window.max_batch_latency =
          std::max(window.max_batch_latency, latency);
      window.min_batch_latency =
          std::min(window.min_batch_latency, latency);
      window.batches += 1;
    }
    helper.join();
    window.replan_seconds = replan_seconds;
    // One more batch so epoch_after definitely reflects the new epoch.
    window.epoch_after = run_batch();
    windows.push_back(window);
    std::fprintf(stderr,
                 "replan %lld: %.4fs build, %llu batches in flight, max "
                 "batch latency %.3gs (steady median %.3gs)\n",
                 static_cast<long long>(r), window.replan_seconds,
                 static_cast<unsigned long long>(window.batches),
                 window.max_batch_latency, steady_median_latency);
  }

  double worst_pause = 0.0;
  double mean_replan_seconds = 0.0;
  for (const ReplanWindow& window : windows) {
    worst_pause = std::max(worst_pause, window.max_batch_latency);
    mean_replan_seconds += window.replan_seconds;
  }
  if (!windows.empty()) {
    mean_replan_seconds /= static_cast<double>(windows.size());
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"streaming_serve\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"strategy\": \"%s\",\n",
              StrategyKindName(strategy.value()));
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"batch\": %lld,\n", static_cast<long long>(batch_size));
  std::printf("  \"measure_batches\": %lld,\n",
              static_cast<long long>(measure_batches));
  std::printf("  \"cache_capacity\": %lld,\n",
              static_cast<long long>(cache_capacity));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"replans\": [\n");
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::printf(
        "    {\"replan_seconds\": %.6g, \"batches_in_flight\": %llu, "
        "\"max_batch_latency_seconds\": %.6g, \"epoch_after\": %llu}%s\n",
        windows[i].replan_seconds,
        static_cast<unsigned long long>(windows[i].batches),
        windows[i].max_batch_latency,
        static_cast<unsigned long long>(windows[i].epoch_after),
        i + 1 < windows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"steady_state_qps\": %.6g,\n", steady_qps);
  std::printf("    \"steady_median_batch_latency_seconds\": %.6g,\n",
              steady_median_latency);
  std::printf("    \"replan_pause_seconds\": %.6g,\n", worst_pause);
  std::printf("    \"mean_replan_build_seconds\": %.6g,\n",
              mean_replan_seconds);
  std::printf("    \"final_epoch\": %llu\n",
              static_cast<unsigned long long>(service.current_epoch()));
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
