// Experiment E4 — Figure 6 (bottom row): universal histograms on Search
// Logs — the temporal frequency of one query term ("Obama") from Jan 2004
// onward, a day divided into 16 slots.
//
// Same protocol and claims as the NetTrace row; the dataset differs in
// shape (quiet early years, an election burst, sustained interest after),
// which is what moves the crossover point and H-bar's margins.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common/flags.h"
#include "data/search_logs.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  UniversalExperimentConfig config;
  config.trials = flags.GetInt("trials", 50, "DPHIST_TRIALS");
  config.ranges_per_size = flags.GetInt("ranges", 1000, "DPHIST_RANGES");
  config.threads = flags.GetInt("threads", 0, "DPHIST_THREADS");
  std::int64_t scale = flags.GetInt("scale", 1, "DPHIST_SCALE");

  TemporalSeriesConfig series;
  series.num_slots = 32768 / scale;
  Histogram data = GenerateTemporalSeries(series);

  PrintBanner(std::cout,
              "Figure 6 (bottom): universal histograms on Search Logs");
  std::printf("n=%lld (time slots) trials=%lld ranges/size=%lld\n\n",
              static_cast<long long>(data.size()),
              static_cast<long long>(config.trials),
              static_cast<long long>(config.ranges_per_size));

  std::vector<UniversalCell> cells = RunUniversalExperiment(data, config);

  TablePrinter table({"eps", "range size", "L~", "H~", "H-bar"});
  std::map<std::pair<double, std::int64_t>, std::map<std::string, double>>
      grid;
  for (const UniversalCell& cell : cells) {
    grid[{cell.epsilon, cell.range_size}][cell.estimator] =
        cell.avg_squared_error;
  }
  for (const auto& [key, row] : grid) {
    table.AddRow({FormatFixed(key.first), std::to_string(key.second),
                  FormatScientific(row.at("L~")),
                  FormatScientific(row.at("H~")),
                  FormatScientific(row.at("H-bar"))});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  for (double eps : config.epsilons) {
    std::int64_t crossover = -1;
    int hbar_wins = 0, points = 0;
    double best_reduction = 0.0;
    for (const auto& [key, row] : grid) {
      if (key.first != eps) continue;
      if (crossover < 0 && row.at("H~") < row.at("L~")) crossover = key.second;
      ++points;
      if (row.at("H-bar") <= row.at("H~") * 1.02) ++hbar_wins;
      double reduction = 1.0 - row.at("H-bar") / row.at("L~");
      if (key.second >= 1024) {
        best_reduction = std::max(best_reduction, reduction);
      }
    }
    std::printf(
        "  eps=%s: L~/H~ crossover at range %lld; H-bar <= H~ at %d/%d "
        "points; H-bar cuts L~'s large-range error by up to %.0f%% "
        "(paper: 45-98%%)\n",
        FormatFixed(eps).c_str(), static_cast<long long>(crossover),
        hbar_wins, points, 100.0 * best_reduction);
  }
  return 0;
}
