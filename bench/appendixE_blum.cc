// Experiment E8 — Appendix E: H~ vs the Blum et al. equi-depth histogram.
//
// Two parts:
//   (1) the analytic (eps, delta)-usefulness table — the smallest
//       database size N at which each technique guarantees all range
//       queries within alpha*N error w.p. 1-delta. H~ scales as
//       1/(eps*alpha); Blum et al. as 1/(eps*alpha^3).
//   (2) an empirical sweep scaling the same data shape by 1x..16x:
//       BLR's absolute range error grows with N (O(N^{2/3}) analytically)
//       while H~'s is independent of N.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/zipf.h"
#include "estimators/blum_histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "experiments/report.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t trials = flags.GetInt("trials", 30, "DPHIST_TRIALS");

  PrintBanner(std::cout,
              "Appendix E (1): analytic (eps,delta)-usefulness bounds");
  std::printf("minimum N for (alpha-DP, eps-useful, delta=0.05)\n\n");
  TablePrinter bounds({"n", "alpha", "eps-useful", "N: H~",
                       "N: Blum et al. (unit const)"});
  for (std::int64_t n : {std::int64_t{1} << 10, std::int64_t{1} << 16}) {
    for (double alpha : {1.0, 0.5, 0.1}) {
      for (double eps_useful : {0.05, 0.01}) {
        bounds.AddRow(
            {std::to_string(n), FormatFixed(alpha), FormatFixed(eps_useful),
             FormatScientific(
                 HTildeUsefulDatabaseSize(n, eps_useful, 0.05, alpha)),
             FormatScientific(
                 BlumUsefulDatabaseSize(n, eps_useful, 0.05, alpha))});
      }
    }
  }
  bounds.Print(std::cout);
  std::printf(
      "\npaper: H~ achieves the same utility with a database smaller by "
      "O(1/eps^2) in alpha scaling terms (1/alpha vs 1/alpha^3)\n");

  PrintBanner(std::cout,
              "Appendix E (2): absolute range error vs database size N");
  const std::int64_t n = 4096;
  Rng data_rng(5);
  std::vector<std::int64_t> base = ZipfCounts(n, 1.2, 20000, &data_rng);

  TablePrinter empirical({"N (records)", "mean |err| BLR", "mean |err| H~",
                          "BLR/H~"});
  double first_blr = 0.0, last_blr = 0.0;
  double first_ht = 0.0, last_ht = 0.0;
  for (std::int64_t factor : {1, 4, 16}) {
    std::vector<std::int64_t> scaled = base;
    for (auto& c : scaled) c *= factor;
    Histogram data = Histogram::FromCounts(scaled);

    BlumHistogramConfig blum_config;
    blum_config.epsilon = 1.0;
    blum_config.num_bins = 16;
    UniversalOptions h_options;
    h_options.epsilon = 1.0;
    h_options.round_to_nonnegative_integers = false;

    Rng rng(11);
    RunningStat err_blr, err_ht;
    for (std::int64_t t = 0; t < trials; ++t) {
      BlumEquiDepthHistogram blr(data, blum_config, &rng);
      HTildeEstimator ht(data, h_options, &rng);
      std::vector<Interval> ranges = RandomRangesOfSize(n, 256, 50, &rng);
      for (const Interval& q : ranges) {
        double truth = data.Count(q);
        err_blr.Add(std::abs(blr.RangeCount(q) - truth));
        err_ht.Add(std::abs(ht.RangeCount(q) - truth));
      }
    }
    empirical.AddRow({std::to_string(data.Total() > 0
                                         ? static_cast<long long>(data.Total())
                                         : 0LL),
                      FormatScientific(err_blr.Mean()),
                      FormatScientific(err_ht.Mean()),
                      FormatRatio(err_blr.Mean() / err_ht.Mean())});
    if (factor == 1) {
      first_blr = err_blr.Mean();
      first_ht = err_ht.Mean();
    }
    last_blr = err_blr.Mean();
    last_ht = err_ht.Mean();
  }
  empirical.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf(
      "  paper: BLR's absolute error grows with database size "
      "(O(N^{2/3})); H~'s is independent of N\n");
  std::printf("  measured: BLR error grew %.1fx across 16x scaling; H~ "
              "error changed %.2fx\n",
              last_blr / first_blr, last_ht / first_ht);
  std::printf("  BLR grows while H~ stays flat: %s\n",
              (last_blr > 3.0 * first_blr &&
               last_ht < 1.5 * first_ht)
                  ? "YES"
                  : "NO");
  return 0;
}
