// Experiment E14 — the matrix-mechanism view (Li et al., the paper's
// reference [15] and Section 6): exact, noise-free error tables for the
// strategies L (identity), H with several branching factors, and the
// Privelet wavelet, over the all-ranges workload of a 256-bin domain.
//
// This is the analytic companion to the sampled Fig. 6: the same
// crossovers and orderings emerge with zero Monte-Carlo noise, and the
// wavelet/H(k=2) equivalence claim becomes a pair of adjacent columns.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/strategy_matrix.h"
#include "common/flags.h"
#include "common/statistics.h"
#include "experiments/report.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t n = flags.GetInt("domain", 256);
  const double eps = flags.GetDouble("epsilon", 1.0);

  PrintBanner(std::cout,
              "Matrix mechanism (Li et al.): exact strategy error tables");
  std::printf("domain n=%lld, eps=%s; average over all ranges of each "
              "size\n\n",
              static_cast<long long>(n), FormatFixed(eps).c_str());

  struct Strategy {
    std::string name;
    StrategyAnalyzer analyzer;
  };
  std::vector<Strategy> strategies;
  auto add = [&](const std::string& name, const linalg::Matrix& matrix) {
    auto analyzer = StrategyAnalyzer::Create(matrix, eps);
    if (!analyzer.ok()) {
      std::fprintf(stderr, "strategy %s failed: %s\n", name.c_str(),
                   analyzer.status().ToString().c_str());
      std::exit(1);
    }
    strategies.push_back(Strategy{name, std::move(analyzer).value()});
  };
  add("L", IdentityStrategy(n));
  add("H(k=2)", HierarchicalStrategy(n, 2));
  add("H(k=4)", HierarchicalStrategy(n, 4));
  add("H(k=16)", HierarchicalStrategy(n, 16));
  add("Wavelet", WaveletStrategy(n));

  std::vector<std::string> header = {"range size"};
  for (const Strategy& s : strategies) header.push_back(s.name);
  TablePrinter table(header);

  std::vector<double> total(strategies.size(), 0.0);
  std::int64_t total_points = 0;
  for (std::int64_t size = 1; size <= n; size *= 4) {
    RunningStat per_strategy[8];
    for (std::int64_t lo = 0; lo + size <= n;
         lo += std::max<std::int64_t>(1, size / 2)) {
      Interval q(lo, lo + size - 1);
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        per_strategy[s].Add(strategies[s].analyzer.RangeVariance(q));
      }
    }
    std::vector<std::string> row = {std::to_string(size)};
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      row.push_back(FormatScientific(per_strategy[s].Mean()));
      total[s] += per_strategy[s].Mean();
    }
    ++total_points;
    table.AddRow(row);
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "findings");
  std::printf("  sensitivities: L=%.0f  H2=%.0f  H4=%.0f  H16=%.0f  "
              "Wavelet=%.0f\n",
              strategies[0].analyzer.sensitivity(),
              strategies[1].analyzer.sensitivity(),
              strategies[2].analyzer.sensitivity(),
              strategies[3].analyzer.sensitivity(),
              strategies[4].analyzer.sensitivity());
  double w_over_h = total[4] / total[1];
  std::printf(
      "  wavelet vs H(k=2), averaged over the sweep: %.2fx — same error "
      "class (the Section 6 equivalence), constants differing\n",
      w_over_h);
  std::printf(
      "  every number above is exact (no sampling): the same crossovers "
      "as the sampled Figure 6 appear, e.g. L beats the hierarchies at "
      "size 1, loses from moderate sizes on.\n");
  return 0;
}
