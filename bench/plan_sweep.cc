// Full planner sweep benchmark, emitting JSON so BENCH_plan.json tracks
// planning latency across PRs (see tools/run_bench.sh).
//
// Protocol: at each domain n = 2^log2 from --min-log2 to --max-log2, a
// deterministic mixed workload (placed units, short/medium/long ranges,
// one full-domain scan) is planned with ChoosePlan over the default
// candidate grid (every strategy x power-of-two shard ladder up to
// --max-shards). Three timings are recorded, best of --repeats:
//
//   plan_seconds        cold ChoosePlan on the recurrence closed forms
//                       (the default path; every candidate feasible at
//                       every width — `infeasible` must stay 0),
//   warm_replan_seconds ChoosePlan through a pre-warmed
//                       IncrementalCostModel after a one-query drift
//                       (the runtime's replan loop), and
//   dense_plan_seconds  the same cold sweep through the dense Gram
//                       Cholesky test oracle, only at domains small
//                       enough to afford it (--dense-max-log2).
//
// The summary's acceptance metric is plan_seconds at the largest domain:
// the sweep at n = 2^24 must land in microseconds-to-low-milliseconds,
// where the dense path cannot even represent the unsharded candidates.
//
// Flags (DPHIST_* env equivalents): --min-log2, --max-log2,
// --dense-max-log2, --max-shards, --epsilon, --repeats.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "planner/cost_model.h"
#include "planner/planner.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic mixed workload with placement heat: a hot unit count, a
// handful of placed ranges across the length scales, and one full scan.
planner::WorkloadProfile MakeProfile(std::int64_t n) {
  planner::WorkloadProfile profile(n);
  profile.AddQuery(Interval(0, 0));
  for (std::int64_t length :
       {std::int64_t{16}, std::int64_t{256}, std::int64_t{4096}, n / 16,
        n / 4}) {
    if (length < 2 || length > n) continue;
    const std::int64_t lo = (n - length) / 3;
    profile.AddQuery(Interval(lo, lo + length - 1));
  }
  profile.AddLength(n, 1.0);
  return profile;
}

std::int64_t CountInfeasible(const planner::Plan& plan) {
  std::int64_t infeasible = 0;
  for (const planner::Candidate& candidate : plan.candidates) {
    if (!candidate.feasible) ++infeasible;
  }
  return infeasible;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t min_log2 =
      flags.GetInt("min-log2", 10, "DPHIST_MIN_LOG2");
  const std::int64_t max_log2 =
      flags.GetInt("max-log2", 24, "DPHIST_MAX_LOG2");
  const std::int64_t dense_max_log2 =
      flags.GetInt("dense-max-log2", 10, "DPHIST_DENSE_MAX_LOG2");
  const std::int64_t max_shards =
      flags.GetInt("max-shards", 64, "DPHIST_MAX_SHARDS");
  const double epsilon = flags.GetDouble("epsilon", 1.0, "DPHIST_EPSILON");
  const std::int64_t repeats = flags.GetInt("repeats", 5, "DPHIST_REPEATS");
  DPHIST_CHECK_MSG(min_log2 >= 1 && min_log2 <= max_log2,
                   "need 1 <= --min-log2 <= --max-log2");

  SnapshotOptions base;
  base.epsilon = epsilon;
  base.round_to_nonnegative_integers = false;  // closed forms are linear
  base.prune_nonpositive_subtrees = false;

  struct Row {
    std::int64_t log2 = 0;
    std::int64_t candidates = 0;
    std::int64_t infeasible = 0;
    double plan_seconds = 0.0;
    double warm_replan_seconds = 0.0;
    std::int64_t warm_lengths_reused = 0;
    double dense_plan_seconds = -1.0;  // -1 = not affordable at this n
  };
  std::vector<Row> rows;

  for (std::int64_t log2 = min_log2; log2 <= max_log2; ++log2) {
    const std::int64_t n = std::int64_t{1} << log2;
    Row row;
    row.log2 = log2;

    planner::PlannerOptions options;
    options.max_shards = max_shards;
    planner::WorkloadProfile profile = MakeProfile(n);

    for (std::int64_t r = 0; r < repeats; ++r) {
      const double start = NowSeconds();
      auto plan = planner::ChoosePlan(profile, base, options);
      const double elapsed = NowSeconds() - start;
      DPHIST_CHECK_MSG(plan.ok(), "recurrence-path plan failed");
      if (r == 0) {
        row.candidates =
            static_cast<std::int64_t>(plan.value().candidates.size());
        row.infeasible = CountInfeasible(plan.value());
        row.plan_seconds = elapsed;
      }
      row.plan_seconds = std::min(row.plan_seconds, elapsed);
    }

    // Warm replan: one-query drift through a pre-warmed incremental
    // cache, the exact shape of the runtime's replan loop. The drift
    // reuses every length whose observed weight did not move.
    planner::IncrementalCostModel cache(n, options.cost);
    DPHIST_CHECK_MSG(
        planner::ChoosePlan(profile, base, options, &cache).ok(),
        "cache warmup failed");
    planner::WorkloadProfile drifted = MakeProfile(n);
    drifted.AddQuery(Interval(n / 2, n / 2 + 15));
    for (std::int64_t r = 0; r < repeats; ++r) {
      const std::uint64_t reused_before = cache.stats().lengths_reused;
      const double start = NowSeconds();
      auto plan = planner::ChoosePlan(drifted, base, options, &cache);
      const double elapsed = NowSeconds() - start;
      DPHIST_CHECK_MSG(plan.ok(), "warm replan failed");
      if (r == 0) {
        row.warm_replan_seconds = elapsed;
        row.warm_lengths_reused = static_cast<std::int64_t>(
            cache.stats().lengths_reused - reused_before);
      }
      row.warm_replan_seconds = std::min(row.warm_replan_seconds, elapsed);
    }

    if (log2 <= dense_max_log2) {
      planner::PlannerOptions dense_options = options;
      dense_options.cost.use_dense_oracle = true;
      dense_options.cost.max_analyzer_width = n;  // afford every candidate
      const double start = NowSeconds();
      auto plan = planner::ChoosePlan(profile, base, dense_options);
      row.dense_plan_seconds = NowSeconds() - start;
      DPHIST_CHECK_MSG(plan.ok(), "dense-path plan failed");
      DPHIST_CHECK_MSG(CountInfeasible(plan.value()) == 0,
                       "dense plan infeasible below the cap");
    }

    rows.push_back(row);
    std::fprintf(stderr,
                 "n=2^%lld: %lld candidates, %lld infeasible, "
                 "plan %.3g ms, warm %.3g ms%s\n",
                 static_cast<long long>(log2),
                 static_cast<long long>(row.candidates),
                 static_cast<long long>(row.infeasible),
                 row.plan_seconds * 1e3, row.warm_replan_seconds * 1e3,
                 row.dense_plan_seconds >= 0.0 ? ", dense ran" : "");
  }

  std::int64_t infeasible_total = 0;
  for (const Row& row : rows) infeasible_total += row.infeasible;
  const Row& widest = rows.back();
  // Dense-vs-recurrence speedup at the widest domain the dense path ran.
  double dense_seconds = -1.0;
  double recurrence_seconds_at_dense = -1.0;
  std::int64_t dense_log2 = -1;
  for (const Row& row : rows) {
    if (row.dense_plan_seconds >= 0.0) {
      dense_log2 = row.log2;
      dense_seconds = row.dense_plan_seconds;
      recurrence_seconds_at_dense = row.plan_seconds;
    }
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"plan_sweep\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"max_shards\": %lld,\n",
              static_cast<long long>(max_shards));
  std::printf("  \"repeats\": %lld,\n", static_cast<long long>(repeats));
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("    {\"domain_log2\": %lld, \"candidates\": %lld, "
                "\"infeasible\": %lld, \"plan_seconds\": %.6g, "
                "\"warm_replan_seconds\": %.6g, "
                "\"warm_lengths_reused\": %lld",
                static_cast<long long>(row.log2),
                static_cast<long long>(row.candidates),
                static_cast<long long>(row.infeasible), row.plan_seconds,
                row.warm_replan_seconds,
                static_cast<long long>(row.warm_lengths_reused));
    if (row.dense_plan_seconds >= 0.0) {
      std::printf(", \"dense_plan_seconds\": %.6g", row.dense_plan_seconds);
    }
    std::printf("}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"max_domain_log2\": %lld,\n",
              static_cast<long long>(widest.log2));
  std::printf("    \"plan_seconds_at_max_domain\": %.6g,\n",
              widest.plan_seconds);
  std::printf("    \"warm_replan_seconds_at_max_domain\": %.6g,\n",
              widest.warm_replan_seconds);
  std::printf("    \"infeasible_rows\": %lld,\n",
              static_cast<long long>(infeasible_total));
  std::printf("    \"dense_domain_log2\": %lld,\n",
              static_cast<long long>(dense_log2));
  std::printf("    \"dense_plan_seconds\": %.6g,\n", dense_seconds);
  std::printf("    \"dense_over_recurrence\": %.3f\n",
              recurrence_seconds_at_dense > 0.0
                  ? dense_seconds / recurrence_seconds_at_dense
                  : 0.0);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
