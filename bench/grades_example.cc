// Experiment E9 — the introduction's student-grades example.
//
// An analyst needs x_t (total), x_p (passing), and the per-grade counts
// x_A..x_F. Two strategies:
//   (1) sensitivity-1: ask only the five grades, derive x_p and x_t by
//       summation — accurate grades, noisy totals (noise accumulates);
//   (2) sensitivity-3: ask all seven queries (3x the noise per answer),
//       then resolve the inconsistencies by constrained inference.
// The paper's point: with inference, strategy (2) can beat (1) on the
// aggregates while staying consistent — the extra noise conventional DP
// adds "provides no quantifiable gain in privacy but does have a
// significant cost in accuracy".

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "experiments/report.h"
#include "inference/constrained_ls.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", 1.0);
  const std::int64_t trials = flags.GetInt("trials", 20000, "DPHIST_TRIALS");

  // Ground truth: 200 students.
  // Layout: 0: x_t, 1: x_p, 2..5: x_A..x_D, 6: x_F.
  const std::vector<double> truth = {200, 170, 60, 55, 35, 20, 30};

  ConstraintSystem constraints(7);
  constraints.AddSumConstraint(0, {1, 6});        // x_t = x_p + x_F
  constraints.AddSumConstraint(1, {2, 3, 4, 5});  // x_p = A + B + C + D

  Rng rng(3);
  LaplaceDistribution grade_noise(1.0 / eps);  // strategy 1: sensitivity 1
  LaplaceDistribution full_noise(3.0 / eps);   // strategy 2: sensitivity 3

  // Per-component squared errors.
  std::vector<RunningStat> s1(7), s2(7), s2inf(7);
  RunningStat s2_violation;
  for (std::int64_t t = 0; t < trials; ++t) {
    // Strategy 1: noisy grades, totals derived by summation.
    std::vector<double> grades(5);
    for (int g = 0; g < 5; ++g) {
      grades[g] = truth[2 + g] + grade_noise.Sample(&rng);
    }
    double passing = grades[0] + grades[1] + grades[2] + grades[3];
    double total = passing + grades[4];
    std::vector<double> answer1 = {total,     passing,  grades[0], grades[1],
                                   grades[2], grades[3], grades[4]};

    // Strategy 2: all seven queries with sensitivity-3 noise.
    std::vector<double> answer2(7);
    for (int i = 0; i < 7; ++i) {
      answer2[i] = truth[i] + full_noise.Sample(&rng);
    }
    s2_violation.Add(constraints.MaxViolation(answer2));
    auto inferred = ConstrainedLeastSquares(constraints, answer2);

    for (int i = 0; i < 7; ++i) {
      double d1 = answer1[i] - truth[i];
      double d2 = answer2[i] - truth[i];
      double d3 = inferred.value()[i] - truth[i];
      s1[i].Add(d1 * d1);
      s2[i].Add(d2 * d2);
      s2inf[i].Add(d3 * d3);
    }
  }

  PrintBanner(std::cout, "Section 1: the student-grades example");
  std::printf("eps=%s, %lld trials\n\n", FormatFixed(eps).c_str(),
              static_cast<long long>(trials));
  const char* names[7] = {"x_t", "x_p", "x_A", "x_B", "x_C", "x_D", "x_F"};
  TablePrinter table({"query", "strategy 1 (sens 1 + sum)",
                      "strategy 2 (sens 3, raw)",
                      "strategy 2 + inference"});
  double total1 = 0.0, total2 = 0.0, total3 = 0.0;
  for (int i = 0; i < 7; ++i) {
    table.AddRow({names[i], FormatFixed(s1[i].Mean()),
                  FormatFixed(s2[i].Mean()), FormatFixed(s2inf[i].Mean())});
    total1 += s1[i].Mean();
    total2 += s2[i].Mean();
    total3 += s2inf[i].Mean();
  }
  table.AddRow({"TOTAL", FormatFixed(total1), FormatFixed(total2),
                FormatFixed(total3)});
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf("  mean constraint violation of raw strategy-2 answers: %s "
              "(inconsistency is the norm)\n",
              FormatFixed(s2_violation.Mean()).c_str());
  std::printf("  inference cuts strategy 2's total error by %s "
              "(theory: keeps 5/7 = %.3f of the noise)\n",
              FormatRatio(total2 / total3).c_str(), 5.0 / 7.0);
  std::printf("  strategy 2 + inference beats strategy 1 on x_t: %s "
              "(%.1f vs %.1f)\n",
              s2inf[0].Mean() < s1[0].Mean() ? "YES" : "NO",
              s2inf[0].Mean(), s1[0].Mean());
  std::printf("  strategy 1 stays better for individual grades: %s\n",
              s1[2].Mean() < s2inf[2].Mean() ? "YES" : "NO");

  // The intro's "can be superior in many cases" is a function of how many
  // unit counts the derived total sums over: strategy 1's x_t error grows
  // linearly with the number of grade buckets G (noise accumulates under
  // summation) while strategy 2's stays flat (sensitivity is 3 regardless
  // of G). Sweep G to find the crossover — the same force that makes the
  // hierarchical H query win at large ranges.
  PrintBanner(std::cout,
              "sweep: x_t error vs number of grade buckets G");
  TablePrinter sweep({"G", "strategy 1 (sum of G)", "strategy 2 + inference",
                      "winner"});
  std::int64_t crossover = -1;
  for (int g = 4; g <= 24; g += 2) {
    // Analytic strategy-1 error: G unit counts, each Lap(1/eps):
    // var = 2G/eps^2. Strategy 2 + inference: project the (G+2)-vector.
    double strategy1 = 2.0 * g / (eps * eps);
    // Monte Carlo the projection (constraints depend on G).
    ConstraintSystem cs(g + 2);
    std::vector<std::int64_t> passing;
    for (int i = 2; i < g + 1; ++i) passing.push_back(i);
    cs.AddSumConstraint(0, {1, g + 1});  // x_t = x_p + x_F
    cs.AddSumConstraint(1, passing);     // x_p = sum of passing grades
    LaplaceDistribution noise(3.0 / eps);
    RunningStat err;
    Rng sweep_rng(static_cast<std::uint64_t>(g));
    for (int t = 0; t < 4000; ++t) {
      std::vector<double> noisy(static_cast<std::size_t>(g + 2), 0.0);
      for (double& x : noisy) x = noise.Sample(&sweep_rng);
      auto inferred = ConstrainedLeastSquares(cs, noisy);
      err.Add(inferred.value()[0] * inferred.value()[0]);
    }
    bool strategy2_wins = err.Mean() < strategy1;
    if (strategy2_wins && crossover < 0) crossover = g;
    sweep.AddRow({std::to_string(g), FormatFixed(strategy1),
                  FormatFixed(err.Mean()),
                  strategy2_wins ? "constrained inference" : "summation"});
  }
  sweep.Print(std::cout);
  std::printf(
      "  paper: \"strategies inspired by the second alternative can be "
      "superior in many cases\"\n  measured: constrained inference wins "
      "once G >= %lld buckets\n",
      static_cast<long long>(crossover));
  return 0;
}
