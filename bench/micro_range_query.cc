// Micro-benchmark of the range-answering hot path, emitting machine-
// readable JSON so BENCH_range_query.json can track the performance
// trajectory across PRs (see tools/run_bench.sh).
//
// For each domain size 2^10 .. 2^20 it measures queries/sec of the
// batched RangeCounts path for L~, H~, and H-bar, plus two H-bar
// reference paths:
//   "prefix"         the O(1) prefix-sum fast path (consistent tree),
//   "decomposition"  the allocation-free O(k log_k n) subtree walk,
//   "legacy_alloc"   the old DecomposeRange-per-query answering loop.
// The summary records the prefix-vs-decomposition speedup at the largest
// domain — the acceptance metric for the fast path.
//
// Flags: --min-log2/--max-log2 (domain sweep), --queries (workload size),
// --min-time-ms (per measurement), --epsilon; DPHIST_* env equivalents.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `body` (which answers `queries_per_pass` queries) until
/// `min_seconds` has elapsed; returns queries answered per second.
template <typename Body>
double MeasureQps(std::int64_t queries_per_pass, double min_seconds,
                  Body&& body) {
  body();  // warm-up
  std::int64_t passes = 0;
  double start = NowSeconds();
  double elapsed = 0.0;
  do {
    body();
    ++passes;
    elapsed = NowSeconds() - start;
  } while (elapsed < min_seconds);
  return static_cast<double>(passes * queries_per_pass) / elapsed;
}

struct ResultRow {
  std::int64_t domain_log2;
  std::string estimator;
  std::string path;
  double qps;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t min_log2 = flags.GetInt("min-log2", 10, "DPHIST_MIN_LOG2");
  const std::int64_t max_log2 = flags.GetInt("max-log2", 20, "DPHIST_MAX_LOG2");
  const std::int64_t queries = flags.GetInt("queries", 4096, "DPHIST_QUERIES");
  const double min_time =
      static_cast<double>(flags.GetInt("min-time-ms", 200,
                                       "DPHIST_MIN_TIME_MS")) /
      1000.0;
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");

  std::vector<ResultRow> rows;
  double prefix_qps_at_max = 0.0;
  double decomposition_qps_at_max = 0.0;

  for (std::int64_t log2 = min_log2; log2 <= max_log2; log2 += 2) {
    const std::int64_t n = std::int64_t{1} << log2;
    Rng data_rng(42);
    Histogram data = Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n,
                                                      &data_rng));

    UniversalOptions options;
    options.epsilon = epsilon;
    options.branching = 2;
    // Pure-inference configuration: the tree stays exactly consistent, so
    // H-bar's O(1) prefix path engages (rounding/pruning would fall back
    // to the decomposition walk, measured separately below).
    options.round_to_nonnegative_integers = false;
    options.prune_nonpositive_subtrees = false;

    Rng rng(7);
    LTildeEstimator l_tilde(data, options, &rng);
    HierarchicalQuery h_query(n, options.branching);
    LaplaceMechanism mechanism(epsilon);
    std::vector<double> noisy = mechanism.AnswerQuery(h_query, data, &rng);
    HTildeEstimator h_tilde(n, options, noisy);
    HBarEstimator h_bar(n, options, noisy);
    // The "prefix" rows below are meaningless if the fast path silently
    // disengaged — fail loudly instead of mislabeling the measurement.
    DPHIST_CHECK(h_bar.uses_prefix_fast_path());

    // Mixed workload: random sizes and locations across the whole domain.
    Rng workload_rng(13);
    std::vector<Interval> workload;
    workload.reserve(static_cast<std::size_t>(queries));
    for (std::int64_t i = 0; i < queries; ++i) {
      std::int64_t lo = workload_rng.NextInt(0, n - 1);
      std::int64_t hi = workload_rng.NextInt(lo, n - 1);
      workload.emplace_back(lo, hi);
    }
    std::vector<double> answers(workload.size());

    auto batched = [&](const RangeCountEstimator& est) {
      return MeasureQps(queries, min_time, [&] {
        est.RangeCountsInto(workload.data(), workload.size(),
                            answers.data());
      });
    };
    rows.push_back({log2, "L~", "prefix", batched(l_tilde)});
    rows.push_back({log2, "H~", "decomposition", batched(h_tilde)});

    const double prefix_qps = batched(h_bar);
    rows.push_back({log2, "H-bar", "prefix", prefix_qps});

    const double decomposition_qps = MeasureQps(queries, min_time, [&] {
      for (std::size_t i = 0; i < workload.size(); ++i) {
        answers[i] = h_bar.RangeCountViaDecomposition(workload[i]);
      }
    });
    rows.push_back({log2, "H-bar", "decomposition", decomposition_qps});

    const TreeLayout& tree = h_bar.tree();
    const std::vector<double>& nodes = h_bar.node_estimates();
    const double legacy_qps = MeasureQps(queries, min_time, [&] {
      for (std::size_t i = 0; i < workload.size(); ++i) {
        double total = 0.0;
        for (std::int64_t v : DecomposeRange(tree, workload[i])) {
          total += nodes[static_cast<std::size_t>(v)];
        }
        answers[i] = total;
      }
    });
    rows.push_back({log2, "H-bar", "legacy_alloc", legacy_qps});

    // The sweep ascends, so the last iteration is the largest domain.
    prefix_qps_at_max = prefix_qps;
    decomposition_qps_at_max = decomposition_qps;
    std::fprintf(stderr, "measured 2^%lld (n=%lld)\n",
                 static_cast<long long>(log2), static_cast<long long>(n));
  }

  // Emit JSON on stdout (stderr carries progress so redirection is clean).
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_range_query\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"queries_per_batch\": %lld,\n",
              static_cast<long long>(queries));
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "    {\"domain_log2\": %lld, \"estimator\": \"%s\", "
        "\"path\": \"%s\", \"queries_per_sec\": %.6g}%s\n",
        static_cast<long long>(rows[i].domain_log2),
        rows[i].estimator.c_str(), rows[i].path.c_str(), rows[i].qps,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"hbar_prefix_qps_at_max_domain\": %.6g,\n",
              prefix_qps_at_max);
  std::printf("    \"hbar_decomposition_qps_at_max_domain\": %.6g,\n",
              decomposition_qps_at_max);
  std::printf("    \"hbar_prefix_speedup_at_max_domain\": %.3f\n",
              decomposition_qps_at_max > 0.0
                  ? prefix_qps_at_max / decomposition_qps_at_max
                  : 0.0);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
