// Micro-benchmark of the columnar batch answer engine, emitting
// machine-readable JSON so BENCH_answer_kernel.json can track the
// engine's trajectory across PRs (see tools/run_bench.sh).
//
// One L~ release (domain 2^20, 8 shards, Section 5.2 rounding on) is
// answered two ways over identical mixed-length batches — single
// points, shard-interior ranges, and shard-spanning ranges, the shapes
// a live workload mixes:
//
//   "walker"          the per-query virtual-dispatch path
//                     (Snapshot::RangeCount in a loop) — the reference,
//   "engine:<kernel>" engine::AnswerBatch against the snapshot's
//                     flattened AnswerPlan, forced to each dispatch
//                     level this machine supports.
//
// Rows record ns/query and the speedup over the walker at the same
// batch size; each engine row also records bit_identical — whether the
// engine's answers matched the walker's bit-for-bit over the measured
// batch (the conformance suite property-tests this; the bench
// re-checks it on the exact data it timed). The summary's acceptance
// metric is the active-kernel speedup at the qb-4096 mixed batch.
//
// Flags: --domain-log2, --shards, --min-time-ms, --epsilon, --seed;
// DPHIST_* env equivalents. Single-threaded by design: the engine's win
// is per-core, and CI containers often expose one core.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "engine/answer_engine.h"
#include "engine/answer_plan.h"
#include "engine/kernels.h"
#include "service/snapshot.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `body` (which answers `queries_per_pass` queries) until
/// `min_seconds` has elapsed; returns nanoseconds per query.
template <typename Body>
double MeasureNsPerQuery(std::int64_t queries_per_pass, double min_seconds,
                         Body&& body) {
  body();  // warm-up (also grows the engine's thread-local scratch)
  std::int64_t passes = 0;
  double start = NowSeconds();
  double elapsed = 0.0;
  do {
    body();
    ++passes;
    elapsed = NowSeconds() - start;
  } while (elapsed < min_seconds);
  return elapsed * 1e9 / static_cast<double>(passes * queries_per_pass);
}

/// A mixed-length batch: one third single points, one third ranges
/// inside one shard, one third shard-spanning ranges.
std::vector<Interval> MixedBatch(std::int64_t n, std::int64_t shard_width,
                                 std::size_t count, Rng* rng) {
  std::vector<Interval> ranges;
  ranges.reserve(count);
  while (ranges.size() < count) {
    const std::size_t shape = ranges.size() % 3;
    if (shape == 0) {
      const std::int64_t p = rng->NextInt(0, n - 1);
      ranges.push_back(Interval(p, p));
    } else if (shape == 1) {
      const std::int64_t shard = rng->NextInt(0, n / shard_width - 1);
      const std::int64_t base = shard * shard_width;
      std::int64_t a = base + rng->NextInt(0, shard_width - 1);
      std::int64_t b = base + rng->NextInt(0, shard_width - 1);
      if (a > b) std::swap(a, b);
      ranges.push_back(Interval(a, b));
    } else {
      std::int64_t a = rng->NextInt(0, n - 1);
      std::int64_t b = rng->NextInt(0, n - 1);
      if (a > b) std::swap(a, b);
      ranges.push_back(Interval(a, b));
    }
  }
  return ranges;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct ResultRow {
  std::size_t batch;
  std::string path;
  double ns_per_query;
  double speedup_over_walker;
  int bit_identical;  // -1 for the walker rows (it is the reference)
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 20, "DPHIST_DOMAIN_LOG2");
  const std::int64_t shards = flags.GetInt("shards", 8, "DPHIST_SHARDS");
  const double min_time =
      static_cast<double>(flags.GetInt("min-time-ms", 200,
                                       "DPHIST_MIN_TIME_MS")) /
      1000.0;
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42, "DPHIST_SEED"));

  const std::int64_t n = std::int64_t{1} << domain_log2;
  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  SnapshotOptions options;
  options.epsilon = epsilon;
  options.strategy = StrategyKind::kLTilde;
  options.shards = shards;
  options.round_to_nonnegative_integers = true;
  Rng build_rng(seed + 1);
  auto built = Snapshot::Build(data, options, /*epoch=*/1, &build_rng);
  DPHIST_CHECK_MSG(built.ok(), built.status().ToString().c_str());
  const Snapshot& snap = *built.value();
  const engine::AnswerPlan* plan = snap.answer_plan();
  DPHIST_CHECK_MSG(plan != nullptr, "L~ must flatten into an AnswerPlan");

  const std::vector<std::size_t> batch_sizes = {64, 512, 4096};
  std::vector<ResultRow> rows;
  double walker_ns_at_4096 = 0.0;
  double active_engine_ns_at_4096 = 0.0;
  bool all_bit_identical = true;

  std::vector<engine::KernelKind> kernels;
  for (int k = 0; k < engine::kKernelKindCount; ++k) {
    const auto kind = static_cast<engine::KernelKind>(k);
    if (engine::KernelSupported(kind)) kernels.push_back(kind);
  }
  const engine::KernelKind active = engine::BestSupportedKernel();

  Rng range_rng(seed + 2);
  for (std::size_t batch : batch_sizes) {
    std::vector<Interval> ranges =
        MixedBatch(n, snap.shard_width(), batch, &range_rng);
    std::vector<double> walker_out(batch);
    std::vector<double> engine_out(batch);

    const double walker_ns =
        MeasureNsPerQuery(static_cast<std::int64_t>(batch), min_time, [&] {
          for (std::size_t i = 0; i < batch; ++i) {
            walker_out[i] = snap.RangeCount(ranges[i]);
          }
        });
    rows.push_back({batch, "walker", walker_ns, 1.0, -1});
    if (batch == 4096) walker_ns_at_4096 = walker_ns;

    for (engine::KernelKind kind : kernels) {
      engine::ForceKernel(kind);
      const double engine_ns =
          MeasureNsPerQuery(static_cast<std::int64_t>(batch), min_time, [&] {
            engine::AnswerBatch(*plan, ranges.data(), nullptr, batch,
                                engine_out.data());
          });
      const bool identical = BitIdentical(walker_out, engine_out);
      all_bit_identical = all_bit_identical && identical;
      rows.push_back({batch,
                      std::string("engine:") + engine::KernelKindName(kind),
                      engine_ns, walker_ns / engine_ns, identical ? 1 : 0});
      if (batch == 4096 && kind == active) active_engine_ns_at_4096 = engine_ns;
    }
    engine::ForceKernel(std::nullopt);
  }

  const double speedup_at_4096 =
      active_engine_ns_at_4096 > 0.0 ? walker_ns_at_4096 /
                                           active_engine_ns_at_4096
                                     : 0.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"answer_kernel\",\n");
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"shards\": %lld,\n", static_cast<long long>(shards));
  std::printf("  \"strategy\": \"ltilde\",\n");
  std::printf("  \"round_answers\": true,\n");
  std::printf("  \"active_kernel\": \"%s\",\n", engine::KernelKindName(active));
  std::printf("  \"bit_identical\": %s,\n",
              all_bit_identical ? "true" : "false");
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    std::printf("    {\"batch\": %zu, \"path\": \"%s\", "
                "\"ns_per_query\": %.3f, \"speedup_over_walker\": %.3f%s}%s\n",
                row.batch, row.path.c_str(), row.ns_per_query,
                row.speedup_over_walker,
                row.bit_identical < 0
                    ? ""
                    : (row.bit_identical ? ", \"bit_identical\": true"
                                         : ", \"bit_identical\": false"),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"walker_ns_per_query_at_qb4096\": %.3f,\n",
              walker_ns_at_4096);
  std::printf("    \"engine_ns_per_query_at_qb4096\": %.3f,\n",
              active_engine_ns_at_4096);
  std::printf("    \"engine_speedup_at_qb4096\": %.3f\n", speedup_at_4096);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
