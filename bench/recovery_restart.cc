// Warm-restart benchmark for the durable epoch store, emitting JSON so
// BENCH_recovery.json tracks crash-recovery latency across PRs (see
// tools/run_bench.sh).
//
// Protocol: at each domain size a durable server publishes an initial
// epoch and one replan into a fresh --state-dir (two WAL ledger
// entries, two persisted snapshots), then the process state is thrown
// away and a cold EpochManager recovers from disk. Three timings are
// recorded, best of --repeats:
//   - durable_publish: PublishInitial through an EpochStore (estimator
//     build + WAL append + page-checksummed snapshot persist) — what a
//     durable server pays per release;
//   - volatile_publish: the same publish with no store attached — the
//     pre-durability baseline, so the WAL+snapshot overhead is visible
//     as a ratio rather than hidden;
//   - recover: EpochStore::Recover + ledger replay + snapshot restore +
//     PublishRestored — what a restart pays instead of re-spending
//     epsilon on a rebuild.
// Every recovery is checked bit-identical against the pre-"crash"
// release on a 256-probe workload and reported as `bit_identical` (a
// false value is a correctness bug, not a performance result).
//
// Flags (DPHIST_* env equivalents): --domain-log2-list (comma
// separated), --strategy, --epsilon, --shards, --repeats, --seed.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "runtime/epoch_manager.h"
#include "service/query_service.h"
#include "storage/epoch_store.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> values;
  int value = 0;
  bool have_digit = false;
  for (char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
    } else {
      if (have_digit) values.push_back(value);
      value = 0;
      have_digit = false;
    }
  }
  if (have_digit) values.push_back(value);
  DPHIST_CHECK_MSG(!values.empty(), "empty --domain-log2-list");
  return values;
}

std::string FreshStateDir() {
  std::string dir =
      (std::filesystem::temp_directory_path() / "dphist_bench_recovery")
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::vector<int> domain_log2s = ParseIntList(
      flags.GetString("domain-log2-list", "12,14,16,18", "DPHIST_DOMAINS"));
  const std::string strategy_name =
      flags.GetString("strategy", "hbar", "DPHIST_STRATEGY");
  const double epsilon = flags.GetDouble("epsilon", 0.5, "DPHIST_EPSILON");
  const std::int64_t shards = flags.GetInt("shards", 8, "DPHIST_SHARDS");
  const std::int64_t repeats = flags.GetInt("repeats", 3, "DPHIST_REPEATS");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");
  DPHIST_CHECK_MSG(strategy.value() != StrategyKind::kAuto,
                   "bench needs a concrete --strategy");

  struct Row {
    std::int64_t domain;
    double durable_publish_seconds;
    double volatile_publish_seconds;
    double recover_seconds;
    std::uint64_t snapshot_bytes;
    std::uint64_t wal_bytes;
  };
  std::vector<Row> rows;
  bool bit_identical = true;

  for (int domain_log2 : domain_log2s) {
    const std::int64_t n = std::int64_t{1} << domain_log2;
    Rng data_rng(seed);
    Histogram data =
        Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

    runtime::EpochManagerOptions options;
    options.base.strategy = strategy.value();
    options.base.epsilon = epsilon;
    options.base.shards = shards;
    options.async = false;

    Rng probe_rng(13);
    std::vector<Interval> probes;
    probes.reserve(256);
    for (int i = 0; i < 256; ++i) {
      std::int64_t lo = probe_rng.NextInt(0, n - 1);
      probes.emplace_back(lo, probe_rng.NextInt(lo, n - 1));
    }

    Row row{n, 0.0, 0.0, 0.0, 0, 0};
    for (std::int64_t r = 0; r < repeats; ++r) {
      // Volatile baseline: the same release with durability off.
      {
        runtime::EpochManagerOptions volatile_options = options;
        volatile_options.store = nullptr;
        QueryService service;
        runtime::EpochManager manager(&service, data, volatile_options,
                                      seed + 1);
        const double start = NowSeconds();
        auto published = manager.PublishInitial();
        const double elapsed = NowSeconds() - start;
        DPHIST_CHECK_MSG(published.ok(), "volatile publish failed");
        if (r == 0 || elapsed < row.volatile_publish_seconds) {
          row.volatile_publish_seconds = elapsed;
        }
      }

      const std::string dir = FreshStateDir();
      std::vector<double> before(probes.size());
      {
        auto store = storage::EpochStore::Open(dir);
        DPHIST_CHECK_MSG(store.ok(), "store open failed");
        options.store = store.value().get();
        QueryService service;
        runtime::EpochManager manager(&service, data, options, seed + 1);
        const double start = NowSeconds();
        auto published = manager.PublishInitial();
        const double elapsed = NowSeconds() - start;
        DPHIST_CHECK_MSG(published.ok(), "durable publish failed");
        auto replanned = manager.ReplanNow();
        DPHIST_CHECK_MSG(replanned.ok(), "replan failed");
        for (std::size_t i = 0; i < probes.size(); ++i) {
          service.Query(probes[i], &before[i]);
        }
        if (r == 0 || elapsed < row.durable_publish_seconds) {
          row.durable_publish_seconds = elapsed;
        }
      }  // the "crash": every in-memory structure is discarded

      auto store = storage::EpochStore::Open(dir);
      DPHIST_CHECK_MSG(store.ok(), "store reopen failed");
      options.store = store.value().get();
      QueryService service;
      runtime::EpochManager manager(&service, data, options, seed + 1);
      const double start = NowSeconds();
      auto recovered = manager.Recover();
      const double elapsed = NowSeconds() - start;
      DPHIST_CHECK_MSG(recovered.ok(), "recover failed");
      DPHIST_CHECK_MSG(recovered.value().republished,
                       "recover restored nothing");
      if (r == 0 || elapsed < row.recover_seconds) {
        row.recover_seconds = elapsed;
      }
      for (std::size_t i = 0; i < probes.size(); ++i) {
        double answer = 0.0;
        service.Query(probes[i], &answer);
        if (answer != before[i]) bit_identical = false;
      }
      row.wal_bytes = store.value()->wal_size();
      std::error_code ec;
      const auto snapshot_size =
          std::filesystem::file_size(dir + "/snapshot.db", ec);
      row.snapshot_bytes = ec ? 0 : snapshot_size;
    }
    rows.push_back(row);
    std::fprintf(stderr,
                 "n=2^%d: durable publish %.4f s, volatile %.4f s, "
                 "recover %.4f s (%llu snapshot bytes)\n",
                 domain_log2, row.durable_publish_seconds,
                 row.volatile_publish_seconds, row.recover_seconds,
                 static_cast<unsigned long long>(row.snapshot_bytes));
  }

  const Row& largest = rows.back();
  const double durability_overhead =
      largest.volatile_publish_seconds > 0.0
          ? largest.durable_publish_seconds / largest.volatile_publish_seconds
          : 0.0;
  const double recover_vs_rebuild =
      largest.volatile_publish_seconds > 0.0
          ? largest.recover_seconds / largest.volatile_publish_seconds
          : 0.0;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"recovery_restart\",\n");
  std::printf("  \"strategy\": \"%s\",\n", strategy_name.c_str());
  std::printf("  \"epsilon\": %.17g,\n", epsilon);
  std::printf("  \"shards\": %lld,\n", static_cast<long long>(shards));
  std::printf("  \"repeats\": %lld,\n", static_cast<long long>(repeats));
  std::printf("  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("    {\"domain\": %lld, \"durable_publish_seconds\": %.6g, "
                "\"volatile_publish_seconds\": %.6g, "
                "\"recover_seconds\": %.6g, \"snapshot_bytes\": %llu, "
                "\"wal_bytes\": %llu}%s\n",
                static_cast<long long>(row.domain),
                row.durable_publish_seconds, row.volatile_publish_seconds,
                row.recover_seconds,
                static_cast<unsigned long long>(row.snapshot_bytes),
                static_cast<unsigned long long>(row.wal_bytes),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"max_domain\": %lld,\n",
              static_cast<long long>(largest.domain));
  std::printf("    \"durable_publish_seconds_at_max_domain\": %.6g,\n",
              largest.durable_publish_seconds);
  std::printf("    \"volatile_publish_seconds_at_max_domain\": %.6g,\n",
              largest.volatile_publish_seconds);
  std::printf("    \"recover_seconds_at_max_domain\": %.6g,\n",
              largest.recover_seconds);
  std::printf("    \"durability_overhead_ratio\": %.4g,\n",
              durability_overhead);
  std::printf("    \"recover_vs_rebuild_ratio\": %.4g,\n", recover_vs_rebuild);
  std::printf("    \"snapshot_bytes_at_max_domain\": %llu\n",
              static_cast<unsigned long long>(largest.snapshot_bytes));
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
