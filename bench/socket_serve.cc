// Socket-serve benchmark: aggregate throughput of the network transport
// with N concurrent loopback clients sharing one QueryService +
// EpochManager, emitting JSON so BENCH_socket.json tracks the transport
// from PR to PR (see tools/run_bench.sh).
//
// Protocol: an in-process SocketServer listens on an ephemeral loopback
// port (exactly the `dphist serve --listen` wiring). For each entry in
// --connections-list, C client threads connect, read the banner, and
// stream `qb <batch> ...` commands of random ranges — each round trip
// writes one line and reads batch answers plus the single-epoch
// receipt, so the measured number includes the full session-grammar
// parse, the query fan-in, and both socket hops. After a warmup, each
// client times --measure batches; aggregate qps is total answered
// ranges over the wall-clock of the slowest client.
//
// On the 1-core reference container every connection thread, session
// thread, and the measurement share one core, so qps at 4 connections
// measures protocol overhead under contention rather than scaling;
// re-record on multicore for honest scaling (README "Network serving").
//
// Flags (DPHIST_* env equivalents): --domain-log2, --strategy,
// --epsilon, --batch, --measure, --warmup, --connections-list, --cache,
// --seed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "runtime/transport.h"
#include "service/query_service.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int64_t> ParseList(const std::string& csv,
                                    std::vector<std::int64_t> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::int64_t> values;
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) values.push_back(std::stoll(token));
  }
  return values.empty() ? fallback : values;
}

struct ClientResult {
  double seconds = 0.0;       // measured window wall-clock
  std::uint64_t queries = 0;  // ranges answered inside the window
  std::uint64_t epoch = 0;    // epoch of the last receipt
  bool ok = false;
};

/// One client: banner, warmup batches, measured batches. Every batch is
/// a single `qb` line; the reply is `batch` answer lines plus the
/// "# batch ..." receipt.
ClientResult RunClient(int port, std::int64_t n, std::int64_t batch,
                       std::int64_t warmup, std::int64_t measure,
                       std::uint64_t seed) {
  ClientResult result;
  auto stream = runtime::ConnectLoopback(port);
  if (!stream.ok()) return result;
  std::string line;
  if (!std::getline(*stream.value(), line)) return result;  // banner

  Rng rng(seed);
  std::ostringstream command;
  auto run_batch = [&]() -> bool {
    command.str("");
    command << "qb " << batch;
    for (std::int64_t i = 0; i < batch; ++i) {
      const std::int64_t lo = rng.NextInt(0, n - 1);
      command << " " << lo << " " << rng.NextInt(lo, n - 1);
    }
    command << "\n";
    *stream.value() << command.str();
    stream.value()->flush();
    for (std::int64_t i = 0; i < batch; ++i) {
      if (!std::getline(*stream.value(), line)) return false;
    }
    if (!std::getline(*stream.value(), line)) return false;  // receipt
    const std::size_t epoch_at = line.rfind("epoch=");
    if (epoch_at != std::string::npos) {
      result.epoch = std::stoull(line.substr(epoch_at + 6));
    }
    return true;
  };

  for (std::int64_t i = 0; i < warmup; ++i) {
    if (!run_batch()) return result;
  }
  const double start = NowSeconds();
  for (std::int64_t i = 0; i < measure; ++i) {
    if (!run_batch()) return result;
    result.queries += static_cast<std::uint64_t>(batch);
  }
  result.seconds = NowSeconds() - start;
  *stream.value() << "quit\n";
  stream.value()->flush();
  while (std::getline(*stream.value(), line)) {
  }
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 14, "DPHIST_DOMAIN_LOG2");
  const std::int64_t n = std::int64_t{1} << domain_log2;
  const std::string strategy_name =
      flags.GetString("strategy", "hbar", "DPHIST_STRATEGY");
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::int64_t batch = flags.GetInt("batch", 64, "DPHIST_BATCH");
  const std::int64_t warmup = flags.GetInt("warmup", 20, "DPHIST_WARMUP");
  const std::int64_t measure =
      flags.GetInt("measure", 200, "DPHIST_MEASURE");
  const std::int64_t cache_capacity =
      flags.GetInt("cache", 1 << 15, "DPHIST_CACHE");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::vector<std::int64_t> connections_list = ParseList(
      flags.GetString("connections-list", "", "DPHIST_CONNECTIONS_LIST"),
      {1, 4});

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");

  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  struct Run {
    std::int64_t connections;
    double qps;
    double seconds;
    std::uint64_t queries;
  };
  std::vector<Run> runs;
  for (const std::int64_t connections : connections_list) {
    // A fresh service + manager + listener per configuration, so cache
    // warmth never leaks between connection counts.
    QueryServiceOptions service_options;
    service_options.cache_capacity = cache_capacity;
    QueryService service(service_options);
    runtime::EpochManagerOptions manager_options;
    manager_options.base.epsilon = epsilon;
    manager_options.base.strategy = strategy.value();
    runtime::EpochManager manager(&service, data, manager_options, seed);
    DPHIST_CHECK_MSG(manager.PublishInitial().ok(),
                     "initial publish failed");
    runtime::TransportOptions transport;
    transport.port = 0;
    transport.max_sessions = connections;
    runtime::SocketServer server(service, manager, transport);
    DPHIST_CHECK_MSG(server.Start().ok(), "listener failed to start");

    std::vector<ClientResult> results(
        static_cast<std::size_t>(connections));
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(connections));
    for (std::int64_t c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        results[static_cast<std::size_t>(c)] =
            RunClient(server.port(), n, batch, warmup, measure,
                      seed + 100 + static_cast<std::uint64_t>(c));
      });
    }
    for (std::thread& client : clients) client.join();
    server.WaitUntilStopped();

    Run run{connections, 0.0, 0.0, 0};
    for (const ClientResult& result : results) {
      DPHIST_CHECK_MSG(result.ok, "client failed");
      run.seconds = std::max(run.seconds, result.seconds);
      run.queries += result.queries;
    }
    run.qps = static_cast<double>(run.queries) / run.seconds;
    runs.push_back(run);
    std::fprintf(stderr,
                 "connections=%lld: %llu queries in %.3fs -> %.4g q/s\n",
                 static_cast<long long>(run.connections),
                 static_cast<unsigned long long>(run.queries), run.seconds,
                 run.qps);
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"socket_serve\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"strategy\": \"%s\",\n",
              StrategyKindName(strategy.value()));
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"batch\": %lld,\n", static_cast<long long>(batch));
  std::printf("  \"measure_batches_per_client\": %lld,\n",
              static_cast<long long>(measure));
  std::printf("  \"cache_capacity\": %lld,\n",
              static_cast<long long>(cache_capacity));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf(
        "    {\"connections\": %lld, \"aggregate_qps\": %.6g, "
        "\"seconds\": %.6g, \"queries\": %llu}%s\n",
        static_cast<long long>(runs[i].connections), runs[i].qps,
        runs[i].seconds,
        static_cast<unsigned long long>(runs[i].queries),
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n");
  const Run& first = runs.front();
  const Run& last = runs.back();
  std::printf("  \"summary\": {\n");
  std::printf("    \"min_connections\": %lld,\n",
              static_cast<long long>(first.connections));
  std::printf("    \"max_connections\": %lld,\n",
              static_cast<long long>(last.connections));
  std::printf("    \"qps_at_min_connections\": %.6g,\n", first.qps);
  std::printf("    \"qps_at_max_connections\": %.6g,\n", last.qps);
  std::printf("    \"scaling_max_over_min\": %.4g\n",
              last.qps / first.qps);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
