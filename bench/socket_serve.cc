// Socket-serve benchmark: aggregate throughput of the worker-pool
// network transport with N concurrent loopback connections sharing one
// QueryService + EpochManager, across BOTH wire protocols, emitting
// JSON so BENCH_socket.json tracks the transport from PR to PR (see
// tools/run_bench.sh).
//
// Protocol: an in-process SocketServer listens on an ephemeral loopback
// port (exactly the `dphist serve --listen` wiring). For each entry in
// --connections-list and each protocol in --protocols:
//
//   text    each connection streams `qb <batch> ...` command lines and
//           reads batch answers plus the single-epoch receipt — the
//           measured number includes the full session-grammar parse,
//           the query fan-in, and both socket hops.
//   binary  each connection speaks the length-prefixed frame protocol
//           (runtime/wire_format.h): one QUERY frame per batch, one
//           ANSWERS frame back — same queries, no text rendering or
//           parsing on either side.
//
// Client side, connections are multiplexed over a bounded thread pool
// (--client-threads, default 8): a thread owns its share of the
// connections, writes one batch to every connection, then collects
// every reply — so hundreds of connections do not need hundreds of
// client threads (the server side never did: it runs a fixed worker
// pool either way). Rounds per connection shrink as the connection
// count grows so every configuration does comparable total work.
// Aggregate qps is total answered ranges over the wall-clock of the
// slowest client thread; per_batch_us is the per-batch cost implied by
// that aggregate (batch * 1e6 / qps).
//
// On the 1-core reference container every client thread, server
// worker, and the measurement share one core, so the sweep measures
// protocol + readiness-loop overhead under contention rather than
// scaling; re-record on multicore for honest scaling (README "Network
// serving"). The PR 5 blocking thread-per-connection numbers recorded
// on this same container are embedded as the baseline block so the
// transition stays visible in the JSON.
//
// Flags (DPHIST_* env equivalents): --domain-log2, --strategy,
// --epsilon, --batch, --measure, --warmup, --connections-list,
// --protocols, --client-threads, --workers, --cache, --seed.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "runtime/transport.h"
#include "runtime/wire_format.h"
#include "service/query_service.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int64_t> ParseList(const std::string& csv,
                                    std::vector<std::int64_t> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::int64_t> values;
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) values.push_back(std::stoll(token));
  }
  return values.empty() ? fallback : values;
}

std::vector<std::string> ParseNames(const std::string& csv,
                                    std::vector<std::string> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::string> values;
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) values.push_back(token);
  }
  return values.empty() ? fallback : values;
}

/// All threads finish opening + warmup before anyone starts the clock,
/// so the measured window never overlaps another thread's connect storm.
class StartGate {
 public:
  explicit StartGate(int parties) : waiting_for_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--waiting_for_ == 0) {
      open_ = true;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiting_for_;
  bool open_ = false;
};

struct ThreadResult {
  double seconds = 0.0;       // measured window wall-clock
  std::uint64_t queries = 0;  // ranges answered inside the window
  bool ok = false;
};

/// Fills `ranges` with `batch` random ranges over [0, n).
void FillRanges(Rng* rng, std::int64_t n, std::int64_t batch,
                std::vector<Interval>* ranges) {
  ranges->clear();
  for (std::int64_t i = 0; i < batch; ++i) {
    const std::int64_t lo = rng->NextInt(0, n - 1);
    ranges->emplace_back(lo, rng->NextInt(lo, n - 1));
  }
}

/// One client thread of the TEXT protocol driving `conns` connections:
/// writes one `qb` line to every connection, then reads every reply
/// (batch answer lines + the "# batch ..." receipt).
ThreadResult RunTextThread(StartGate* gate, int port, std::int64_t conns,
                           std::int64_t n, std::int64_t batch,
                           std::int64_t pipeline, std::int64_t warmup,
                           std::int64_t rounds, std::uint64_t seed) {
  ThreadResult result;
  std::vector<std::unique_ptr<runtime::SocketStream>> streams;
  std::string line;
  for (std::int64_t c = 0; c < conns; ++c) {
    auto stream = runtime::ConnectLoopback(port);
    if (!stream.ok()) return result;
    if (!std::getline(*stream.value(), line)) return result;  // banner
    streams.push_back(std::move(stream).value());
  }

  Rng rng(seed);
  std::vector<Interval> ranges;
  std::ostringstream command;
  auto run_round = [&]() -> bool {
    for (auto& stream : streams) {
      command.str("");
      for (std::int64_t d = 0; d < pipeline; ++d) {
        FillRanges(&rng, n, batch, &ranges);
        command << "qb " << batch;
        for (const Interval& range : ranges) {
          command << " " << range.lo() << " " << range.hi();
        }
        command << "\n";
      }
      *stream << command.str();
      stream->flush();
    }
    for (auto& stream : streams) {
      // answers + receipt, per pipelined batch
      for (std::int64_t i = 0; i < pipeline * (batch + 1); ++i) {
        if (!std::getline(*stream, line)) return false;
      }
    }
    return true;
  };

  for (std::int64_t i = 0; i < warmup; ++i) {
    if (!run_round()) return result;
  }
  gate->ArriveAndWait();
  const double start = NowSeconds();
  for (std::int64_t i = 0; i < rounds; ++i) {
    if (!run_round()) return result;
    result.queries += static_cast<std::uint64_t>(batch) *
                      static_cast<std::uint64_t>(conns) *
                      static_cast<std::uint64_t>(pipeline);
  }
  result.seconds = NowSeconds() - start;
  for (auto& stream : streams) {
    *stream << "quit\n";
    stream->flush();
    while (std::getline(*stream, line)) {
    }
  }
  result.ok = true;
  return result;
}

/// One client thread of the BINARY protocol: one QUERY frame per
/// connection per round, then one ANSWERS frame back from each.
ThreadResult RunBinaryThread(StartGate* gate, int port, std::int64_t conns,
                             std::int64_t n, std::int64_t batch,
                             std::int64_t pipeline, std::int64_t warmup,
                             std::int64_t rounds, std::uint64_t seed) {
  ThreadResult result;
  std::vector<std::unique_ptr<runtime::BinaryClient>> clients;
  for (std::int64_t c = 0; c < conns; ++c) {
    auto client = runtime::BinaryClient::Connect("127.0.0.1", port);
    if (!client.ok()) return result;
    clients.push_back(std::move(client).value());
  }

  Rng rng(seed);
  std::vector<Interval> ranges;
  std::uint64_t next_id = 0;
  auto run_round = [&]() -> bool {
    for (auto& client : clients) {
      // The pipelined frames ride one flush — one write syscall.
      for (std::int64_t d = 0; d < pipeline; ++d) {
        FillRanges(&rng, n, batch, &ranges);
        client->SendQuery(++next_id, 0, ranges.data(), ranges.size());
      }
      if (!client->Flush().ok()) return false;
    }
    for (auto& client : clients) {
      for (std::int64_t d = 0; d < pipeline; ++d) {
        auto reply = client->ReadReply();
        if (!reply.ok() ||
            reply.value().type != runtime::wire::FrameType::kAnswers) {
          return false;
        }
      }
    }
    return true;
  };

  for (std::int64_t i = 0; i < warmup; ++i) {
    if (!run_round()) return result;
  }
  gate->ArriveAndWait();
  const double start = NowSeconds();
  for (std::int64_t i = 0; i < rounds; ++i) {
    if (!run_round()) return result;
    result.queries += static_cast<std::uint64_t>(batch) *
                      static_cast<std::uint64_t>(conns) *
                      static_cast<std::uint64_t>(pipeline);
  }
  result.seconds = NowSeconds() - start;
  for (auto& client : clients) {
    client->SendGoodbye();
    if (!client->Flush().ok()) continue;
    while (true) {
      auto frame = client->ReadFrame();
      if (!frame.ok() ||
          frame.value().type == runtime::wire::FrameType::kBye) {
        break;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 14, "DPHIST_DOMAIN_LOG2");
  const std::int64_t n = std::int64_t{1} << domain_log2;
  const std::string strategy_name =
      flags.GetString("strategy", "hbar", "DPHIST_STRATEGY");
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::int64_t batch = flags.GetInt("batch", 64, "DPHIST_BATCH");
  // Batches in flight per connection per round, both protocols. The
  // wire protocol needs no support for this (answers carry ids; lines
  // come back in order) — it is purely how hard the client leans on the
  // socket, and the headline capability this transport exists for.
  const std::int64_t pipeline =
      flags.GetInt("pipeline", 4, "DPHIST_PIPELINE");
  const std::int64_t warmup = flags.GetInt("warmup", 20, "DPHIST_WARMUP");
  // 1000 measured batches at one connection is a ~60ms window — long
  // enough that scheduler noise stops dominating the 1-core numbers.
  const std::int64_t measure =
      flags.GetInt("measure", 1000, "DPHIST_MEASURE");
  const std::int64_t cache_capacity =
      flags.GetInt("cache", 1 << 15, "DPHIST_CACHE");
  const std::int64_t client_threads =
      flags.GetInt("client-threads", 2, "DPHIST_CLIENT_THREADS");
  const std::int64_t workers = flags.GetInt("workers", 2, "DPHIST_WORKERS");
  // Each configuration runs this many times (fresh server each) and
  // records the median-qps sample: one hot or cold scheduler window on
  // the 1-core container otherwise skews the PR-to-PR comparison.
  const std::int64_t repeats = flags.GetInt("repeats", 3, "DPHIST_REPEATS");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::vector<std::int64_t> connections_list = ParseList(
      flags.GetString("connections-list", "", "DPHIST_CONNECTIONS_LIST"),
      {1, 4, 32, 128, 512});
  const std::vector<std::string> protocols = ParseNames(
      flags.GetString("protocols", "", "DPHIST_PROTOCOLS"),
      {"text", "binary"});

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");

  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  struct Run {
    std::string protocol;
    std::int64_t connections;
    double qps;
    double per_batch_us;
    double seconds;
    std::uint64_t queries;
  };
  std::vector<Run> runs;
  for (const std::string& protocol : protocols) {
    DPHIST_CHECK_MSG(protocol == "text" || protocol == "binary",
                     "bad --protocols entry");
    for (const std::int64_t connections : connections_list) {
      std::vector<Run> samples;
      for (std::int64_t repeat = 0; repeat < std::max<std::int64_t>(
               repeats, 1); ++repeat) {
      // A fresh service + manager + listener per configuration, so
      // cache warmth never leaks between runs.
      QueryServiceOptions service_options;
      service_options.cache_capacity = cache_capacity;
      QueryService service(service_options);
      runtime::EpochManagerOptions manager_options;
      manager_options.base.epsilon = epsilon;
      manager_options.base.strategy = strategy.value();
      runtime::EpochManager manager(&service, data, manager_options, seed);
      DPHIST_CHECK_MSG(manager.PublishInitial().ok(),
                       "initial publish failed");
      runtime::TransportOptions transport;
      transport.port = 0;
      transport.max_sessions = connections;
      transport.backlog = static_cast<int>(std::max<std::int64_t>(
          connections, 128));
      transport.workers = static_cast<int>(workers);
      runtime::SocketServer server(service, manager, transport);
      DPHIST_CHECK_MSG(server.Start().ok(), "listener failed to start");

      // Equal total work per configuration (measure * 4 batches spread
      // over the in-flight lanes, floor 8 rounds each): every run
      // measures a comparable wall-clock window, so the
      // single-connection number is not a shorter — and noisier —
      // sample than the wide ones.
      const std::int64_t rounds = std::max<std::int64_t>(
          measure * 4 / (connections * pipeline), 8);
      const std::int64_t warmup_rounds = std::clamp<std::int64_t>(
          warmup * 4 / connections, 2, warmup);
      const std::int64_t threads =
          std::min<std::int64_t>(connections, client_threads);
      StartGate gate(static_cast<int>(threads));

      std::vector<ThreadResult> results(static_cast<std::size_t>(threads));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (std::int64_t t = 0; t < threads; ++t) {
        // Spread the remainder over the first few threads.
        const std::int64_t share =
            connections / threads + (t < connections % threads ? 1 : 0);
        const std::uint64_t thread_seed =
            seed + 100 + static_cast<std::uint64_t>(t);
        pool.emplace_back([&, t, share, thread_seed] {
          results[static_cast<std::size_t>(t)] =
              protocol == "binary"
                  ? RunBinaryThread(&gate, server.port(), share, n, batch,
                                    pipeline, warmup_rounds, rounds,
                                    thread_seed)
                  : RunTextThread(&gate, server.port(), share, n, batch,
                                  pipeline, warmup_rounds, rounds,
                                  thread_seed);
        });
      }
      for (std::thread& thread : pool) thread.join();
      server.WaitUntilStopped();
      const runtime::SocketServer::Stats stats = server.stats();
      DPHIST_CHECK_MSG(stats.session_errors == 0, "session errors");
      DPHIST_CHECK_MSG(stats.write_errors == 0, "write errors");

      Run run{protocol, connections, 0.0, 0.0, 0.0, 0};
      for (const ThreadResult& result : results) {
        DPHIST_CHECK_MSG(result.ok, "client thread failed");
        run.seconds = std::max(run.seconds, result.seconds);
        run.queries += result.queries;
      }
      run.qps = static_cast<double>(run.queries) / run.seconds;
      run.per_batch_us = static_cast<double>(batch) * 1e6 / run.qps;
      samples.push_back(run);
      }
      // Median sample by qps.
      std::sort(samples.begin(), samples.end(),
                [](const Run& a, const Run& b) { return a.qps < b.qps; });
      const Run& run = samples[samples.size() / 2];
      runs.push_back(run);
      std::fprintf(
          stderr,
          "%s connections=%lld: %llu queries in %.3fs -> %.4g q/s "
          "(%.3g us/batch)\n",
          protocol.c_str(), static_cast<long long>(run.connections),
          static_cast<unsigned long long>(run.queries), run.seconds,
          run.qps, run.per_batch_us);
    }
  }

  // Per-protocol endpoints for the summary block.
  auto find_run = [&](const std::string& protocol,
                      std::int64_t connections) -> const Run* {
    for (const Run& run : runs) {
      if (run.protocol == protocol && run.connections == connections) {
        return &run;
      }
    }
    return nullptr;
  };
  const std::int64_t min_connections =
      *std::min_element(connections_list.begin(), connections_list.end());
  const std::int64_t max_connections =
      *std::max_element(connections_list.begin(), connections_list.end());
  // The headline protocol: binary when it ran, text otherwise.
  const std::string headline =
      find_run("binary", min_connections) != nullptr ? "binary" : "text";
  const Run* head_min = find_run(headline, min_connections);
  const Run* head_max = find_run(headline, max_connections);
  DPHIST_CHECK_MSG(head_min != nullptr && head_max != nullptr,
                   "sweep produced no runs");

  std::printf("{\n");
  std::printf("  \"benchmark\": \"socket_serve\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"transport\": \"worker_pool\",\n");
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"strategy\": \"%s\",\n",
              StrategyKindName(strategy.value()));
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"batch\": %lld,\n", static_cast<long long>(batch));
  std::printf("  \"pipeline_depth\": %lld,\n",
              static_cast<long long>(pipeline));
  std::printf("  \"measure_batches_per_client\": %lld,\n",
              static_cast<long long>(measure));
  std::printf("  \"cache_capacity\": %lld,\n",
              static_cast<long long>(cache_capacity));
  std::printf("  \"client_threads\": %lld,\n",
              static_cast<long long>(client_threads));
  std::printf("  \"repeats_median_of\": %lld,\n",
              static_cast<long long>(repeats));
  std::printf("  \"server_workers\": %lld,\n",
              static_cast<long long>(workers));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf(
        "    {\"protocol\": \"%s\", \"connections\": %lld, "
        "\"aggregate_qps\": %.6g, \"per_batch_us\": %.6g, "
        "\"seconds\": %.6g, \"queries\": %llu}%s\n",
        runs[i].protocol.c_str(),
        static_cast<long long>(runs[i].connections), runs[i].qps,
        runs[i].per_batch_us, runs[i].seconds,
        static_cast<unsigned long long>(runs[i].queries),
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n");
  // PR 5's blocking thread-per-connection transport, measured on this
  // same 1-core container with the same flags (text protocol, batch 64)
  // before the worker-pool rewrite — kept so the transition stays
  // visible next to the current numbers.
  std::printf("  \"baseline_thread_per_connection\": {\n");
  std::printf("    \"note\": \"PR 5 blocking transport, text protocol\",\n");
  std::printf("    \"runs\": [\n");
  std::printf(
      "      {\"connections\": 1, \"aggregate_qps\": 764797},\n");
  std::printf(
      "      {\"connections\": 4, \"aggregate_qps\": 745681}\n");
  std::printf("    ],\n");
  std::printf("    \"scaling_max_over_min\": 0.975\n");
  std::printf("  },\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"headline_protocol\": \"%s\",\n", headline.c_str());
  std::printf("    \"min_connections\": %lld,\n",
              static_cast<long long>(min_connections));
  std::printf("    \"max_connections\": %lld,\n",
              static_cast<long long>(max_connections));
  std::printf("    \"qps_at_min_connections\": %.6g,\n", head_min->qps);
  std::printf("    \"qps_at_max_connections\": %.6g,\n", head_max->qps);
  std::printf("    \"scaling_max_over_min\": %.4g",
              head_max->qps / head_min->qps);
  if (const Run* head_128 = find_run(headline, 128);
      head_128 != nullptr && max_connections != 128) {
    std::printf(",\n    \"qps_at_128_connections\": %.6g,\n",
                head_128->qps);
    std::printf("    \"scaling_128_over_min\": %.4g",
                head_128->qps / head_min->qps);
  }
  const Run* text_min = find_run("text", min_connections);
  const Run* binary_min = find_run("binary", min_connections);
  if (text_min != nullptr && binary_min != nullptr) {
    std::printf(",\n");
    std::printf("    \"text_per_batch_us\": %.6g,\n",
                text_min->per_batch_us);
    std::printf("    \"binary_per_batch_us\": %.6g,\n",
                binary_min->per_batch_us);
    // > 1 means the binary protocol answers a batch faster than text.
    std::printf("    \"binary_speedup_per_batch\": %.4g\n",
                text_min->per_batch_us / binary_min->per_batch_us);
  } else {
    std::printf("\n");
  }
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
