// Experiment E7 — Theorem 4(iv)'s witness query.
//
// For q = "all leaves except the two extremes", the paper proves
//   error(H-bar_q) <= 3 / (2(ell-1)(k-1) - k) * error(H~_q),
// e.g. a 9.33x advantage at ell = 16, k = 2. This bench sweeps tree
// heights, measures both errors on the witness query, and compares the
// measured ratio against the bound. It also verifies the error model of
// H~ (decomposition size x per-count noise variance).

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "estimators/universal.h"
#include "experiments/report.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", 1.0);
  const std::int64_t trials = flags.GetInt("trials", 400, "DPHIST_TRIALS");

  PrintBanner(std::cout,
              "Theorem 4(iv): witness query error(H-bar)/error(H~)");
  std::printf("k=2, eps=%s, %lld trials per height\n\n",
              FormatFixed(eps).c_str(), static_cast<long long>(trials));

  TablePrinter table({"height ell", "n", "#subtrees(H~)", "error(H~)",
                      "error(H~) theory", "error(H-bar)", "measured ratio",
                      "bound 3/(2(ell-1)-2)"});
  bool bound_holds_everywhere = true;
  for (std::int64_t height = 5; height <= 14; ++height) {
    std::int64_t n = std::int64_t{1} << (height - 1);
    Histogram data = Histogram::FromCounts(
        std::vector<std::int64_t>(static_cast<std::size_t>(n), 1));

    UniversalOptions options;
    options.epsilon = eps;
    options.round_to_nonnegative_integers = false;
    options.prune_nonpositive_subtrees = false;

    HierarchicalQuery query(n, 2);
    LaplaceMechanism mechanism(eps);
    Interval witness(1, n - 2);
    double truth = data.Count(witness);

    Rng rng(static_cast<std::uint64_t>(height));
    RunningStat err_ht, err_hb;
    for (std::int64_t t = 0; t < trials; ++t) {
      std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
      HTildeEstimator ht(n, options, noisy);
      HBarEstimator hb(n, options, noisy);
      double dt = ht.RangeCount(witness) - truth;
      double db = hb.RangeCount(witness) - truth;
      err_ht.Add(dt * dt);
      err_hb.Add(db * db);
    }

    double ell = static_cast<double>(height);
    double subtrees = 2.0 * (ell - 1.0) - 2.0;
    double theory_ht = subtrees * 2.0 * ell * ell / (eps * eps);
    double bound = 3.0 / subtrees;
    double ratio = err_hb.Mean() / err_ht.Mean();
    // Statistical slack: the ratio of two sample means over `trials`
    // draws fluctuates by a few percent.
    if (ratio > bound * 1.3) bound_holds_everywhere = false;
    table.AddRow({std::to_string(height), std::to_string(n),
                  FormatFixed(subtrees), FormatScientific(err_ht.Mean()),
                  FormatScientific(theory_ht),
                  FormatScientific(err_hb.Mean()), FormatFixed(ratio),
                  FormatFixed(bound)});
    // Sanity: the witness decomposition really has 2(ell-1)-2 subtrees.
    if (static_cast<double>(DecomposeRange(query.tree(), witness).size()) !=
        subtrees) {
      std::printf("unexpected decomposition size at height %lld!\n",
                  static_cast<long long>(height));
      return 1;
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf(
      "  paper: error(H-bar_q) <= 3/(2(ell-1)(k-1)-k) * error(H~_q); the "
      "advantage is 9.33x at ell=16\n");
  std::printf("  measured: bound satisfied at every height (30%% stat. "
              "slack): %s\n",
              bound_holds_everywhere ? "YES" : "NO");
  return 0;
}
