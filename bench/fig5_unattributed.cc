// Experiment E2 — Figure 5: unattributed histograms.
//
// Reproduces the paper's Fig. 5: average squared error of the estimators
// S~ (noisy answer), S~r (sort + round), and S-bar (constrained
// inference), on the three datasets at eps in {1.0, 0.1, 0.01}.
// Paper protocol: 50 random samples per cell. Override with --trials or
// DPHIST_TRIALS.
//
// Paper claim checked: "the proposed approach reduces the error by at
// least an order of magnitude across all datasets and settings of eps."

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"
#include "experiments/report.h"
#include "experiments/runner.h"

namespace {

using namespace dphist;  // NOLINT(build/namespaces)

struct DatasetSpec {
  std::string name;
  Histogram data;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  UnattributedExperimentConfig config;
  config.trials = flags.GetInt("trials", 50, "DPHIST_TRIALS");
  config.threads = flags.GetInt("threads", 0, "DPHIST_THREADS");
  std::int64_t scale = flags.GetInt("scale", 1, "DPHIST_SCALE");

  // The paper's datasets (Section 5.1): NetTrace (~65K external hosts),
  // Social Network (~11K nodes), Search Logs (top 20K keywords). --scale N
  // divides domain sizes by N for quick runs.
  NetTraceConfig nettrace;
  nettrace.num_hosts = 65536 / scale;
  nettrace.num_connections = 300000 / scale;
  SocialNetworkConfig social;
  social.num_nodes = 11000 / scale;
  KeywordFrequencyConfig keywords;
  keywords.num_keywords = 20000 / scale;
  keywords.total_searches = 2000000 / scale;

  std::vector<DatasetSpec> datasets;
  datasets.push_back({"SocialNetwork", GenerateSocialNetworkDegrees(social)});
  datasets.push_back({"NetTrace", GenerateNetTrace(nettrace)});
  datasets.push_back({"SearchLogs", GenerateKeywordFrequencies(keywords)});

  PrintBanner(std::cout, "Figure 5: unattributed histograms (S~, S~r, S-bar)");
  std::printf("trials per cell: %lld\n\n",
              static_cast<long long>(config.trials));

  TablePrinter table({"dataset", "n", "eps", "estimator",
                      "total sq. error", "per-count error"});
  bool order_of_magnitude_everywhere = true;
  std::vector<std::string> verdicts;
  for (const DatasetSpec& dataset : datasets) {
    std::vector<UnattributedCell> cells =
        RunUnattributedExperiment(dataset.data, config);
    // Cells arrive grouped per epsilon in estimator order S~, S~r, S-bar.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const UnattributedCell& cell = cells[i];
      table.AddRow({dataset.name, std::to_string(dataset.data.size()),
                    FormatFixed(cell.epsilon),
                    UnattributedEstimatorName(cell.estimator),
                    FormatScientific(cell.total_squared_error),
                    FormatScientific(cell.per_count_error)});
      if (cell.estimator == UnattributedEstimator::kSBar) {
        const UnattributedCell& baseline = cells[i - 2];  // S~ of same eps
        double improvement =
            baseline.total_squared_error / cell.total_squared_error;
        if (improvement < 10.0) order_of_magnitude_everywhere = false;
        verdicts.push_back(dataset.name + " eps=" +
                           FormatFixed(cell.epsilon) + ": S-bar improves " +
                           FormatRatio(improvement) + " over S~");
      }
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  for (const std::string& v : verdicts) std::cout << "  " << v << "\n";
  std::cout << "paper: error reduced by at least an order of magnitude "
               "across all datasets and eps\n";
  std::cout << "measured: improvement >= 10x in every cell: "
            << (order_of_magnitude_everywhere ? "YES" : "NO") << "\n";
  return 0;
}
