// Experiment E11 — the Section 6 related-work claim: the Haar-wavelet
// technique of Xiao et al. "has error equivalent to a binary H query, as
// shown by Li et al.". We measure both estimators' range-query error
// across range sizes and privacy levels on the NetTrace substitute and
// report the ratio, plus H-bar to show constrained inference's edge over
// both.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/nettrace.h"
#include "estimators/universal.h"
#include "estimators/wavelet.h"
#include "experiments/report.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t trials = flags.GetInt("trials", 30, "DPHIST_TRIALS");
  const std::int64_t ranges_per_size =
      flags.GetInt("ranges", 200, "DPHIST_RANGES");
  std::int64_t scale = flags.GetInt("scale", 4, "DPHIST_SCALE");

  NetTraceConfig nettrace;
  nettrace.num_hosts = 65536 / scale;
  nettrace.num_connections = 300000 / scale;
  Histogram data = GenerateNetTrace(nettrace);

  PrintBanner(std::cout,
              "Section 6: wavelet (Xiao et al.) vs binary H~ vs H-bar");
  std::printf("n=%lld trials=%lld ranges/size=%lld\n\n",
              static_cast<long long>(data.size()),
              static_cast<long long>(trials),
              static_cast<long long>(ranges_per_size));

  TablePrinter table(
      {"eps", "range size", "Wavelet", "H~", "H-bar", "Wavelet/H~"});
  double worst_ratio = 0.0, best_ratio = 1e9;
  for (double eps : {1.0, 0.1}) {
    UniversalOptions h_options;
    h_options.epsilon = eps;
    h_options.round_to_nonnegative_integers = false;
    h_options.prune_nonpositive_subtrees = false;
    WaveletOptions w_options;
    w_options.epsilon = eps;
    w_options.round_to_nonnegative_integers = false;

    for (std::int64_t size : Fig6RangeSizes(data.size())) {
      Rng rng(static_cast<std::uint64_t>(size) * 7 + 1);
      RunningStat err_w, err_ht, err_hb;
      for (std::int64_t t = 0; t < trials; ++t) {
        WaveletEstimator wavelet(data, w_options, &rng);
        HTildeEstimator h_tilde(data, h_options, &rng);
        HBarEstimator h_bar(data, h_options, &rng);
        std::vector<Interval> ranges =
            RandomRangesOfSize(data.size(), size, ranges_per_size, &rng);
        for (const Interval& q : ranges) {
          double truth = data.Count(q);
          double dw = wavelet.RangeCount(q) - truth;
          double dt = h_tilde.RangeCount(q) - truth;
          double db = h_bar.RangeCount(q) - truth;
          err_w.Add(dw * dw);
          err_ht.Add(dt * dt);
          err_hb.Add(db * db);
        }
      }
      double ratio = err_w.Mean() / err_ht.Mean();
      worst_ratio = std::max(worst_ratio, ratio);
      best_ratio = std::min(best_ratio, ratio);
      table.AddRow({FormatFixed(eps), std::to_string(size),
                    FormatScientific(err_w.Mean()),
                    FormatScientific(err_ht.Mean()),
                    FormatScientific(err_hb.Mean()), FormatFixed(ratio)});
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf(
      "  paper (via Li et al.): wavelet error is equivalent to a binary H "
      "query\n  measured: wavelet/H~ error ratio stays within [%.2f, %.2f] "
      "across sizes and eps -> same error class: %s\n",
      best_ratio, worst_ratio,
      (best_ratio > 0.1 && worst_ratio < 10.0) ? "YES" : "NO");
  std::printf(
      "  constrained inference (H-bar) beats both raw strategies at every "
      "point, which is the paper's core message.\n");
  return 0;
}
