// Experiment E12 — Appendix B future work: multi-dimensional range
// queries. The 1-D story replayed in 2-D with a quadtree: per-cell noise
// (L2d~) wins tiny rectangles, the quadtree (Q2d~) wins large ones, and
// constrained inference (Q2d-bar, Theorem 3 on the k=4 tree) improves the
// quadtree uniformly.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/spatial.h"
#include "estimators/universal2d.h"
#include "experiments/report.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t trials = flags.GetInt("trials", 20, "DPHIST_TRIALS");
  const std::int64_t rects_per_size =
      flags.GetInt("ranges", 100, "DPHIST_RANGES");

  SpatialConfig spatial;
  spatial.side = 256;
  spatial.num_points = 200000;
  GridHistogram data = GenerateSpatialBlobs(spatial);

  PrintBanner(std::cout,
              "Appendix B future work: 2-D universal histograms (quadtree)");
  std::printf("grid %lldx%lld, %.0f points, trials=%lld rects/size=%lld\n\n",
              static_cast<long long>(data.rows()),
              static_cast<long long>(data.cols()), data.Total(),
              static_cast<long long>(trials),
              static_cast<long long>(rects_per_size));

  TablePrinter table({"eps", "square side", "L2d~", "Q2d~", "Q2d-bar",
                      "Q2d-bar/Q2d~"});
  bool inference_uniform_win = true;
  std::int64_t crossover_side = -1;
  for (double eps : {1.0, 0.1}) {
    for (std::int64_t side : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      Universal2dOptions options;
      options.epsilon = eps;
      options.round_to_nonnegative_integers = false;
      options.prune_nonpositive_subtrees = false;

      Rng rng(static_cast<std::uint64_t>(side) * 131 + 7);
      RunningStat err_l, err_qt, err_qb;
      for (std::int64_t t = 0; t < trials; ++t) {
        L2dEstimator l2d(data, options, &rng);
        Quad2dTildeEstimator q_tilde(data, options, &rng);
        Quad2dBarEstimator q_bar(data, options, &rng);
        for (std::int64_t q = 0; q < rects_per_size; ++q) {
          std::int64_t r0 =
              side == data.rows() ? 0 : rng.NextInt(0, data.rows() - side);
          std::int64_t c0 =
              side == data.cols() ? 0 : rng.NextInt(0, data.cols() - side);
          Rect rect(r0, r0 + side - 1, c0, c0 + side - 1);
          double truth = data.Count(rect);
          double dl = l2d.RectCount(rect) - truth;
          double dt = q_tilde.RectCount(rect) - truth;
          double db = q_bar.RectCount(rect) - truth;
          err_l.Add(dl * dl);
          err_qt.Add(dt * dt);
          err_qb.Add(db * db);
        }
      }
      if (err_qb.Mean() > err_qt.Mean() * 1.05) inference_uniform_win = false;
      if (eps == 1.0 && crossover_side < 0 &&
          err_qt.Mean() < err_l.Mean()) {
        crossover_side = side;
      }
      table.AddRow({FormatFixed(eps), std::to_string(side),
                    FormatScientific(err_l.Mean()),
                    FormatScientific(err_qt.Mean()),
                    FormatScientific(err_qb.Mean()),
                    FormatFixed(err_qb.Mean() / err_qt.Mean())});
    }
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "findings");
  std::printf("  inference uniformly improves the quadtree: %s "
              "(Theorem 3 carries over to k=4 unchanged)\n",
              inference_uniform_win ? "YES" : "NO");
  if (crossover_side > 0) {
    std::printf("  L2d~/Q2d~ crossover at square side %lld\n",
                static_cast<long long>(crossover_side));
  } else {
    std::printf(
        "  no L2d~/Q2d~ crossover before the full grid: in 2-D a "
        "rectangle decomposes into O(side) quadtree nodes (a perimeter, "
        "not 2 log n), so the hierarchy's advantage shrinks with "
        "dimension — the quantitative reason the paper's 1-D crossover "
        "does not directly transfer, later formalized by Qardaji et "
        "al.'s fanout analysis\n");
  }
  return 0;
}
