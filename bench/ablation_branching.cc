// Experiment E13 — Appendix B future work: "investigate optimizations
// such as higher branching factors".
//
// The trade-off: higher k lowers the tree height ell (sensitivity, so
// less noise per count) but raises the number of subtree counts a range
// needs (up to 2(k-1) per level) and weakens inference (fewer levels to
// average over). We sweep k and report range-query error of H~ and H-bar
// on NetTrace.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/nettrace.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "experiments/report.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t trials = flags.GetInt("trials", 15, "DPHIST_TRIALS");
  const std::int64_t ranges_per_size =
      flags.GetInt("ranges", 150, "DPHIST_RANGES");
  const double eps = flags.GetDouble("epsilon", 0.1);

  NetTraceConfig nettrace;
  nettrace.num_hosts = 16384;
  nettrace.num_connections = 80000;
  Histogram data = GenerateNetTrace(nettrace);

  PrintBanner(std::cout,
              "Appendix B future work: branching factor sweep for H");
  std::printf("n=%lld eps=%s trials=%lld ranges/size=%lld\n\n",
              static_cast<long long>(data.size()), FormatFixed(eps).c_str(),
              static_cast<long long>(trials),
              static_cast<long long>(ranges_per_size));

  TablePrinter table({"k", "height ell", "error H~ (size 64)",
                      "error H~ (size 4096)", "error H-bar (size 64)",
                      "error H-bar (size 4096)"});
  double best_hbar_large = 1e300;
  std::int64_t best_k = 0;
  for (std::int64_t k : {2, 4, 8, 16, 64}) {
    UniversalOptions options;
    options.epsilon = eps;
    options.branching = k;
    options.round_to_nonnegative_integers = false;
    options.prune_nonpositive_subtrees = false;

    Rng rng(static_cast<std::uint64_t>(k) * 17 + 3);
    RunningStat ht_small, ht_large, hb_small, hb_large;
    std::int64_t height = 0;
    for (std::int64_t t = 0; t < trials; ++t) {
      HTildeEstimator h_tilde(data, options, &rng);
      HBarEstimator h_bar(data, options, &rng);
      height = h_bar.tree().height();
      for (std::int64_t size : {std::int64_t{64}, std::int64_t{4096}}) {
        std::vector<Interval> ranges =
            RandomRangesOfSize(data.size(), size, ranges_per_size, &rng);
        for (const Interval& q : ranges) {
          double truth = data.Count(q);
          double dt = h_tilde.RangeCount(q) - truth;
          double db = h_bar.RangeCount(q) - truth;
          (size == 64 ? ht_small : ht_large).Add(dt * dt);
          (size == 64 ? hb_small : hb_large).Add(db * db);
        }
      }
    }
    if (hb_large.Mean() < best_hbar_large) {
      best_hbar_large = hb_large.Mean();
      best_k = k;
    }
    table.AddRow({std::to_string(k), std::to_string(height),
                  FormatScientific(ht_small.Mean()),
                  FormatScientific(ht_large.Mean()),
                  FormatScientific(hb_small.Mean()),
                  FormatScientific(hb_large.Mean())});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "findings");
  std::printf(
      "  best k for H-bar at large ranges on this data: k = %lld\n",
      static_cast<long long>(best_k));
  std::printf(
      "  the sweet spot balances lower sensitivity (higher k) against "
      "more subtree terms per range and weaker inference; k in the 4-16 "
      "band typically beats binary trees, which matches later literature "
      "(e.g. Qardaji et al.'s analysis of hierarchy fanout).\n");
  return 0;
}
