// Parallel Snapshot::Build benchmark, emitting JSON so
// BENCH_snapshot_build.json tracks publish latency across PRs (see
// tools/run_bench.sh).
//
// Protocol: one histogram of n = 2^domain-log2 Zipf counts is published
// repeatedly at each thread count in --threads-list; the recorded
// latency per thread count is the best of --repeats builds (publish
// latency is what an online replanner pays, so the steady-state floor is
// the relevant number). Shard RNG streams are forked in shard order
// before the fan-out, so the release must be bit-identical at every
// thread count — the bench verifies that on a probe workload and
// reports it as `bit_identical` (a false value is a correctness bug,
// not a performance result).
//
// The summary records build latency at 1 thread and at the maximum
// thread count plus their ratio — the acceptance metric for parallel
// builds (>= 3x at 8 threads on an 8-core host; on smaller hosts the
// honestly measured ratio lands near 1x and is reported as such).
//
// Flags (DPHIST_* env equivalents): --domain-log2, --strategy,
// --branching, --epsilon, --shards, --threads-list (comma separated),
// --repeats, --seed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "service/snapshot.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> ParseThreadsList(const std::string& csv) {
  std::vector<int> threads;
  int value = 0;
  bool have_digit = false;
  for (char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
    } else {
      if (have_digit) threads.push_back(value);
      value = 0;
      have_digit = false;
    }
  }
  if (have_digit) threads.push_back(value);
  DPHIST_CHECK_MSG(!threads.empty(), "empty --threads-list");
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 20, "DPHIST_DOMAIN_LOG2");
  const std::int64_t n = std::int64_t{1} << domain_log2;
  const std::string strategy_name =
      flags.GetString("strategy", "hbar", "DPHIST_STRATEGY");
  const std::int64_t branching =
      flags.GetInt("branching", 2, "DPHIST_BRANCHING");
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::int64_t shards = flags.GetInt("shards", 64, "DPHIST_SHARDS");
  const std::vector<int> thread_counts = ParseThreadsList(
      flags.GetString("threads-list", "1,2,4,8", "DPHIST_THREADS_LIST"));
  const std::int64_t repeats = flags.GetInt("repeats", 3, "DPHIST_REPEATS");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");
  DPHIST_CHECK_MSG(strategy.value() != StrategyKind::kAuto,
                   "bench needs a concrete --strategy");

  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  SnapshotOptions options;
  options.epsilon = epsilon;
  options.strategy = strategy.value();
  options.branching = branching;
  options.shards = shards;

  // Probe workload for the bit-identity check.
  Rng probe_rng(13);
  std::vector<Interval> probes;
  probes.reserve(256);
  for (int i = 0; i < 256; ++i) {
    std::int64_t lo = probe_rng.NextInt(0, n - 1);
    probes.emplace_back(lo, probe_rng.NextInt(lo, n - 1));
  }

  struct Row {
    int threads;
    double best_seconds;
  };
  std::vector<Row> rows;
  std::vector<double> reference_answers;
  bool bit_identical = true;
  for (int threads : thread_counts) {
    options.build_threads = threads;
    double best = 0.0;
    std::shared_ptr<const Snapshot> last;
    for (std::int64_t r = 0; r < repeats; ++r) {
      Rng rng(seed + 1);  // same stream every build: identical releases
      const double start = NowSeconds();
      auto built = Snapshot::Build(data, options, /*epoch=*/1, &rng);
      const double elapsed = NowSeconds() - start;
      DPHIST_CHECK_MSG(built.ok(), "build failed");
      last = built.value();
      if (r == 0 || elapsed < best) best = elapsed;
    }
    std::vector<double> answers(probes.size());
    last->RangeCountsInto(probes.data(), probes.size(), answers.data());
    if (reference_answers.empty()) {
      reference_answers = answers;
    } else if (answers != reference_answers) {
      bit_identical = false;  // determinism regression: report, don't hide
    }
    rows.push_back({threads, best});
    std::fprintf(stderr, "%d thread(s): %.3f s/build\n", threads, best);
  }

  // Speedup baseline: the smallest thread count actually run (1 with
  // the default list), so a custom --threads-list can never yield a
  // silently-zero acceptance metric.
  double seconds_at_min = 0.0;
  double seconds_at_max = 0.0;
  int min_threads = 0;
  int max_threads = 0;
  for (const Row& row : rows) {
    if (min_threads == 0 || row.threads < min_threads) {
      min_threads = row.threads;
      seconds_at_min = row.best_seconds;
    }
    if (row.threads >= max_threads) {
      max_threads = row.threads;
      seconds_at_max = row.best_seconds;
    }
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"snapshot_build\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"strategy\": \"%s\",\n",
              StrategyKindName(strategy.value()));
  std::printf("  \"branching\": %lld,\n", static_cast<long long>(branching));
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"shards\": %lld,\n", static_cast<long long>(shards));
  std::printf("  \"repeats\": %lld,\n", static_cast<long long>(repeats));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "    {\"threads\": %d, \"build_seconds\": %.6g}%s\n",
        rows[i].threads, rows[i].best_seconds,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"min_threads\": %d,\n", min_threads);
  std::printf("    \"max_threads\": %d,\n", max_threads);
  std::printf("    \"build_seconds_min_threads\": %.6g,\n", seconds_at_min);
  std::printf("    \"build_seconds_max_threads\": %.6g,\n", seconds_at_max);
  std::printf("    \"speedup_max_over_min\": %.3f\n",
              seconds_at_max > 0.0 ? seconds_at_min / seconds_at_max : 0.0);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
