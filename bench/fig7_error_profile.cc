// Experiment E5 — Figure 7: where along the sorted NetTrace sequence does
// inference help?
//
// The paper plots S(I) (sorted descending) together with the average
// error of S-bar at each position (200 draws, eps = 1.0) against the
// constant expected error of S~ (= 2/eps^2). The profile shows large
// error where counts are unique (the head), error collapsing to ~0 in the
// middle of long uniform runs, and residual error at run boundaries.
// We reproduce the same profile and report it as run-position aggregates
// (the 65K-point curve itself is written to CSV with --csv=PATH).

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/statistics.h"
#include "data/csv.h"
#include "data/nettrace.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double epsilon = flags.GetDouble("epsilon", 1.0);
  const std::int64_t trials = flags.GetInt("trials", 200, "DPHIST_TRIALS");
  std::int64_t scale = flags.GetInt("scale", 1, "DPHIST_SCALE");
  std::string csv_path = flags.GetString("csv", "");

  NetTraceConfig nettrace;
  nettrace.num_hosts = 65536 / scale;
  nettrace.num_connections = 300000 / scale;
  Histogram data = GenerateNetTrace(nettrace);

  PrintBanner(std::cout, "Figure 7: per-position error of S-bar vs S~");
  std::printf("NetTrace n=%lld, eps=%s, %lld trials\n\n",
              static_cast<long long>(data.size()),
              FormatFixed(epsilon).c_str(), static_cast<long long>(trials));

  ErrorProfile profile = RunErrorProfile(data, epsilon, trials, 7);
  const std::size_t n = profile.true_sorted_descending.size();

  // Aggregate by uniform runs of the true sequence: head (unique counts)
  // vs run interiors vs run boundaries.
  RunningStat head_err, interior_err, boundary_err;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && profile.true_sorted_descending[j + 1] ==
                            profile.true_sorted_descending[i]) {
      ++j;
    }
    std::size_t run = j - i + 1;
    for (std::size_t p = i; p <= j; ++p) {
      if (run <= 3) {
        head_err.Add(profile.sbar_error[p]);
      } else if (p == i || p == j) {
        boundary_err.Add(profile.sbar_error[p]);
      } else {
        interior_err.Add(profile.sbar_error[p]);
      }
    }
    i = j + 1;
  }

  TablePrinter table({"segment", "positions", "mean S-bar error",
                      "S~ error (const)"});
  table.AddRow({"unique/short runs (<=3)", std::to_string(head_err.count()),
                FormatScientific(head_err.Mean()),
                FormatFixed(profile.stilde_error)});
  table.AddRow({"run boundaries", std::to_string(boundary_err.count()),
                FormatScientific(boundary_err.Mean()),
                FormatFixed(profile.stilde_error)});
  table.AddRow({"run interiors", std::to_string(interior_err.count()),
                FormatScientific(interior_err.Mean()),
                FormatFixed(profile.stilde_error)});
  table.Print(std::cout);

  // Decile view of the whole profile (descending rank order).
  PrintBanner(std::cout, "decile profile (descending sorted order)");
  TablePrinter deciles({"decile", "mean true count", "mean S-bar error"});
  for (int d = 0; d < 10; ++d) {
    std::size_t lo = n * static_cast<std::size_t>(d) / 10;
    std::size_t hi = n * static_cast<std::size_t>(d + 1) / 10;
    RunningStat count_stat, err_stat;
    for (std::size_t p = lo; p < hi; ++p) {
      count_stat.Add(profile.true_sorted_descending[p]);
      err_stat.Add(profile.sbar_error[p]);
    }
    deciles.AddRow({std::to_string(d + 1), FormatFixed(count_stat.Mean()),
                    FormatScientific(err_stat.Mean())});
  }
  deciles.Print(std::cout);

  if (!csv_path.empty()) {
    for (std::size_t p = 0; p < n; ++p) {
      (void)AppendCsvRow(
          csv_path, "index,true_count,sbar_error,stilde_error",
          {std::to_string(p),
           FormatFixed(profile.true_sorted_descending[p]),
           FormatScientific(profile.sbar_error[p]),
           FormatFixed(profile.stilde_error)});
    }
    std::printf("\nfull profile written to %s\n", csv_path.c_str());
  }

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf(
      "  paper: error reduced to ~zero inside uniform runs, residual "
      "error at run boundaries, S~-level error at unique counts\n");
  std::printf(
      "  measured: interiors %s (vs S~ %s), boundaries %s, unique %s\n",
      FormatScientific(interior_err.Mean()).c_str(),
      FormatFixed(profile.stilde_error).c_str(),
      FormatScientific(boundary_err.Mean()).c_str(),
      FormatScientific(head_err.Mean()).c_str());
  std::printf("  interiors << S~: %s\n",
              interior_err.Mean() < 0.2 * profile.stilde_error ? "YES" : "NO");
  return 0;
}
