// Experiment E3 — Figure 6 (top row): universal histograms on NetTrace.
//
// Average squared error of range queries of size 2^i (random location)
// for the estimators L~, H~, and H-bar at eps in {1.0, 0.1, 0.01}.
// Paper protocol: 50 noise samples x 1000 ranges per size. Override with
// --trials / --ranges or DPHIST_TRIALS / DPHIST_RANGES.
//
// Paper claims checked:
//   - error(L~) grows linearly with range size; H~ grows slowly;
//   - L~ and H~ cross over (paper: near range size ~2000);
//   - H-bar's error is uniformly lower than H~'s;
//   - at the largest ranges L~'s error is 4-8x that of H~.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common/flags.h"
#include "data/nettrace.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  UniversalExperimentConfig config;
  config.trials = flags.GetInt("trials", 50, "DPHIST_TRIALS");
  config.ranges_per_size = flags.GetInt("ranges", 1000, "DPHIST_RANGES");
  config.threads = flags.GetInt("threads", 0, "DPHIST_THREADS");
  std::int64_t scale = flags.GetInt("scale", 1, "DPHIST_SCALE");

  NetTraceConfig nettrace;
  nettrace.num_hosts = 65536 / scale;
  nettrace.num_connections = 300000 / scale;
  Histogram data = GenerateNetTrace(nettrace);

  PrintBanner(std::cout,
              "Figure 6 (top): universal histograms on NetTrace");
  std::printf("n=%lld trials=%lld ranges/size=%lld\n\n",
              static_cast<long long>(data.size()),
              static_cast<long long>(config.trials),
              static_cast<long long>(config.ranges_per_size));

  std::vector<UniversalCell> cells = RunUniversalExperiment(data, config);

  TablePrinter table({"eps", "range size", "L~", "H~", "H-bar"});
  // cell order: for each eps, for each size: L~, H~, H-bar.
  std::map<std::pair<double, std::int64_t>, std::map<std::string, double>>
      grid;
  for (const UniversalCell& cell : cells) {
    grid[{cell.epsilon, cell.range_size}][cell.estimator] =
        cell.avg_squared_error;
  }
  for (const auto& [key, row] : grid) {
    table.AddRow({FormatFixed(key.first), std::to_string(key.second),
                  FormatScientific(row.at("L~")),
                  FormatScientific(row.at("H~")),
                  FormatScientific(row.at("H-bar"))});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  for (double eps : config.epsilons) {
    // Crossover: smallest size where H~ < L~.
    std::int64_t crossover = -1;
    double largest_ratio = 0.0;
    std::int64_t largest_size = 0;
    int hbar_wins = 0, points = 0;
    for (const auto& [key, row] : grid) {
      if (key.first != eps) continue;
      if (crossover < 0 && row.at("H~") < row.at("L~")) crossover = key.second;
      if (key.second > largest_size) {
        largest_size = key.second;
        largest_ratio = row.at("L~") / row.at("H~");
      }
      ++points;
      if (row.at("H-bar") <= row.at("H~") * 1.02) ++hbar_wins;
    }
    std::printf(
        "  eps=%s: L~/H~ crossover at range %lld (paper ~2000); "
        "L~/H~ at largest range %.1fx (paper 4-8x); "
        "H-bar <= H~ at %d/%d points (paper: uniformly lower)\n",
        FormatFixed(eps).c_str(), static_cast<long long>(crossover),
        largest_ratio, hbar_wins, points);
  }
  return 0;
}
