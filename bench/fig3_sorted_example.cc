// Experiment E1 — Figure 3: one illustrative draw of constrained
// inference on a sorted sequence.
//
// The paper's figure shows a 25-element sequence S(I) whose first twenty
// counts are uniform and whose last five are distinct: the noisy draw s~
// scatters around the truth, while the inferred s-bar hugs S(I) over the
// uniform run (inference averages the noise away) and reverts to s~ at
// the unique counts (s-bar[21] = s~[21]).

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "estimators/unattributed.h"
#include "experiments/report.h"
#include "inference/isotonic.h"

using namespace dphist;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double epsilon = flags.GetDouble("epsilon", 1.0);
  const std::int64_t trials = flags.GetInt("trials", 50, "DPHIST_TRIALS");

  // S(I): twenty counts of 10 followed by five distinct counts, the shape
  // Figure 3 plots.
  std::vector<std::int64_t> counts(25, 10);
  counts[20] = 13;
  counts[21] = 15;
  counts[22] = 17;
  counts[23] = 19;
  counts[24] = 21;
  Histogram data = Histogram::FromCounts(counts);
  std::vector<double> truth = TrueSortedCounts(data);

  PrintBanner(std::cout, "Figure 3: s-bar vs s~ on a mostly-uniform S(I)");
  std::printf("eps=%s; one illustrative draw, then %lld-trial averages\n\n",
              FormatFixed(epsilon).c_str(), static_cast<long long>(trials));

  Rng rng(7);
  std::vector<double> noisy = SampleNoisySortedCounts(data, epsilon, &rng);
  std::vector<double> fitted = IsotonicRegression(noisy);

  TablePrinter table({"index", "S(I)", "s~ (noisy)", "s-bar (inferred)"});
  for (std::size_t i = 0; i < truth.size(); ++i) {
    table.AddRow({std::to_string(i + 1), FormatFixed(truth[i]),
                  FormatFixed(noisy[i]), FormatFixed(fitted[i])});
  }
  table.Print(std::cout);

  // Average per-position error over many draws, split into the uniform
  // run and the distinct tail.
  RunningStat uniform_err, distinct_err, noisy_err;
  Rng master(11);
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng trial = master.Fork();
    std::vector<double> s = SampleNoisySortedCounts(data, epsilon, &trial);
    std::vector<double> f = IsotonicRegression(s);
    for (std::size_t i = 0; i < truth.size(); ++i) {
      double d = f[i] - truth[i];
      (i < 20 ? uniform_err : distinct_err).Add(d * d);
      double dn = s[i] - truth[i];
      noisy_err.Add(dn * dn);
    }
  }
  PrintBanner(std::cout, "paper-vs-measured");
  std::printf("  per-count error of s~ (theory 2/eps^2 = %s): %s\n",
              FormatFixed(2.0 / (epsilon * epsilon)).c_str(),
              FormatFixed(noisy_err.Mean()).c_str());
  std::printf("  s-bar error inside the uniform run: %s\n",
              FormatFixed(uniform_err.Mean()).c_str());
  std::printf("  s-bar error at the distinct tail:   %s\n",
              FormatFixed(distinct_err.Mean()).c_str());
  std::printf(
      "  paper: inference averages noise away over uniform runs but not "
      "at unique counts\n  measured: uniform-run error %s the noisy "
      "baseline; tail error comparable to baseline\n",
      uniform_err.Mean() < 0.5 * noisy_err.Mean() ? "well below"
                                                  : "NOT below (unexpected)");
  return 0;
}
