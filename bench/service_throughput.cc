// Multi-threaded QueryService throughput benchmark, emitting JSON so
// BENCH_service.json tracks the serving layer across PRs (see
// tools/run_bench.sh).
//
// Protocol: T client threads replay the same stream of query phases —
// each phase is a fresh batch of distinct random ranges, shared by every
// client, modeling concurrent traffic over the same popular queries
// (hot-set traffic is what a serving cache exists for). Clients
// rendezvous at a barrier between phases so "the same phase" really is
// concurrent; within a phase the shared LRU answer cache dedups the
// estimator work: the first client to reach a range pays the subtree
// walk, the rest pay a hash lookup. Aggregate queries/sec is the total
// number of answers produced divided by wall time.
//
// Two configurations per thread count:
//   cached:   shared AnswerCache sized to hold the hot set, so aggregate
//             throughput scales with clients even on one core (dedup
//             turns T-1 of every T identical queries into hash hits);
//   uncached: every client pays the full estimator walk — on a
//             single-core host this stays flat (or dips) as threads are
//             added, which is reported honestly alongside.
//
// The summary records cached aggregate qps at 1 and at max threads plus
// their ratio — the acceptance metric for the serving layer.
//
// Flags (DPHIST_* env equivalents): --domain-log2, --strategy,
// --branching, --epsilon, --queries (per phase), --phases,
// --threads-list (comma separated), --cache (entries), --lock-shards,
// --seed.

#include <barrier>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "service/query_service.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double aggregate_qps;
  double hit_rate;
};

/// T clients replay `phases` against one service; returns aggregate
/// throughput across all clients and the cache hit rate of the run.
RunResult RunClients(const QueryService& service, int threads,
                     const std::vector<std::vector<Interval>>& phases) {
  AnswerCache::Stats before = service.cache_stats();
  std::barrier<> barrier(threads);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  const double start = NowSeconds();
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&] {
      std::vector<double> answers;
      for (const std::vector<Interval>& phase : phases) {
        answers.resize(phase.size());
        barrier.arrive_and_wait();
        service.QueryBatch(phase.data(), phase.size(), answers.data());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double elapsed = NowSeconds() - start;

  std::size_t total_queries = 0;
  for (const std::vector<Interval>& phase : phases) {
    total_queries += phase.size() * static_cast<std::size_t>(threads);
  }
  AnswerCache::Stats after = service.cache_stats();
  const std::uint64_t lookups =
      (after.hits + after.misses) - (before.hits + before.misses);
  RunResult result;
  result.aggregate_qps = static_cast<double>(total_queries) / elapsed;
  result.hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(after.hits - before.hits) /
                         static_cast<double>(lookups);
  return result;
}

struct ResultRow {
  int threads;
  bool cached;
  double aggregate_qps;
  double hit_rate;
};

std::vector<int> ParseThreadsList(const std::string& csv) {
  std::vector<int> threads;
  int value = 0;
  bool have_digit = false;
  for (char c : csv) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
    } else {
      if (have_digit) threads.push_back(value);
      value = 0;
      have_digit = false;
    }
  }
  if (have_digit) threads.push_back(value);
  DPHIST_CHECK_MSG(!threads.empty(), "empty --threads-list");
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::int64_t domain_log2 =
      flags.GetInt("domain-log2", 20, "DPHIST_DOMAIN_LOG2");
  const std::int64_t n = std::int64_t{1} << domain_log2;
  const std::string strategy_name =
      flags.GetString("strategy", "htilde", "DPHIST_STRATEGY");
  const std::int64_t branching =
      flags.GetInt("branching", 2, "DPHIST_BRANCHING");
  const double epsilon = flags.GetDouble("epsilon", 0.1, "DPHIST_EPSILON");
  const std::int64_t queries_per_phase =
      flags.GetInt("queries", 4096, "DPHIST_QUERIES");
  const std::int64_t phase_count = flags.GetInt("phases", 24, "DPHIST_PHASES");
  const std::vector<int> thread_counts = ParseThreadsList(
      flags.GetString("threads-list", "1,2,4,8", "DPHIST_THREADS_LIST"));
  const std::int64_t cache_capacity =
      flags.GetInt("cache", 8 * queries_per_phase, "DPHIST_CACHE");
  const std::int64_t lock_shards =
      flags.GetInt("lock-shards", 64, "DPHIST_LOCK_SHARDS");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  auto strategy = ParseStrategyKind(strategy_name);
  DPHIST_CHECK_MSG(strategy.ok(), "bad --strategy");

  Rng data_rng(seed);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &data_rng));

  SnapshotOptions snapshot_options;
  snapshot_options.epsilon = epsilon;
  snapshot_options.strategy = strategy.value();
  snapshot_options.branching = branching;

  // Pre-generated phase workloads: random location, mixed sizes, shared
  // verbatim by every client thread of a run.
  Rng workload_rng(13);
  std::vector<std::vector<Interval>> phases(
      static_cast<std::size_t>(phase_count));
  for (auto& phase : phases) {
    phase.reserve(static_cast<std::size_t>(queries_per_phase));
    for (std::int64_t i = 0; i < queries_per_phase; ++i) {
      std::int64_t lo = workload_rng.NextInt(0, n - 1);
      phase.emplace_back(lo, workload_rng.NextInt(lo, n - 1));
    }
  }

  std::vector<ResultRow> rows;
  // Speedup baseline: the smallest thread count actually run (1 with the
  // default list), so a custom --threads-list can never yield a silently
  // zero acceptance metric.
  double qps_base_cached = 0.0;
  double qps_max_cached = 0.0;
  int base_threads = 0;
  int max_threads = 0;
  for (bool cached : {false, true}) {
    for (int threads : thread_counts) {
      // Fresh service per run: empty cache, then one publish.
      QueryServiceOptions service_options;
      service_options.cache_capacity = cached ? cache_capacity : 0;
      service_options.cache_lock_shards = lock_shards;
      QueryService service(service_options);
      auto published = service.Publish(data, snapshot_options, seed);
      DPHIST_CHECK_MSG(published.ok(), "publish failed");

      RunResult result = RunClients(service, threads, phases);
      rows.push_back(
          {threads, cached, result.aggregate_qps, result.hit_rate});
      std::fprintf(stderr, "%s %d thread(s): %.3g q/s (hit rate %.2f)\n",
                   cached ? "cached" : "uncached", threads,
                   result.aggregate_qps, result.hit_rate);
      if (cached) {
        if (base_threads == 0 || threads < base_threads) {
          base_threads = threads;
          qps_base_cached = result.aggregate_qps;
        }
        if (threads >= max_threads) {
          max_threads = threads;
          qps_max_cached = result.aggregate_qps;
        }
      }
    }
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"service_throughput\",\n");
  std::printf("  \"build\": \"%s\",\n",
#ifdef NDEBUG
              "Release"
#else
              "Debug"
#endif
  );
  std::printf("  \"domain_log2\": %lld,\n",
              static_cast<long long>(domain_log2));
  std::printf("  \"strategy\": \"%s\",\n",
              StrategyKindName(strategy.value()));
  std::printf("  \"branching\": %lld,\n", static_cast<long long>(branching));
  std::printf("  \"epsilon\": %g,\n", epsilon);
  std::printf("  \"queries_per_phase\": %lld,\n",
              static_cast<long long>(queries_per_phase));
  std::printf("  \"phases\": %lld,\n", static_cast<long long>(phase_count));
  std::printf("  \"cache_capacity\": %lld,\n",
              static_cast<long long>(cache_capacity));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "    {\"threads\": %d, \"cached\": %s, "
        "\"aggregate_queries_per_sec\": %.6g, \"cache_hit_rate\": %.4f}%s\n",
        rows[i].threads, rows[i].cached ? "true" : "false",
        rows[i].aggregate_qps, rows[i].hit_rate,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"min_threads\": %d,\n", base_threads);
  std::printf("    \"max_threads\": %d,\n", max_threads);
  std::printf("    \"cached_qps_at_min_threads\": %.6g,\n", qps_base_cached);
  std::printf("    \"cached_qps_at_max_threads\": %.6g,\n", qps_max_cached);
  std::printf("    \"cached_speedup_max_over_min\": %.3f\n",
              qps_base_cached > 0.0 ? qps_max_cached / qps_base_cached
                                    : 0.0);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
