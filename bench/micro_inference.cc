// Experiment E10 — micro-benchmarks backing the paper's efficiency claims:
// isotonic regression and hierarchical inference are linear-time (the
// paper: "linear time algorithms", "requiring only two linear scans"),
// the Theorem 1 min-max form is quadratic (reference only), and range
// decomposition is logarithmic.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/laplace.h"
#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "inference/hierarchical.h"
#include "inference/isotonic.h"
#include "inference/minmax_isotonic.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

namespace {

using namespace dphist;  // NOLINT(build/namespaces)

std::vector<double> NoisySortedInput(std::int64_t n) {
  Rng rng(42);
  std::vector<std::int64_t> counts = ZipfCounts(n, 1.1, 5 * n, &rng);
  Histogram data = Histogram::FromCounts(counts);
  std::vector<double> truth = data.SortedCounts();
  LaplaceDistribution noise(1.0);
  for (double& x : truth) x += noise.Sample(&rng);
  return truth;
}

void BM_IsotonicPava(benchmark::State& state) {
  std::vector<double> input = NoisySortedInput(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsotonicRegression(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IsotonicPava)->Range(1 << 10, 1 << 20)->Complexity();

void BM_MinMaxReference(benchmark::State& state) {
  std::vector<double> input = NoisySortedInput(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinMaxLowerSolution(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinMaxReference)->Range(1 << 6, 1 << 11)->Complexity();

void BM_HierarchicalInference(benchmark::State& state) {
  std::int64_t n = state.range(0);
  Rng rng(7);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &rng));
  HierarchicalQuery query(n, 2);
  LaplaceMechanism mechanism(1.0);
  std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
  TreeLayout tree(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HierarchicalInference(tree, noisy));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HierarchicalInference)->Range(1 << 10, 1 << 20)->Complexity();

void BM_RangeDecomposition(benchmark::State& state) {
  std::int64_t n = state.range(0);
  TreeLayout tree(n, 2);
  Rng rng(9);
  std::vector<Interval> ranges = RandomRangesOfSize(n, n / 3, 256, &rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeRange(tree, ranges[i++ % 256]));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeDecomposition)->Range(1 << 10, 1 << 20)->Complexity();

void BM_LaplaceSampling(benchmark::State& state) {
  LaplaceDistribution noise(1.0);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.Sample(&rng));
  }
}
BENCHMARK(BM_LaplaceSampling);

void BM_HBarEndToEnd(benchmark::State& state) {
  // Whole pipeline: perturb H, infer, prune, round — per trial cost of
  // the Fig. 6 experiment at the paper's scale.
  std::int64_t n = state.range(0);
  Rng rng(13);
  Histogram data =
      Histogram::FromCounts(ZipfCounts(n, 1.1, 5 * n, &rng));
  UniversalOptions options;
  options.epsilon = 0.1;
  for (auto _ : state) {
    HBarEstimator estimator(data, options, &rng);
    benchmark::DoNotOptimize(estimator.leaf_estimates());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HBarEndToEnd)->Range(1 << 12, 1 << 16)->Complexity();

}  // namespace
