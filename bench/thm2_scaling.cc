// Experiment E6 — Theorem 2's scaling law.
//
//   error(S-bar) <= sum_i (c1 log^3 n_i + c2) / eps^2 = O(d log^3 n / eps^2)
//   error(S~)     = Theta(n / eps^2)
//
// Two sweeps verify the shape empirically:
//   (1) fix d (# distinct counts), grow n: error(S-bar) grows
//       poly-logarithmically while error(S~) grows linearly;
//   (2) fix n, grow d: error(S-bar) grows ~linearly in d.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "experiments/report.h"
#include "inference/isotonic.h"

using namespace dphist;  // NOLINT(build/namespaces)

namespace {

std::vector<double> StepSequence(std::size_t n, std::size_t d) {
  std::vector<double> truth(n);
  std::size_t run = n / d;
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(std::min(i / run, d - 1)) * 50.0;
  }
  return truth;
}

double MeasuredError(const std::vector<double>& truth, double eps,
                     std::int64_t trials, std::uint64_t seed) {
  Rng master(seed);
  LaplaceDistribution noise(1.0 / eps);
  RunningStat err;
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng trial = master.Fork();
    std::vector<double> noisy = truth;
    for (double& x : noisy) x += noise.Sample(&trial);
    err.Add(SquaredError(IsotonicRegression(noisy), truth));
  }
  return err.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const double eps = flags.GetDouble("epsilon", 1.0);
  const std::int64_t trials = flags.GetInt("trials", 40, "DPHIST_TRIALS");

  PrintBanner(std::cout, "Theorem 2: error(S-bar) = O(d log^3 n / eps^2)");
  std::printf("eps=%s, %lld trials per point\n",
              FormatFixed(eps).c_str(), static_cast<long long>(trials));

  PrintBanner(std::cout, "sweep 1: fixed d = 4, growing n");
  TablePrinter sweep_n({"n", "error(S-bar)", "error(S~) = 2n/eps^2",
                        "d*log^3(n)/eps^2", "S~/S-bar"});
  double prev_err = 0.0, prev_n = 0.0;
  double worst_growth = 0.0;
  for (std::size_t n : {1024u, 4096u, 16384u, 65536u}) {
    double err = MeasuredError(StepSequence(n, 4), eps, trials, n);
    double stilde = 2.0 * static_cast<double>(n) / (eps * eps);
    double lg = std::log2(static_cast<double>(n));
    sweep_n.AddRow({std::to_string(n), FormatScientific(err),
                    FormatScientific(stilde),
                    FormatScientific(4.0 * lg * lg * lg / (eps * eps)),
                    FormatRatio(stilde / err)});
    if (prev_n > 0.0) {
      // Growth exponent between consecutive points (1.0 = linear).
      double exponent = std::log(err / prev_err) /
                        std::log(static_cast<double>(n) / prev_n);
      worst_growth = std::max(worst_growth, exponent);
    }
    prev_err = err;
    prev_n = static_cast<double>(n);
  }
  sweep_n.Print(std::cout);

  PrintBanner(std::cout, "sweep 2: fixed n = 16384, growing d");
  TablePrinter sweep_d({"d", "error(S-bar)", "error/d"});
  for (std::size_t d : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    double err = MeasuredError(StepSequence(16384, d), eps, trials, 100 + d);
    sweep_d.AddRow({std::to_string(d), FormatScientific(err),
                    FormatScientific(err / static_cast<double>(d))});
  }
  sweep_d.Print(std::cout);

  PrintBanner(std::cout, "paper-vs-measured");
  std::printf(
      "  paper: error(S-bar) poly-log in n for fixed d; error(S~) linear\n");
  std::printf(
      "  measured: growth exponent of error(S-bar) in n: %.2f "
      "(linear would be 1.0) -> sublinear: %s\n",
      worst_growth, worst_growth < 0.7 ? "YES" : "NO");
  return 0;
}
