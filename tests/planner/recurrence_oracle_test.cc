// Property suite pinning the Section 4 variance recurrences
// (planner/recurrence_oracle.h) against the dense matrix-mechanism
// oracle (analysis/strategy_matrix.h). The two implementations share no
// code beyond the strategy definitions: the dense path materializes A,
// forms A^T A, and Cholesky-solves per query; the recurrence path never
// builds a matrix. Agreement to 1e-9 relative across widths, branchings,
// clipped (non-power) domains, and epsilons is therefore strong evidence
// both are the exact closed form.
//
// Where the dense Cholesky is unaffordable (Gram formation is
// O(rows * width^2)), the fast memoized recurrence is cross-checked
// against two independent references that stay O(width) per query: the
// table-free elimination (GramQuadraticFormUnmemoized) for H-bar, and a
// brute-force sum over every Haar detail row for the wavelet.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/strategy_matrix.h"
#include "domain/interval.h"
#include "planner/recurrence_oracle.h"
#include "planner/variance_oracle.h"
#include "service/snapshot.h"

namespace dphist::planner {
namespace {

// Boundary-heavy deterministic probe ranges for one width: units at both
// ends, the full domain, halves, thirds, and off-by-one interior ranges.
// Small widths get every range exhaustively.
std::vector<Interval> ProbeRanges(std::int64_t width) {
  std::vector<Interval> ranges;
  if (width <= 16) {
    for (std::int64_t lo = 0; lo < width; ++lo) {
      for (std::int64_t hi = lo; hi < width; ++hi) {
        ranges.push_back(Interval(lo, hi));
      }
    }
    return ranges;
  }
  const std::int64_t n = width;
  ranges.push_back(Interval(0, 0));
  ranges.push_back(Interval(n - 1, n - 1));
  ranges.push_back(Interval(n / 2, n / 2));
  ranges.push_back(Interval(0, n - 1));
  ranges.push_back(Interval(0, n / 2));
  ranges.push_back(Interval(n / 2, n - 1));
  ranges.push_back(Interval(1, n - 2));
  ranges.push_back(Interval(n / 3, 2 * n / 3));
  ranges.push_back(Interval(n / 4, 3 * n / 4 - 1));
  ranges.push_back(Interval(n / 7, n - n / 5));
  return ranges;
}

RecurrenceOracle MakeOracle(StrategyKind kind, std::int64_t width,
                            std::int64_t branching, double epsilon) {
  Result<RecurrenceOracle> oracle =
      RecurrenceOracle::Create(kind, width, branching, epsilon);
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  return std::move(oracle).value();
}

void ExpectMatchesDense(StrategyKind kind, std::int64_t width,
                        std::int64_t branching, double epsilon) {
  SCOPED_TRACE("kind=" + std::string(StrategyKindName(kind)) +
               " width=" + std::to_string(width) +
               " branching=" + std::to_string(branching));
  RecurrenceOracle fast = MakeOracle(kind, width, branching, epsilon);
  linalg::Matrix strategy =
      kind == StrategyKind::kHBar
          ? HierarchicalStrategy(width, branching)
          : WaveletStrategy(fast.analyzer_width());
  Result<StrategyAnalyzer> dense =
      StrategyAnalyzer::Create(strategy, epsilon);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  EXPECT_DOUBLE_EQ(fast.sensitivity(), dense.value().sensitivity());
  for (const Interval& q : ProbeRanges(width)) {
    const double exact = dense.value().RangeVariance(q);
    const double closed = fast.RangeVariance(q);
    EXPECT_NEAR(closed, exact, 1e-9 * std::max(1.0, exact))
        << q.ToString();
  }
}

TEST(RecurrenceOracleTest, SupportsExactlyTheGramStrategies) {
  EXPECT_TRUE(RecurrenceOracle::Supports(StrategyKind::kHBar));
  EXPECT_TRUE(RecurrenceOracle::Supports(StrategyKind::kWavelet));
  EXPECT_FALSE(RecurrenceOracle::Supports(StrategyKind::kLTilde));
  EXPECT_FALSE(RecurrenceOracle::Supports(StrategyKind::kHTilde));
  EXPECT_FALSE(RecurrenceOracle::Supports(StrategyKind::kAuto));
}

TEST(RecurrenceOracleTest, CreateRejectsInvalidConfigurations) {
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kAuto, 8, 2, 1.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kLTilde, 8, 2, 1.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kHTilde, 8, 2, 1.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kHBar, 0, 2, 1.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kHBar, 8, 1, 1.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kHBar, 8, 2, 0.0).ok());
  EXPECT_FALSE(
      RecurrenceOracle::Create(StrategyKind::kWavelet, 8, 2, -1.0).ok());
}

TEST(RecurrenceOracleTest, HierarchicalMatchesDenseExhaustivelyAtSmallWidths) {
  // Every width from 1 (a root-only tree) through 64, every range at
  // widths <= 16, branchings from binary to 16-ary. Clipped domains
  // (every non-power width) exercise the partial-shape tables.
  for (std::int64_t branching : {2, 3, 5, 16}) {
    for (std::int64_t width = 1; width <= 64; ++width) {
      ExpectMatchesDense(StrategyKind::kHBar, width, branching, 1.0);
    }
  }
}

TEST(RecurrenceOracleTest, WaveletMatchesDenseExhaustivelyAtSmallWidths) {
  // Non-power widths pad internally; the dense comparison uses the same
  // padded strategy matrix, so the padding geometry is part of the pin.
  for (std::int64_t width = 1; width <= 64; ++width) {
    ExpectMatchesDense(StrategyKind::kWavelet, width, /*branching=*/2, 1.0);
  }
}

TEST(RecurrenceOracleTest, MatchesDenseAtLargerAndClippedWidths) {
  // Powers of two, their neighbours (maximally clipped trees), and a few
  // awkward composites. The dense Gram is O(width^3) to factorize, so
  // the widest cases only run in optimized builds.
  std::vector<std::int64_t> widths = {96, 100, 127, 128, 129, 200};
#ifdef NDEBUG
  widths.insert(widths.end(), {255, 256, 337, 511, 512});
#endif
  for (std::int64_t width : widths) {
    for (std::int64_t branching : {2, 3, 16}) {
      ExpectMatchesDense(StrategyKind::kHBar, width, branching, 1.0);
    }
    ExpectMatchesDense(StrategyKind::kWavelet, width, /*branching=*/2, 1.0);
  }
#ifdef NDEBUG
  // One four-digit dense pin per strategy in Release.
  ExpectMatchesDense(StrategyKind::kHBar, 1024, 2, 1.0);
  ExpectMatchesDense(StrategyKind::kWavelet, 1000, 2, 1.0);
#endif
}

TEST(RecurrenceOracleTest, EpsilonScalesTheNoiseFactorOnly) {
  for (double epsilon : {0.25, 0.7, 3.0}) {
    ExpectMatchesDense(StrategyKind::kHBar, 47, 3, epsilon);
    ExpectMatchesDense(StrategyKind::kWavelet, 48, 2, epsilon);
  }
  // Var scales as 1/eps^2; the quadratic form itself must not move.
  RecurrenceOracle tight = MakeOracle(StrategyKind::kHBar, 100, 2, 2.0);
  RecurrenceOracle loose = MakeOracle(StrategyKind::kHBar, 100, 2, 0.5);
  const Interval q(13, 77);
  EXPECT_DOUBLE_EQ(tight.GramQuadraticForm(q), loose.GramQuadraticForm(q));
  EXPECT_NEAR(loose.RangeVariance(q), 16.0 * tight.RangeVariance(q),
              1e-9 * loose.RangeVariance(q));
}

TEST(RecurrenceOracleTest, MemoizedMatchesTableFreeEliminationAt4096) {
  // The shape tables are the only thing the fast path adds over the
  // plain O(width) elimination; at widths where dense Cholesky is
  // unaffordable, pin the two against each other instead — including
  // the 4096 target and its clipped neighbour.
  for (std::int64_t width : {1000, 2048, 4095, 4096}) {
    for (std::int64_t branching : {2, 16}) {
      RecurrenceOracle oracle =
          MakeOracle(StrategyKind::kHBar, width, branching, 1.0);
      for (const Interval& q : ProbeRanges(width)) {
        const double memoized = oracle.GramQuadraticForm(q);
        const double reference = oracle.GramQuadraticFormUnmemoized(q);
        EXPECT_NEAR(memoized, reference, 1e-12 * std::max(1.0, reference))
            << "width " << width << " branching " << branching << " "
            << q.ToString();
      }
    }
  }
}

// Independent wavelet reference: sum over EVERY detail row of the padded
// Haar strategy, (w . r)^2 / |r|^4 with |r|^2 = block size, plus the base
// row's len^2 / P^2. O(P) per query and shares nothing with the oracle's
// boundary-block shortcut.
double BruteWaveletQuadraticForm(std::int64_t padded, const Interval& q) {
  const double len = static_cast<double>(q.Length());
  double total = len * len / (static_cast<double>(padded) *
                              static_cast<double>(padded));
  for (std::int64_t block = padded; block >= 2; block /= 2) {
    for (std::int64_t start = 0; start < padded; start += block) {
      const std::int64_t mid = start + block / 2;
      auto overlap = [&](std::int64_t lo, std::int64_t hi) {
        const std::int64_t a = std::max(lo, q.lo());
        const std::int64_t b = std::min(hi, q.hi());
        return b >= a ? b - a + 1 : 0;
      };
      const double diff =
          static_cast<double>(overlap(start, mid - 1) -
                              overlap(mid, start + block - 1));
      total += diff * diff /
               (static_cast<double>(block) * static_cast<double>(block));
    }
  }
  return total;
}

TEST(RecurrenceOracleTest, WaveletMatchesBruteForceHaarSumAt4096) {
  for (std::int64_t width : {1000, 2048, 4000, 4096}) {
    RecurrenceOracle oracle =
        MakeOracle(StrategyKind::kWavelet, width, /*branching=*/2, 1.0);
    for (const Interval& q : ProbeRanges(width)) {
      const double closed = oracle.GramQuadraticForm(q);
      const double brute =
          BruteWaveletQuadraticForm(oracle.analyzer_width(), q);
      EXPECT_NEAR(closed, brute, 1e-12 * std::max(1.0, brute))
          << "width " << width << " " << q.ToString();
    }
  }
}

TEST(RecurrenceOracleTest, WaveletPaddingAgreesWithMaxAnalyzerWidth) {
  // The oracle's internal power-of-two padding must be exactly the width
  // the dense path would factorize, shard by shard, or the two paths
  // could disagree about geometry at non-power domains.
  for (std::int64_t domain : {1, 5, 48, 100, 1000, 4096}) {
    for (std::int64_t shards : {1, 3}) {
      SnapshotOptions options;
      options.strategy = StrategyKind::kWavelet;
      options.shards = shards;
      const std::int64_t shard_width = (domain + shards - 1) / shards;
      if (shard_width < 1) continue;
      RecurrenceOracle oracle = MakeOracle(StrategyKind::kWavelet,
                                           shard_width, 2, 1.0);
      EXPECT_EQ(oracle.analyzer_width(), MaxAnalyzerWidth(options, domain))
          << "domain " << domain << " shards " << shards;
      EXPECT_DOUBLE_EQ(
          oracle.sensitivity(),
          WaveletStrategySensitivity(oracle.analyzer_width()));
    }
  }
}

TEST(RecurrenceOracleTest, ClosedFormSensitivitiesMatchTheBuiltMatrices) {
  for (std::int64_t branching : {2, 3, 7}) {
    for (std::int64_t width : {1, 2, 17, 64, 100}) {
      EXPECT_DOUBLE_EQ(
          HierarchicalStrategySensitivity(width, branching),
          StrategyL1Sensitivity(HierarchicalStrategy(width, branching)))
          << "width " << width << " branching " << branching;
    }
  }
  for (std::int64_t width : {1, 2, 8, 64, 256}) {
    EXPECT_DOUBLE_EQ(WaveletStrategySensitivity(width),
                     StrategyL1Sensitivity(WaveletStrategy(width)))
        << "width " << width;
  }
}

}  // namespace
}  // namespace dphist::planner
