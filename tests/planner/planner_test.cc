// Planner decision tests plus the planner-vs-empirical conformance
// harness: the chosen plan's predicted mean squared error must match
// what the serving layer actually delivers (Monte-Carlo over thousands
// of releases, within the oracle's confidence bound), and must be no
// worse than every rejected candidate's prediction. The workloads are
// built on the cost model's own deterministic placement grid so the
// prediction is the exact expectation of the measured quantity — any
// systematic gap is a planner bug, not sampling slack.

#include "planner/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "planner/variance_oracle.h"
#include "service/query_service.h"

namespace dphist::planner {
namespace {

SnapshotOptions LinearBase(double epsilon = 1.0) {
  SnapshotOptions base;
  base.epsilon = epsilon;
  base.round_to_nonnegative_integers = false;
  base.prune_nonpositive_subtrees = false;
  return base;
}

/// The cost model's placement grid for one length (see CostModel::
/// Evaluate): evenly spaced los, extremes included. Building workloads
/// on this grid makes predicted mean variance the exact expectation of
/// the workload's empirical mean squared error.
std::vector<Interval> PlacementGrid(std::int64_t domain_size,
                                    std::int64_t length,
                                    std::int64_t placements_per_length) {
  const std::int64_t max_lo = domain_size - length;
  const std::int64_t placements =
      std::min(placements_per_length, max_lo + 1);
  std::vector<Interval> queries;
  for (std::int64_t p = 0; p < placements; ++p) {
    const std::int64_t lo =
        placements == 1 ? 0 : (p * max_lo) / (placements - 1);
    queries.emplace_back(lo, lo + length - 1);
  }
  return queries;
}

TEST(PlannerTest, UnitWorkloadSelectsLTilde) {
  WorkloadProfile units(64);
  units.AddLength(1, 100.0);
  auto plan = ChoosePlan(units, LinearBase());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // 2/eps^2 per unit count: no tree can beat asking the count directly,
  // and sharding cannot change a strategy that is already per-position.
  EXPECT_EQ(plan.value().options.strategy, StrategyKind::kLTilde);
  EXPECT_EQ(plan.value().options.shards, 1);
  EXPECT_DOUBLE_EQ(plan.value().predicted_mean_variance, 2.0);
}

TEST(PlannerTest, LongRangeWorkloadSelectsAHierarchy) {
  WorkloadProfile longs(64);
  longs.AddLength(32);
  longs.AddLength(64);
  PlannerOptions options;
  options.strategies = {StrategyKind::kLTilde, StrategyKind::kHTilde,
                        StrategyKind::kHBar};
  auto plan = ChoosePlan(longs, LinearBase(), options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().options.strategy, StrategyKind::kLTilde)
      << "long ranges must not be answered by summing unit counts";
}

TEST(PlannerTest, CandidatesAreSortedBestFirstAndChosenIsMinimal) {
  WorkloadProfile profile(64);
  profile.AddLength(1, 3.0);
  profile.AddLength(16);
  profile.AddLength(64);
  auto plan = ChoosePlan(profile, LinearBase());
  ASSERT_TRUE(plan.ok());
  const Plan& p = plan.value();
  ASSERT_FALSE(p.candidates.empty());
  EXPECT_TRUE(p.candidates.front().feasible);
  EXPECT_EQ(p.candidates.front().options.strategy, p.options.strategy);
  EXPECT_EQ(p.candidates.front().options.shards, p.options.shards);
  double previous = -1.0;
  bool seen_infeasible = false;
  for (const Candidate& c : p.candidates) {
    if (!c.feasible) {
      seen_infeasible = true;
      continue;
    }
    EXPECT_FALSE(seen_infeasible) << "infeasible candidates must sort last";
    EXPECT_GE(c.mean_variance, previous);
    EXPECT_GE(c.mean_variance, p.predicted_mean_variance - 1e-12);
    previous = c.mean_variance;
  }
}

TEST(PlannerTest, WorstCaseObjectiveChangesTheRanking) {
  WorkloadProfile profile(64);
  profile.AddLength(1, 1000.0);  // the mean is dominated by units...
  profile.AddLength(64);         // ...but the worst case by the full range
  PlannerOptions mean_objective;
  mean_objective.strategies = {StrategyKind::kLTilde, StrategyKind::kHBar};
  PlannerOptions worst_objective = mean_objective;
  worst_objective.minimize_worst_case = true;

  auto by_mean = ChoosePlan(profile, LinearBase(), mean_objective);
  auto by_worst = ChoosePlan(profile, LinearBase(), worst_objective);
  ASSERT_TRUE(by_mean.ok());
  ASSERT_TRUE(by_worst.ok());
  EXPECT_EQ(by_mean.value().options.strategy, StrategyKind::kLTilde);
  EXPECT_EQ(by_worst.value().options.strategy, StrategyKind::kHBar);
}

TEST(PlannerTest, InfeasibleEverywhereIsAnError) {
  WorkloadProfile profile(256);
  profile.AddLength(4);
  PlannerOptions options;
  options.strategies = {StrategyKind::kHBar};
  options.shard_counts = {1};  // width 256 > cap below
  options.cost.max_analyzer_width = 64;
  options.cost.use_dense_oracle = true;  // the cap is dense-path only
  auto plan = ChoosePlan(profile, LinearBase(), options);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("no feasible"), std::string::npos);

  // The default recurrence path has no cap: the same enumeration plans.
  options.cost.use_dense_oracle = false;
  EXPECT_TRUE(ChoosePlan(profile, LinearBase(), options).ok());
}

TEST(PlannerTest, IncrementalCostCacheMatchesFreshEvaluation) {
  // ChoosePlan through a shared IncrementalCostModel must rank and cost
  // candidates identically to the cache-free path — including on a
  // heat-carrying profile — while reusing oracle work across calls.
  const std::int64_t n = 256;
  WorkloadProfile profile(n);
  for (std::int64_t lo : {0, 10, 110, 200}) {
    profile.AddQuery(Interval(lo, lo + 31));
  }
  profile.AddLength(1, 6.0);
  PlannerOptions options;
  options.max_shards = 8;

  IncrementalCostModel cache(n, options.cost);
  auto fresh = ChoosePlan(profile, LinearBase(), options);
  auto cached = ChoosePlan(profile, LinearBase(), options, &cache);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(fresh.value().candidates.size(),
            cached.value().candidates.size());
  for (std::size_t i = 0; i < fresh.value().candidates.size(); ++i) {
    const Candidate& a = fresh.value().candidates[i];
    const Candidate& b = cached.value().candidates[i];
    EXPECT_EQ(a.options.strategy, b.options.strategy) << i;
    EXPECT_EQ(a.options.shards, b.options.shards) << i;
    EXPECT_EQ(a.mean_variance, b.mean_variance) << i;
    EXPECT_EQ(a.worst_variance, b.worst_variance) << i;
  }

  // A re-plan over a drifted profile re-runs the oracle only for the
  // brand-new length; everything else is a re-weighting fold.
  profile.AddQuery(Interval(40, 71));  // length already cached
  profile.AddLength(128);              // new length
  const auto before = cache.stats();
  auto replanned = ChoosePlan(profile, LinearBase(), options, &cache);
  ASSERT_TRUE(replanned.ok());
  const auto after = cache.stats();
  const std::uint64_t candidates =
      static_cast<std::uint64_t>(replanned.value().candidates.size());
  EXPECT_EQ(after.lengths_costed - before.lengths_costed, candidates);
  EXPECT_GT(after.lengths_reused, before.lengths_reused);

  // The cache refuses a mismatched configuration instead of serving
  // stale geometry.
  WorkloadProfile other(128);
  other.AddLength(1);
  EXPECT_FALSE(ChoosePlan(other, LinearBase(), options, &cache).ok());
}

TEST(PlannerTest, ResolveAutoStrategySubstitutesOnlyForAuto) {
  WorkloadProfile units(64);
  units.AddLength(1);

  SnapshotOptions concrete = LinearBase();
  concrete.strategy = StrategyKind::kWavelet;
  concrete.shards = 4;
  auto unchanged = ResolveAutoStrategy(concrete, units);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged.value().strategy, StrategyKind::kWavelet);
  EXPECT_EQ(unchanged.value().shards, 4);

  SnapshotOptions auto_base = LinearBase();
  auto_base.strategy = StrategyKind::kAuto;
  auto resolved = ResolveAutoStrategy(auto_base, units);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().strategy, StrategyKind::kLTilde);
}

/// One Monte-Carlo conformance run: publishes the configuration kTrials
/// times and returns the workload-mean empirical squared error.
double EmpiricalMeanSquaredError(const Histogram& data,
                                 const SnapshotOptions& options,
                                 const std::vector<Interval>& workload,
                                 std::int64_t trials) {
  QueryService service;
  std::vector<double> truth(workload.size());
  for (std::size_t q = 0; q < workload.size(); ++q) {
    truth[q] = data.Count(workload[q]);
  }
  std::vector<double> answers(workload.size());
  double total = 0.0;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    EXPECT_TRUE(service
                    .Publish(data, options,
                             /*seed=*/7000 + static_cast<std::uint64_t>(trial))
                    .ok());
    service.QueryBatch(workload.data(), workload.size(), answers.data());
    for (std::size_t q = 0; q < workload.size(); ++q) {
      const double err = answers[q] - truth[q];
      total += err * err;
    }
  }
  return total / (static_cast<double>(trials) *
                  static_cast<double>(workload.size()));
}

TEST(PlannerConformanceTest, ChosenPlanDeliversItsPredictedError) {
  // 256 positions: large enough that the paper's crossover has happened
  // (a constrained hierarchy beats L~ on ranges of n/2 and n; at n = 64
  // the placement-averaged mean still favors L~).
  constexpr std::int64_t kDomain = 256;
  constexpr std::int64_t kTrials = 4000;
  const double tolerance = SquaredErrorRelativeBound(kTrials, 4.6);

  Rng data_rng(43);
  Histogram data = Histogram::FromCounts(
      ZipfCounts(kDomain, 1.2, 5 * kDomain, &data_rng));

  PlannerOptions planner_options;
  planner_options.strategies = {StrategyKind::kLTilde, StrategyKind::kHTilde,
                                StrategyKind::kHBar};

  struct Scenario {
    const char* name;
    std::vector<std::int64_t> lengths;
    StrategyKind forbidden;  // the strategy the workload must NOT pick
  };
  const Scenario scenarios[] = {
      {"unit_counts", {1}, StrategyKind::kHBar},
      {"long_ranges", {kDomain / 2, kDomain}, StrategyKind::kLTilde},
  };

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    // Workload == the cost model's own placement grid, so the plan's
    // predicted mean variance is the exact expectation of the measured
    // mean squared error.
    WorkloadProfile profile(kDomain);
    std::vector<Interval> workload;
    for (std::int64_t length : scenario.lengths) {
      for (const Interval& q : PlacementGrid(
               kDomain, length,
               planner_options.cost.placements_per_length)) {
        profile.AddQuery(q);
        workload.push_back(q);
      }
    }

    auto plan = ChoosePlan(profile, LinearBase(), planner_options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_NE(plan.value().options.strategy, scenario.forbidden);

    // The decision is optimal among the evaluated candidates...
    for (const Candidate& candidate : plan.value().candidates) {
      if (!candidate.feasible) continue;
      EXPECT_LE(plan.value().predicted_mean_variance,
                candidate.mean_variance + 1e-12)
          << StrategyKindName(candidate.options.strategy) << "/"
          << candidate.options.shards;
    }

    // ...and the prediction is real: Monte-Carlo lands on it.
    const double empirical = EmpiricalMeanSquaredError(
        data, plan.value().options, workload, kTrials);
    EXPECT_NEAR(empirical / plan.value().predicted_mean_variance, 1.0,
                tolerance)
        << "empirical " << empirical << " predicted "
        << plan.value().predicted_mean_variance;

    // The harness also rejects the alternative: the forbidden strategy's
    // best candidate must predict (and deliver) no better than the plan.
    double best_forbidden = -1.0;
    SnapshotOptions forbidden_options;
    for (const Candidate& candidate : plan.value().candidates) {
      if (!candidate.feasible ||
          candidate.options.strategy != scenario.forbidden) {
        continue;
      }
      if (best_forbidden < 0.0 ||
          candidate.mean_variance < best_forbidden) {
        best_forbidden = candidate.mean_variance;
        forbidden_options = candidate.options;
      }
    }
    ASSERT_GE(best_forbidden, 0.0);
    EXPECT_GE(best_forbidden,
              plan.value().predicted_mean_variance - 1e-12);
    const double empirical_forbidden = EmpiricalMeanSquaredError(
        data, forbidden_options, workload, kTrials);
    EXPECT_NEAR(empirical_forbidden / best_forbidden, 1.0, tolerance);
  }
}

}  // namespace
}  // namespace dphist::planner
