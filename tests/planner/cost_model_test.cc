#include "planner/cost_model.h"

#include <gtest/gtest.h>

#include "planner/variance_oracle.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::planner {
namespace {

SnapshotOptions LinearOptions(StrategyKind kind, double epsilon = 1.0,
                              std::int64_t shards = 1) {
  SnapshotOptions options;
  options.strategy = kind;
  options.epsilon = epsilon;
  options.shards = shards;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  return options;
}

TEST(CostModelTest, LTildeUnitWorkloadMatchesClosedForm) {
  CostModel model(64);
  WorkloadProfile units(64);
  units.AddLength(1, 10.0);
  auto cost =
      model.Evaluate(LinearOptions(StrategyKind::kLTilde, 0.5), units);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  // 2 * 1 / 0.5^2 = 8, independent of placement.
  EXPECT_DOUBLE_EQ(cost.value().mean_variance, 8.0);
  EXPECT_DOUBLE_EQ(cost.value().worst_variance, 8.0);
}

TEST(CostModelTest, SinglePlacementLengthMatchesOracleExactly) {
  // The full-domain length has exactly one placement, so the cost model
  // must reproduce the oracle's number with no averaging slack, for
  // every strategy.
  const std::int64_t n = 32;
  CostModel model(n);
  WorkloadProfile full(n);
  full.AddLength(n);
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    SnapshotOptions options = LinearOptions(kind, 1.0, 2);
    auto cost = model.Evaluate(options, full);
    ASSERT_TRUE(cost.ok()) << StrategyKindName(kind);
    VarianceOracle oracle(options, n);
    EXPECT_DOUBLE_EQ(cost.value().mean_variance,
                     oracle.RangeVariance(Interval(0, n - 1)))
        << StrategyKindName(kind);
  }
}

TEST(CostModelTest, MeanIsWorkloadWeightedAcrossLengths) {
  // Two L~ lengths with 3:1 weights: the mean interpolates exactly
  // (L~ variance is placement-invariant, 2|q|/eps^2).
  CostModel model(64);
  WorkloadProfile profile(64);
  profile.AddLength(1, 3.0);
  profile.AddLength(8, 1.0);
  auto cost = model.Evaluate(LinearOptions(StrategyKind::kLTilde), profile);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost.value().mean_variance, (3.0 * 2.0 + 1.0 * 16.0) / 4.0);
  EXPECT_DOUBLE_EQ(cost.value().worst_variance, 16.0);
}

TEST(CostModelTest, ShardingReducesInteriorHierarchicalCost) {
  // Mirrors the oracle property the planner exploits: shard trees are
  // shallower, so short H~ queries get cheaper as shards increase.
  CostModel model(64);
  WorkloadProfile shorts(64);
  shorts.AddLength(4);
  auto deep =
      model.Evaluate(LinearOptions(StrategyKind::kHTilde, 1.0, 1), shorts);
  auto shallow =
      model.Evaluate(LinearOptions(StrategyKind::kHTilde, 1.0, 8), shorts);
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(shallow.ok());
  EXPECT_LT(shallow.value().mean_variance, deep.value().mean_variance);
}

TEST(CostModelTest, RoundingKnobsAreLinearizedNotRejected) {
  // Serving defaults round/prune; the cost model ranks by the linear
  // proxy instead of refusing.
  CostModel model(32);
  WorkloadProfile profile(32);
  profile.AddLength(4);
  SnapshotOptions rounded;  // defaults: rounding and pruning on
  rounded.strategy = StrategyKind::kHBar;
  auto cost = model.Evaluate(rounded, profile);
  EXPECT_TRUE(cost.ok()) << cost.status().ToString();
}

TEST(CostModelTest, AnalyzerWidthCapMakesWideOlsCandidatesInfeasible) {
  CostModel::Options options;
  options.max_analyzer_width = 16;
  CostModel model(64, options);
  WorkloadProfile profile(64);
  profile.AddLength(4);

  // 64-wide H-bar shard exceeds the cap; 8 shards of width 8 fit.
  auto wide = model.Evaluate(LinearOptions(StrategyKind::kHBar), profile);
  EXPECT_FALSE(wide.ok());
  EXPECT_NE(wide.status().message().find("infeasible"), std::string::npos);
  auto sharded =
      model.Evaluate(LinearOptions(StrategyKind::kHBar, 1.0, 8), profile);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The wavelet pads shards to a power of two: width 10 pads to 16
  // (feasible at the cap), width 22 pads to 32 (infeasible).
  auto padded_ok =
      model.Evaluate(LinearOptions(StrategyKind::kWavelet, 1.0, 7), profile);
  EXPECT_TRUE(padded_ok.ok()) << padded_ok.status().ToString();
  auto padded_wide =
      model.Evaluate(LinearOptions(StrategyKind::kWavelet, 1.0, 3), profile);
  EXPECT_FALSE(padded_wide.ok());

  // H~ has no Gram factorization, so the cap never applies.
  auto htilde = model.Evaluate(LinearOptions(StrategyKind::kHTilde), profile);
  EXPECT_TRUE(htilde.ok());
}

TEST(CostModelTest, RejectsAutoEmptyProfilesAndBadConfigs) {
  CostModel model(64);
  WorkloadProfile profile(64);
  profile.AddLength(1);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kAuto), profile).ok());
  WorkloadProfile empty(64);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde), empty).ok());
  WorkloadProfile mismatched(32);
  mismatched.AddLength(1);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde), mismatched).ok());
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde, -1.0), profile)
          .ok());
}

}  // namespace
}  // namespace dphist::planner
