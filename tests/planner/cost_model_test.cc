#include "planner/cost_model.h"

#include <gtest/gtest.h>

#include "planner/variance_oracle.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::planner {
namespace {

SnapshotOptions LinearOptions(StrategyKind kind, double epsilon = 1.0,
                              std::int64_t shards = 1) {
  SnapshotOptions options;
  options.strategy = kind;
  options.epsilon = epsilon;
  options.shards = shards;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  return options;
}

TEST(CostModelTest, LTildeUnitWorkloadMatchesClosedForm) {
  CostModel model(64);
  WorkloadProfile units(64);
  units.AddLength(1, 10.0);
  auto cost =
      model.Evaluate(LinearOptions(StrategyKind::kLTilde, 0.5), units);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  // 2 * 1 / 0.5^2 = 8, independent of placement.
  EXPECT_DOUBLE_EQ(cost.value().mean_variance, 8.0);
  EXPECT_DOUBLE_EQ(cost.value().worst_variance, 8.0);
}

TEST(CostModelTest, SinglePlacementLengthMatchesOracleExactly) {
  // The full-domain length has exactly one placement, so the cost model
  // must reproduce the oracle's number with no averaging slack, for
  // every strategy.
  const std::int64_t n = 32;
  CostModel model(n);
  WorkloadProfile full(n);
  full.AddLength(n);
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    SnapshotOptions options = LinearOptions(kind, 1.0, 2);
    auto cost = model.Evaluate(options, full);
    ASSERT_TRUE(cost.ok()) << StrategyKindName(kind);
    VarianceOracle oracle(options, n);
    EXPECT_DOUBLE_EQ(cost.value().mean_variance,
                     oracle.RangeVariance(Interval(0, n - 1)))
        << StrategyKindName(kind);
  }
}

TEST(CostModelTest, MeanIsWorkloadWeightedAcrossLengths) {
  // Two L~ lengths with 3:1 weights: the mean interpolates exactly
  // (L~ variance is placement-invariant, 2|q|/eps^2).
  CostModel model(64);
  WorkloadProfile profile(64);
  profile.AddLength(1, 3.0);
  profile.AddLength(8, 1.0);
  auto cost = model.Evaluate(LinearOptions(StrategyKind::kLTilde), profile);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost.value().mean_variance, (3.0 * 2.0 + 1.0 * 16.0) / 4.0);
  EXPECT_DOUBLE_EQ(cost.value().worst_variance, 16.0);
}

TEST(CostModelTest, ShardingReducesInteriorHierarchicalCost) {
  // Mirrors the oracle property the planner exploits: shard trees are
  // shallower, so short H~ queries get cheaper as shards increase.
  CostModel model(64);
  WorkloadProfile shorts(64);
  shorts.AddLength(4);
  auto deep =
      model.Evaluate(LinearOptions(StrategyKind::kHTilde, 1.0, 1), shorts);
  auto shallow =
      model.Evaluate(LinearOptions(StrategyKind::kHTilde, 1.0, 8), shorts);
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(shallow.ok());
  EXPECT_LT(shallow.value().mean_variance, deep.value().mean_variance);
}

TEST(CostModelTest, RoundingKnobsAreLinearizedNotRejected) {
  // Serving defaults round/prune; the cost model ranks by the linear
  // proxy instead of refusing.
  CostModel model(32);
  WorkloadProfile profile(32);
  profile.AddLength(4);
  SnapshotOptions rounded;  // defaults: rounding and pruning on
  rounded.strategy = StrategyKind::kHBar;
  auto cost = model.Evaluate(rounded, profile);
  EXPECT_TRUE(cost.ok()) << cost.status().ToString();
}

TEST(CostModelTest, AnalyzerWidthCapMakesWideOlsCandidatesInfeasible) {
  // The cap is a dense-path safety valve: it only bites when the caller
  // opted into the O(width^3) Cholesky oracle.
  CostModel::Options options;
  options.max_analyzer_width = 16;
  options.use_dense_oracle = true;
  CostModel model(64, options);
  WorkloadProfile profile(64);
  profile.AddLength(4);

  // 64-wide H-bar shard exceeds the cap; 8 shards of width 8 fit.
  auto wide = model.Evaluate(LinearOptions(StrategyKind::kHBar), profile);
  EXPECT_FALSE(wide.ok());
  EXPECT_NE(wide.status().message().find("infeasible"), std::string::npos);
  auto sharded =
      model.Evaluate(LinearOptions(StrategyKind::kHBar, 1.0, 8), profile);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The wavelet pads shards to a power of two: width 10 pads to 16
  // (feasible at the cap), width 22 pads to 32 (infeasible).
  auto padded_ok =
      model.Evaluate(LinearOptions(StrategyKind::kWavelet, 1.0, 7), profile);
  EXPECT_TRUE(padded_ok.ok()) << padded_ok.status().ToString();
  auto padded_wide =
      model.Evaluate(LinearOptions(StrategyKind::kWavelet, 1.0, 3), profile);
  EXPECT_FALSE(padded_wide.ok());

  // H~ has no Gram factorization, so the cap never applies.
  auto htilde = model.Evaluate(LinearOptions(StrategyKind::kHTilde), profile);
  EXPECT_TRUE(htilde.ok());
}

TEST(CostModelTest, RecurrencePathIgnoresTheAnalyzerWidthCap) {
  // Default (recurrence) mode: the same wide candidates that the dense
  // path rejects are costed exactly, at any width.
  CostModel::Options options;
  options.max_analyzer_width = 16;
  CostModel model(64, options);
  WorkloadProfile profile(64);
  profile.AddLength(4);
  EXPECT_TRUE(model.Evaluate(LinearOptions(StrategyKind::kHBar), profile)
                  .ok());
  EXPECT_TRUE(
      model.Evaluate(LinearOptions(StrategyKind::kWavelet, 1.0, 3), profile)
          .ok());
}

TEST(CostModelTest, RecurrenceAndDenseOraclesAgreeOnCosts) {
  // The two oracle routes must produce the same QueryCost for every
  // strategy the closed forms cover, including sharded configurations
  // with ragged tails.
  const std::int64_t n = 96;
  CostModel::Options dense_options;
  dense_options.use_dense_oracle = true;
  CostModel recurrence(n);
  CostModel dense(n, dense_options);
  WorkloadProfile profile(n);
  profile.AddLength(1, 5.0);
  profile.AddLength(7, 2.0);
  profile.AddLength(40, 1.0);
  for (StrategyKind kind : {StrategyKind::kHBar, StrategyKind::kWavelet}) {
    for (std::int64_t shards : {1, 3, 8}) {
      SnapshotOptions config = LinearOptions(kind, 0.7, shards);
      auto a = recurrence.Evaluate(config, profile);
      auto b = dense.Evaluate(config, profile);
      ASSERT_TRUE(a.ok()) << StrategyKindName(kind) << " shards " << shards;
      ASSERT_TRUE(b.ok()) << StrategyKindName(kind) << " shards " << shards;
      EXPECT_NEAR(a.value().mean_variance, b.value().mean_variance,
                  1e-9 * b.value().mean_variance)
          << StrategyKindName(kind) << " shards " << shards;
      EXPECT_NEAR(a.value().worst_variance, b.value().worst_variance,
                  1e-9 * b.value().worst_variance)
          << StrategyKindName(kind) << " shards " << shards;
    }
  }
}

TEST(CostModelTest, PositionHeatReweightsPlacements) {
  // H~ variance depends on where a range falls (decomposition size), so
  // concentrating heat where the decomposition is cheap must lower the
  // mean below the uniform-placement fold — and the worst case must not
  // move (it scans every placement regardless of weight).
  const std::int64_t n = 256;
  CostModel model(n);
  SnapshotOptions config = LinearOptions(StrategyKind::kHTilde);

  WorkloadProfile uniform(n);
  uniform.AddLength(64, 8.0);
  auto uniform_cost = model.Evaluate(config, uniform);
  ASSERT_TRUE(uniform_cost.ok());

  // Find the placement-grid query of length 64 with the lowest variance
  // and pile the heat onto its midpoint: aligned ranges decompose into
  // fewer nodes. The grid is the cost model's: lo = p * (n - 64) / 7.
  VarianceOracle oracle(config, n);
  double best_variance = 0.0;
  Interval best(0, 63);
  for (std::int64_t p = 0; p < 8; ++p) {
    const std::int64_t lo = (p * (n - 64)) / 7;
    const Interval q(lo, lo + 63);
    const double v = oracle.RangeVariance(q);
    if (p == 0 || v < best_variance) {
      best_variance = v;
      best = q;
    }
  }
  WorkloadProfile hot(n);
  for (int i = 0; i < 8; ++i) hot.AddQuery(best);
  ASSERT_TRUE(hot.has_position_heat());
  auto hot_cost = model.Evaluate(config, hot);
  ASSERT_TRUE(hot_cost.ok());

  EXPECT_LT(hot_cost.value().mean_variance,
            uniform_cost.value().mean_variance);
  EXPECT_DOUBLE_EQ(hot_cost.value().worst_variance,
                   uniform_cost.value().worst_variance);
}

TEST(IncrementalCostModelTest, CachedRecostEqualsFromScratchBitForBit) {
  // The contract that makes the cache safe to trust: an incremental
  // re-evaluation over memoized placement variances must equal a fresh
  // CostModel::Evaluate exactly — no tolerance.
  const std::int64_t n = 128;
  IncrementalCostModel cache(n, CostModel::Options());
  CostModel fresh(n);

  WorkloadProfile first(n);
  first.AddQuery(Interval(0, 0));
  first.AddQuery(Interval(10, 41));
  first.AddLength(8, 3.0);

  WorkloadProfile drifted(n);
  drifted.AddQuery(Interval(0, 0));
  drifted.AddQuery(Interval(10, 41));
  drifted.AddQuery(Interval(90, 121));  // same length, new heat
  drifted.AddLength(8, 9.0);            // weight moved
  drifted.AddLength(64, 1.0);           // brand-new length

  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    for (std::int64_t shards : {1, 4}) {
      const SnapshotOptions config = LinearOptions(kind, 1.0, shards);
      for (const WorkloadProfile* profile : {&first, &drifted}) {
        auto cached = cache.Evaluate(config, *profile);
        auto scratch = fresh.Evaluate(config, *profile);
        ASSERT_TRUE(cached.ok());
        ASSERT_TRUE(scratch.ok());
        EXPECT_EQ(cached.value().mean_variance,
                  scratch.value().mean_variance)
            << StrategyKindName(kind) << " shards " << shards;
        EXPECT_EQ(cached.value().worst_variance,
                  scratch.value().worst_variance)
            << StrategyKindName(kind) << " shards " << shards;
      }
    }
  }
  // Second pass over `drifted` for every candidate: all lengths reused.
  const auto before = cache.stats();
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    for (std::int64_t shards : {1, 4}) {
      auto cached = cache.Evaluate(LinearOptions(kind, 1.0, shards), drifted);
      ASSERT_TRUE(cached.ok());
    }
  }
  const auto after = cache.stats();
  EXPECT_EQ(after.lengths_costed, before.lengths_costed);
  EXPECT_GT(after.lengths_reused, before.lengths_reused);
}

TEST(IncrementalCostModelTest, ReusesCachedLengthsAndBumpsGeneration) {
  const std::int64_t n = 64;
  IncrementalCostModel cache(n, CostModel::Options());
  const SnapshotOptions config = LinearOptions(StrategyKind::kHBar);

  WorkloadProfile profile(n);
  profile.AddLength(4);
  profile.AddLength(16);
  ASSERT_TRUE(cache.Evaluate(config, profile).ok());
  EXPECT_EQ(cache.stats().lengths_costed, 2u);
  EXPECT_EQ(cache.stats().lengths_reused, 0u);
  EXPECT_EQ(cache.stats().generation, 1u);

  // Same weights: same generation; every length served from the memo.
  ASSERT_TRUE(cache.Evaluate(config, profile).ok());
  EXPECT_EQ(cache.stats().lengths_costed, 2u);
  EXPECT_EQ(cache.stats().lengths_reused, 2u);
  EXPECT_EQ(cache.stats().generation, 1u);

  // Weight moves on a known length: new generation, still no oracle
  // work; only a never-seen length runs the oracle.
  profile.AddLength(4, 2.0);
  ASSERT_TRUE(cache.Evaluate(config, profile).ok());
  EXPECT_EQ(cache.stats().generation, 2u);
  EXPECT_EQ(cache.stats().lengths_costed, 2u);
  profile.AddLength(32);
  ASSERT_TRUE(cache.Evaluate(config, profile).ok());
  EXPECT_EQ(cache.stats().generation, 3u);
  EXPECT_EQ(cache.stats().lengths_costed, 3u);
}

TEST(CostModelTest, RejectsAutoEmptyProfilesAndBadConfigs) {
  CostModel model(64);
  WorkloadProfile profile(64);
  profile.AddLength(1);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kAuto), profile).ok());
  WorkloadProfile empty(64);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde), empty).ok());
  WorkloadProfile mismatched(32);
  mismatched.AddLength(1);
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde), mismatched).ok());
  EXPECT_FALSE(
      model.Evaluate(LinearOptions(StrategyKind::kLTilde, -1.0), profile)
          .ok());
}

}  // namespace
}  // namespace dphist::planner
