#include "planner/workload_profile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace dphist::planner {
namespace {

TEST(WorkloadProfileTest, AccumulatesQueriesByLength) {
  WorkloadProfile profile(64);
  EXPECT_TRUE(profile.empty());
  profile.AddQuery(Interval(0, 0));
  profile.AddQuery(Interval(63, 63));
  profile.AddQuery(Interval(10, 19));
  profile.AddLength(10, 2.5);
  EXPECT_FALSE(profile.empty());
  EXPECT_DOUBLE_EQ(profile.total_weight(), 5.5);
  ASSERT_EQ(profile.length_weights().size(), 2u);
  EXPECT_DOUBLE_EQ(profile.length_weights().at(1), 2.0);
  EXPECT_DOUBLE_EQ(profile.length_weights().at(10), 3.5);
}

TEST(WorkloadProfileTest, GeometricSweepCoversPowersOfTwoAndDomain) {
  WorkloadProfile profile = WorkloadProfile::GeometricSweep(48);
  // 1, 2, 4, 8, 16, 32, 48.
  ASSERT_EQ(profile.length_weights().size(), 7u);
  EXPECT_EQ(profile.length_weights().count(32), 1u);
  EXPECT_EQ(profile.length_weights().count(48), 1u);
  EXPECT_DOUBLE_EQ(profile.total_weight(), 7.0);

  // A power-of-two domain does not double-count the full length.
  WorkloadProfile pow2 = WorkloadProfile::GeometricSweep(64);
  EXPECT_EQ(pow2.length_weights().size(), 7u);  // 1..64
  EXPECT_DOUBLE_EQ(pow2.length_weights().at(64), 1.0);
}

TEST(WorkloadProfileTest, FromQueryFileParsesTheServeFormat) {
  std::string path = ::testing::TempDir() + "/profile_queries.txt";
  {
    std::ofstream file(path);
    file << "0 9\n"
         << "5,14\n"
         << "\n"
         << "63 63\n";
  }
  auto profile = WorkloadProfile::FromQueryFile(path, 64);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_DOUBLE_EQ(profile.value().total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(profile.value().length_weights().at(10), 2.0);
  EXPECT_DOUBLE_EQ(profile.value().length_weights().at(1), 1.0);
  std::remove(path.c_str());
}

TEST(WorkloadProfileTest, FileErrorsCarryLineNumbers) {
  std::string path = ::testing::TempDir() + "/profile_bad.txt";
  {
    std::ofstream file(path);
    file << "0 9\n9 100\n";
  }
  auto out_of_range = WorkloadProfile::FromQueryFile(path, 64);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_NE(out_of_range.status().message().find("line 2"),
            std::string::npos);

  {
    std::ofstream file(path);
    file << "7\n";
  }
  auto malformed = WorkloadProfile::FromQueryFile(path, 64);
  ASSERT_FALSE(malformed.ok());
  EXPECT_NE(malformed.status().message().find("expected"),
            std::string::npos);

  auto missing =
      WorkloadProfile::FromQueryFile(path + ".does-not-exist", 64);
  EXPECT_FALSE(missing.ok());
  std::remove(path.c_str());
}

TEST(WorkloadProfileDeathTest, RejectsQueriesOutsideTheDomain) {
  WorkloadProfile profile(16);
  EXPECT_DEATH(profile.AddQuery(Interval(10, 16)), "domain");
  EXPECT_DEATH(profile.AddLength(17), "length");
  EXPECT_DEATH(profile.AddLength(4, 0.0), "weight");
}

TEST(QueryReservoirTest, KeepsEverythingWhileUnderCapacity) {
  QueryReservoir reservoir(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    reservoir.Observe(Interval(i, i + 2));
  }
  EXPECT_EQ(reservoir.seen(), 5u);
  ASSERT_EQ(reservoir.sample().size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reservoir.sample()[static_cast<std::size_t>(i)].lo(), i);
  }
  // Under capacity the contributed weights are exactly 1 per query.
  WorkloadProfile profile(64);
  reservoir.AddTo(&profile);
  EXPECT_DOUBLE_EQ(profile.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(profile.length_weights().at(3), 5.0);
}

TEST(QueryReservoirTest, BoundedAndDeterministicBeyondCapacity) {
  QueryReservoir a(16);
  QueryReservoir b(16);
  for (std::int64_t i = 0; i < 1000; ++i) {
    a.Observe(Interval(i % 50, i % 50));
    b.Observe(Interval(i % 50, i % 50));
  }
  EXPECT_EQ(a.seen(), 1000u);
  ASSERT_EQ(a.sample().size(), 16u);
  // The replacement stream is a pure function of the running count, so
  // the same observation sequence always yields the same sample.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.sample()[i].lo(), b.sample()[i].lo());
  }
  // AddTo scales the retained weights back up to the observed count.
  WorkloadProfile profile(64);
  a.AddTo(&profile);
  EXPECT_DOUBLE_EQ(profile.total_weight(), 1000.0);
}

TEST(QueryReservoirTest, ZeroCapacityObservesWithoutSampling) {
  QueryReservoir reservoir(0);
  reservoir.Observe(Interval(0, 3));
  EXPECT_EQ(reservoir.seen(), 1u);
  EXPECT_TRUE(reservoir.empty());
  WorkloadProfile profile(8);
  reservoir.AddTo(&profile);  // nothing sampled, nothing added
  EXPECT_TRUE(profile.empty());
}

}  // namespace
}  // namespace dphist::planner
