#include "analysis/strategy_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "domain/histogram.h"
#include "estimators/universal.h"
#include "estimators/wavelet.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

namespace dphist {
namespace {

TEST(StrategyMatrixTest, SensitivitiesMatchTheQueries) {
  EXPECT_DOUBLE_EQ(StrategyL1Sensitivity(IdentityStrategy(16)), 1.0);
  // H over 16 leaves, k=2: height 5.
  EXPECT_DOUBLE_EQ(StrategyL1Sensitivity(HierarchicalStrategy(16, 2)), 5.0);
  EXPECT_DOUBLE_EQ(StrategyL1Sensitivity(HierarchicalStrategy(16, 4)), 3.0);
  // Weighted wavelet: 1 + log2(n).
  EXPECT_DOUBLE_EQ(StrategyL1Sensitivity(WaveletStrategy(16)), 5.0);
}

TEST(StrategyMatrixTest, HierarchicalRowsAreTreeRanges) {
  linalg::Matrix h = HierarchicalStrategy(4, 2);
  ASSERT_EQ(h.rows(), 7u);
  // Root row: all ones.
  for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(h(0, j), 1.0);
  // Node 1: left half.
  EXPECT_DOUBLE_EQ(h(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 2), 0.0);
  // Leaves are unit rows.
  EXPECT_DOUBLE_EQ(h(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(3, 1), 0.0);
}

TEST(StrategyMatrixTest, IdentityStrategyVarianceIsClosedForm) {
  // L: Var(range of length R) = 2 R / eps^2, exactly.
  auto analyzer = StrategyAnalyzer::Create(IdentityStrategy(32), 0.5);
  ASSERT_TRUE(analyzer.ok());
  EXPECT_NEAR(analyzer.value().RangeVariance(Interval(0, 0)), 8.0, 1e-9);
  EXPECT_NEAR(analyzer.value().RangeVariance(Interval(3, 18)), 128.0, 1e-9);
}

TEST(StrategyMatrixTest, AnalyticHMatchesEmpiricalHBar) {
  // The closed form must agree with sampling the actual H-bar pipeline.
  const std::int64_t n = 16;
  const double eps = 1.0;
  auto analyzer = StrategyAnalyzer::Create(HierarchicalStrategy(n, 2), eps);
  ASSERT_TRUE(analyzer.ok());

  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 3));
  UniversalOptions options;
  options.epsilon = eps;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  HierarchicalQuery query(n, 2);
  LaplaceMechanism mechanism(eps);

  for (const Interval& q : {Interval(0, 0), Interval(2, 9),
                            Interval(0, 15), Interval(5, 12)}) {
    Rng rng(static_cast<std::uint64_t>(q.lo()) * 100 + 17);
    RunningStat err;
    double truth = data.Count(q);
    for (int t = 0; t < 8000; ++t) {
      std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
      HBarEstimator hbar(n, options, noisy);
      double d = hbar.RangeCount(q) - truth;
      err.Add(d * d);
    }
    double analytic = analyzer.value().RangeVariance(q);
    EXPECT_NEAR(err.Mean(), analytic, analytic * 0.08) << q.ToString();
  }
}

TEST(StrategyMatrixTest, AnalyticWaveletMatchesEmpiricalEstimator) {
  const std::int64_t n = 16;
  const double eps = 1.0;
  auto analyzer = StrategyAnalyzer::Create(WaveletStrategy(n), eps);
  ASSERT_TRUE(analyzer.ok());

  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 2));
  WaveletOptions options;
  options.epsilon = eps;
  options.round_to_nonnegative_integers = false;

  for (const Interval& q : {Interval(0, 7), Interval(3, 12)}) {
    Rng rng(static_cast<std::uint64_t>(q.hi()) * 31 + 3);
    RunningStat err;
    double truth = data.Count(q);
    for (int t = 0; t < 8000; ++t) {
      WaveletEstimator wavelet(data, options, &rng);
      double d = wavelet.RangeCount(q) - truth;
      err.Add(d * d);
    }
    double analytic = analyzer.value().RangeVariance(q);
    EXPECT_NEAR(err.Mean(), analytic, analytic * 0.08) << q.ToString();
  }
}

TEST(StrategyMatrixTest, Theorem4iiHBeatsIdentityAtLargeRanges) {
  // Analytic (noise-free) confirmation of the Fig. 6 crossover: under H
  // the large-range variance beats L's; at unit ranges L wins. The
  // crossover needs ranges beyond ~2 ell^2, so use a 256-bin domain
  // (ell = 9) where 250-length ranges sit beyond it.
  const std::int64_t n = 256;
  auto l = StrategyAnalyzer::Create(IdentityStrategy(n), 1.0);
  auto h = StrategyAnalyzer::Create(HierarchicalStrategy(n, 2), 1.0);
  ASSERT_TRUE(l.ok() && h.ok());
  EXPECT_LT(l.value().RangeVariance(Interval(5, 5)),
            h.value().RangeVariance(Interval(5, 5)));
  EXPECT_GT(l.value().RangeVariance(Interval(1, 254)),
            h.value().RangeVariance(Interval(1, 254)));
}

TEST(StrategyMatrixTest, Theorem4ivWitnessBoundAnalytic) {
  // The witness ratio of Theorem 4(iv), evaluated exactly: for q = all
  // but the extreme leaves, Var_H(q) <= 3/(2(ell-1)(k-1)-k) * Var_H~(q).
  for (std::int64_t height = 4; height <= 7; ++height) {
    std::int64_t n = std::int64_t{1} << (height - 1);
    auto h = StrategyAnalyzer::Create(HierarchicalStrategy(n, 2), 1.0);
    ASSERT_TRUE(h.ok());
    Interval witness(1, n - 2);
    double hbar_var = h.value().RangeVariance(witness);
    double ell = static_cast<double>(height);
    double subtrees = 2.0 * (ell - 1.0) - 2.0;
    double htilde_var = subtrees * 2.0 * ell * ell;  // decomposition sum
    double bound = 3.0 / subtrees;
    EXPECT_LE(hbar_var, bound * htilde_var * (1.0 + 1e-9))
        << "height " << height;
  }
}

TEST(StrategyMatrixTest, GaussMarkovHBeatsDecompositionEverywhere) {
  // Theorem 4(ii) analytically: the OLS range variance under H is never
  // above the subtree-decomposition estimator's variance, for EVERY
  // range of a 32-leaf tree.
  const std::int64_t n = 32;
  const std::int64_t height = 6;
  auto h = StrategyAnalyzer::Create(HierarchicalStrategy(n, 2), 1.0);
  ASSERT_TRUE(h.ok());
  TreeLayout tree(n, 2);
  for (std::int64_t lo = 0; lo < n; ++lo) {
    for (std::int64_t hi = lo; hi < n; ++hi) {
      Interval q(lo, hi);
      double ols = h.value().RangeVariance(q);
      double decomposition =
          static_cast<double>(DecomposeRange(tree, q).size()) * 2.0 *
          static_cast<double>(height) * static_cast<double>(height);
      EXPECT_LE(ols, decomposition * (1.0 + 1e-9)) << q.ToString();
    }
  }
}

TEST(StrategyMatrixTest, RejectsRankDeficientStrategy) {
  // Two identical unit rows but a missing column: zero column -> error.
  linalg::Matrix bad(2, 2);
  bad(0, 0) = 1.0;
  bad(1, 0) = 1.0;
  auto analyzer = StrategyAnalyzer::Create(bad, 1.0);
  EXPECT_FALSE(analyzer.ok());
}

TEST(StrategyMatrixTest, RejectsBadEpsilon) {
  EXPECT_FALSE(StrategyAnalyzer::Create(IdentityStrategy(4), 0.0).ok());
}

}  // namespace
}  // namespace dphist
