#include "domain/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace dphist {
namespace {

TEST(HistogramTest, ZeroConstruction) {
  Histogram h(Domain(4, "src"));
  EXPECT_EQ(h.size(), 4);
  EXPECT_DOUBLE_EQ(h.Total(), 0.0);
  EXPECT_EQ(h.domain().attribute(), "src");
}

TEST(HistogramTest, FromCountsAndAccessors) {
  // The running example of Fig. 2: L(I) = <2, 0, 10, 2>.
  Histogram h = Histogram::FromCounts({2, 0, 10, 2}, "src");
  EXPECT_EQ(h.size(), 4);
  EXPECT_DOUBLE_EQ(h.At(0), 2.0);
  EXPECT_DOUBLE_EQ(h.At(2), 10.0);
  EXPECT_DOUBLE_EQ(h.Total(), 14.0);
}

TEST(HistogramTest, RangeCountsMatchPaperExample) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2}, "src");
  // "the total number of packets is 14"
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 3)), 14.0);
  // "the number of packets from a source address matching prefix 01* is 12"
  EXPECT_DOUBLE_EQ(h.Count(Interval(2, 3)), 12.0);
  // "the counts from source address 010 is 10"
  EXPECT_DOUBLE_EQ(h.Count(Interval::Unit(2)), 10.0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 1)), 2.0);
}

TEST(HistogramTest, SetAndIncrementInvalidatePrefix) {
  Histogram h = Histogram::FromCounts({1, 1, 1});
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 3.0);
  h.Set(1, 5.0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 7.0);
  h.Increment(0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 8.0);
  h.Increment(2, 2.5);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 10.5);
}

TEST(HistogramTest, ConcurrentFirstCountAfterMutationIsSafe) {
  // The thread-safety contract behind parallel Snapshot::Build: const
  // accessors need no caller-side ceremony. Mutate (invalidating the
  // eager prefix table), then race many first Count() calls — the
  // double-checked rebuild must give every thread the same answer.
  // Under ThreadSanitizer this is also a data-race probe.
  Histogram h = Histogram::FromCounts(std::vector<std::int64_t>(4096, 1));
  h.Increment(17, 3.0);  // prefix table now stale

  constexpr int kThreads = 8;
  std::vector<double> totals(kThreads, -1.0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, &totals, t] {
      totals[static_cast<std::size_t>(t)] =
          h.Count(Interval(0, h.size() - 1)) + h.Count(Interval(17, 17));
    });
  }
  for (std::thread& w : workers) w.join();
  for (double total : totals) EXPECT_DOUBLE_EQ(total, 4099.0 + 4.0);
}

TEST(HistogramTest, CopyAndMoveCarryCountsAndPrefixState) {
  Histogram original = Histogram::FromCounts({1, 2, 3});
  Histogram copy = original;
  EXPECT_DOUBLE_EQ(copy.Count(Interval(0, 2)), 6.0);
  copy.Set(0, 10.0);
  // Copies are independent.
  EXPECT_DOUBLE_EQ(copy.Count(Interval(0, 2)), 15.0);
  EXPECT_DOUBLE_EQ(original.Count(Interval(0, 2)), 6.0);

  Histogram moved = std::move(copy);
  EXPECT_DOUBLE_EQ(moved.Count(Interval(0, 2)), 15.0);

  Histogram assigned = Histogram::FromCounts({9});
  assigned = original;
  EXPECT_DOUBLE_EQ(assigned.Count(Interval(0, 2)), 6.0);
  assigned = Histogram::FromCounts({4, 4});
  EXPECT_DOUBLE_EQ(assigned.Count(Interval(0, 1)), 8.0);
}

TEST(HistogramTest, SortedCountsIsUnattributedHistogram) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2});
  std::vector<double> sorted = h.SortedCounts();
  // S(I) = <0, 2, 2, 10> (Example 3).
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_DOUBLE_EQ(sorted[0], 0.0);
  EXPECT_DOUBLE_EQ(sorted[1], 2.0);
  EXPECT_DOUBLE_EQ(sorted[2], 2.0);
  EXPECT_DOUBLE_EQ(sorted[3], 10.0);
}

TEST(HistogramTest, NonZeroAndDistinctCounts) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2});
  EXPECT_EQ(h.NonZeroCount(), 3);
  EXPECT_EQ(h.DistinctCountValues(), 3);  // {0, 2, 10}
}

TEST(HistogramTest, RandomRangeAgreesWithNaiveSum) {
  Rng rng(21);
  std::vector<double> counts(257);
  for (double& c : counts) c = rng.NextUniform(0, 10);
  Histogram h(counts);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t lo = rng.NextInt(0, 256);
    std::int64_t hi = rng.NextInt(lo, 256);
    double naive = 0.0;
    for (std::int64_t i = lo; i <= hi; ++i) naive += counts[i];
    EXPECT_NEAR(h.Count(Interval(lo, hi)), naive, 1e-9);
  }
}

TEST(HistogramDeathTest, RangeOutsideDomainRejected) {
  Histogram h = Histogram::FromCounts({1, 2, 3});
  EXPECT_DEATH(h.Count(Interval(0, 3)), "outside the domain");
  EXPECT_DEATH(h.At(3), "");
}

TEST(DomainTest, LabelsFallBackToPositions) {
  Domain d(3, "grade");
  EXPECT_EQ(d.LabelAt(1), "1");
  d.SetLabels({"A", "B", "C"});
  EXPECT_EQ(d.LabelAt(0), "A");
  EXPECT_EQ(d.LabelAt(2), "C");
}

TEST(DomainTest, FullRangeAndContainment) {
  Domain d(8);
  EXPECT_EQ(d.FullRange(), Interval(0, 7));
  EXPECT_TRUE(d.ContainsInterval(Interval(0, 7)));
  EXPECT_FALSE(d.ContainsInterval(Interval(0, 8)));
}

}  // namespace
}  // namespace dphist
