#include "domain/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dphist {
namespace {

TEST(HistogramTest, ZeroConstruction) {
  Histogram h(Domain(4, "src"));
  EXPECT_EQ(h.size(), 4);
  EXPECT_DOUBLE_EQ(h.Total(), 0.0);
  EXPECT_EQ(h.domain().attribute(), "src");
}

TEST(HistogramTest, FromCountsAndAccessors) {
  // The running example of Fig. 2: L(I) = <2, 0, 10, 2>.
  Histogram h = Histogram::FromCounts({2, 0, 10, 2}, "src");
  EXPECT_EQ(h.size(), 4);
  EXPECT_DOUBLE_EQ(h.At(0), 2.0);
  EXPECT_DOUBLE_EQ(h.At(2), 10.0);
  EXPECT_DOUBLE_EQ(h.Total(), 14.0);
}

TEST(HistogramTest, RangeCountsMatchPaperExample) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2}, "src");
  // "the total number of packets is 14"
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 3)), 14.0);
  // "the number of packets from a source address matching prefix 01* is 12"
  EXPECT_DOUBLE_EQ(h.Count(Interval(2, 3)), 12.0);
  // "the counts from source address 010 is 10"
  EXPECT_DOUBLE_EQ(h.Count(Interval::Unit(2)), 10.0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 1)), 2.0);
}

TEST(HistogramTest, SetAndIncrementInvalidatePrefix) {
  Histogram h = Histogram::FromCounts({1, 1, 1});
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 3.0);
  h.Set(1, 5.0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 7.0);
  h.Increment(0);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 8.0);
  h.Increment(2, 2.5);
  EXPECT_DOUBLE_EQ(h.Count(Interval(0, 2)), 10.5);
}

TEST(HistogramTest, SortedCountsIsUnattributedHistogram) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2});
  std::vector<double> sorted = h.SortedCounts();
  // S(I) = <0, 2, 2, 10> (Example 3).
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_DOUBLE_EQ(sorted[0], 0.0);
  EXPECT_DOUBLE_EQ(sorted[1], 2.0);
  EXPECT_DOUBLE_EQ(sorted[2], 2.0);
  EXPECT_DOUBLE_EQ(sorted[3], 10.0);
}

TEST(HistogramTest, NonZeroAndDistinctCounts) {
  Histogram h = Histogram::FromCounts({2, 0, 10, 2});
  EXPECT_EQ(h.NonZeroCount(), 3);
  EXPECT_EQ(h.DistinctCountValues(), 3);  // {0, 2, 10}
}

TEST(HistogramTest, RandomRangeAgreesWithNaiveSum) {
  Rng rng(21);
  std::vector<double> counts(257);
  for (double& c : counts) c = rng.NextUniform(0, 10);
  Histogram h(counts);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t lo = rng.NextInt(0, 256);
    std::int64_t hi = rng.NextInt(lo, 256);
    double naive = 0.0;
    for (std::int64_t i = lo; i <= hi; ++i) naive += counts[i];
    EXPECT_NEAR(h.Count(Interval(lo, hi)), naive, 1e-9);
  }
}

TEST(HistogramDeathTest, RangeOutsideDomainRejected) {
  Histogram h = Histogram::FromCounts({1, 2, 3});
  EXPECT_DEATH(h.Count(Interval(0, 3)), "outside the domain");
  EXPECT_DEATH(h.At(3), "");
}

TEST(DomainTest, LabelsFallBackToPositions) {
  Domain d(3, "grade");
  EXPECT_EQ(d.LabelAt(1), "1");
  d.SetLabels({"A", "B", "C"});
  EXPECT_EQ(d.LabelAt(0), "A");
  EXPECT_EQ(d.LabelAt(2), "C");
}

TEST(DomainTest, FullRangeAndContainment) {
  Domain d(8);
  EXPECT_EQ(d.FullRange(), Interval(0, 7));
  EXPECT_TRUE(d.ContainsInterval(Interval(0, 7)));
  EXPECT_FALSE(d.ContainsInterval(Interval(0, 8)));
}

}  // namespace
}  // namespace dphist
