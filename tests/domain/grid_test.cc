#include "domain/grid.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dphist {
namespace {

TEST(RectTest, BasicAccessorsAndArea) {
  Rect r(1, 3, 2, 5);
  EXPECT_EQ(r.row_lo(), 1);
  EXPECT_EQ(r.row_hi(), 3);
  EXPECT_EQ(r.col_lo(), 2);
  EXPECT_EQ(r.col_hi(), 5);
  EXPECT_EQ(r.Area(), 12);
}

TEST(RectTest, ContainsAndCovers) {
  Rect outer(0, 9, 0, 9);
  Rect inner(2, 4, 3, 6);
  EXPECT_TRUE(outer.Covers(inner));
  EXPECT_FALSE(inner.Covers(outer));
  EXPECT_TRUE(inner.Contains(3, 4));
  EXPECT_FALSE(inner.Contains(1, 4));
  EXPECT_FALSE(inner.Contains(3, 7));
}

TEST(RectTest, Overlaps) {
  Rect a(0, 4, 0, 4);
  EXPECT_TRUE(a.Overlaps(Rect(4, 8, 4, 8)));   // corner touch
  EXPECT_FALSE(a.Overlaps(Rect(5, 8, 0, 4)));  // below
  EXPECT_FALSE(a.Overlaps(Rect(0, 4, 5, 8)));  // right
  EXPECT_TRUE(a.Overlaps(Rect(2, 3, 2, 3)));   // inside
}

TEST(RectTest, EqualityAndToString) {
  EXPECT_EQ(Rect(0, 1, 2, 3), Rect(0, 1, 2, 3));
  EXPECT_FALSE(Rect(0, 1, 2, 3) == Rect(0, 1, 2, 4));
  EXPECT_EQ(Rect(0, 1, 2, 3).ToString(), "[0..1] x [2..3]");
}

TEST(RectDeathTest, RejectsEmpty) {
  EXPECT_DEATH(Rect(2, 1, 0, 0), "lo <= hi");
  EXPECT_DEATH(Rect(0, 0, 5, 4), "lo <= hi");
}

TEST(GridHistogramTest, ZeroConstructionAndShape) {
  GridHistogram g(3, 5, "geo");
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 5);
  EXPECT_EQ(g.attribute(), "geo");
  EXPECT_DOUBLE_EQ(g.Total(), 0.0);
  EXPECT_EQ(g.FullRect(), Rect(0, 2, 0, 4));
}

TEST(GridHistogramTest, FromCountsRowMajor) {
  GridHistogram g = GridHistogram::FromCounts(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(g.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.At(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.At(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(g.Total(), 21.0);
}

TEST(GridHistogramTest, RectCountsByHand) {
  GridHistogram g = GridHistogram::FromCounts(3, 3,
                                              {1, 2, 3,
                                               4, 5, 6,
                                               7, 8, 9});
  EXPECT_DOUBLE_EQ(g.Count(Rect(0, 0, 0, 0)), 1.0);
  EXPECT_DOUBLE_EQ(g.Count(Rect(0, 1, 0, 1)), 12.0);   // 1+2+4+5
  EXPECT_DOUBLE_EQ(g.Count(Rect(1, 2, 1, 2)), 28.0);   // 5+6+8+9
  EXPECT_DOUBLE_EQ(g.Count(Rect(0, 2, 1, 1)), 15.0);   // column 1
  EXPECT_DOUBLE_EQ(g.Count(Rect(2, 2, 0, 2)), 24.0);   // row 2
}

TEST(GridHistogramTest, MutationInvalidatesPrefix) {
  GridHistogram g(2, 2);
  EXPECT_DOUBLE_EQ(g.Count(g.FullRect()), 0.0);
  g.Set(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(g.Count(g.FullRect()), 5.0);
  g.Increment(1, 1, 2.5);
  EXPECT_DOUBLE_EQ(g.Count(g.FullRect()), 7.5);
  EXPECT_DOUBLE_EQ(g.Count(Rect(1, 1, 1, 1)), 2.5);
}

TEST(GridHistogramTest, RandomRectsAgreeWithNaiveSum) {
  Rng rng(31);
  const std::int64_t rows = 17, cols = 23;
  GridHistogram g(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      g.Set(r, c, rng.NextUniform(0, 5));
    }
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::int64_t r0 = rng.NextInt(0, rows - 1);
    std::int64_t r1 = rng.NextInt(r0, rows - 1);
    std::int64_t c0 = rng.NextInt(0, cols - 1);
    std::int64_t c1 = rng.NextInt(c0, cols - 1);
    double naive = 0.0;
    for (std::int64_t r = r0; r <= r1; ++r) {
      for (std::int64_t c = c0; c <= c1; ++c) naive += g.At(r, c);
    }
    EXPECT_NEAR(g.Count(Rect(r0, r1, c0, c1)), naive, 1e-9);
  }
}

TEST(GridHistogramDeathTest, OutOfBoundsRejected) {
  GridHistogram g(2, 2);
  EXPECT_DEATH(g.At(2, 0), "");
  EXPECT_DEATH(g.Count(Rect(0, 2, 0, 1)), "outside the grid");
}

}  // namespace
}  // namespace dphist
