#include "domain/interval.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(IntervalTest, BasicAccessorsAndLength) {
  Interval i(3, 7);
  EXPECT_EQ(i.lo(), 3);
  EXPECT_EQ(i.hi(), 7);
  EXPECT_EQ(i.Length(), 5);
}

TEST(IntervalTest, UnitInterval) {
  Interval u = Interval::Unit(4);
  EXPECT_EQ(u.lo(), 4);
  EXPECT_EQ(u.hi(), 4);
  EXPECT_EQ(u.Length(), 1);
}

TEST(IntervalTest, Contains) {
  Interval i(2, 5);
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(4));
  EXPECT_TRUE(i.Contains(5));
  EXPECT_FALSE(i.Contains(1));
  EXPECT_FALSE(i.Contains(6));
}

TEST(IntervalTest, Covers) {
  Interval outer(0, 10);
  EXPECT_TRUE(outer.Covers(Interval(0, 10)));
  EXPECT_TRUE(outer.Covers(Interval(3, 7)));
  EXPECT_FALSE(outer.Covers(Interval(5, 11)));
  EXPECT_FALSE(Interval(3, 7).Covers(outer));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(5, 9)));
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(3, 4)));
  EXPECT_FALSE(Interval(0, 5).Overlaps(Interval(6, 9)));
  EXPECT_FALSE(Interval(6, 9).Overlaps(Interval(0, 5)));
}

TEST(IntervalTest, TouchesIncludesAdjacency) {
  EXPECT_TRUE(Interval(0, 5).Touches(Interval(6, 9)));
  EXPECT_TRUE(Interval(6, 9).Touches(Interval(0, 5)));
  EXPECT_FALSE(Interval(0, 5).Touches(Interval(7, 9)));
}

TEST(IntervalTest, EqualityAndToString) {
  EXPECT_EQ(Interval(1, 2), Interval(1, 2));
  EXPECT_FALSE(Interval(1, 2) == Interval(1, 3));
  EXPECT_EQ(Interval(1, 2).ToString(), "[1, 2]");
}

TEST(IntervalDeathTest, RejectsInvertedBounds) {
  EXPECT_DEATH(Interval(5, 4), "lo <= hi");
}

}  // namespace
}  // namespace dphist
