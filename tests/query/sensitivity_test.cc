// Empirical sensitivity checks (Definition 2.2): for randomly drawn
// databases and random single-record additions (the neighbor relation),
// the L1 change of each query's answer must never exceed the declared
// sensitivity — and an adversarially chosen neighbor must achieve it.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/statistics.h"
#include "domain/histogram.h"
#include "query/hierarchical_query.h"
#include "query/sorted_query.h"
#include "query/unit_query.h"

namespace dphist {
namespace {

Histogram RandomDatabase(std::int64_t n, Rng* rng) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n));
  for (auto& c : counts) {
    // Mix of empty, small, and duplicate-heavy counts.
    c = rng->NextBernoulli(0.4) ? 0 : rng->NextInt(0, 6);
  }
  return Histogram::FromCounts(counts);
}

double NeighborL1Delta(const QuerySequence& query, const Histogram& base,
                       std::int64_t position) {
  Histogram neighbor = base;
  neighbor.Increment(position);  // Add one record at `position`.
  return L1Distance(query.Evaluate(base), query.Evaluate(neighbor));
}

class SensitivitySweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SensitivitySweep, UnitQueryNeverExceedsOne) {
  std::int64_t n = GetParam();
  UnitQuery query(n);
  Rng rng(static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 30; ++trial) {
    Histogram base = RandomDatabase(n, &rng);
    std::int64_t pos = rng.NextInt(0, n - 1);
    double delta = NeighborL1Delta(query, base, pos);
    EXPECT_LE(delta, query.Sensitivity() + 1e-9);
    EXPECT_DOUBLE_EQ(delta, 1.0);  // L always changes by exactly 1.
  }
}

TEST_P(SensitivitySweep, SortedQueryNeverExceedsOne) {
  // Proposition 3: despite the global sort, adding one record moves the
  // sorted vector by exactly 1 in L1.
  std::int64_t n = GetParam();
  SortedQuery query(n);
  Rng rng(static_cast<std::uint64_t>(n) + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    Histogram base = RandomDatabase(n, &rng);
    std::int64_t pos = rng.NextInt(0, n - 1);
    double delta = NeighborL1Delta(query, base, pos);
    EXPECT_LE(delta, query.Sensitivity() + 1e-9);
    EXPECT_DOUBLE_EQ(delta, 1.0);
  }
}

TEST_P(SensitivitySweep, HierarchicalQueryNeverExceedsHeight) {
  std::int64_t n = GetParam();
  HierarchicalQuery query(n, 2);
  Rng rng(static_cast<std::uint64_t>(n) + 2000);
  for (int trial = 0; trial < 30; ++trial) {
    Histogram base = RandomDatabase(n, &rng);
    std::int64_t pos = rng.NextInt(0, n - 1);
    double delta = NeighborL1Delta(query, base, pos);
    EXPECT_LE(delta, query.Sensitivity() + 1e-9);
    // Proposition 4: the bound is achieved by *every* neighbor — the
    // record's leaf and each ancestor change by exactly one.
    EXPECT_DOUBLE_EQ(delta, query.Sensitivity());
  }
}

INSTANTIATE_TEST_SUITE_P(DomainSizes, SensitivitySweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33, 100));

TEST(SensitivityTest, SortedQueryRemovalAlsoBounded) {
  SortedQuery query(8);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Histogram base = RandomDatabase(8, &rng);
    // Remove one record from a nonzero position if any exists.
    std::int64_t pos = -1;
    for (std::int64_t i = 0; i < 8; ++i) {
      if (base.At(i) > 0) pos = i;
    }
    if (pos < 0) continue;
    Histogram neighbor = base;
    neighbor.Increment(pos, -1.0);
    double delta =
        L1Distance(query.Evaluate(base), query.Evaluate(neighbor));
    EXPECT_DOUBLE_EQ(delta, 1.0);
  }
}

TEST(SensitivityTest, HierarchicalSensitivityGrowsLogarithmically) {
  EXPECT_DOUBLE_EQ(HierarchicalQuery(4, 2).Sensitivity(), 3.0);
  EXPECT_DOUBLE_EQ(HierarchicalQuery(8, 2).Sensitivity(), 4.0);
  EXPECT_DOUBLE_EQ(HierarchicalQuery(1024, 2).Sensitivity(), 11.0);
  EXPECT_DOUBLE_EQ(HierarchicalQuery(65536, 2).Sensitivity(), 17.0);
  // Larger branching flattens the tree.
  EXPECT_DOUBLE_EQ(HierarchicalQuery(65536, 16).Sensitivity(), 5.0);
}

TEST(SensitivityTest, RepeatedQueryScalesSensitivity) {
  // The paper's remark after Proposition 1: repeating a query k times
  // multiplies sensitivity by k. Emulate with a tree of height 1 repeated
  // via a composite: here we simply verify L1 additivity of the neighbor
  // delta across concatenated answer vectors.
  UnitQuery query(4);
  Histogram base = Histogram::FromCounts({1, 2, 3, 4});
  Histogram neighbor = base;
  neighbor.Increment(2);
  std::vector<double> b1 = query.Evaluate(base);
  std::vector<double> n1 = query.Evaluate(neighbor);
  // Concatenate three copies.
  std::vector<double> b3, n3;
  for (int r = 0; r < 3; ++r) {
    b3.insert(b3.end(), b1.begin(), b1.end());
    n3.insert(n3.end(), n1.begin(), n1.end());
  }
  EXPECT_DOUBLE_EQ(L1Distance(b3, n3), 3.0 * L1Distance(b1, n1));
}

}  // namespace
}  // namespace dphist
