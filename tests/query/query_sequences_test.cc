#include <gtest/gtest.h>

#include "domain/histogram.h"
#include "query/hierarchical_query.h"
#include "query/sorted_query.h"
#include "query/unit_query.h"

namespace dphist {
namespace {

// The running example of Fig. 2: src counts <2, 0, 10, 2>.
Histogram PaperExample() { return Histogram::FromCounts({2, 0, 10, 2}, "src"); }

TEST(UnitQueryTest, MatchesPaperExample) {
  UnitQuery query(4);
  std::vector<double> answer = query.Evaluate(PaperExample());
  // L(I) = <2, 0, 10, 2>.
  ASSERT_EQ(answer.size(), 4u);
  EXPECT_DOUBLE_EQ(answer[0], 2.0);
  EXPECT_DOUBLE_EQ(answer[1], 0.0);
  EXPECT_DOUBLE_EQ(answer[2], 10.0);
  EXPECT_DOUBLE_EQ(answer[3], 2.0);
  EXPECT_EQ(query.size(), 4);
  EXPECT_DOUBLE_EQ(query.Sensitivity(), 1.0);
  EXPECT_EQ(query.Name(), "L");
}

TEST(SortedQueryTest, MatchesPaperExample) {
  SortedQuery query(4);
  std::vector<double> answer = query.Evaluate(PaperExample());
  // S(I) = <0, 2, 2, 10> (Example 3).
  ASSERT_EQ(answer.size(), 4u);
  EXPECT_DOUBLE_EQ(answer[0], 0.0);
  EXPECT_DOUBLE_EQ(answer[1], 2.0);
  EXPECT_DOUBLE_EQ(answer[2], 2.0);
  EXPECT_DOUBLE_EQ(answer[3], 10.0);
  EXPECT_DOUBLE_EQ(query.Sensitivity(), 1.0);
  EXPECT_EQ(query.Name(), "S");
}

TEST(HierarchicalQueryTest, MatchesPaperExample) {
  HierarchicalQuery query(4, 2);
  std::vector<double> answer = query.Evaluate(PaperExample());
  // H(I) = <14, 2, 12, 2, 0, 10, 2> (Example 6).
  ASSERT_EQ(answer.size(), 7u);
  EXPECT_DOUBLE_EQ(answer[0], 14.0);
  EXPECT_DOUBLE_EQ(answer[1], 2.0);
  EXPECT_DOUBLE_EQ(answer[2], 12.0);
  EXPECT_DOUBLE_EQ(answer[3], 2.0);
  EXPECT_DOUBLE_EQ(answer[4], 0.0);
  EXPECT_DOUBLE_EQ(answer[5], 10.0);
  EXPECT_DOUBLE_EQ(answer[6], 2.0);
  // Sensitivity equals the tree height ell = 3 (Proposition 4).
  EXPECT_DOUBLE_EQ(query.Sensitivity(), 3.0);
  EXPECT_EQ(query.Name(), "H");
}

TEST(HierarchicalQueryTest, PaddedDomainKeepsSums) {
  // 5 counts pad to 8 leaves; every internal sum must still be exact.
  Histogram data = Histogram::FromCounts({1, 2, 3, 4, 5});
  HierarchicalQuery query(5, 2);
  std::vector<double> answer = query.Evaluate(data);
  const TreeLayout& tree = query.tree();
  ASSERT_EQ(answer.size(), static_cast<std::size_t>(tree.node_count()));
  EXPECT_DOUBLE_EQ(answer[0], 15.0);  // root = total
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    if (tree.IsLeaf(v)) continue;
    double child_sum = 0.0;
    for (std::int64_t c : tree.Children(v)) {
      child_sum += answer[static_cast<std::size_t>(c)];
    }
    EXPECT_DOUBLE_EQ(answer[static_cast<std::size_t>(v)], child_sum);
  }
  // Padding leaves are zero.
  for (std::int64_t pos = 5; pos < 8; ++pos) {
    EXPECT_DOUBLE_EQ(answer[static_cast<std::size_t>(tree.LeafNode(pos))],
                     0.0);
  }
}

TEST(HierarchicalQueryTest, TernaryTree) {
  Histogram data = Histogram::FromCounts({1, 1, 1, 1, 1, 1, 1, 1, 1});
  HierarchicalQuery query(9, 3);
  std::vector<double> answer = query.Evaluate(data);
  // Tree: 1 root + 3 internals + 9 leaves = 13 nodes; ell = 3.
  ASSERT_EQ(answer.size(), 13u);
  EXPECT_DOUBLE_EQ(answer[0], 9.0);
  EXPECT_DOUBLE_EQ(answer[1], 3.0);
  EXPECT_DOUBLE_EQ(query.Sensitivity(), 3.0);
}

TEST(HierarchicalQueryTest, SizeEqualsNodeCount) {
  HierarchicalQuery query(1000, 2);
  EXPECT_EQ(query.size(), query.tree().node_count());
}

TEST(QuerySequenceDeathTest, DomainMismatchRejected) {
  Histogram small = Histogram::FromCounts({1, 2});
  UnitQuery l(3);
  SortedQuery s(3);
  HierarchicalQuery h(3, 2);
  EXPECT_DEATH(l.Evaluate(small), "domain");
  EXPECT_DEATH(s.Evaluate(small), "domain");
  EXPECT_DEATH(h.Evaluate(small), "domain");
}

}  // namespace
}  // namespace dphist
