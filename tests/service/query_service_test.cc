#include "service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"

namespace dphist {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(17);
  return Histogram::FromCounts(ZipfCounts(n, 1.3, 6 * n, &rng));
}

std::vector<Interval> ProbeWorkload(std::int64_t n, int count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Interval> workload;
  workload.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::int64_t lo = rng.NextInt(0, n - 1);
    workload.emplace_back(lo, rng.NextInt(lo, n - 1));
  }
  return workload;
}

TEST(QueryServiceTest, PublishAssignsIncreasingEpochs) {
  Histogram data = TestData(64);
  QueryService service;
  EXPECT_EQ(service.current_epoch(), 0u);
  EXPECT_EQ(service.snapshot(), nullptr);

  SnapshotOptions options;
  auto first = service.Publish(data, options, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value()->epoch(), 1u);
  EXPECT_EQ(service.current_epoch(), 1u);

  options.epsilon = 0.5;
  auto second = service.Publish(data, options, 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()->epoch(), 2u);
  EXPECT_EQ(service.current_epoch(), 2u);
  EXPECT_DOUBLE_EQ(service.snapshot()->epsilon(), 0.5);
}

TEST(QueryServiceTest, FailedPublishLeavesCurrentSnapshotInPlace) {
  Histogram data = TestData(32);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());

  SnapshotOptions bad;
  bad.epsilon = -1.0;
  EXPECT_FALSE(service.Publish(data, bad, 2).ok());
  EXPECT_EQ(service.current_epoch(), 1u);

  // The next successful publish continues the epoch sequence without
  // consuming a number for the failure.
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 3).ok());
  EXPECT_EQ(service.current_epoch(), 2u);
}

TEST(QueryServiceTest, AnswersMatchTheSnapshotExactly) {
  Histogram data = TestData(100);
  QueryService service;
  SnapshotOptions options;
  options.shards = 4;
  auto snap = service.Publish(data, options, 9);
  ASSERT_TRUE(snap.ok());

  std::vector<Interval> workload = ProbeWorkload(100, 64, 5);
  std::vector<double> answers(workload.size());
  EXPECT_EQ(service.QueryBatch(workload.data(), workload.size(),
                               answers.data()),
            1u);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(answers[i], snap.value()->RangeCount(workload[i])) << i;
  }
}

TEST(QueryServiceTest, CachedAndUncachedServicesAgreeBitForBit) {
  Histogram data = TestData(128);
  QueryServiceOptions cached_options;
  cached_options.cache_capacity = 256;
  QueryService cached(cached_options);
  QueryService uncached;

  SnapshotOptions options;
  options.strategy = StrategyKind::kHTilde;
  ASSERT_TRUE(cached.Publish(data, options, 4).ok());
  ASSERT_TRUE(uncached.Publish(data, options, 4).ok());

  // Repeat the workload so the second pass is answered from the cache.
  std::vector<Interval> workload = ProbeWorkload(128, 100, 23);
  std::vector<double> first(workload.size());
  std::vector<double> second(workload.size());
  std::vector<double> reference(workload.size());
  cached.QueryBatch(workload.data(), workload.size(), first.data());
  cached.QueryBatch(workload.data(), workload.size(), second.data());
  uncached.QueryBatch(workload.data(), workload.size(), reference.data());

  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(first[i], reference[i]) << i;
    EXPECT_EQ(second[i], reference[i]) << i;
  }
  AnswerCache::Stats stats = cached.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
}

TEST(QueryServiceTest, SingleQueryFormMatchesBatch) {
  Histogram data = TestData(64);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 2).ok());
  Interval q(5, 40);
  double single = 0.0;
  EXPECT_EQ(service.Query(q, &single), 1u);
  double batched = 0.0;
  service.QueryBatch(&q, 1, &batched);
  EXPECT_EQ(single, batched);
}

TEST(QueryServiceTest, SnapshotSwapPurgesStaleEpochEntries) {
  Histogram data = TestData(64);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 256;
  QueryService service(service_options);
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());

  std::vector<Interval> workload = ProbeWorkload(64, 40, 7);
  std::vector<double> answers(workload.size());
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  const std::int64_t cached_before = service.cache_size();
  ASSERT_GT(cached_before, 0);

  // The swap must leave no epoch-1 entry reachable — the cache is empty
  // until the new epoch's traffic arrives, not full of dead weight.
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 2).ok());
  EXPECT_EQ(service.cache_size(), 0);
  EXPECT_EQ(service.cache_stats().epoch_evictions,
            static_cast<std::uint64_t>(cached_before));

  // Fresh traffic repopulates under the new epoch only.
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  EXPECT_GT(service.cache_size(), 0);
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 3).ok());
  EXPECT_EQ(service.cache_size(), 0);
}

TEST(QueryServiceTest, ObservedWorkloadTracksAnsweredLengths) {
  Histogram data = TestData(64);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());
  EXPECT_TRUE(service.ObservedWorkload(64).empty());

  std::vector<Interval> workload = {Interval(0, 0), Interval(5, 5),
                                    Interval(0, 41), Interval(10, 51)};
  std::vector<double> answers(workload.size());
  service.QueryBatch(workload.data(), workload.size(), answers.data());

  planner::WorkloadProfile profile = service.ObservedWorkload(64);
  EXPECT_DOUBLE_EQ(profile.total_weight(), 4.0);
  // Lengths are log2-bucketed: two units land in bucket [1,1]; the two
  // 42-length queries land in [32,63], reported at its midpoint 47.
  EXPECT_DOUBLE_EQ(profile.length_weights().at(1), 2.0);
  EXPECT_DOUBLE_EQ(profile.length_weights().at(47), 2.0);
}

TEST(QueryServiceTest, AutoStrategyPlansFromObservedTraffic) {
  Histogram data = TestData(64);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());

  // Unit-count traffic only; the replan must resolve auto to L~.
  std::vector<double> answer(1);
  for (std::int64_t i = 0; i < 64; ++i) {
    Interval q(i, i);
    service.QueryBatch(&q, 1, answer.data());
  }
  SnapshotOptions auto_options;
  auto_options.strategy = StrategyKind::kAuto;
  auto republished = service.Publish(data, auto_options, 2);
  ASSERT_TRUE(republished.ok()) << republished.status().ToString();
  EXPECT_EQ(republished.value()->strategy(), StrategyKind::kLTilde);
  EXPECT_EQ(republished.value()->epoch(), 2u);
}

TEST(QueryServiceTest, AutoStrategyFallsBackToNeutralPriorWhenUnobserved) {
  // First publish with kAuto and no traffic at all: the geometric-sweep
  // prior must still produce a concrete, buildable plan.
  Histogram data = TestData(48);
  QueryService service;
  SnapshotOptions auto_options;
  auto_options.strategy = StrategyKind::kAuto;
  auto published = service.Publish(data, auto_options, 5);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_NE(published.value()->strategy(), StrategyKind::kAuto);
  double out = 0.0;
  EXPECT_EQ(service.Query(Interval(0, 47), &out), 1u);
}

TEST(QueryServiceTest, AutoStrategyHonorsExplicitProfileOverObservation) {
  Histogram data = TestData(64);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());
  // Observed traffic is long-range...
  std::vector<double> answer(1);
  for (int i = 0; i < 32; ++i) {
    Interval q(0, 63);
    service.QueryBatch(&q, 1, answer.data());
  }
  // ...but the caller plans for a unit-count profile explicitly.
  planner::WorkloadProfile units(64);
  units.AddLength(1, 100.0);
  SnapshotOptions auto_options;
  auto_options.strategy = StrategyKind::kAuto;
  auto published = service.Publish(data, auto_options, 2, &units);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(published.value()->strategy(), StrategyKind::kLTilde);
}

// The acceptance-criterion test: concurrent readers during repeated
// snapshot swaps must always see internally consistent single-epoch
// batches — every answer in a batch comes from the release whose epoch
// the batch reports, bit for bit, even with the shared cache on.
TEST(QueryServiceTest, ConcurrentSwapsServeSingleEpochBatches) {
  const std::int64_t n = 96;
  Histogram data = TestData(n);
  SnapshotOptions options;
  options.strategy = StrategyKind::kHBar;
  options.shards = 2;
  constexpr std::uint64_t kEpochs = 10;

  // Expected answers per epoch: Publish below uses seed == epoch, so the
  // releases are reproducible here ahead of time.
  std::vector<Interval> workload = ProbeWorkload(n, 48, 31);
  std::map<std::uint64_t, std::vector<double>> expected;
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    Rng rng(epoch);
    auto snap = Snapshot::Build(data, options, epoch, &rng);
    ASSERT_TRUE(snap.ok());
    std::vector<double> answers(workload.size());
    snap.value()->RangeCountsInto(workload.data(), workload.size(),
                                  answers.data());
    expected.emplace(epoch, std::move(answers));
  }

  QueryServiceOptions service_options;
  service_options.cache_capacity = 1024;
  QueryService service(service_options);
  ASSERT_TRUE(service.Publish(data, options, 1).ok());

  std::atomic<bool> done{false};
  std::atomic<int> mixed_batches{0};
  std::atomic<std::uint64_t> max_seen_epoch{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::vector<double> answers(workload.size());
      auto run_batch = [&] {
        const std::uint64_t epoch = service.QueryBatch(
            workload.data(), workload.size(), answers.data());
        const std::vector<double>& want = expected.at(epoch);
        for (std::size_t i = 0; i < workload.size(); ++i) {
          if (answers[i] != want[i]) {
            mixed_batches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        std::uint64_t seen = max_seen_epoch.load(std::memory_order_relaxed);
        while (epoch > seen &&
               !max_seen_epoch.compare_exchange_weak(
                   seen, epoch, std::memory_order_relaxed)) {
        }
      };
      while (!done.load(std::memory_order_acquire)) run_batch();
      // One guaranteed batch after the last publish, so every reader
      // observes the final epoch even under unlucky scheduling.
      run_batch();
    });
  }

  // Publisher: republish at shifting epsilons while the readers hammer.
  for (std::uint64_t epoch = 2; epoch <= kEpochs; ++epoch) {
    ASSERT_TRUE(service.Publish(data, options, epoch).ok());
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mixed_batches.load(), 0);
  // The readers actually observed the republishing, not just epoch 1.
  EXPECT_GT(max_seen_epoch.load(), 1u);
  EXPECT_EQ(service.current_epoch(), kEpochs);
}

TEST(QueryServiceTest, AdmissionKeepsPrefixServedAnswersOutOfTheCache) {
  // L~ answers EVERY range with one prefix difference — recomputing is
  // as cheap as a cache hit, so on an unsharded L~ snapshot the
  // admission policy must never let any answer consume LRU capacity.
  Histogram data = TestData(64);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 256;
  QueryService service(service_options);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  ASSERT_TRUE(service.Publish(data, options, 1).ok());

  std::vector<Interval> queries;
  for (std::int64_t i = 0; i < 32; ++i) queries.emplace_back(i, i);
  queries.emplace_back(0, 31);
  queries.emplace_back(8, 60);
  std::vector<double> answers(queries.size());
  service.QueryBatch(queries.data(), queries.size(), answers.data());
  EXPECT_EQ(service.cache_size(), 0);
  EXPECT_EQ(service.cache_stats().insertions, 0u);
  EXPECT_EQ(service.cache_stats().admission_rejects, 34u);
}

TEST(QueryServiceTest, AdmissionAdmitsDecompositionWalkSnapshots) {
  // H~ walks a subtree decomposition even for a unit range
  // (RangeCostHint = tree height), so all its answers are worth
  // caching: same traffic, zero admission rejects.
  Histogram data = TestData(64);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 256;
  QueryService service(service_options);
  SnapshotOptions options;
  options.strategy = StrategyKind::kHTilde;
  ASSERT_TRUE(service.Publish(data, options, 1).ok());

  std::vector<Interval> units;
  for (std::int64_t i = 0; i < 16; ++i) units.emplace_back(i, i);
  std::vector<double> answers(units.size());
  service.QueryBatch(units.data(), units.size(), answers.data());
  EXPECT_EQ(service.cache_size(), 16);
  EXPECT_EQ(service.cache_stats().admission_rejects, 0u);
}

TEST(QueryServiceTest, AdmissionAdmitsOnlySpanningRangesOnShardedCheapSnapshots) {
  // On a sharded L~ snapshot, a shard-spanning range recomputes as one
  // answer per shard touched — worth caching — while a single-shard
  // range is still one prefix difference and is rejected.
  Histogram data = TestData(256);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 256;
  QueryService service(service_options);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 4;  // shard width 64
  ASSERT_TRUE(service.Publish(data, options, 1).ok());

  std::vector<Interval> spanning = {Interval(0, 99), Interval(50, 249),
                                    Interval(60, 70)};
  std::vector<Interval> interior = {Interval(0, 63), Interval(70, 120),
                                    Interval(5, 5)};
  std::vector<double> answers(3);
  service.QueryBatch(spanning.data(), spanning.size(), answers.data());
  EXPECT_EQ(service.cache_size(), 3);
  EXPECT_EQ(service.cache_stats().admission_rejects, 0u);
  service.QueryBatch(interior.data(), interior.size(), answers.data());
  EXPECT_EQ(service.cache_size(), 3);
  EXPECT_EQ(service.cache_stats().admission_rejects, 3u);
}

TEST(QueryServiceTest, AdmissionPreservesCapacityForExpensiveRanges) {
  // The point of the policy: a flood of cheap single-shard queries must
  // not evict the expensive shard-spanning answers already cached.
  Histogram data = TestData(256);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 4;
  service_options.cache_lock_shards = 1;  // one LRU, deterministic order
  QueryService service(service_options);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 4;  // shard width 64: all four ranges below span
  ASSERT_TRUE(service.Publish(data, options, 1).ok());

  std::vector<Interval> ranges = {Interval(0, 99), Interval(50, 249),
                                  Interval(10, 200), Interval(30, 77)};
  std::vector<double> answers(ranges.size());
  service.QueryBatch(ranges.data(), ranges.size(), answers.data());
  EXPECT_EQ(service.cache_size(), 4);

  std::vector<Interval> units;
  for (std::int64_t i = 0; i < 200; ++i) units.emplace_back(i, i);
  std::vector<double> unit_answers(units.size());
  service.QueryBatch(units.data(), units.size(), unit_answers.data());

  // Every expensive range is still resident: the replay is pure hits.
  const std::uint64_t hits_before = service.cache_stats().hits;
  service.QueryBatch(ranges.data(), ranges.size(), answers.data());
  EXPECT_EQ(service.cache_stats().hits, hits_before + 4);
  EXPECT_EQ(service.cache_stats().evictions, 0u);
  EXPECT_EQ(service.cache_stats().admission_rejects, 200u);
}

TEST(QueryServiceTest, ObservedQueryCountSumsAllTraffic) {
  Histogram data = TestData(64);
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());
  EXPECT_EQ(service.observed_query_count(), 0u);
  std::vector<Interval> workload = ProbeWorkload(64, 37, 3);
  std::vector<double> answers(workload.size());
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  EXPECT_EQ(service.observed_query_count(), 37u);
  double out = 0.0;
  service.Query(Interval(0, 5), &out);
  EXPECT_EQ(service.observed_query_count(), 38u);
}

TEST(QueryServiceTest, SwapStatsTrackPublishesAndEvictions) {
  Histogram data = TestData(64);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 128;
  QueryService service(service_options);
  EXPECT_EQ(service.swap_stats().publishes, 0u);
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());

  std::vector<Interval> workload = ProbeWorkload(64, 20, 11);
  std::vector<double> answers(workload.size());
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  const std::int64_t cached = service.cache_size();
  ASSERT_GT(cached, 0);

  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 2).ok());
  QueryService::SwapStats swaps = service.swap_stats();
  EXPECT_EQ(swaps.publishes, 2u);
  EXPECT_EQ(swaps.last_epoch, 2u);
  EXPECT_EQ(swaps.last_swap_evictions, cached);
  EXPECT_EQ(swaps.total_swap_evictions, cached);
}

TEST(QueryServiceTest, ReservoirMakesObservedProfileLengthExact) {
  // The divergence case from the ROADMAP: a stream of length-3 queries
  // is bucketed into [2, 4) and reported at representative length 2,
  // so a replan from observation differs from one given the raw
  // workload. With the reservoir on, the observed profile carries the
  // exact lengths and the two replans see identical inputs.
  Histogram data = TestData(64);
  std::vector<Interval> workload;
  for (std::int64_t i = 0; i < 20; ++i) workload.emplace_back(i, i + 2);
  std::vector<double> answers(workload.size());

  QueryServiceOptions bucketed_options;
  QueryService bucketed(bucketed_options);
  ASSERT_TRUE(bucketed.Publish(data, SnapshotOptions(), 1).ok());
  bucketed.QueryBatch(workload.data(), workload.size(), answers.data());
  planner::WorkloadProfile bucketed_profile = bucketed.ObservedWorkload(64);
  EXPECT_DOUBLE_EQ(bucketed_profile.length_weights().at(2), 20.0);
  EXPECT_EQ(bucketed_profile.length_weights().count(3), 0u);

  QueryServiceOptions exact_options;
  exact_options.observed_reservoir = 256;  // holds the whole stream
  QueryService exact(exact_options);
  ASSERT_TRUE(exact.Publish(data, SnapshotOptions(), 1).ok());
  exact.QueryBatch(workload.data(), workload.size(), answers.data());
  planner::WorkloadProfile exact_profile = exact.ObservedWorkload(64);
  EXPECT_DOUBLE_EQ(exact_profile.length_weights().at(3), 20.0);
  EXPECT_DOUBLE_EQ(exact_profile.total_weight(), 20.0);

  // Replan-from-observation now equals replan-from-the-raw-workload.
  planner::WorkloadProfile raw(64);
  for (const Interval& query : workload) raw.AddQuery(query);
  SnapshotOptions base;
  auto from_observation = planner::ChoosePlan(exact_profile, base);
  auto from_raw = planner::ChoosePlan(raw, base);
  ASSERT_TRUE(from_observation.ok());
  ASSERT_TRUE(from_raw.ok());
  EXPECT_EQ(from_observation.value().options.strategy,
            from_raw.value().options.strategy);
  EXPECT_EQ(from_observation.value().options.shards,
            from_raw.value().options.shards);
  EXPECT_DOUBLE_EQ(from_observation.value().predicted_mean_variance,
                   from_raw.value().predicted_mean_variance);
}

}  // namespace
}  // namespace dphist
