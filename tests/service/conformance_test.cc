// Statistical conformance harness: QueryService answers must match the
// closed-form error model of the matrix mechanism (Li et al., PODS 2010;
// the lens the paper's Section 6 uses), query by query.
//
// For every published configuration with the linear protocol (rounding
// and pruning off), the expected squared error of each range answer is
// known EXACTLY (tests/support/variance_oracle.h) — so the serving layer
// is validated statistically, not spot-checked: over T independent
// releases the empirical per-query mean squared error must land within
// the Monte-Carlo confidence bound of the closed form. A wiring bug that
// shifted a shard boundary, reused noise across shards, mixed epochs in
// the cache, or double-counted a node would move the empirical error off
// the curve and fail these assertions.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "service/query_service.h"
#include "tests/support/variance_oracle.h"

namespace dphist {
namespace {

using test_support::SquaredErrorRelativeBound;
using test_support::VarianceOracle;

struct ConformanceCase {
  std::string name;
  std::int64_t domain_size;
  SnapshotOptions options;
  std::int64_t cache_capacity = 0;  // 0 = uncached
};

std::vector<ConformanceCase> Cases() {
  std::vector<ConformanceCase> cases;

  ConformanceCase ltilde;
  ltilde.name = "ltilde_sharded";
  ltilde.domain_size = 60;
  ltilde.options.strategy = StrategyKind::kLTilde;
  ltilde.options.epsilon = 0.7;
  ltilde.options.shards = 3;
  cases.push_back(ltilde);

  ConformanceCase htilde;
  htilde.name = "htilde_padded_k3";
  htilde.domain_size = 48;  // pads to 81 leaves per 27-wide shard tree
  htilde.options.strategy = StrategyKind::kHTilde;
  htilde.options.epsilon = 1.0;
  htilde.options.branching = 3;
  htilde.options.shards = 2;
  cases.push_back(htilde);

  ConformanceCase hbar;
  hbar.name = "hbar_unsharded";
  hbar.domain_size = 32;
  hbar.options.strategy = StrategyKind::kHBar;
  hbar.options.epsilon = 1.0;
  cases.push_back(hbar);

  ConformanceCase hbar_sharded;
  hbar_sharded.name = "hbar_sharded_cached";
  hbar_sharded.domain_size = 32;
  hbar_sharded.options.strategy = StrategyKind::kHBar;
  hbar_sharded.options.epsilon = 0.5;
  hbar_sharded.options.shards = 4;
  // The cache must be statistically invisible: epochs key the entries,
  // every trial republishes, so a hit can only ever return the current
  // release's own answer.
  hbar_sharded.cache_capacity = 512;
  cases.push_back(hbar_sharded);

  ConformanceCase wavelet;
  wavelet.name = "wavelet_sharded";
  wavelet.domain_size = 32;
  wavelet.options.strategy = StrategyKind::kWavelet;
  wavelet.options.epsilon = 1.0;
  wavelet.options.shards = 2;
  cases.push_back(wavelet);

  for (ConformanceCase& c : cases) {
    // Closed forms require the linear protocol.
    c.options.round_to_nonnegative_integers = false;
    c.options.prune_nonpositive_subtrees = false;
  }
  return cases;
}

/// Probe queries: unit, shard-interior, shard-spanning, and full-domain.
/// The last query repeats the fourth; the trial loop answers it in a
/// follow-up batch, so a cached service serves it from the entry the
/// first batch inserted — putting cache hits themselves under the
/// statistical test. (Within one batch, LookupMany resolves the whole
/// chunk before any insert, so an intra-batch duplicate is recomputed
/// rather than hit. The duplicate is a shard-spanning range on purpose:
/// the admission policy keeps cheap single-shard answers out of the
/// cache on prefix-served snapshots like the consistent-H-bar case
/// below, so a single-shard duplicate would never hit.)
std::vector<Interval> ProbeQueries(std::int64_t n) {
  std::vector<Interval> queries = {
      Interval(0, 0),         Interval(n / 2, n / 2), Interval(0, n - 1),
      Interval(1, n / 2),     Interval(n / 3, n - 2), Interval(n / 4, 3 * n / 4),
      Interval(1, n / 2),
  };
  return queries;
}

TEST(ServiceConformanceTest, EmpiricalErrorMatchesClosedFormPerQuery) {
  constexpr std::int64_t kTrials = 4000;
  // z = 4.6 puts the per-assertion false-failure probability around 2e-6
  // under the CLT; with ~30 (case, query) pairs the suite-level flake
  // rate stays below 1e-4, and the bound itself is conservative.
  const double tolerance = SquaredErrorRelativeBound(kTrials, 4.6);

  for (const ConformanceCase& test_case : Cases()) {
    SCOPED_TRACE(test_case.name);
    Rng data_rng(29);
    Histogram data = Histogram::FromCounts(
        ZipfCounts(test_case.domain_size, 1.2, 5 * test_case.domain_size,
                   &data_rng));
    VarianceOracle oracle(test_case.options, test_case.domain_size);
    std::vector<Interval> queries = ProbeQueries(test_case.domain_size);

    QueryServiceOptions service_options;
    service_options.cache_capacity = test_case.cache_capacity;
    QueryService service(service_options);

    std::vector<double> truth(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      truth[q] = data.Count(queries[q]);
    }

    std::vector<double> answers(queries.size());
    std::vector<double> sum_squared_error(queries.size(), 0.0);
    for (std::int64_t trial = 0; trial < kTrials; ++trial) {
      // One fresh release per trial; the epoch advances every time, so
      // cached entries from earlier trials can never be (wrongly) reused.
      ASSERT_TRUE(service
                      .Publish(data, test_case.options,
                               /*seed=*/1000 + static_cast<std::uint64_t>(
                                                   trial))
                      .ok());
      // First batch: all distinct probes; second batch: the duplicate,
      // which a cached service must serve from the first batch's insert.
      // Both batches land on the same snapshot (no concurrent publish).
      const std::size_t head = queries.size() - 1;
      service.QueryBatch(queries.data(), head, answers.data());
      service.QueryBatch(queries.data() + head, 1, answers.data() + head);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const double err = answers[q] - truth[q];
        sum_squared_error[q] += err * err;
      }
    }

    for (std::size_t q = 0; q < queries.size(); ++q) {
      const double empirical =
          sum_squared_error[q] / static_cast<double>(kTrials);
      const double exact = oracle.RangeVariance(queries[q]);
      ASSERT_GT(exact, 0.0);
      EXPECT_NEAR(empirical / exact, 1.0, tolerance)
          << "query " << queries[q].ToString() << " empirical " << empirical
          << " exact " << exact;
    }
    if (test_case.cache_capacity > 0) {
      // The duplicated probe query really was served from the cache
      // (once per trial), so cache hits are inside the statistics above.
      EXPECT_GE(service.cache_stats().hits,
                static_cast<std::uint64_t>(kTrials));
    }
  }
}

TEST(ServiceConformanceTest, ShardedVarianceOracleMatchesUnshardedOnLTilde) {
  // Unit sanity for the oracle itself: L~'s variance is linear in range
  // length, so sharding must not change it — 2 |q| / eps^2 either way.
  SnapshotOptions unsharded;
  unsharded.strategy = StrategyKind::kLTilde;
  unsharded.epsilon = 0.9;
  unsharded.round_to_nonnegative_integers = false;
  unsharded.prune_nonpositive_subtrees = false;
  SnapshotOptions sharded = unsharded;
  sharded.shards = 5;

  VarianceOracle a(unsharded, 50);
  VarianceOracle b(sharded, 50);
  for (const Interval& q : ProbeQueries(50)) {
    EXPECT_NEAR(a.RangeVariance(q), b.RangeVariance(q), 1e-9)
        << q.ToString();
  }
}

TEST(ServiceConformanceTest, ShardingReducesHierarchicalVariance) {
  // A qualitative consequence of parallel composition the oracle should
  // reproduce: shard trees are shallower, so H~'s per-node noise scale
  // (height/eps) drops for queries inside one shard.
  SnapshotOptions unsharded;
  unsharded.strategy = StrategyKind::kHTilde;
  unsharded.epsilon = 1.0;
  unsharded.round_to_nonnegative_integers = false;
  unsharded.prune_nonpositive_subtrees = false;
  SnapshotOptions sharded = unsharded;
  sharded.shards = 4;

  VarianceOracle deep(unsharded, 64);
  VarianceOracle shallow(sharded, 64);
  // [0, 15] is exactly shard 0 of the sharded layout.
  EXPECT_LT(shallow.RangeVariance(Interval(0, 15)),
            deep.RangeVariance(Interval(0, 15)));
}

}  // namespace
}  // namespace dphist
