#include "service/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"

namespace dphist {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(11);
  return Histogram::FromCounts(ZipfCounts(n, 1.2, 4 * n, &rng));
}

std::shared_ptr<const Snapshot> MustBuild(const Histogram& data,
                                          const SnapshotOptions& options,
                                          std::uint64_t epoch,
                                          std::uint64_t seed) {
  Rng rng(seed);
  auto built = Snapshot::Build(data, options, epoch, &rng);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.value();
}

TEST(SnapshotTest, BuildValidatesOptions) {
  Histogram data = TestData(16);
  Rng rng(1);
  SnapshotOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(Snapshot::Build(data, options, 1, &rng).ok());
  options = SnapshotOptions();
  options.branching = 1;
  EXPECT_FALSE(Snapshot::Build(data, options, 1, &rng).ok());
  options = SnapshotOptions();
  options.shards = 0;
  EXPECT_FALSE(Snapshot::Build(data, options, 1, &rng).ok());
}

TEST(SnapshotTest, CarriesEpochAndOptions) {
  SnapshotOptions options;
  options.epsilon = 0.25;
  options.strategy = StrategyKind::kHTilde;
  auto snap = MustBuild(TestData(32), options, 42, 7);
  EXPECT_EQ(snap->epoch(), 42u);
  EXPECT_DOUBLE_EQ(snap->epsilon(), 0.25);
  EXPECT_EQ(snap->strategy(), StrategyKind::kHTilde);
  EXPECT_EQ(snap->domain_size(), 32);
}

TEST(SnapshotTest, ShardGeometryClampsAndCoversUnevenDomains) {
  SnapshotOptions options;
  options.shards = 4;
  // 37 positions over 4 shards: width ceil(37/4) = 10, last shard 7 wide.
  auto snap = MustBuild(TestData(37), options, 1, 7);
  EXPECT_EQ(snap->shard_count(), 4);
  EXPECT_EQ(snap->shard_width(), 10);

  // More shards than positions: clamped to one estimator per position.
  options.shards = 100;
  auto tiny = MustBuild(TestData(5), options, 1, 7);
  EXPECT_EQ(tiny->shard_count(), 5);
  EXPECT_EQ(tiny->shard_width(), 1);
}

TEST(SnapshotTest, SameSeedReproducesIdenticalAnswers) {
  Histogram data = TestData(64);
  SnapshotOptions options;
  options.shards = 3;
  auto a = MustBuild(data, options, 1, 99);
  auto b = MustBuild(data, options, 2, 99);  // epoch differs, seed equal
  for (std::int64_t lo = 0; lo < 64; lo += 7) {
    Interval q(lo, 63);
    EXPECT_EQ(a->RangeCount(q), b->RangeCount(q));
  }
}

TEST(SnapshotTest, SpanningAnswersAreSumsOfClippedShardAnswers) {
  Histogram data = TestData(40);
  SnapshotOptions options;
  options.shards = 4;  // width 10
  options.strategy = StrategyKind::kHBar;
  auto snap = MustBuild(data, options, 1, 3);
  ASSERT_EQ(snap->shard_count(), 4);

  // [7, 33] clips to [7,9] in shard 0, [0,9] in shards 1-2, [0,3] in 3.
  double manual = snap->shard(0).RangeCount(Interval(7, 9)) +
                  snap->shard(1).RangeCount(Interval(0, 9)) +
                  snap->shard(2).RangeCount(Interval(0, 9)) +
                  snap->shard(3).RangeCount(Interval(0, 3));
  EXPECT_DOUBLE_EQ(snap->RangeCount(Interval(7, 33)), manual);

  // A range inside one shard is exactly that shard's local answer.
  EXPECT_DOUBLE_EQ(snap->RangeCount(Interval(12, 17)),
                   snap->shard(1).RangeCount(Interval(2, 7)));
}

TEST(SnapshotTest, EveryStrategyKindBuildsAndAnswers) {
  Histogram data = TestData(48);  // not a power of two: exercises padding
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    SnapshotOptions options;
    options.strategy = kind;
    options.epsilon = 2.0;
    options.shards = 2;
    auto snap = MustBuild(data, options, 1, 5);
    double full = snap->RangeCount(Interval(0, 47));
    EXPECT_GE(full, 0.0) << StrategyKindName(kind);
    // At eps = 2 the full-domain count lands near the truth.
    EXPECT_NEAR(full, data.Total(), 0.5 * data.Total())
        << StrategyKindName(kind);
  }
}

TEST(SnapshotTest, BatchedAnswersMatchScalarAnswers) {
  Histogram data = TestData(50);
  SnapshotOptions options;
  options.shards = 3;
  auto snap = MustBuild(data, options, 1, 13);

  std::vector<Interval> workload;
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    std::int64_t lo = rng.NextInt(0, 49);
    workload.emplace_back(lo, rng.NextInt(lo, 49));
  }
  std::vector<double> batched(workload.size());
  snap->RangeCountsInto(workload.data(), workload.size(), batched.data());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(batched[i], snap->RangeCount(workload[i])) << i;
  }
}

TEST(SnapshotTest, ParallelBuildIsBitIdenticalToSequential) {
  // The acceptance property for parallel Snapshot::Build: the release is
  // a pure function of (data, options, rng) — thread count changes only
  // wall clock. Shard RNG streams are forked in shard order before the
  // fan-out, so every strategy must reproduce bit for bit.
  Histogram data = TestData(1 << 12);
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    SnapshotOptions options;
    options.strategy = kind;
    options.shards = 16;
    options.epsilon = 0.5;
    options.build_threads = 1;
    auto sequential = MustBuild(data, options, 1, 77);
    options.build_threads = 8;
    auto parallel = MustBuild(data, options, 1, 77);

    Rng probe_rng(3);
    for (int i = 0; i < 200; ++i) {
      std::int64_t lo = probe_rng.NextInt(0, (1 << 12) - 1);
      Interval q(lo, probe_rng.NextInt(lo, (1 << 12) - 1));
      EXPECT_EQ(sequential->RangeCount(q), parallel->RangeCount(q))
          << StrategyKindName(kind) << " " << q.ToString();
    }
  }
}

TEST(SnapshotTest, BuildRejectsUnresolvedAutoStrategy) {
  Histogram data = TestData(16);
  Rng rng(1);
  SnapshotOptions options;
  options.strategy = StrategyKind::kAuto;
  auto built = Snapshot::Build(data, options, 1, &rng);
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("planner"), std::string::npos);
}

TEST(SnapshotTest, StrategyKindNamesRoundTrip) {
  for (StrategyKind kind :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    auto parsed = ParseStrategyKind(StrategyKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  // Display names from the paper also parse.
  EXPECT_TRUE(ParseStrategyKind("H-bar").ok());
  EXPECT_TRUE(ParseStrategyKind("L~").ok());
  EXPECT_TRUE(ParseStrategyKind("H~").ok());
  EXPECT_FALSE(ParseStrategyKind("fourier").ok());
  // The planner sentinel round-trips too.
  auto auto_kind = ParseStrategyKind("auto");
  ASSERT_TRUE(auto_kind.ok());
  EXPECT_EQ(auto_kind.value(), StrategyKind::kAuto);
  EXPECT_STREQ(StrategyKindName(StrategyKind::kAuto), "auto");
}

TEST(SnapshotDeathTest, RejectsOutOfDomainRange) {
  auto snap = MustBuild(TestData(16), SnapshotOptions(), 1, 1);
  EXPECT_DEATH(snap->RangeCount(Interval(0, 16)), "domain");
}

}  // namespace
}  // namespace dphist
