#include "service/answer_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "domain/interval.h"

namespace dphist {
namespace {

TEST(AnswerCacheTest, DisabledCacheAlwaysMisses) {
  AnswerCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, Interval(0, 5), 3.0);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 5), &out));
  EXPECT_EQ(cache.size(), 0);
}

TEST(AnswerCacheTest, InsertThenLookupRoundTrips) {
  AnswerCache cache(64);
  cache.Insert(7, Interval(3, 9), 42.5);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(7, Interval(3, 9), &out));
  EXPECT_EQ(out, 42.5);
  EXPECT_EQ(cache.size(), 1);
}

TEST(AnswerCacheTest, EpochIsPartOfTheKey) {
  AnswerCache cache(64);
  cache.Insert(1, Interval(0, 3), 10.0);
  cache.Insert(2, Interval(0, 3), 20.0);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 3), &out));
  EXPECT_EQ(out, 10.0);
  ASSERT_TRUE(cache.Lookup(2, Interval(0, 3), &out));
  EXPECT_EQ(out, 20.0);
  EXPECT_FALSE(cache.Lookup(3, Interval(0, 3), &out));
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One lock shard so the LRU order is global and deterministic.
  AnswerCache cache(/*capacity=*/3, /*lock_shards=*/1);
  cache.Insert(1, Interval(0, 0), 0.0);
  cache.Insert(1, Interval(1, 1), 1.0);
  cache.Insert(1, Interval(2, 2), 2.0);

  // Touch (0,0) so (1,1) becomes the eviction victim.
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  cache.Insert(1, Interval(3, 3), 3.0);

  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_FALSE(cache.Lookup(1, Interval(1, 1), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(2, 2), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(3, 3), &out));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AnswerCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  AnswerCache cache(/*capacity=*/2, /*lock_shards=*/1);
  cache.Insert(1, Interval(0, 0), 1.0);
  cache.Insert(1, Interval(0, 0), 2.0);
  EXPECT_EQ(cache.size(), 1);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_EQ(out, 2.0);
}

TEST(AnswerCacheTest, ClearDropsEntriesButKeepsStats) {
  AnswerCache cache(16);
  cache.Insert(1, Interval(0, 1), 1.0);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 1), &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 1), &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(AnswerCacheTest, StatsCountHitsAndMisses) {
  AnswerCache cache(16);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 0), &out));
  cache.Insert(1, Interval(0, 0), 5.0);
  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(AnswerCacheTest, CapacityNeverExceededUnderConcurrentTraffic) {
  constexpr std::int64_t kCapacity = 128;
  AnswerCache cache(kCapacity, /*lock_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      // Overlapping key ranges across threads: plenty of hit/miss/evict
      // interleavings. The cached value is a pure function of the key, so
      // every successful lookup must return exactly that function.
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t lo = (t * 37 + i) % 511;
        const Interval q(lo, lo + 3);
        const std::uint64_t epoch = 1 + (i % 3);
        double out = 0.0;
        if (cache.Lookup(epoch, q, &out)) {
          ASSERT_EQ(out, static_cast<double>(lo * 10 + epoch));
        } else {
          cache.Insert(epoch, q, static_cast<double>(lo * 10 + epoch));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), kCapacity);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace dphist
