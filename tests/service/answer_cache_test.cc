#include "service/answer_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "domain/interval.h"

namespace dphist {
namespace {

TEST(AnswerCacheTest, DisabledCacheAlwaysMisses) {
  AnswerCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, Interval(0, 5), 3.0);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 5), &out));
  EXPECT_EQ(cache.size(), 0);
}

TEST(AnswerCacheTest, InsertThenLookupRoundTrips) {
  AnswerCache cache(64);
  cache.Insert(7, Interval(3, 9), 42.5);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(7, Interval(3, 9), &out));
  EXPECT_EQ(out, 42.5);
  EXPECT_EQ(cache.size(), 1);
}

TEST(AnswerCacheTest, EpochIsPartOfTheKey) {
  AnswerCache cache(64);
  cache.Insert(1, Interval(0, 3), 10.0);
  cache.Insert(2, Interval(0, 3), 20.0);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 3), &out));
  EXPECT_EQ(out, 10.0);
  ASSERT_TRUE(cache.Lookup(2, Interval(0, 3), &out));
  EXPECT_EQ(out, 20.0);
  EXPECT_FALSE(cache.Lookup(3, Interval(0, 3), &out));
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One lock shard so the LRU order is global and deterministic.
  AnswerCache cache(/*capacity=*/3, /*lock_shards=*/1);
  cache.Insert(1, Interval(0, 0), 0.0);
  cache.Insert(1, Interval(1, 1), 1.0);
  cache.Insert(1, Interval(2, 2), 2.0);

  // Touch (0,0) so (1,1) becomes the eviction victim.
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  cache.Insert(1, Interval(3, 3), 3.0);

  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_FALSE(cache.Lookup(1, Interval(1, 1), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(2, 2), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(3, 3), &out));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AnswerCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  AnswerCache cache(/*capacity=*/2, /*lock_shards=*/1);
  cache.Insert(1, Interval(0, 0), 1.0);
  cache.Insert(1, Interval(0, 0), 2.0);
  EXPECT_EQ(cache.size(), 1);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_EQ(out, 2.0);
}

TEST(AnswerCacheTest, ClearDropsEntriesButKeepsStats) {
  AnswerCache cache(16);
  cache.Insert(1, Interval(0, 1), 1.0);
  double out = 0.0;
  ASSERT_TRUE(cache.Lookup(1, Interval(0, 1), &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 1), &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(AnswerCacheTest, StatsCountHitsAndMisses) {
  AnswerCache cache(16);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(1, Interval(0, 0), &out));
  cache.Insert(1, Interval(0, 0), 5.0);
  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  EXPECT_TRUE(cache.Lookup(1, Interval(0, 0), &out));
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(AnswerCacheTest, LookupManyMatchesScalarLookups) {
  AnswerCache cache(256, /*lock_shards=*/8);
  // Seed every third key; a batch larger than the internal chunk then
  // mixes hits and misses across chunk boundaries and lock shards.
  std::vector<Interval> ranges;
  for (std::int64_t i = 0; i < 150; ++i) {
    ranges.emplace_back(i, i + (i % 7));
    if (i % 3 == 0) cache.Insert(5, ranges.back(), static_cast<double>(i));
  }
  std::vector<double> out(ranges.size(), -1.0);
  bool hit[150];
  cache.LookupMany(5, ranges.data(), ranges.size(), out.data(), hit);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(hit[i]) << i;
      EXPECT_EQ(out[i], static_cast<double>(i)) << i;
    } else {
      EXPECT_FALSE(hit[i]) << i;
    }
  }
  // A wrong-epoch batch misses everything.
  cache.LookupMany(6, ranges.data(), ranges.size(), out.data(), hit);
  for (std::size_t i = 0; i < ranges.size(); ++i) EXPECT_FALSE(hit[i]);
}

TEST(AnswerCacheTest, InsertManyHonorsSkipMaskAndRoundTrips) {
  AnswerCache cache(256, /*lock_shards=*/4);
  std::vector<Interval> ranges;
  std::vector<double> answers;
  bool skip[100];
  for (std::int64_t i = 0; i < 100; ++i) {
    ranges.emplace_back(i, i);
    answers.push_back(static_cast<double>(10 * i));
    skip[i] = i % 4 == 0;
  }
  cache.InsertMany(3, ranges.data(), answers.data(), ranges.size(), skip);
  double out = 0.0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i % 4 == 0) {
      EXPECT_FALSE(cache.Lookup(3, ranges[i], &out)) << i;
    } else {
      ASSERT_TRUE(cache.Lookup(3, ranges[i], &out)) << i;
      EXPECT_EQ(out, answers[i]) << i;
    }
  }
  // Null skip mask inserts everything, refreshing duplicates in place.
  cache.InsertMany(3, ranges.data(), answers.data(), ranges.size(), nullptr);
  EXPECT_EQ(cache.size(), static_cast<std::int64_t>(ranges.size()));
}

TEST(AnswerCacheTest, BatchedStatsMatchScalarSemantics) {
  AnswerCache cache(64, /*lock_shards=*/1);
  std::vector<Interval> ranges = {Interval(0, 1), Interval(2, 3),
                                  Interval(4, 5)};
  std::vector<double> answers = {1.0, 2.0, 3.0};
  cache.InsertMany(1, ranges.data(), answers.data(), ranges.size(), nullptr);
  EXPECT_EQ(cache.stats().insertions, 3u);

  double out[3];
  bool hit[3];
  cache.Insert(1, Interval(9, 9), 9.0);  // not in the batch below
  cache.LookupMany(1, ranges.data(), 2, out, hit);
  cache.LookupMany(2, ranges.data() + 2, 1, out, hit);  // wrong epoch
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(AnswerCacheTest, DisabledCacheBatchedFormsAreNoOps) {
  AnswerCache cache(0);
  Interval q(0, 1);
  double answer = 5.0;
  cache.InsertMany(1, &q, &answer, 1, nullptr);
  double out = 0.0;
  bool hit = true;
  cache.LookupMany(1, &q, 1, &out, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnswerCacheTest, EvictOlderEpochsPurgesExactlyTheStaleEntries) {
  AnswerCache cache(256, /*lock_shards=*/4);
  for (std::int64_t i = 0; i < 20; ++i) {
    cache.Insert(1, Interval(i, i), 1.0);
    cache.Insert(2, Interval(i, i), 2.0);
    cache.Insert(3, Interval(i, i), 3.0);
  }
  ASSERT_EQ(cache.size(), 60);

  EXPECT_EQ(cache.EvictOlderEpochs(3), 40);
  EXPECT_EQ(cache.size(), 20);
  EXPECT_EQ(cache.stats().epoch_evictions, 40u);
  // LRU capacity evictions are a separate counter.
  EXPECT_EQ(cache.stats().evictions, 0u);

  double out = 0.0;
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_FALSE(cache.Lookup(1, Interval(i, i), &out)) << i;
    EXPECT_FALSE(cache.Lookup(2, Interval(i, i), &out)) << i;
    ASSERT_TRUE(cache.Lookup(3, Interval(i, i), &out)) << i;
    EXPECT_EQ(out, 3.0);
  }

  // Idempotent: nothing older remains.
  EXPECT_EQ(cache.EvictOlderEpochs(3), 0);
}

TEST(AnswerCacheTest, CapacityNeverExceededUnderConcurrentTraffic) {
  constexpr std::int64_t kCapacity = 128;
  AnswerCache cache(kCapacity, /*lock_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      // Overlapping key ranges across threads: plenty of hit/miss/evict
      // interleavings. The cached value is a pure function of the key, so
      // every successful lookup must return exactly that function.
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t lo = (t * 37 + i) % 511;
        const Interval q(lo, lo + 3);
        const std::uint64_t epoch = 1 + (i % 3);
        double out = 0.0;
        if (cache.Lookup(epoch, q, &out)) {
          ASSERT_EQ(out, static_cast<double>(lo * 10 + epoch));
        } else {
          cache.Insert(epoch, q, static_cast<double>(lo * 10 + epoch));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), kCapacity);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace dphist
