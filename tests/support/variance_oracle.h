// Compatibility shim: the closed-form variance oracle used by the
// statistical conformance harness was promoted from test support into
// the production planner subsystem (src/planner/variance_oracle.h),
// where the cost-based strategy/shard planner consumes the same math.
// Test code keeps its historical dphist::test_support spelling through
// these aliases; all of the mathematics lives in src/planner/ — nothing
// is duplicated here.

#ifndef DPHIST_TESTS_SUPPORT_VARIANCE_ORACLE_H_
#define DPHIST_TESTS_SUPPORT_VARIANCE_ORACLE_H_

#include "planner/variance_oracle.h"

namespace dphist::test_support {

using planner::SquaredErrorRelativeBound;
using planner::VarianceOracle;

}  // namespace dphist::test_support

#endif  // DPHIST_TESTS_SUPPORT_VARIANCE_ORACLE_H_
