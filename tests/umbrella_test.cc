// Compilation test for the umbrella header: every public type must be
// reachable from a single include, and a miniature end-to-end pipeline
// must work with only that include.

#include "dphist.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(UmbrellaTest, WholePipelineThroughSingleInclude) {
  Histogram data = Histogram::FromCounts({2, 0, 10, 2});
  Rng rng(1);

  // Unattributed path.
  std::vector<double> s = SampleNoisySortedCounts(data, 1.0, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, s);
  EXPECT_EQ(sbar.size(), 4u);

  // Universal path.
  UniversalOptions options;
  HBarEstimator hbar(data, options, &rng);
  EXPECT_GE(hbar.RangeCount(Interval(0, 3)), 0.0);

  // Budgeting.
  PrivacyAccountant accountant(2.0);
  EXPECT_TRUE(accountant.Spend(1.0, "both tasks").ok());

  // Analysis.
  auto analyzer = StrategyAnalyzer::Create(HierarchicalStrategy(4, 2), 1.0);
  ASSERT_TRUE(analyzer.ok());
  EXPECT_GT(analyzer.value().RangeVariance(Interval(0, 3)), 0.0);

  // Serving.
  QueryService service;
  ASSERT_TRUE(service.Publish(data, SnapshotOptions(), 1).ok());
  double answer = 0.0;
  EXPECT_EQ(service.Query(Interval(0, 3), &answer), 1u);
  EXPECT_GE(answer, 0.0);
}

}  // namespace
}  // namespace dphist
