// Self-tests for dphist_lint (tools/lint/): every rule has a must-fail
// and a must-pass fixture under tests/lint/fixtures/ (lint *inputs*,
// never compiled), the baseline implements ratchet semantics, and the
// checked-in tree is clean against the committed baseline.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lint.h"

namespace dphist::lint {
namespace {

std::string RepoPath(const std::string& rel) {
  return std::string(DPHIST_SOURCE_DIR) + "/" + rel;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> LintFixture(const std::string& fixture,
                                 const std::string& as_path) {
  const std::string content =
      ReadFile(RepoPath("tests/lint/fixtures/" + fixture));
  return LintSource(as_path, content, Config());
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

struct FixtureCase {
  const char* fixture;
  const char* as_path;
  const char* rule;
  int min_findings;
};

TEST(LintFixtures, MustFailFixturesAreFlagged) {
  const FixtureCase cases[] = {
      {"must_fail/serving_check.cc", "src/service/handler.cc",
       "serving-check", 2},
      {"must_fail/hot_alloc.cc", "src/engine/kernels.cc", "hot-alloc", 3},
      {"must_fail/mutex_guard.h", "src/service/cache.h", "mutex-guard", 2},
      {"must_fail/factory_status.h", "src/service/widget.h",
       "factory-status", 1},
      {"must_fail/tsa_optout.cc", "src/runtime/loop.cc", "tsa-optout", 1},
  };
  for (const FixtureCase& c : cases) {
    SCOPED_TRACE(c.fixture);
    const std::vector<Finding> findings = LintFixture(c.fixture, c.as_path);
    EXPECT_GE(static_cast<int>(findings.size()), c.min_findings);
    EXPECT_TRUE(HasRule(findings, c.rule));
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, c.rule) << "unexpected cross-rule noise";
      EXPECT_EQ(f.file, c.as_path);
      EXPECT_GT(f.line, 0);
      EXPECT_FALSE(f.snippet.empty());
    }
  }
}

TEST(LintFixtures, MustPassFixturesAreClean) {
  const FixtureCase cases[] = {
      {"must_pass/serving_clean.cc", "src/service/handler.cc", "", 0},
      {"must_pass/hot_alloc_clean.cc", "src/engine/kernels.cc", "", 0},
      {"must_pass/mutex_guard_clean.h", "src/service/cache.h", "", 0},
      {"must_pass/factory_status_clean.h", "src/service/widget.h", "", 0},
      {"must_pass/allow_marker.cc", "src/common/worker.cc", "", 0},
      {"must_pass/comments_only.cc", "src/service/notes.cc", "", 0},
  };
  for (const FixtureCase& c : cases) {
    SCOPED_TRACE(c.fixture);
    const std::vector<Finding> findings = LintFixture(c.fixture, c.as_path);
    EXPECT_TRUE(findings.empty())
        << findings.size() << " unexpected finding(s), first: "
        << (findings.empty() ? "" : findings[0].Key());
  }
}

TEST(LintRules, ServingRulesOnlyApplyToServingDirs) {
  // The same assert-heavy content is fine outside the serving dirs
  // (library preconditions use DPHIST_CHECK by design).
  const std::vector<Finding> findings =
      LintFixture("must_fail/serving_check.cc", "src/tree/layout.cc");
  EXPECT_FALSE(HasRule(findings, "serving-check"));
}

TEST(LintRules, HotAllocOnlyAppliesToDeclaredHotFiles) {
  const std::vector<Finding> findings =
      LintFixture("must_fail/hot_alloc.cc", "src/engine/other.cc");
  EXPECT_FALSE(HasRule(findings, "hot-alloc"));
}

TEST(LintRules, MutexWrapperHeaderIsExempt) {
  // common/mutex.h legitimately contains the raw std::mutex it wraps.
  const std::string content = ReadFile(RepoPath("src/common/mutex.h"));
  const std::vector<Finding> findings =
      LintSource("src/common/mutex.h", content, Config());
  EXPECT_TRUE(findings.empty());
}

TEST(LintBaseline, SuppressesExactlyTheListedFindings) {
  const std::vector<Finding> findings =
      LintFixture("must_fail/serving_check.cc", "src/service/handler.cc");
  ASSERT_GE(findings.size(), 2u);

  // Baseline one of the two findings: it is suppressed, the other is
  // fresh, nothing is stale.
  const Report report = ApplyBaseline(findings, {findings[0].Key()});
  EXPECT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.fresh.size(), findings.size() - 1);
  EXPECT_TRUE(report.stale.empty());
}

TEST(LintBaseline, StaleEntriesAreReportedForRatchet) {
  const std::vector<Finding> findings =
      LintFixture("must_pass/serving_clean.cc", "src/service/handler.cc");
  ASSERT_TRUE(findings.empty());

  // Debt that no longer exists must surface as stale — the ratchet:
  // the baseline may only shrink, so a paid-down entry fails the run
  // until it is removed.
  const Report report =
      ApplyBaseline(findings, {"serving-check|src/service/handler.cc|gone"});
  EXPECT_TRUE(report.fresh.empty());
  EXPECT_TRUE(report.suppressed.empty());
  ASSERT_EQ(report.stale.size(), 1u);
  EXPECT_EQ(report.stale[0], "serving-check|src/service/handler.cc|gone");
}

TEST(LintBaseline, EachEntrySuppressesOneFindingOnly) {
  // Two identical lines produce two findings with the same key; one
  // baseline line absorbs only one of them.
  const std::string content =
      "void Check() { DPHIST_CHECK(true); }\n"
      "void Check() { DPHIST_CHECK(true); }\n";
  std::vector<Finding> findings =
      LintSource("src/service/dup.cc", content, Config());
  ASSERT_EQ(findings.size(), 2u);
  ASSERT_EQ(findings[0].Key(), findings[1].Key());

  const Report report = ApplyBaseline(findings, {findings[0].Key()});
  EXPECT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.fresh.size(), 1u);
  EXPECT_TRUE(report.stale.empty());
}

TEST(LintBaseline, KeysSurviveLineNumberDrift) {
  const std::string before = "void A() { DPHIST_CHECK(true); }\n";
  const std::string after =  // an unrelated line added above
      "void Unrelated();\nvoid A() { DPHIST_CHECK(true); }\n";
  const std::vector<Finding> f1 =
      LintSource("src/service/drift.cc", before, Config());
  const std::vector<Finding> f2 =
      LintSource("src/service/drift.cc", after, Config());
  ASSERT_EQ(f1.size(), 1u);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_NE(f1[0].line, f2[0].line);
  EXPECT_EQ(f1[0].Key(), f2[0].Key());
}

TEST(LintConfig, CommittedConfigLoads) {
  Config config;
  std::string error;
  ASSERT_TRUE(
      LoadConfig(RepoPath("tools/lint/dphist_lint.conf"), &config, &error))
      << error;
  EXPECT_EQ(config.serving_dirs.size(), 4u);
  EXPECT_EQ(config.hot_files.size(), 1u);
  EXPECT_EQ(config.hot_files[0], "src/engine/kernels.cc");
  EXPECT_EQ(config.baseline, "tools/lint/lint_baseline.txt");
}

TEST(LintConfig, UnknownKeyIsRejected) {
  Config config;
  std::string error;
  EXPECT_FALSE(LoadConfig(RepoPath("tests/lint/fixtures/config_bad.conf"),
                          &config, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
}

TEST(LintTreeCheck, CheckedInTreeIsCleanAgainstCommittedBaseline) {
  // The same gate CI runs: the committed baseline must cover every
  // finding (no fresh) and carry no stale entries (debt only shrinks).
  Config config;
  std::string error;
  ASSERT_TRUE(
      LoadConfig(RepoPath("tools/lint/dphist_lint.conf"), &config, &error))
      << error;
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  ASSERT_TRUE(LintTree(DPHIST_SOURCE_DIR, config, &findings, &error,
                       &files_scanned))
      << error;
  EXPECT_GT(files_scanned, 100u);

  std::vector<std::string> baseline;
  ASSERT_TRUE(
      LoadBaseline(RepoPath(config.baseline), &baseline, &error))
      << error;
  const Report report = ApplyBaseline(findings, baseline);
  for (const Finding& f : report.fresh) {
    ADD_FAILURE() << "fresh lint finding: " << f.file << ":" << f.line
                  << " [" << f.rule << "] " << f.message;
  }
  for (const std::string& key : report.stale) {
    ADD_FAILURE() << "stale baseline entry (remove it): " << key;
  }
}

TEST(LintFormat, TablesListEveryRule) {
  Report report;
  report.files_scanned = 7;
  const std::string text = FormatTable(report);
  const std::string md = FormatMarkdownTable(report);
  for (const std::string& rule : RuleNames()) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
    EXPECT_NE(md.find("`" + rule + "`"), std::string::npos) << rule;
  }
  EXPECT_NE(md.find("| --- |"), std::string::npos);
}

TEST(LintFormat, BaselineRoundTrips) {
  const std::vector<Finding> findings =
      LintFixture("must_fail/mutex_guard.h", "src/service/cache.h");
  ASSERT_FALSE(findings.empty());
  const std::string serialized = FormatBaseline(findings);

  // Parse it back through LoadBaseline semantics (skip comments).
  std::vector<std::string> keys;
  std::istringstream in(serialized);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    keys.push_back(line);
  }
  const Report report = ApplyBaseline(findings, keys);
  EXPECT_TRUE(report.fresh.empty());
  EXPECT_TRUE(report.stale.empty());
  EXPECT_EQ(report.suppressed.size(), findings.size());
}

}  // namespace
}  // namespace dphist::lint
