// must-fail fixture: tsa-optout. Linted as src/runtime/loop.cc — a
// blanket thread-safety-analysis opt-out on a serving path must be
// flagged (use a documented DPHIST_ASSERT_CAPABILITY escape instead).
// Never compiled.

void DrainQueue() DPHIST_NO_THREAD_SAFETY_ANALYSIS;
