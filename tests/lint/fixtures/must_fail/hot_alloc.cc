// must-fail fixture: hot-alloc. Linted as src/engine/kernels.cc — the
// naked new, the push_back, and the reserve must all be flagged. Never
// compiled.
#include <vector>

void Accumulate(std::vector<double>& out) {
  out.reserve(16);
  double* scratch = new double[16];
  for (int i = 0; i < 16; ++i) out.push_back(scratch[i]);
  delete[] scratch;
}
