// must-fail fixture: factory-status. Linted as src/service/widget.h —
// a Create factory returning a raw pointer loses the construction
// error and must be flagged. Never compiled.

class Widget {
 public:
  static Widget* Create(int size);
};
