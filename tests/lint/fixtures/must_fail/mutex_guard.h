// must-fail fixture: mutex-guard. Linted as src/service/cache.h — the
// raw std::mutex and the unguarded dphist::Mutex must both be flagged.
// Never compiled.
#include <mutex>

class Cache {
 private:
  std::mutex legacy_mutex_;
  Mutex mutex_;
  int value_ = 0;
};
