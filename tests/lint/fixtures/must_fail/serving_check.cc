// must-fail fixture: serving-check. Linted as src/service/handler.cc —
// both the CHECK and the abort() below must be flagged. Never compiled.
#include <cstdlib>

void HandleRequest(int size) {
  DPHIST_CHECK(size >= 0);
  if (size > 1000) std::abort();
}
