// must-pass fixture: comment stripping. Linted as src/service/notes.cc
// — every banned token below lives in a comment. Never compiled.
//
// DPHIST_CHECK would be wrong here; return a Status instead.
/* std::abort() is banned on serving paths, as is malloc(, and a
   std::mutex member without GUARDED_BY. */

int placeholder = 0;  // new allocations are fine to *mention*
