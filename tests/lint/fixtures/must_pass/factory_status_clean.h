// must-pass fixture: factory-status. Linted as src/service/widget.h —
// both factories surface construction failure; nothing to flag. Never
// compiled.

class Widget {
 public:
  static Result<Widget> Create(int size);
  static Status CreateBacking(const char* path);
};
