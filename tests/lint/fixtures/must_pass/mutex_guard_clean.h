// must-pass fixture: mutex-guard. Linted as src/service/cache.h — an
// annotated Mutex with a GUARDED_BY sibling; nothing to flag. Never
// compiled.

class Cache {
 private:
  Mutex mutex_;
  int value_ DPHIST_GUARDED_BY(mutex_) = 0;
};
