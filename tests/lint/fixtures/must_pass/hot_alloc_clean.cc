// must-pass fixture: hot-alloc. Linted as src/engine/kernels.cc —
// fixed-buffer arithmetic only; nothing to flag. Never compiled.

void Accumulate(double* out, const double* in, int n) {
  for (int i = 0; i < n; ++i) out[i] += in[i];
}
