// must-pass fixture: the inline allow marker. Linted as
// src/common/worker.cc — a function-local Mutex cannot be GUARDED_BY
// (the analysis only tracks members), so the marker exempts it. Never
// compiled.

void Run() {
  Mutex local_mutex;  // dphist-lint: allow(mutex-guard)
  local_mutex.Lock();
  local_mutex.Unlock();
}
