// must-pass fixture: serving-check. Linted as src/service/handler.cc —
// graceful degradation via Status; nothing to flag. Never compiled.
#include "common/status.h"

dphist::Status HandleRequest(int size) {
  if (size < 0) {
    return dphist::Status::InvalidArgument("negative request size");
  }
  return dphist::Status::Ok();
}
