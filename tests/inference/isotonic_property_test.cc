// Property-based sweep for the isotonic-regression implementations: for
// random noisy vectors, the PAVA output must be (a) non-decreasing,
// (b) idempotent, and (c) the L2 projection onto the monotone cone —
// certified structurally: the output is block-constant with each block
// at the (weighted) mean of its inputs, and no single merge of adjacent
// blocks or split of one block into two feasible sub-blocks improves the
// objective. The same invariant sweep runs against the Theorem 1
// min-max closed form (minmax_isotonic.h), which must agree with PAVA
// exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "inference/isotonic.h"
#include "inference/minmax_isotonic.h"

namespace dphist {
namespace {

constexpr double kTol = 1e-9;

double Objective(const std::vector<double>& fitted,
                 const std::vector<double>& values,
                 const std::vector<double>& weights) {
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = fitted[i] - values[i];
    total += weights[i] * d * d;
  }
  return total;
}

bool IsNonDecreasing(const std::vector<double>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1] - kTol) return false;
  }
  return true;
}

/// Maximal constant blocks [begin, end) of a fitted vector.
struct Block {
  std::size_t begin;
  std::size_t end;
};
std::vector<Block> BlocksOf(const std::vector<double>& fitted) {
  std::vector<Block> blocks;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= fitted.size(); ++i) {
    if (i == fitted.size() || std::abs(fitted[i] - fitted[begin]) > kTol) {
      blocks.push_back({begin, i});
      begin = i;
    }
  }
  return blocks;
}

double WeightedMean(const std::vector<double>& values,
                    const std::vector<double>& weights, std::size_t begin,
                    std::size_t end) {
  double sum = 0.0;
  double weight = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += weights[i] * values[i];
    weight += weights[i];
  }
  return sum / weight;
}

/// Asserts the full optimality certificate of the L2 projection onto the
/// monotone cone for `fitted` against (`values`, `weights`).
void ExpectIsProjection(const std::vector<double>& fitted,
                        const std::vector<double>& values,
                        const std::vector<double>& weights) {
  ASSERT_EQ(fitted.size(), values.size());
  EXPECT_TRUE(IsNonDecreasing(fitted));

  const double objective = Objective(fitted, values, weights);
  std::vector<Block> blocks = BlocksOf(fitted);

  // Each block sits at the weighted mean of its inputs (the stationarity
  // condition: shifting a whole block is feasible in both directions, so
  // the block value must minimize the unconstrained block objective).
  for (const Block& block : blocks) {
    EXPECT_NEAR(fitted[block.begin],
                WeightedMean(values, weights, block.begin, block.end), 1e-7);
  }

  // No single merge of adjacent blocks improves the objective. The merged
  // value (combined weighted mean) lies between the two block values, so
  // the merged vector is still monotone — a legal competitor.
  for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
    std::vector<double> merged = fitted;
    const double mean =
        WeightedMean(values, weights, blocks[b].begin, blocks[b + 1].end);
    for (std::size_t i = blocks[b].begin; i < blocks[b + 1].end; ++i) {
      merged[i] = mean;
    }
    EXPECT_TRUE(IsNonDecreasing(merged));
    EXPECT_GE(Objective(merged, values, weights) + kTol, objective)
        << "merging blocks " << b << " and " << b + 1 << " improved";
  }

  // No single split of one block into two sub-blocks at their own means
  // improves the objective, whenever that split is feasible (left mean
  // <= right mean and the new values respect the neighboring blocks).
  // For the true projection every feasible split is non-improving; PAVA
  // theory says feasible splits only exist with equal means.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t cut = blocks[b].begin + 1; cut < blocks[b].end; ++cut) {
      const double left = WeightedMean(values, weights, blocks[b].begin, cut);
      const double right = WeightedMean(values, weights, cut, blocks[b].end);
      std::vector<double> split = fitted;
      for (std::size_t i = blocks[b].begin; i < cut; ++i) split[i] = left;
      for (std::size_t i = cut; i < blocks[b].end; ++i) split[i] = right;
      if (!IsNonDecreasing(split)) continue;  // infeasible competitor
      EXPECT_GE(Objective(split, values, weights) + kTol, objective)
          << "splitting block " << b << " at " << cut << " improved";
    }
  }
}

std::vector<double> RandomVector(Rng* rng, std::size_t size) {
  std::vector<double> values(size);
  for (double& v : values) v = rng->NextGaussian() * 10.0;
  // Ties and plateaus stress the pooling logic; inject some.
  for (std::size_t i = 1; i < size; ++i) {
    if (rng->NextBernoulli(0.2)) values[i] = values[i - 1];
  }
  return values;
}

TEST(IsotonicPropertyTest, RandomVectorsProjectOntoMonotoneCone) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.NextInt(1, 50));
    std::vector<double> values = RandomVector(&rng, size);
    std::vector<double> unit_weights(size, 1.0);

    std::vector<double> fitted = IsotonicRegression(values);
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectIsProjection(fitted, values, unit_weights);

    // Idempotence: a monotone vector is its own projection.
    std::vector<double> twice = IsotonicRegression(fitted);
    ASSERT_EQ(twice.size(), fitted.size());
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      EXPECT_NEAR(twice[i], fitted[i], kTol);
    }
  }
}

TEST(IsotonicPropertyTest, WeightedRandomVectorsProject) {
  Rng rng(77);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.NextInt(1, 40));
    std::vector<double> values = RandomVector(&rng, size);
    std::vector<double> weights(size);
    for (double& w : weights) w = rng.NextUniform(0.1, 5.0);

    std::vector<double> fitted = WeightedIsotonicRegression(values, weights);
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectIsProjection(fitted, values, weights);

    std::vector<double> twice = WeightedIsotonicRegression(fitted, weights);
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      EXPECT_NEAR(twice[i], fitted[i], kTol);
    }
  }
}

TEST(IsotonicPropertyTest, AntitonicIsReversedIsotonic) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.NextInt(1, 40));
    std::vector<double> values = RandomVector(&rng, size);

    std::vector<double> antitonic = AntitonicRegression(values);
    std::vector<double> reversed(values.rbegin(), values.rend());
    std::vector<double> via_isotonic = IsotonicRegression(reversed);
    std::reverse(via_isotonic.begin(), via_isotonic.end());
    ASSERT_EQ(antitonic.size(), via_isotonic.size());
    for (std::size_t i = 0; i < antitonic.size(); ++i) {
      EXPECT_NEAR(antitonic[i], via_isotonic[i], kTol) << i;
    }
  }
}

// The same invariant sweep for the Theorem 1 min-max closed form: both
// formulas must equal each other and the PAVA projection, so the minmax
// output inherits every certificate above.
TEST(IsotonicPropertyTest, MinMaxClosedFormSatisfiesSameInvariants) {
  Rng rng(555);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.NextInt(1, 30));
    std::vector<double> values = RandomVector(&rng, size);
    std::vector<double> unit_weights(size, 1.0);

    std::vector<double> lower = MinMaxLowerSolution(values);
    std::vector<double> upper = MinMaxUpperSolution(values);
    std::vector<double> pava = IsotonicRegression(values);
    ASSERT_EQ(lower.size(), size);
    ASSERT_EQ(upper.size(), size);
    SCOPED_TRACE("trial " + std::to_string(trial));
    for (std::size_t i = 0; i < size; ++i) {
      // Theorem 1: L_k = U_k = s-bar[k].
      EXPECT_NEAR(lower[i], upper[i], 1e-7) << i;
      EXPECT_NEAR(lower[i], pava[i], 1e-7) << i;
    }
    ExpectIsProjection(lower, values, unit_weights);

    // Idempotence of the closed form itself.
    std::vector<double> twice = MinMaxLowerSolution(lower);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_NEAR(twice[i], lower[i], 1e-7) << i;
    }
  }
}

}  // namespace
}  // namespace dphist
