#include "inference/nonnegative_pruning.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(PruningTest, AllPositiveUntouched) {
  TreeLayout tree(4, 2);
  std::vector<double> nodes = {14, 2, 12, 2, 1, 10, 2};  // all > 0
  EXPECT_EQ(PruneNonPositiveSubtrees(tree, nodes), nodes);
}

TEST(PruningTest, NonPositiveLeafZeroed) {
  TreeLayout tree(4, 2);
  std::vector<double> nodes = {14, 2, 12, 2, -0.4, 10, 2};
  std::vector<double> pruned = PruneNonPositiveSubtrees(tree, nodes);
  EXPECT_DOUBLE_EQ(pruned[4], 0.0);
  // Everything else untouched.
  EXPECT_DOUBLE_EQ(pruned[0], 14.0);
  EXPECT_DOUBLE_EQ(pruned[3], 2.0);
}

TEST(PruningTest, NonPositiveInternalZeroesWholeSubtree) {
  TreeLayout tree(4, 2);
  // Node 1 (covering leaves 0-1) is negative: its subtree {1, 3, 4} must
  // all become zero even though leaf 3 is positive.
  std::vector<double> nodes = {14, -1, 12, 5, -6, 10, 2};
  std::vector<double> pruned = PruneNonPositiveSubtrees(tree, nodes);
  EXPECT_DOUBLE_EQ(pruned[1], 0.0);
  EXPECT_DOUBLE_EQ(pruned[3], 0.0);
  EXPECT_DOUBLE_EQ(pruned[4], 0.0);
  EXPECT_DOUBLE_EQ(pruned[2], 12.0);
  EXPECT_DOUBLE_EQ(pruned[5], 10.0);
}

TEST(PruningTest, NonPositiveRootZeroesEverything) {
  TreeLayout tree(8, 2);
  std::vector<double> nodes(static_cast<std::size_t>(tree.node_count()), 3.0);
  nodes[0] = -0.5;
  std::vector<double> pruned = PruneNonPositiveSubtrees(tree, nodes);
  for (double v : pruned) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PruningTest, ExactlyZeroCountsAsNonPositive) {
  // The paper's rule is h[v] <= 0.
  TreeLayout tree(2, 2);
  std::vector<double> nodes = {0.0, 1.0, -1.0};
  std::vector<double> pruned = PruneNonPositiveSubtrees(tree, nodes);
  EXPECT_DOUBLE_EQ(pruned[0], 0.0);
  EXPECT_DOUBLE_EQ(pruned[1], 0.0);
  EXPECT_DOUBLE_EQ(pruned[2], 0.0);
}

TEST(PruningTest, DeepCascade) {
  TreeLayout tree(8, 2);  // 15 nodes
  std::vector<double> nodes(15, 1.0);
  nodes[1] = -2.0;  // covers leaves 0-3: nodes 3, 4, 7, 8, 9, 10
  std::vector<double> pruned = PruneNonPositiveSubtrees(tree, nodes);
  for (std::int64_t v : {1, 3, 4, 7, 8, 9, 10}) {
    EXPECT_DOUBLE_EQ(pruned[static_cast<std::size_t>(v)], 0.0) << v;
  }
  for (std::int64_t v : {0, 2, 5, 6, 11, 12, 13, 14}) {
    EXPECT_DOUBLE_EQ(pruned[static_cast<std::size_t>(v)], 1.0) << v;
  }
}

TEST(RoundingTest, RoundsToNearestNonNegativeInteger) {
  std::vector<double> rounded =
      RoundToNonNegativeIntegers({-3.2, -0.4, 0.0, 0.49, 0.5, 2.51, 7.0});
  EXPECT_EQ(rounded,
            (std::vector<double>{0.0, 0.0, 0.0, 0.0, 1.0, 3.0, 7.0}));
}

TEST(RoundingTest, EmptyInput) {
  EXPECT_TRUE(RoundToNonNegativeIntegers({}).empty());
}

TEST(PruningDeathTest, WrongLengthRejected) {
  TreeLayout tree(4, 2);
  std::vector<double> wrong(3, 1.0);
  EXPECT_DEATH(PruneNonPositiveSubtrees(tree, wrong), "");
}

}  // namespace
}  // namespace dphist
