#include "inference/constrained_ls.h"

#include <gtest/gtest.h>

#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"

namespace dphist {
namespace {

// Variable layout for the intro's student-grades example:
// 0: x_t (total), 1: x_p (passing), 2..5: x_A..x_D, 6: x_F.
ConstraintSystem GradesConstraints() {
  ConstraintSystem constraints(7);
  constraints.AddSumConstraint(0, {1, 6});         // x_t = x_p + x_F
  constraints.AddSumConstraint(1, {2, 3, 4, 5});   // x_p = A + B + C + D
  return constraints;
}

TEST(ConstraintSystemTest, CountsAndSatisfaction) {
  ConstraintSystem constraints = GradesConstraints();
  EXPECT_EQ(constraints.variable_count(), 7);
  EXPECT_EQ(constraints.constraint_count(), 2);
  // A consistent assignment: 10 students, 8 passing, 2 F.
  std::vector<double> good = {10, 8, 3, 2, 2, 1, 2};
  EXPECT_TRUE(constraints.IsSatisfied(good));
  EXPECT_DOUBLE_EQ(constraints.MaxViolation(good), 0.0);

  std::vector<double> bad = {11, 8, 3, 2, 2, 1, 2};  // x_t off by one
  EXPECT_FALSE(constraints.IsSatisfied(bad));
  EXPECT_DOUBLE_EQ(constraints.MaxViolation(bad), 1.0);
}

TEST(ConstrainedLsTest, ProjectionSatisfiesGradeConstraints) {
  ConstraintSystem constraints = GradesConstraints();
  // A noisy, inconsistent response.
  std::vector<double> noisy = {10.7, 7.2, 3.4, 1.8, 2.3, 0.6, 2.4};
  auto inferred = ConstrainedLeastSquares(constraints, noisy);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(constraints.IsSatisfied(inferred.value(), 1e-8));
}

TEST(ConstrainedLsTest, FeasibleInputIsFixedPoint) {
  ConstraintSystem constraints = GradesConstraints();
  std::vector<double> feasible = {10, 8, 3, 2, 2, 1, 2};
  auto inferred = ConstrainedLeastSquares(constraints, feasible);
  ASSERT_TRUE(inferred.ok());
  for (std::size_t i = 0; i < feasible.size(); ++i) {
    EXPECT_NEAR(inferred.value()[i], feasible[i], 1e-10);
  }
}

TEST(ConstrainedLsTest, NoFeasibleCandidateIsCloser) {
  ConstraintSystem constraints = GradesConstraints();
  std::vector<double> noisy = {9.1, 8.9, 2.2, 2.0, 2.1, 1.9, 1.2};
  auto inferred = ConstrainedLeastSquares(constraints, noisy);
  ASSERT_TRUE(inferred.ok());
  double best = SquaredError(inferred.value(), noisy);

  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random feasible point: free-choose grades, derive x_p, x_t.
    std::vector<double> q(7);
    for (int i = 2; i <= 6; ++i) q[static_cast<std::size_t>(i)] =
        rng.NextUniform(0, 5);
    q[1] = q[2] + q[3] + q[4] + q[5];
    q[0] = q[1] + q[6];
    EXPECT_GE(SquaredError(q, noisy) + 1e-9, best);
  }
}

TEST(ConstrainedLsTest, ImprovesAccuracyOfDerivedTotals) {
  // The intro's motivation: with sensitivity-3 noise on all 7 answers,
  // constrained inference should improve the accuracy of the whole vector
  // on average (it projects out 2 of the 7 noise dimensions).
  ConstraintSystem constraints = GradesConstraints();
  std::vector<double> truth = {30, 24, 10, 7, 4, 3, 6};
  Rng rng(9);
  RunningStat noisy_err, inferred_err;
  LaplaceDistribution noise(3.0);  // sensitivity 3 at eps = 1
  for (int t = 0; t < 3000; ++t) {
    std::vector<double> noisy = truth;
    for (double& x : noisy) x += noise.Sample(&rng);
    noisy_err.Add(SquaredError(noisy, truth));
    auto inferred = ConstrainedLeastSquares(constraints, noisy);
    ASSERT_TRUE(inferred.ok());
    inferred_err.Add(SquaredError(inferred.value(), truth));
  }
  EXPECT_LT(inferred_err.Mean(), noisy_err.Mean());
  // The projection removes rank(A)=2 of 7 noise dimensions; expected
  // reduction factor 5/7. Allow generous slack around it.
  EXPECT_NEAR(inferred_err.Mean() / noisy_err.Mean(), 5.0 / 7.0, 0.08);
}

TEST(ConstrainedLsTest, NoConstraintsIsIdentity) {
  ConstraintSystem constraints(3);
  std::vector<double> noisy = {1.5, -2.0, 7.25};
  auto inferred = ConstrainedLeastSquares(constraints, noisy);
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred.value(), noisy);
}

TEST(ConstrainedLsTest, ExplicitCoefficientConstraint) {
  // 2 q0 - q1 = 3, projecting (0, 0): expected q = (1.2, -0.6).
  ConstraintSystem constraints(2);
  constraints.AddConstraint({{0, 2.0}, {1, -1.0}}, 3.0);
  auto inferred = ConstrainedLeastSquares(constraints, {0.0, 0.0});
  ASSERT_TRUE(inferred.ok());
  EXPECT_NEAR(inferred.value()[0], 1.2, 1e-10);
  EXPECT_NEAR(inferred.value()[1], -0.6, 1e-10);
}

TEST(ConstrainedLsTest, LengthMismatchRejected) {
  ConstraintSystem constraints(3);
  constraints.AddSumConstraint(0, {1, 2});
  auto inferred = ConstrainedLeastSquares(constraints, {1.0, 2.0});
  EXPECT_FALSE(inferred.ok());
  EXPECT_EQ(inferred.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstrainedLsTest, RedundantConstraintsReported) {
  ConstraintSystem constraints(2);
  constraints.AddSumConstraint(0, {1});
  constraints.AddSumConstraint(0, {1});  // duplicate row
  auto inferred = ConstrainedLeastSquares(constraints, {1.0, 2.0});
  EXPECT_FALSE(inferred.ok());
}

TEST(ConstraintSystemDeathTest, BadIndicesRejected) {
  ConstraintSystem constraints(2);
  EXPECT_DEATH(constraints.AddConstraint({{5, 1.0}}, 0.0), "");
  EXPECT_DEATH(constraints.AddConstraint({{0, 1.0}, {0, 2.0}}, 0.0),
               "duplicate");
  EXPECT_DEATH(constraints.AddConstraint({}, 0.0), "at least one");
}

}  // namespace
}  // namespace dphist
