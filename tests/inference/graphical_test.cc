#include "inference/graphical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "data/social_network.h"
#include "estimators/unattributed.h"
#include "inference/nonnegative_pruning.h"

namespace dphist {
namespace {

// Independent oracle: Havel-Hakimi realizability test.
bool HavelHakimi(std::vector<std::int64_t> degrees) {
  const std::int64_t n = static_cast<std::int64_t>(degrees.size());
  for (std::int64_t d : degrees) {
    if (d < 0 || d >= n) return false;
  }
  while (true) {
    std::sort(degrees.begin(), degrees.end(), std::greater<std::int64_t>());
    if (degrees.empty() || degrees[0] == 0) return true;
    std::int64_t d = degrees[0];
    if (d >= static_cast<std::int64_t>(degrees.size())) return false;
    degrees.erase(degrees.begin());
    for (std::int64_t i = 0; i < d; ++i) {
      if (--degrees[static_cast<std::size_t>(i)] < 0) return false;
    }
  }
}

TEST(GraphicalTest, KnownGraphicalSequences) {
  EXPECT_TRUE(IsGraphicalDegreeSequence({}));
  EXPECT_TRUE(IsGraphicalDegreeSequence({0}));
  EXPECT_TRUE(IsGraphicalDegreeSequence({1, 1}));
  EXPECT_TRUE(IsGraphicalDegreeSequence({2, 2, 2}));           // triangle
  EXPECT_TRUE(IsGraphicalDegreeSequence({3, 3, 3, 3}));        // K4
  EXPECT_TRUE(IsGraphicalDegreeSequence({2, 2, 1, 1}));        // path
  EXPECT_TRUE(IsGraphicalDegreeSequence({3, 2, 2, 2, 1}));
  EXPECT_TRUE(IsGraphicalDegreeSequence({0, 0, 0, 0}));
}

TEST(GraphicalTest, KnownNonGraphicalSequences) {
  EXPECT_FALSE(IsGraphicalDegreeSequence({1}));         // odd sum
  EXPECT_FALSE(IsGraphicalDegreeSequence({3, 1}));      // d >= n
  EXPECT_FALSE(IsGraphicalDegreeSequence({2, 2, 1}));   // odd sum
  EXPECT_FALSE(IsGraphicalDegreeSequence({3, 3, 3, 1}));  // EG violated
  EXPECT_FALSE(IsGraphicalDegreeSequence({-1, 1}));     // negative
  EXPECT_FALSE(IsGraphicalDegreeSequence({4, 4, 4, 1, 1}));
}

TEST(GraphicalTest, OrderIrrelevant) {
  EXPECT_TRUE(IsGraphicalDegreeSequence({1, 2, 2, 1}));
  EXPECT_FALSE(IsGraphicalDegreeSequence({1, 3, 3, 3}));
}

TEST(GraphicalTest, AgreesWithHavelHakimiOnRandomSequences) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    std::int64_t n = rng.NextInt(1, 24);
    std::vector<std::int64_t> degrees(static_cast<std::size_t>(n));
    for (auto& d : degrees) d = rng.NextInt(0, n - 1);
    EXPECT_EQ(IsGraphicalDegreeSequence(degrees), HavelHakimi(degrees))
        << "trial " << trial;
  }
}

TEST(GraphicalTest, RealGraphDegreesAreGraphical) {
  SocialNetworkConfig config;
  config.num_nodes = 500;
  Histogram degrees = GenerateSocialNetworkDegrees(config);
  std::vector<std::int64_t> d(degrees.counts().size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = static_cast<std::int64_t>(degrees.counts()[i]);
  }
  EXPECT_TRUE(IsGraphicalDegreeSequence(d));
}

TEST(RepairTest, GraphicalInputUnchanged) {
  std::vector<std::int64_t> triangle = {2, 2, 2};
  EXPECT_EQ(RepairToGraphical(triangle), triangle);
  std::vector<std::int64_t> path = {1, 2, 2, 1};
  EXPECT_EQ(RepairToGraphical(path), path);
}

TEST(RepairTest, FixesParity) {
  std::vector<std::int64_t> odd = {2, 2, 1};
  std::vector<std::int64_t> fixed = RepairToGraphical(odd);
  EXPECT_TRUE(IsGraphicalDegreeSequence(fixed));
  // One unit of change suffices.
  std::int64_t l1 = 0;
  for (std::size_t i = 0; i < odd.size(); ++i) {
    l1 += std::abs(fixed[i] - odd[i]);
  }
  EXPECT_EQ(l1, 1);
}

TEST(RepairTest, ClampsOutOfRangeValues) {
  std::vector<std::int64_t> wild = {99, -5, 2, 1};
  std::vector<std::int64_t> fixed = RepairToGraphical(wild);
  EXPECT_TRUE(IsGraphicalDegreeSequence(fixed));
  EXPECT_GE(*std::min_element(fixed.begin(), fixed.end()), 0);
  EXPECT_LT(*std::max_element(fixed.begin(), fixed.end()), 4);
}

TEST(RepairTest, ResolvesErdosGallaiViolations) {
  std::vector<std::int64_t> bad = {3, 3, 3, 1};
  std::vector<std::int64_t> fixed = RepairToGraphical(bad);
  EXPECT_TRUE(IsGraphicalDegreeSequence(fixed));
}

TEST(RepairTest, RandomSequencesAlwaysRepaired) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::int64_t n = rng.NextInt(1, 40);
    std::vector<std::int64_t> degrees(static_cast<std::size_t>(n));
    for (auto& d : degrees) d = rng.NextInt(-2, n + 2);
    std::vector<std::int64_t> fixed = RepairToGraphical(degrees);
    EXPECT_TRUE(IsGraphicalDegreeSequence(fixed)) << "trial " << trial;
    EXPECT_TRUE(HavelHakimi(fixed)) << "trial " << trial;
  }
}

TEST(RepairTest, PreservesPositions) {
  // The hub stays the hub: repair adjusts values, not the ranking.
  std::vector<std::int64_t> degrees = {1, 5, 1, 1};  // 5 >= n, clamp to 3
  std::vector<std::int64_t> fixed = RepairToGraphical(degrees);
  EXPECT_TRUE(IsGraphicalDegreeSequence(fixed));
  EXPECT_EQ(*std::max_element(fixed.begin(), fixed.end()), fixed[1]);
}

TEST(RepairTest, EndToEndPrivateDegreeSequenceRelease) {
  // Appendix B pipeline: S-bar -> round -> graphical repair. The repaired
  // release must be a valid degree sequence and stay close to S-bar.
  SocialNetworkConfig config;
  config.num_nodes = 400;
  Histogram degrees = GenerateSocialNetworkDegrees(config);
  Rng rng(3);
  std::vector<double> noisy = SampleNoisySortedCounts(degrees, 0.1, &rng);
  std::vector<double> sbar =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  std::vector<double> rounded = RoundToNonNegativeIntegers(sbar);
  std::vector<std::int64_t> release(rounded.size());
  for (std::size_t i = 0; i < rounded.size(); ++i) {
    release[i] = static_cast<std::int64_t>(rounded[i]);
  }
  std::vector<std::int64_t> graphical = RepairToGraphical(release);
  EXPECT_TRUE(IsGraphicalDegreeSequence(graphical));
  // Repair cost is small relative to the sequence mass.
  std::int64_t l1 = 0;
  for (std::size_t i = 0; i < release.size(); ++i) {
    l1 += std::abs(graphical[i] - release[i]);
  }
  EXPECT_LT(static_cast<double>(l1), 0.05 * degrees.Total());
}

}  // namespace
}  // namespace dphist
