#include "inference/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "domain/histogram.h"
#include "linalg/least_squares.h"
#include "query/hierarchical_query.h"

namespace dphist {
namespace {

std::vector<double> RandomNodeVector(const TreeLayout& tree, Rng* rng) {
  std::vector<double> v(static_cast<std::size_t>(tree.node_count()));
  for (double& x : v) x = rng->NextUniform(-10, 10);
  return v;
}

TEST(HierarchicalInferenceTest, ConsistentInputIsFixedPoint) {
  // Exact tree counts already satisfy the constraints, so inference must
  // return them unchanged (the projection of a feasible point).
  Histogram data = Histogram::FromCounts({2, 0, 10, 2});
  HierarchicalQuery query(4, 2);
  std::vector<double> exact = query.Evaluate(data);
  HierarchicalInferenceResult result =
      HierarchicalInference(query.tree(), exact);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(result.node_estimates[i], exact[i], 1e-9);
  }
}

TEST(HierarchicalInferenceTest, OutputAlwaysConsistent) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    TreeLayout tree(16, 2);
    std::vector<double> noisy = RandomNodeVector(tree, &rng);
    HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);
    EXPECT_LT(MaxConsistencyViolation(tree, result.node_estimates), 1e-9);
  }
}

TEST(HierarchicalInferenceTest, PaperFig2InferredExample) {
  // Fig. 2(b): H~(I) = <13, 3, 11, 4, 1, 12, 1>. The paper reports the
  // inferred answer H(I)-bar = <14, 3, 11, 3, 0, 11, 0>. Our exact least
  // squares solution must be consistent and close to the paper's rounded
  // rendition (the paper prints integers).
  TreeLayout tree(4, 2);
  std::vector<double> noisy = {13, 3, 11, 4, 1, 12, 1};
  HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);
  const std::vector<double>& h = result.node_estimates;
  EXPECT_LT(MaxConsistencyViolation(tree, h), 1e-9);
  // Root: z[r] = (k-1)/(k^ell - 1) * sum_i k^i * (level-i sum) with level
  // counted from the leaves: (1/7)*(4*13 + 2*(3+11) + 1*(4+1+12+1)) =
  // (52 + 28 + 18)/7 = 14.
  EXPECT_NEAR(h[0], 14.0, 1e-9);
  // For this draw the least-squares solution is exactly integral and
  // matches the paper's printed vector: hand-worked z = (14, 11/3, 35/3,
  // 4, 1, 12, 1) and the top-down pass gives <14, 3, 11, 3, 0, 11, 0>.
  std::vector<double> paper = {14, 3, 11, 3, 0, 11, 0};
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_NEAR(h[i], paper[i], 1e-9) << "node " << i;
  }
}

TEST(HierarchicalInferenceTest, MatchesGenericLeastSquares) {
  // Theorem 3 claims the two-pass recurrence *is* the OLS solution. Check
  // against the dense QR solver: unknowns are leaf counts, observation
  // matrix X maps leaves to all tree nodes.
  Rng rng(2);
  for (std::int64_t leaves : {2, 4, 8}) {
    TreeLayout tree(leaves, 2);
    linalg::Matrix x(static_cast<std::size_t>(tree.node_count()),
                     static_cast<std::size_t>(leaves));
    for (std::int64_t v = 0; v < tree.node_count(); ++v) {
      Interval r = tree.NodeRange(v);
      for (std::int64_t leaf = r.lo(); leaf <= r.hi(); ++leaf) {
        x(static_cast<std::size_t>(v), static_cast<std::size_t>(leaf)) = 1.0;
      }
    }
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<double> noisy = RandomNodeVector(tree, &rng);
      auto ols = linalg::OlsFittedValues(x, noisy);
      ASSERT_TRUE(ols.ok());
      HierarchicalInferenceResult fast = HierarchicalInference(tree, noisy);
      for (std::size_t i = 0; i < noisy.size(); ++i) {
        EXPECT_NEAR(fast.node_estimates[i], ols.value()[i], 1e-8)
            << "leaves=" << leaves << " node=" << i;
      }
    }
  }
}

TEST(HierarchicalInferenceTest, MatchesGenericLeastSquaresTernary) {
  Rng rng(3);
  TreeLayout tree(9, 3);
  linalg::Matrix x(static_cast<std::size_t>(tree.node_count()), 9);
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    Interval r = tree.NodeRange(v);
    for (std::int64_t leaf = r.lo(); leaf <= r.hi(); ++leaf) {
      x(static_cast<std::size_t>(v), static_cast<std::size_t>(leaf)) = 1.0;
    }
  }
  std::vector<double> noisy = RandomNodeVector(tree, &rng);
  auto ols = linalg::OlsFittedValues(x, noisy);
  ASSERT_TRUE(ols.ok());
  HierarchicalInferenceResult fast = HierarchicalInference(tree, noisy);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_NEAR(fast.node_estimates[i], ols.value()[i], 1e-8);
  }
}

TEST(HierarchicalInferenceTest, RootIsWeightedLevelAverage) {
  // Theorem 3 proof identity: h[r] = (k-1)/(k^ell - 1) *
  // sum_{height i} k^i * (sum of noisy counts at that height).
  Rng rng(4);
  TreeLayout tree(8, 2);
  std::vector<double> noisy = RandomNodeVector(tree, &rng);
  HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);

  double k = 2.0;
  double ell = static_cast<double>(tree.height());
  double expected = 0.0;
  for (std::int64_t d = 0; d < tree.height(); ++d) {
    double level_sum = 0.0;
    for (std::int64_t i = 0; i < tree.LevelSize(d); ++i) {
      level_sum += noisy[static_cast<std::size_t>(tree.LevelStart(d) + i)];
    }
    double height = ell - 1.0 - static_cast<double>(d);
    expected += std::pow(k, height) * level_sum;
  }
  expected *= (k - 1.0) / (std::pow(k, ell) - 1.0);
  EXPECT_NEAR(result.node_estimates[0], expected, 1e-9);
}

TEST(HierarchicalInferenceTest, UnbiasedOverManyDraws) {
  // Theorem 4(i): h-bar is unbiased. Average node estimates over many
  // Laplace draws and compare with the exact counts.
  Histogram data = Histogram::FromCounts({3, 1, 4, 1, 5, 9, 2, 6});
  HierarchicalQuery query(8, 2);
  const TreeLayout& tree = query.tree();
  std::vector<double> exact = query.Evaluate(data);

  Rng rng(5);
  std::vector<RunningStat> stats(exact.size());
  LaplaceDistribution noise(3.0);
  for (int t = 0; t < 8000; ++t) {
    std::vector<double> noisy = exact;
    for (double& x : noisy) x += noise.Sample(&rng);
    HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);
    for (std::size_t i = 0; i < exact.size(); ++i) {
      stats[i].Add(result.node_estimates[i]);
    }
  }
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(stats[i].Mean(), exact[i], 0.35) << "node " << i;
  }
}

TEST(HierarchicalInferenceTest, ReducesNodeErrorOnAverage) {
  // error(H-bar[v]) <= error(H~[v]) for every node, aggregated here.
  Histogram data = Histogram::FromCounts({0, 0, 7, 0, 0, 2, 0, 0});
  HierarchicalQuery query(8, 2);
  const TreeLayout& tree = query.tree();
  std::vector<double> exact = query.Evaluate(data);

  Rng rng(6);
  LaplaceDistribution noise(4.0);
  RunningStat noisy_error, inferred_error;
  for (int t = 0; t < 3000; ++t) {
    std::vector<double> noisy = exact;
    for (double& x : noisy) x += noise.Sample(&rng);
    HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);
    noisy_error.Add(SquaredError(noisy, exact));
    inferred_error.Add(SquaredError(result.node_estimates, exact));
  }
  EXPECT_LT(inferred_error.Mean(), noisy_error.Mean());
}

TEST(HierarchicalInferenceTest, LeafEstimatesDropPadding) {
  TreeLayout tree(5, 2);  // pads to 8 leaves
  std::vector<double> nodes(static_cast<std::size_t>(tree.node_count()), 0.0);
  for (std::int64_t pos = 0; pos < 8; ++pos) {
    nodes[static_cast<std::size_t>(tree.LeafNode(pos))] =
        static_cast<double>(pos) + 1.0;
  }
  std::vector<double> leaves = LeafEstimates(tree, nodes, 5);
  ASSERT_EQ(leaves.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(leaves[i], static_cast<double>(i) + 1.0);
  }
}

class HierarchicalShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(HierarchicalShapeSweep, ConsistencyAndProjectionProperties) {
  auto [leaves, k] = GetParam();
  TreeLayout tree(leaves, k);
  Rng rng(static_cast<std::uint64_t>(leaves * 7 + k));
  std::vector<double> noisy = RandomNodeVector(tree, &rng);
  HierarchicalInferenceResult result = HierarchicalInference(tree, noisy);

  // Consistent output.
  EXPECT_LT(MaxConsistencyViolation(tree, result.node_estimates), 1e-8);
  // Idempotent: inferring on an already-consistent vector is the identity.
  HierarchicalInferenceResult again =
      HierarchicalInference(tree, result.node_estimates);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_NEAR(again.node_estimates[i], result.node_estimates[i], 1e-8);
  }
  // z of the root equals h of the root (Theorem 3 base case).
  EXPECT_NEAR(result.subtree_estimates[0], result.node_estimates[0], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalShapeSweep,
    ::testing::Values(std::make_tuple(std::int64_t{2}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{4}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{32}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{100}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{1024}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{9}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{81}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{64}, std::int64_t{4}),
                      std::make_tuple(std::int64_t{625}, std::int64_t{5})));

TEST(HierarchicalInferenceDeathTest, WrongVectorLengthRejected) {
  TreeLayout tree(4, 2);
  std::vector<double> wrong(3, 0.0);
  EXPECT_DEATH(HierarchicalInference(tree, wrong), "node count");
}

}  // namespace
}  // namespace dphist
