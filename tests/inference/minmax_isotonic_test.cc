// Validates Theorem 1: the min-max formulas L_k and U_k agree with each
// other and with the PAVA projection, on both hand-worked and random
// inputs. This is the closed form the paper states; PAVA is the O(n)
// production algorithm.

#include "inference/minmax_isotonic.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "inference/isotonic.h"

namespace dphist {
namespace {

TEST(MinMaxIsotonicTest, PaperExample4Cases) {
  // <9, 14, 10> -> <9, 12, 12>.
  std::vector<double> lower = MinMaxLowerSolution({9, 14, 10});
  std::vector<double> upper = MinMaxUpperSolution({9, 14, 10});
  ASSERT_EQ(lower.size(), 3u);
  EXPECT_DOUBLE_EQ(lower[0], 9.0);
  EXPECT_DOUBLE_EQ(lower[1], 12.0);
  EXPECT_DOUBLE_EQ(lower[2], 12.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(lower[i], upper[i]);
  }

  // <14, 9, 10, 15> -> <11, 11, 11, 15>.
  lower = MinMaxLowerSolution({14, 9, 10, 15});
  EXPECT_DOUBLE_EQ(lower[0], 11.0);
  EXPECT_DOUBLE_EQ(lower[1], 11.0);
  EXPECT_DOUBLE_EQ(lower[2], 11.0);
  EXPECT_DOUBLE_EQ(lower[3], 15.0);
}

TEST(MinMaxIsotonicTest, SortedInputIsFixedPoint) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(MinMaxLowerSolution(v), v);
  EXPECT_EQ(MinMaxUpperSolution(v), v);
}

TEST(MinMaxIsotonicTest, EmptyInput) {
  EXPECT_TRUE(MinMaxLowerSolution({}).empty());
  EXPECT_TRUE(MinMaxUpperSolution({}).empty());
}

TEST(MinMaxIsotonicTest, SingleElement) {
  EXPECT_EQ(MinMaxLowerSolution({7.0}), (std::vector<double>{7.0}));
  EXPECT_EQ(MinMaxUpperSolution({7.0}), (std::vector<double>{7.0}));
}

class MinMaxAgreementSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinMaxAgreementSweep, LowerEqualsUpperEqualsPava) {
  int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 101 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = rng.NextUniform(-25, 25);
    std::vector<double> lower = MinMaxLowerSolution(v);
    std::vector<double> upper = MinMaxUpperSolution(v);
    std::vector<double> pava = IsotonicRegression(v);
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(lower[i], upper[i], 1e-9) << "L_k != U_k at " << i;
      EXPECT_NEAR(lower[i], pava[i], 1e-9) << "min-max != PAVA at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinMaxAgreementSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 50, 100));

TEST(MinMaxIsotonicTest, AgreesWithPavaOnIntegerTies) {
  // Ties and plateaus are where index bookkeeping usually breaks.
  std::vector<double> v = {3, 3, 1, 1, 2, 2, 2, 0, 5, 5};
  std::vector<double> lower = MinMaxLowerSolution(v);
  std::vector<double> pava = IsotonicRegression(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(lower[i], pava[i], 1e-12);
  }
}

}  // namespace
}  // namespace dphist
