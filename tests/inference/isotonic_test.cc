#include "inference/isotonic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/statistics.h"

namespace dphist {
namespace {

bool IsNonDecreasing(const std::vector<double>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1] - 1e-12) return false;
  }
  return true;
}

// ---- Example 4 of the paper ----

TEST(IsotonicTest, PaperExample4AlreadySorted) {
  // s~ = <9, 10, 14> is ordered, so s-bar = s~.
  std::vector<double> fitted = IsotonicRegression({9, 10, 14});
  EXPECT_EQ(fitted, (std::vector<double>{9, 10, 14}));
}

TEST(IsotonicTest, PaperExample4LastTwoOutOfOrder) {
  // s~ = <9, 14, 10> -> s-bar = <9, 12, 12>.
  std::vector<double> fitted = IsotonicRegression({9, 14, 10});
  ASSERT_EQ(fitted.size(), 3u);
  EXPECT_DOUBLE_EQ(fitted[0], 9.0);
  EXPECT_DOUBLE_EQ(fitted[1], 12.0);
  EXPECT_DOUBLE_EQ(fitted[2], 12.0);
}

TEST(IsotonicTest, PaperExample4FirstElementHigh) {
  // s~ = <14, 9, 10, 15> -> s-bar = <11, 11, 11, 15> with ||s~-s||^2 = 14.
  std::vector<double> fitted = IsotonicRegression({14, 9, 10, 15});
  ASSERT_EQ(fitted.size(), 4u);
  EXPECT_DOUBLE_EQ(fitted[0], 11.0);
  EXPECT_DOUBLE_EQ(fitted[1], 11.0);
  EXPECT_DOUBLE_EQ(fitted[2], 11.0);
  EXPECT_DOUBLE_EQ(fitted[3], 15.0);
  EXPECT_DOUBLE_EQ(SquaredError(fitted, {14, 9, 10, 15}), 14.0);
}

// ---- Structural properties ----

TEST(IsotonicTest, EmptyAndSingleton) {
  EXPECT_TRUE(IsotonicRegression({}).empty());
  EXPECT_EQ(IsotonicRegression({5.0}), (std::vector<double>{5.0}));
}

TEST(IsotonicTest, ConstantInputUnchanged) {
  std::vector<double> v(10, 3.25);
  EXPECT_EQ(IsotonicRegression(v), v);
}

TEST(IsotonicTest, ReverseSortedPoolsToMean) {
  std::vector<double> fitted = IsotonicRegression({5, 4, 3, 2, 1});
  for (double x : fitted) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(IsotonicTest, OutputIsSortedOnRandomInput) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(200);
    for (double& x : v) x = rng.NextUniform(-50, 50);
    EXPECT_TRUE(IsNonDecreasing(IsotonicRegression(v)));
  }
}

TEST(IsotonicTest, IdempotentOnRandomInput) {
  Rng rng(2);
  std::vector<double> v(100);
  for (double& x : v) x = rng.NextUniform(-10, 10);
  std::vector<double> once = IsotonicRegression(v);
  std::vector<double> twice = IsotonicRegression(once);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(twice[i], once[i], 1e-12);
  }
}

TEST(IsotonicTest, TranslationEquivariantLemma2) {
  // Lemma 2: shifting the input shifts the solution.
  Rng rng(3);
  std::vector<double> v(64);
  for (double& x : v) x = rng.NextUniform(-5, 5);
  std::vector<double> base = IsotonicRegression(v);
  const double delta = 17.5;
  std::vector<double> shifted = v;
  for (double& x : shifted) x += delta;
  std::vector<double> shifted_fit = IsotonicRegression(shifted);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(shifted_fit[i], base[i] + delta, 1e-10);
  }
}

TEST(IsotonicTest, PreservesTotalMass) {
  // Pooling replaces runs by their mean, so the sum is invariant.
  Rng rng(4);
  std::vector<double> v(128);
  double total = 0.0;
  for (double& x : v) {
    x = rng.NextUniform(-20, 20);
    total += x;
  }
  std::vector<double> fitted = IsotonicRegression(v);
  double fitted_total = 0.0;
  for (double x : fitted) fitted_total += x;
  EXPECT_NEAR(fitted_total, total, 1e-8);
}

TEST(IsotonicTest, MatchesBruteForceOnTinyInputs) {
  // Exhaustive check against a fine grid search for n = 3.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v = {rng.NextUniform(0, 4), rng.NextUniform(0, 4),
                             rng.NextUniform(0, 4)};
    std::vector<double> fitted = IsotonicRegression(v);
    double best = SquaredError(fitted, v);
    // Grid search over sorted triples.
    for (double a = 0.0; a <= 4.0; a += 0.05) {
      for (double b = a; b <= 4.0; b += 0.05) {
        for (double c = b; c <= 4.0; c += 0.05) {
          double err = (a - v[0]) * (a - v[0]) + (b - v[1]) * (b - v[1]) +
                       (c - v[2]) * (c - v[2]);
          EXPECT_GE(err + 1e-9, best);
        }
      }
    }
  }
}

TEST(IsotonicTest, ProjectionIsNonExpansiveTowardSortedTargets) {
  // For any sorted target t (a feasible point of the cone),
  // ||s-bar - t|| <= ||s~ - t||: projection onto a convex set never moves
  // away from feasible points. This is the "inference cannot hurt"
  // property of Section 3.2.
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> noisy(50), target(50);
    for (double& x : noisy) x = rng.NextUniform(-10, 10);
    double level = -20.0;
    for (double& x : target) {
      level += rng.NextUniform(0, 2);
      x = level;
    }
    std::vector<double> fitted = IsotonicRegression(noisy);
    EXPECT_LE(SquaredError(fitted, target),
              SquaredError(noisy, target) + 1e-9);
  }
}

// ---- Weighted variant ----

TEST(WeightedIsotonicTest, UnitWeightsMatchUnweighted) {
  Rng rng(7);
  std::vector<double> v(40);
  for (double& x : v) x = rng.NextUniform(-3, 3);
  std::vector<double> w(v.size(), 1.0);
  EXPECT_EQ(WeightedIsotonicRegression(v, w), IsotonicRegression(v));
}

TEST(WeightedIsotonicTest, HeavyWeightDominatesPool) {
  // Pooling {10 (w=99), 0 (w=1)} lands near 10, not at the midpoint.
  std::vector<double> fitted =
      WeightedIsotonicRegression({10.0, 0.0}, {99.0, 1.0});
  EXPECT_NEAR(fitted[0], 9.9, 1e-12);
  EXPECT_NEAR(fitted[1], 9.9, 1e-12);
}

TEST(WeightedIsotonicTest, WeightedMeanWithinPooledBlock) {
  std::vector<double> fitted =
      WeightedIsotonicRegression({4.0, 2.0}, {1.0, 3.0});
  // Pooled mean = (4*1 + 2*3) / 4 = 2.5.
  EXPECT_DOUBLE_EQ(fitted[0], 2.5);
  EXPECT_DOUBLE_EQ(fitted[1], 2.5);
}

TEST(WeightedIsotonicDeathTest, RejectsNonPositiveWeights) {
  EXPECT_DEATH(WeightedIsotonicRegression({1.0, 2.0}, {1.0, 0.0}),
               "positive");
}

// ---- Antitonic ----

TEST(AntitonicTest, MirrorsIsotonic) {
  std::vector<double> v = {1, 5, 3, 4, 2};
  std::vector<double> anti = AntitonicRegression(v);
  // Must be non-increasing.
  for (std::size_t i = 1; i < anti.size(); ++i) {
    EXPECT_GE(anti[i - 1] + 1e-12, anti[i]);
  }
  // Reversing input and output must match plain isotonic regression.
  std::vector<double> reversed(v.rbegin(), v.rend());
  std::vector<double> iso = IsotonicRegression(reversed);
  std::vector<double> iso_reversed(iso.rbegin(), iso.rend());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(anti[i], iso_reversed[i], 1e-12);
  }
}

class IsotonicSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsotonicSizeSweep, SortedAndNoFartherThanInput) {
  int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 13 + 5);
  // True sorted sequence with duplicates (the Theorem 2 regime).
  std::vector<double> truth(static_cast<std::size_t>(n));
  double level = 0.0;
  for (auto& x : truth) {
    if (rng.NextBernoulli(0.2)) level += rng.NextInt(1, 3);
    x = level;
  }
  std::vector<double> noisy(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    noisy[i] = truth[i] + rng.NextUniform(-2, 2);
  }
  std::vector<double> fitted = IsotonicRegression(noisy);
  EXPECT_TRUE(IsNonDecreasing(fitted));
  EXPECT_LE(SquaredError(fitted, truth), SquaredError(noisy, truth) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsotonicSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 500, 5000));

}  // namespace
}  // namespace dphist
