// Unit tests for the binary frame protocol: primitive round trips,
// incremental decoding from partial buffers, and the hostile-input
// rejections (oversized lengths, unknown types, trailing bytes).

#include "runtime/wire_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "runtime/session.h"

namespace dphist::runtime::wire {
namespace {

TEST(WireFormatTest, VarintRoundTripsEdgeValues) {
  const std::uint64_t values[] = {
      0,    1,    127,        128,
      300,  16383, 16384,     std::uint64_t{1} << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t value : values) {
    std::string buffer;
    PutVarint(&buffer, value);
    PayloadReader reader(buffer);
    std::uint64_t decoded = 0;
    ASSERT_TRUE(reader.GetVarint(&decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(WireFormatTest, VarintRejectsTruncationAndOverflow) {
  // A lone continuation byte is truncated.
  PayloadReader truncated(std::string_view("\x80", 1));
  std::uint64_t value = 0;
  EXPECT_FALSE(truncated.GetVarint(&value));
  // Eleven continuation groups exceed 64 bits.
  std::string overlong(10, '\x80');
  overlong.push_back('\x02');
  PayloadReader overflow(overlong);
  EXPECT_FALSE(overflow.GetVarint(&value));
}

TEST(WireFormatTest, F64RoundTripsExactBits) {
  const double values[] = {0.0, -0.0, 1.5, -123456.789,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  for (double value : values) {
    std::string buffer;
    PutF64(&buffer, value);
    ASSERT_EQ(buffer.size(), 8u);
    PayloadReader reader(buffer);
    double decoded = 0.0;
    ASSERT_TRUE(reader.GetF64(&decoded));
    EXPECT_EQ(std::signbit(decoded), std::signbit(value));
    EXPECT_EQ(decoded, value);
  }
}

TEST(WireFormatTest, QueryFrameRoundTrips) {
  const std::vector<Interval> ranges = {Interval(0, 0), Interval(3, 100),
                                        Interval(100, 127)};
  std::string buffer;
  EncodeQuery(42, 7, ranges.data(), ranges.size(), &buffer);

  Frame frame;
  auto consumed = DecodeFrame(buffer, &frame);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(consumed.value(), buffer.size());
  ASSERT_EQ(frame.type, FrameType::kQuery);

  QueryFrame query;
  ASSERT_TRUE(ParseQuery(frame.payload, /*domain_size=*/128, &query).ok());
  EXPECT_EQ(query.id, 42u);
  EXPECT_EQ(query.expect_epoch, 7u);
  ASSERT_EQ(query.ranges.size(), ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(query.ranges[i].lo(), ranges[i].lo());
    EXPECT_EQ(query.ranges[i].hi(), ranges[i].hi());
  }
}

TEST(WireFormatTest, ParseQueryRejectsBadRangesAsOutOfRange) {
  const Interval bad(5, 200);
  std::string buffer;
  EncodeQuery(1, 0, &bad, 1, &buffer);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(buffer, &frame).ok());
  QueryFrame query;
  Status status = ParseQuery(frame.payload, /*domain_size=*/128, &query);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(WireFormatTest, ParseQueryRejectsOversizedBatch) {
  std::string payload;
  PutVarint(&payload, 1);                               // id
  PutVarint(&payload, 0);                               // expect_epoch
  PutVarint(&payload, static_cast<std::uint64_t>(kMaxSessionBatch) + 1);
  QueryFrame query;
  Status status = ParseQuery(payload, /*domain_size=*/128, &query);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, AnswersPlanAndByeRoundTrip) {
  std::string buffer;
  const double values[] = {1.0, 2.5, -3.0};
  EncodeAnswers(9, 4, values, 3, &buffer);
  EncodePlan(5, "hbar", 2, "every", 123.456, &buffer);
  EncodeBye(77, 5, &buffer);

  Frame frame;
  auto first = DecodeFrame(buffer, &frame);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(frame.type, FrameType::kAnswers);
  AnswersFrame answers;
  ASSERT_TRUE(ParseAnswers(frame.payload, &answers).ok());
  EXPECT_EQ(answers.id, 9u);
  EXPECT_EQ(answers.epoch, 4u);
  ASSERT_EQ(answers.values.size(), 3u);
  EXPECT_EQ(answers.values[2], -3.0);

  std::string_view rest = std::string_view(buffer).substr(first.value());
  auto second = DecodeFrame(rest, &frame);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(frame.type, FrameType::kPlan);
  PlanFrame plan;
  ASSERT_TRUE(ParsePlan(frame.payload, &plan).ok());
  EXPECT_EQ(plan.epoch, 5u);
  EXPECT_EQ(plan.strategy, "hbar");
  EXPECT_EQ(plan.shards, 2u);
  EXPECT_EQ(plan.reason, "every");
  EXPECT_EQ(plan.predicted_mean_var, 123.456);

  rest = rest.substr(second.value());
  auto third = DecodeFrame(rest, &frame);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(frame.type, FrameType::kBye);
  ByeFrame bye;
  ASSERT_TRUE(ParseBye(frame.payload, &bye).ok());
  EXPECT_EQ(bye.queries, 77u);
  EXPECT_EQ(bye.epoch, 5u);
  EXPECT_TRUE(rest.substr(third.value()).empty());
}

TEST(WireFormatTest, DecodeReportsNeedMoreOnEveryPrefix) {
  const Interval range(2, 9);
  std::string buffer;
  EncodeQuery(3, 0, &range, 1, &buffer);
  // Every strict prefix must decode to "need more bytes", never an
  // error and never a spurious frame.
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    Frame frame;
    auto consumed = DecodeFrame(std::string_view(buffer).substr(0, cut),
                                &frame);
    ASSERT_TRUE(consumed.ok()) << "cut=" << cut;
    EXPECT_EQ(consumed.value(), 0u) << "cut=" << cut;
  }
}

TEST(WireFormatTest, DecodeRejectsUnknownTypeAndHostileLength) {
  Frame frame;
  // 0x7F is not a frame type.
  EXPECT_FALSE(DecodeFrame(std::string_view("\x7F\x00", 2), &frame).ok());
  // A length varint claiming ~2^62 bytes must be rejected outright, not
  // buffered toward.
  std::string hostile;
  hostile.push_back(static_cast<char>(FrameType::kQuery));
  for (int i = 0; i < 8; ++i) hostile.push_back('\xFF');
  hostile.push_back('\x3F');
  EXPECT_FALSE(DecodeFrame(hostile, &frame).ok());
  // An in-bounds varint that still exceeds kMaxFramePayload is rejected.
  std::string oversized;
  oversized.push_back(static_cast<char>(FrameType::kQuery));
  PutVarint(&oversized, kMaxFramePayload + 1);
  EXPECT_FALSE(DecodeFrame(oversized, &frame).ok());
}

TEST(WireFormatTest, TrailingBytesAreMalformed) {
  std::string buffer;
  EncodeStatsRequest(4, &buffer);
  Frame frame;
  ASSERT_TRUE(DecodeFrame(buffer, &frame).ok());
  std::string padded(frame.payload);
  padded.push_back('\x00');
  std::uint64_t id = 0;
  EXPECT_FALSE(ParseIdOnly(padded, &id).ok());
}

TEST(WireFormatTest, StringsRoundTripThroughStatsAndError) {
  std::string buffer;
  EncodeStatsText(6, "epoch=3 strategy=hbar", &buffer);
  EncodeError(7, WireError::kEpochMismatch, "epoch 2 is gone", &buffer);

  Frame frame;
  auto first = DecodeFrame(buffer, &frame);
  ASSERT_TRUE(first.ok());
  StatsTextFrame stats;
  ASSERT_TRUE(ParseStatsText(frame.payload, &stats).ok());
  EXPECT_EQ(stats.id, 6u);
  EXPECT_EQ(stats.text, "epoch=3 strategy=hbar");

  auto second =
      DecodeFrame(std::string_view(buffer).substr(first.value()), &frame);
  ASSERT_TRUE(second.ok());
  ErrorFrame error;
  ASSERT_TRUE(ParseError(frame.payload, &error).ok());
  EXPECT_EQ(error.id, 7u);
  EXPECT_EQ(error.code,
            static_cast<std::uint64_t>(WireError::kEpochMismatch));
  EXPECT_EQ(error.message, "epoch 2 is gone");
}

}  // namespace
}  // namespace dphist::runtime::wire
