// Regression tests for two shutdown races found by the thread-safety
// annotation pass (and fixed by taking start_mutex_ / mutex_ across the
// joins):
//
//   1. SessionPool::Stop used to check `stopping_` and then join the
//      workers without holding start_mutex_, so two concurrent Stop()
//      calls (or Stop racing the destructor) could both find the worker
//      threads joinable and both call std::thread::join on the same
//      thread — undefined behavior. Stop now holds start_mutex_ across
//      the joins: exactly one caller joins, every other blocks until
//      the joins finish and then sees non-joinable threads.
//
//   2. SocketServer::Stop had the same shape around the accept thread
//      (and read pool_ without the mutex); it now swaps the accept
//      thread out under mutex_, so exactly one Stop performs the join.
//
// The suite names ride the existing TSan CI filter
// (SessionPoolTransportTest.* / SocketTransportTest.*), so both races
// are also exercised under the race detector.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "runtime/session_pool.h"
#include "runtime/transport.h"
#include "service/query_service.h"

namespace dphist::runtime {
namespace {

Histogram ShutdownTestData(std::int64_t n) {
  Rng rng(23);
  return Histogram::FromCounts(ZipfCounts(n, 1.3, 6 * n, &rng));
}

struct PublishedRuntime {
  PublishedRuntime()
      : data(ShutdownTestData(64)), manager(&service, data, Options(), 7) {
    auto initial = manager.PublishInitial();
    EXPECT_TRUE(initial.ok());
  }
  static EpochManagerOptions Options() {
    EpochManagerOptions options;
    options.base.strategy = StrategyKind::kHBar;
    options.base.epsilon = 400.0;
    return options;
  }
  QueryService service;
  Histogram data;
  EpochManager manager;
};

TEST(SessionPoolTransportTest, ConcurrentStopsJoinWorkersExactlyOnce) {
  PublishedRuntime rt;
  SessionPoolOptions options;
  options.workers = 2;
  SessionPool pool(rt.service, rt.manager, options);
  ASSERT_TRUE(pool.Start().ok());

  // A live connection so Stop has something to force-close. The client
  // end stays open in this test: a forced Stop must not need the peer's
  // cooperation.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(pool.Adopt(fds[0]));

  // Before the fix, two of these threads could both observe joinable
  // workers and both join the same std::thread (UB — typically
  // std::terminate). With the joins under start_mutex_, one thread
  // joins and the rest block until shutdown completes.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&pool] { pool.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();

  // Adoption after Stop is refused (and the fd closed by the pool).
  int more[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, more), 0);
  EXPECT_FALSE(pool.Adopt(more[0]));
  close(more[1]);
  close(fds[1]);
  EXPECT_EQ(pool.active_connections(), 0);
  // The destructor is one more concurrent-in-spirit Stop: idempotent.
}

TEST(SessionPoolTransportTest, StopRacingAdoptNeverLeaksAConnection) {
  PublishedRuntime rt;
  SessionPoolOptions options;
  options.workers = 2;
  std::atomic<int> closed{0};
  options.on_session_done = [&closed](const SessionDone&) { ++closed; };
  SessionPool pool(rt.service, rt.manager, options);
  ASSERT_TRUE(pool.Start().ok());

  // Adopt from one thread while another stops: every fd must end up
  // either refused (Adopt returned false, fd closed by the pool) or
  // force-closed with its on_session_done fired — never leaked.
  constexpr int kConns = 16;
  int client_fds[kConns];
  for (int& fd : client_fds) fd = -1;
  std::atomic<int> adopted{0};
  std::thread adopter([&] {
    for (int i = 0; i < kConns; ++i) {
      int pair[2];
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        ADD_FAILURE() << "socketpair failed";
        return;
      }
      client_fds[i] = pair[1];
      if (pool.Adopt(pair[0])) ++adopted;
    }
  });
  std::thread stopper([&pool] { pool.Stop(); });
  adopter.join();
  stopper.join();

  pool.Stop();  // idempotent after the race
  EXPECT_EQ(closed.load(), adopted.load());
  EXPECT_EQ(pool.active_connections(), 0);
  for (int fd : client_fds) {
    if (fd >= 0) close(fd);
  }
}

TEST(SocketTransportTest, ConcurrentServerStopsAndWaitersAreSafe) {
  PublishedRuntime rt;
  TransportOptions transport;
  transport.port = 0;
  transport.workers = 2;
  SocketServer server(rt.service, rt.manager, transport);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // One complete session so the stats below have something to count.
  auto stream = ConnectLoopback(server.port());
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  *stream.value() << "q 0 5\nquit\n";
  stream.value()->flush();
  std::string line;
  while (std::getline(*stream.value(), line)) {
  }

  // Before the fix, concurrent Stop() calls could both join the accept
  // thread. Waiters mixed in verify Stop and WaitUntilStopped compose.
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&server] { server.Stop(); });
  }
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&server] { server.WaitUntilStopped(); });
  }
  for (std::thread& t : threads) t.join();

  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.session_errors, 0u);
  // Destructor performs one more Stop: idempotent.
}

}  // namespace
}  // namespace dphist::runtime
