// Threaded tests for the socket transport: real loopback connections
// fanned into streaming sessions over one shared QueryService +
// EpochManager. Part of the TSan CI filter (SocketTransportTest.*), so
// the accept loop, per-connection sessions, and the shared replan
// lifecycle are exercised under the race detector.

#include "runtime/transport.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "service/query_service.h"

namespace dphist::runtime {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(23);
  return Histogram::FromCounts(ZipfCounts(n, 1.3, 6 * n, &rng));
}

/// Writes `script` to a fresh loopback connection and returns every
/// line the server sent back (the session transcript).
std::vector<std::string> RunClient(int port, const std::string& script) {
  auto stream = ConnectLoopback(port);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  if (!stream.ok()) return {};
  *stream.value() << script;
  stream.value()->flush();
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(*stream.value(), line)) lines.push_back(line);
  return lines;
}

/// The deterministic (epoch-independent) projection of a transcript:
/// answer lines only. With a large epsilon and integer rounding every
/// epoch's release reproduces the true counts, so two clients replaying
/// one script must agree byte-for-byte on this projection even when a
/// republish lands between their commands. Comment lines ("# planned
/// ...", batch receipts) carry epochs and completion timing, which are
/// legitimately session-specific.
std::vector<std::string> AnswerLines(const std::vector<std::string>& lines) {
  std::vector<std::string> answers;
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.find("error:"), std::string::npos) << line;
    answers.push_back(line);
  }
  return answers;
}

int CountPlanned(const std::vector<std::string>& lines,
                 const std::string& reason) {
  int count = 0;
  for (const std::string& line : lines) {
    if (line.rfind("# planned ", 0) == 0 &&
        line.find("reason=" + reason) != std::string::npos) {
      ++count;
    }
  }
  return count;
}

TEST(SocketTransportTest, SingleClientGetsBannerAnswersAndReceipts) {
  const std::int64_t n = 128;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = 400.0;  // rounding recovers exact counts
  EpochManager manager(&service, data, options, 7);
  auto initial = manager.PublishInitial();
  ASSERT_TRUE(initial.ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  std::vector<std::string> lines =
      RunClient(server.port(), "q 3 10\nqb 2 0 0 5 9\nquit\n");
  server.WaitUntilStopped();

  ASSERT_GE(lines.size(), 6u);
  EXPECT_EQ(lines[0].rfind("# serving n=128 epoch=1 strategy=hbar", 0), 0u)
      << lines[0];
  // The three answers reproduce the published snapshot bit-for-bit.
  const Snapshot& snap = *initial.value().snapshot;
  const Interval queries[3] = {Interval(3, 10), Interval(0, 0),
                               Interval(5, 9)};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::stod(lines[static_cast<std::size_t>(1 + i)]),
              snap.RangeCount(queries[i]))
        << lines[static_cast<std::size_t>(1 + i)];
  }
  EXPECT_EQ(lines[4], "# batch n=2 epoch=1");
  EXPECT_EQ(lines.back(), "# served 3 queries from epoch 1");

  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.session_errors, 0u);
  EXPECT_EQ(stats.queries, 3u);
}

// The tentpole's acceptance shape: two concurrent loopback clients
// replay the same script while the shared every-N trigger republishes
// asynchronously underneath them. Each client's transcript must be
// internally well-formed (complete lines, no interleaving — each
// connection owns its writer), the deterministic answer projection must
// be byte-identical between the clients, and each client must see the
// async republish announced in its own transcript.
TEST(SocketTransportTest, ConcurrentClientsIdenticalAcrossAsyncRepublish) {
  const std::int64_t n = 256;
  Histogram data = TestData(n);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 1 << 10;
  QueryService service(service_options);
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = 400.0;  // every epoch rounds to the exact counts
  // Low enough that each client's OWN 38 queries cross the trigger even
  // if the scheduler serializes the two sessions (1-core host): every
  // client is guaranteed to have a republish announced mid-session.
  options.replan_every = 20;
  options.async = true;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 2;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  std::ostringstream script;
  for (std::int64_t i = 0; i < 30; ++i) {
    script << "q " << (i % n) << " " << std::min<std::int64_t>(n - 1, i + 7)
           << "\n";
  }
  script << "qb 8 0 0 8 15 16 31 32 63 64 127 128 191 192 255 0 255\n";
  script << "quit\n";

  std::vector<std::string> transcripts[2];
  std::thread clients[2];
  for (int t = 0; t < 2; ++t) {
    clients[t] = std::thread([&, t] {
      transcripts[t] = RunClient(server.port(), script.str());
    });
  }
  for (std::thread& client : clients) client.join();
  server.WaitUntilStopped();

  for (int t = 0; t < 2; ++t) {
    ASSERT_FALSE(transcripts[t].empty());
    // Well-formed, non-interleaved: every line is either a comment or
    // an answer that parses as a double (AnswerLines flags "error:").
    EXPECT_EQ(transcripts[t][0].rfind("# serving n=256", 0), 0u);
    for (const std::string& line : AnswerLines(transcripts[t])) {
      EXPECT_NO_THROW({ (void)std::stod(line); }) << line;
    }
    EXPECT_EQ(AnswerLines(transcripts[t]).size(), 38u);
    // The async every-N republish was announced to this client —
    // exactly once per completed replan it observed, never zero.
    const int planned = CountPlanned(transcripts[t], "every");
    EXPECT_GE(planned, 1) << "client " << t
                          << " never saw the republish announced";
    EXPECT_LE(planned, static_cast<int>(manager.stats().every));
    // Its qb batch carries a single-epoch receipt.
    const bool receipt =
        std::any_of(transcripts[t].begin(), transcripts[t].end(),
                    [](const std::string& line) {
                      return line.rfind("# batch n=8 epoch=", 0) == 0;
                    });
    EXPECT_TRUE(receipt);
  }
  EXPECT_GE(manager.stats().every, 1u);
  // The deterministic projection is byte-identical across the clients.
  EXPECT_EQ(AnswerLines(transcripts[0]), AnswerLines(transcripts[1]));

  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.queries, 76u);
}

TEST(SocketTransportTest, StopUnblocksAnIdleSession) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  // A client that connects and then goes quiet parks its session thread
  // in a socket read; Stop() must shut it down and join promptly.
  auto stream = ConnectLoopback(server.port());
  ASSERT_TRUE(stream.ok());
  std::string banner;
  ASSERT_TRUE(static_cast<bool>(std::getline(*stream.value(), banner)));
  EXPECT_EQ(banner.rfind("# serving n=64", 0), 0u);

  server.Stop();
  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // The connection is dead from the client's side too.
  std::string rest;
  while (std::getline(*stream.value(), rest)) {
  }
  EXPECT_TRUE(stream.value()->eof() || stream.value()->fail());
}

TEST(SocketTransportTest, ServesNothingBeforePublish) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  EpochManager manager(&service, data, options, 7);
  // No PublishInitial: a connecting client gets a clean error line.
  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::string> lines = RunClient(server.port(), "q 0 1\n");
  server.WaitUntilStopped();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("error:", 0), 0u);
  EXPECT_EQ(server.stats().session_errors, 1u);
}

TEST(FdStreamBufTest, LostWritesAreCountedNotSilent) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStreamBuf buf(fds[0]);
  std::ostream out(&buf);
  out << "answer 42\n";
  out.flush();
  ASSERT_TRUE(out.good());
  EXPECT_EQ(buf.write_errors(), 0u);

  // The peer dies; everything buffered from here on is undeliverable.
  ::close(fds[1]);
  out.clear();
  out << "lost answer\n";
  out.flush();
  EXPECT_TRUE(out.fail());
  EXPECT_GE(buf.write_errors(), 1u);
  EXPECT_TRUE(buf.peer_reset());
  ::close(fds[0]);
}

TEST(FdStreamBufTest, OrderlyCloseIsNotAPeerReset) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    FdStreamBuf writer(fds[1]);
    std::ostream out(&writer);
    out << "q 0 1\n";
    out.flush();
  }
  ::shutdown(fds[1], SHUT_WR);

  FdStreamBuf reader(fds[0]);
  std::istream in(&reader);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_EQ(line, "q 0 1");
  EXPECT_FALSE(static_cast<bool>(std::getline(in, line)));
  EXPECT_TRUE(reader.orderly_eof());
  EXPECT_FALSE(reader.peer_reset());
  EXPECT_EQ(reader.write_errors(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketTransportTest, ServerReceiptAggregatesWriteErrors) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());
  // A well-behaved session: the aggregate counter must stay zero.
  std::vector<std::string> lines = RunClient(server.port(), "q 0 5\nquit\n");
  server.WaitUntilStopped();
  EXPECT_FALSE(lines.empty());
  EXPECT_EQ(server.stats().write_errors, 0u);
}

}  // namespace
}  // namespace dphist::runtime
