#include "runtime/epoch_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "planner/planner.h"

namespace dphist::runtime {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(23);
  return Histogram::FromCounts(ZipfCounts(n, 1.3, 6 * n, &rng));
}

TEST(EpochManagerTest, InitialPublishPlansWhenAuto) {
  Histogram data = TestData(64);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kAuto;
  options.async = false;
  EpochManager manager(&service, data, options, 7);

  planner::WorkloadProfile units(64);
  units.AddLength(1, 50.0);
  auto outcome = manager.PublishInitial(&units);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().republished);
  EXPECT_TRUE(outcome.value().planned);
  EXPECT_EQ(outcome.value().epoch, 1u);
  EXPECT_EQ(outcome.value().snapshot->strategy(), StrategyKind::kLTilde);
  EXPECT_EQ(service.current_epoch(), 1u);
  EXPECT_DOUBLE_EQ(manager.stats().epsilon_spent, options.base.epsilon);
}

TEST(EpochManagerTest, ManualReplanMatchesChoosePlanOnExportedProfile) {
  const std::int64_t n = 128;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;  // deliberately wrong for units
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());
  EXPECT_EQ(service.snapshot()->strategy(), StrategyKind::kHBar);

  // Unit-count traffic, then a manual replan: the published strategy
  // must equal ChoosePlan on the very profile the service exports.
  std::vector<double> answer(1);
  for (std::int64_t i = 0; i < 64; ++i) {
    Interval q(i % n, i % n);
    service.QueryBatch(&q, 1, answer.data());
  }
  auto expected = planner::ChoosePlan(service.ObservedWorkload(n),
                                      options.base, options.planner);
  ASSERT_TRUE(expected.ok());

  auto outcome = manager.ReplanNow();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().republished);
  EXPECT_EQ(outcome.value().epoch, 2u);
  EXPECT_EQ(outcome.value().plan.options.strategy,
            expected.value().options.strategy);
  EXPECT_EQ(outcome.value().plan.options.shards,
            expected.value().options.shards);
  EXPECT_EQ(service.snapshot()->strategy(),
            expected.value().options.strategy);
  EXPECT_EQ(expected.value().options.strategy, StrategyKind::kLTilde);
  EXPECT_EQ(manager.stats().manual, 1u);
  EXPECT_DOUBLE_EQ(manager.stats().epsilon_spent,
                   2 * options.base.epsilon);
}

TEST(EpochManagerTest, EveryNTriggerFiresOnPoll) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.replan_every = 16;
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  std::vector<double> answer(1);
  for (std::int64_t i = 0; i < 15; ++i) {
    Interval q(i, i);
    service.QueryBatch(&q, 1, answer.data());
  }
  EXPECT_FALSE(manager.Poll());  // 15 < 16: nothing fires
  Interval q(0, 0);
  service.QueryBatch(&q, 1, answer.data());
  EXPECT_TRUE(manager.Poll());
  EXPECT_EQ(manager.stats().every, 1u);
  EXPECT_EQ(service.current_epoch(), 2u);
  // The trigger re-anchors: the very next poll is quiet again.
  EXPECT_FALSE(manager.Poll());
}

TEST(EpochManagerTest, DriftTriggerRepublishesOnlyOnMeasuredDrift) {
  const std::int64_t n = 128;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  // Single-strategy candidate set makes the drift geometry exact: the
  // only question is whether the observed traffic wants different
  // sharding than the current release.
  options.planner.strategies = {StrategyKind::kHBar};
  options.drift_ratio = 0.25;
  options.drift_check_every = 8;
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());
  ASSERT_EQ(service.snapshot()->shard_count(), 1);

  // Full-domain traffic: unsharded H-bar is exactly what the planner
  // would choose, so the check keeps the release and spends nothing.
  std::vector<double> answer(1);
  for (int i = 0; i < 8; ++i) {
    Interval q(0, n - 1);
    service.QueryBatch(&q, 1, answer.data());
  }
  EXPECT_TRUE(manager.Poll());  // a drift check ran...
  EXPECT_EQ(manager.stats().drift_checks, 1u);
  EXPECT_EQ(manager.stats().drift, 0u);  // ...but kept the release
  EXPECT_EQ(service.current_epoch(), 1u);
  EXPECT_DOUBLE_EQ(manager.stats().epsilon_spent, options.base.epsilon);

  // Unit-count traffic wants aggressive sharding; the ratio blows past
  // 1.25 and the manager republishes.
  for (std::int64_t i = 0; i < 64; ++i) {
    Interval q(i % n, i % n);
    service.QueryBatch(&q, 1, answer.data());
  }
  EXPECT_TRUE(manager.Poll());
  EXPECT_EQ(manager.stats().drift, 1u);
  EXPECT_EQ(service.current_epoch(), 2u);
  EXPECT_GT(service.snapshot()->shard_count(), 1);
}

TEST(EpochManagerTest, BudgetRefusalKeepsServingTheOldEpoch) {
  Histogram data = TestData(64);
  QueryService service;
  EpochManagerOptions options;
  options.base.epsilon = 1.0;
  options.epsilon_budget = 1.5;  // room for one publish, not two
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  auto refused = manager.ReplanNow();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.stats().budget_refusals, 1u);
  EXPECT_EQ(manager.stats().republishes, 1u);
  EXPECT_EQ(service.current_epoch(), 1u);  // old release still serving
  double out = 0.0;
  EXPECT_EQ(service.Query(Interval(0, 5), &out), 1u);
}

TEST(EpochManagerTest, StaleCacheEntriesUnreachableAfterReplan) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 256;
  QueryService service(service_options);
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  // Multi-position ranges so the admission policy caches them whatever
  // strategy each epoch publishes.
  std::vector<Interval> workload;
  for (std::int64_t i = 0; i + 3 < n; i += 4) workload.emplace_back(i, i + 3);
  std::vector<double> answers(workload.size());
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  const std::int64_t cached = service.cache_size();
  ASSERT_GT(cached, 0);

  ASSERT_TRUE(manager.ReplanNow().ok());
  // The swap purged every stale entry up front...
  EXPECT_EQ(service.cache_size(), 0);
  EXPECT_GE(service.cache_stats().epoch_evictions,
            static_cast<std::uint64_t>(cached));
  // ...so replaying the same workload under the new epoch hits nothing.
  const std::uint64_t hits_before = service.cache_stats().hits;
  service.QueryBatch(workload.data(), workload.size(), answers.data());
  EXPECT_EQ(service.cache_stats().hits, hits_before);
}

// Subscriber queues are independent: every broadcast lands in every
// queue exactly once, a manual replan skips its reporter (the caller
// prints it directly), and a late subscriber sees nothing from before
// it subscribed.
TEST(EpochManagerTest, SubscriberQueuesAreIndependent) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.replan_every = 4;
  options.async = false;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  const EpochManager::SubscriberId a = manager.Subscribe();
  const EpochManager::SubscriberId b = manager.Subscribe();

  std::vector<double> answer(1);
  for (std::int64_t i = 0; i < 4; ++i) {
    Interval q(i, i);
    service.QueryBatch(&q, 1, answer.data());
  }
  ASSERT_TRUE(manager.Poll());  // every-N republish -> epoch 2

  // Both subscribers get the announcement; draining one queue does not
  // touch the other, and a second take is empty.
  auto taken_a = manager.TakeCompleted(a);
  ASSERT_EQ(taken_a.size(), 1u);
  EXPECT_EQ(taken_a[0].epoch, 2u);
  EXPECT_EQ(taken_a[0].trigger, ReplanTrigger::kEveryN);
  EXPECT_TRUE(manager.TakeCompleted(a).empty());
  auto taken_b = manager.TakeCompleted(b);
  ASSERT_EQ(taken_b.size(), 1u);
  EXPECT_EQ(taken_b[0].epoch, 2u);

  // A manual replan reported by session `a` is skipped in a's queue and
  // still announced to b.
  auto manual = manager.ReplanNow(a);
  ASSERT_TRUE(manual.ok()) << manual.status().ToString();
  EXPECT_EQ(manual.value().epoch, 3u);
  EXPECT_TRUE(manager.TakeCompleted(a).empty());
  taken_b = manager.TakeCompleted(b);
  ASSERT_EQ(taken_b.size(), 1u);
  EXPECT_EQ(taken_b[0].epoch, 3u);
  EXPECT_EQ(taken_b[0].trigger, ReplanTrigger::kManual);

  // A subscriber that joins now has missed everything so far.
  const EpochManager::SubscriberId late = manager.Subscribe();
  EXPECT_TRUE(manager.TakeCompleted(late).empty());

  // Unsubscribed queues stop accumulating (and unknown ids are inert).
  manager.Unsubscribe(b);
  ASSERT_TRUE(manager.ReplanNow().ok());
  EXPECT_TRUE(manager.TakeCompleted(b).empty());
  auto taken_late = manager.TakeCompleted(late);
  ASSERT_EQ(taken_late.size(), 1u);
  EXPECT_EQ(taken_late[0].epoch, 4u);
  manager.Unsubscribe(a);
  manager.Unsubscribe(late);
}

// Regression test for the PublishInitial epsilon-budget TOCTOU: an
// async replan request is already pending when a second PublishInitial
// arrives, and the budget only has room for one of them. PublishInitial
// must serialize behind the replan (the busy token) and come back with
// a graceful FailedPrecondition — before the fix it checked CanSpend,
// published unlocked, and then CHECK-aborted when the replan had
// drained the budget in between. Runs under the TSan CI job.
TEST(EpochManagerTest, PublishInitialBudgetRaceIsGraceful) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.base.epsilon = 1.0;
  options.epsilon_budget = 2.0;  // room for the initial publish + ONE more
  options.replan_every = 1;
  options.async = true;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  // Queue an async replan (it will spend the last unit of budget)...
  std::vector<double> answer(1);
  Interval q(0, 0);
  service.QueryBatch(&q, 1, answer.data());
  ASSERT_TRUE(manager.Poll());

  // ...and race a second initial publish against it. It must wait for
  // the in-flight replan, observe the exhausted budget, and refuse
  // gracefully instead of aborting the server.
  auto refused = manager.PublishInitial();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  manager.Drain();
  const EpochManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.republishes, 2u);  // initial + the every-N replan
  EXPECT_EQ(stats.budget_refusals, 1u);
  EXPECT_DOUBLE_EQ(stats.epsilon_spent, 2.0);
  EXPECT_EQ(service.current_epoch(), 2u);  // still serving
  double out = 0.0;
  EXPECT_EQ(service.Query(Interval(0, 5), &out), 2u);
}

// The multi-session satellite: two threaded sessions share one manager,
// each streaming traffic, polling its own subscription, and firing one
// manual replan. Every session must see every republished epoch exactly
// once — its own manual replans via the direct return value, everything
// else via its queue — with no lost or duplicated announcements. Runs
// under the TSan CI job.
TEST(EpochManagerTest, TwoThreadedSessionsEachSeeEveryRepublishOnce) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.base.epsilon = 0.5;
  options.replan_every = 60;
  options.async = true;
  EpochManager manager(&service, data, options, 7);
  EpochSubscription subs[2] = {EpochSubscription(manager),
                               EpochSubscription(manager)};
  ASSERT_TRUE(manager.PublishInitial().ok());

  struct SessionLog {
    std::vector<std::uint64_t> queued_epochs;  // from TakeCompleted
    std::uint64_t manual_epoch = 0;            // from ReplanNow directly
  };
  SessionLog logs[2];

  std::vector<std::thread> sessions;
  for (int t = 0; t < 2; ++t) {
    sessions.emplace_back([&, t] {
      const EpochManager::SubscriberId id = subs[t].id();
      Rng rng(200 + static_cast<std::uint64_t>(t));
      std::vector<Interval> batch(4, Interval(0, 0));
      std::vector<double> answers(4);
      for (int iter = 0; iter < 40; ++iter) {
        for (auto& range : batch) {
          const std::int64_t lo = rng.NextInt(0, n - 2);
          range = Interval(lo, rng.NextInt(lo, n - 1));
        }
        service.QueryBatch(batch.data(), batch.size(), answers.data());
        manager.Poll();
        for (const ReplanOutcome& outcome : manager.TakeCompleted(id)) {
          ASSERT_TRUE(outcome.status.ok());
          ASSERT_TRUE(outcome.republished);
          logs[t].queued_epochs.push_back(outcome.epoch);
        }
        if (iter == 10) {
          auto manual = manager.ReplanNow(id);
          ASSERT_TRUE(manual.ok()) << manual.status().ToString();
          logs[t].manual_epoch = manual.value().epoch;
        }
      }
    });
  }
  for (std::thread& session : sessions) session.join();
  manager.Drain();
  for (int t = 0; t < 2; ++t) {
    for (const ReplanOutcome& outcome :
         manager.TakeCompleted(subs[t].id())) {
      ASSERT_TRUE(outcome.status.ok());
      logs[t].queued_epochs.push_back(outcome.epoch);
    }
  }

  const EpochManager::Stats stats = manager.stats();
  ASSERT_EQ(stats.manual, 2u);
  ASSERT_GE(stats.every, 1u);  // 320 queries over replan_every=60
  EXPECT_EQ(stats.announcements_dropped, 0u);
  // Republished epochs are 2..K+1 (the initial publish made epoch 1 and
  // is returned directly, never broadcast).
  const std::uint64_t last_epoch = stats.republishes;  // == 1 + replans
  for (int t = 0; t < 2; ++t) {
    // No session sees its own manual replan through its queue...
    for (std::uint64_t epoch : logs[t].queued_epochs) {
      EXPECT_NE(epoch, logs[t].manual_epoch)
          << "session " << t << " was echoed its own manual replan";
    }
    // ...and (queue + direct manual) covers every republished epoch
    // exactly once: nothing lost, nothing duplicated.
    std::vector<std::uint64_t> seen = logs[t].queued_epochs;
    seen.push_back(logs[t].manual_epoch);
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
        << "session " << t << " got a duplicated announcement";
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(last_epoch - 1));
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], static_cast<std::uint64_t>(i + 2));
    }
  }
}

// The satellite's threaded lifecycle test: reader threads stream batches
// while the manager's every-N trigger republishes asynchronously. Every
// recorded batch must be answerable bit-for-bit from the snapshot of the
// epoch it reported — one epoch, one release, even mid-swap — and the
// post-replan strategy is whatever the plan that published it chose.
// Runs under the TSan CI job (EpochManagerTest.* is in its filter).
TEST(EpochManagerTest, ReplanLifecycleUnderConcurrentReaders) {
  const std::int64_t n = 128;
  Histogram data = TestData(n);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 512;
  QueryService service(service_options);
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  options.base.epsilon = 0.5;
  options.replan_every = 150;
  options.async = true;
  EpochManager manager(&service, data, options, 7);
  // Subscribed before any replan can fire, so every completed outcome
  // is delivered here.
  EpochSubscription subscription(manager);
  auto initial = manager.PublishInitial();
  ASSERT_TRUE(initial.ok());

  struct Sample {
    std::uint64_t epoch;
    std::vector<Interval> ranges;
    std::vector<double> answers;
  };
  constexpr int kReaders = 3;
  constexpr std::size_t kBatch = 8;
  constexpr std::uint64_t kWantedReplans = 3;
  // Safety valves so a broken trigger cannot hang the suite; generous
  // enough (a replan at n=128 takes milliseconds) that the wanted
  // replans always arrive first, even on a loaded single-core host.
  constexpr int kMaxIterations = 200000;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<bool> done{false};

  // Readers stream batches until the controller has seen enough
  // republishes — on any host speed, traffic stays in flight across
  // every swap under test.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      std::vector<Interval> ranges(kBatch, Interval(0, 0));
      std::vector<double> answers(kBatch);
      for (int iter = 0;
           iter < kMaxIterations && !done.load(std::memory_order_relaxed);
           ++iter) {
        for (std::size_t j = 0; j < kBatch; ++j) {
          const std::int64_t lo = rng.NextInt(0, n - 3);
          ranges[j] = Interval(lo, rng.NextInt(lo + 1, n - 1));
        }
        const std::uint64_t epoch =
            service.QueryBatch(ranges.data(), kBatch, answers.data());
        if (iter % 5 == 0 &&
            samples[static_cast<std::size_t>(t)].size() < 100) {
          samples[static_cast<std::size_t>(t)].push_back(
              Sample{epoch, ranges, answers});
        }
        // Readers poll too — in a real server any thread may notice the
        // trigger; the manager must keep that race benign.
        manager.Poll();
        // Stop generating triggers once the wanted replans have fired.
        // On a starved single-core host the controller may not observe
        // the count for thousands of iterations; unbounded overshoot
        // would wrap the bounded subscriber queue and drop the early
        // outcomes the verification below replays.
        if (manager.stats().every >= kWantedReplans) break;
      }
    });
  }
  std::thread controller([&] {
    while (std::chrono::steady_clock::now() < deadline) {
      manager.Poll();
      if (manager.stats().every >= kWantedReplans) break;
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_relaxed);
  });
  controller.join();
  for (std::thread& reader : readers) reader.join();
  manager.Drain();

  // Gather every published snapshot by epoch.
  std::map<std::uint64_t, std::shared_ptr<const Snapshot>> snapshots;
  snapshots[initial.value().epoch] = initial.value().snapshot;
  std::uint64_t republishes = 0;
  for (const ReplanOutcome& outcome :
       manager.TakeCompleted(subscription.id())) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    if (!outcome.republished) continue;
    snapshots[outcome.epoch] = outcome.snapshot;
    ++republishes;
    // publish-from-plan really published the planned configuration.
    ASSERT_NE(outcome.snapshot, nullptr);
    EXPECT_EQ(outcome.snapshot->strategy(), outcome.plan.options.strategy);
    EXPECT_EQ(outcome.snapshot->shard_count(),
              std::min(outcome.plan.options.shards, n));
  }
  EXPECT_GE(republishes, 2u);
  EXPECT_EQ(manager.stats().every, republishes);

  // Single-epoch batch consistency: every sampled batch reproduces
  // bit-for-bit from the snapshot of the epoch it reported.
  std::size_t verified = 0;
  for (const auto& reader_samples : samples) {
    for (const Sample& sample : reader_samples) {
      auto it = snapshots.find(sample.epoch);
      ASSERT_NE(it, snapshots.end())
          << "batch reported unpublished epoch " << sample.epoch;
      for (std::size_t j = 0; j < sample.ranges.size(); ++j) {
        ASSERT_EQ(sample.answers[j],
                  it->second->RangeCount(sample.ranges[j]))
            << "epoch " << sample.epoch << " range "
            << sample.ranges[j].ToString();
        ++verified;
      }
    }
  }
  EXPECT_GE(verified, kBatch);  // at least one full batch per epoch mix
}

}  // namespace
}  // namespace dphist::runtime
