// Crash-recovery contract of the durable serving lifecycle: a restart
// replays the WAL ledger bit-exactly, re-serves the persisted epoch with
// bit-identical answers, and can never spend epsilon the crashed process
// already spent (or mint budget a crash "forgot").

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "runtime/epoch_manager.h"
#include "service/query_service.h"
#include "storage/epoch_store.h"

namespace dphist::runtime {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(31);
  return Histogram::FromCounts(ZipfCounts(n, 1.25, 5 * n, &rng));
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

EpochManagerOptions DurableOptions(storage::EpochStore* store,
                                   double epsilon, double budget) {
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = epsilon;
  options.base.shards = 2;
  options.epsilon_budget = budget;
  options.async = false;
  options.store = store;
  return options;
}

std::vector<Interval> Probes(std::int64_t n) {
  return {Interval(0, n - 1), Interval(0, 0), Interval(n / 3, n / 2),
          Interval(5, n - 7)};
}

TEST(RecoveryTest, RestartReplaysLedgerAndServesBitIdenticalAnswers) {
  const std::int64_t n = 80;
  Histogram data = TestData(n);
  const std::string dir = FreshDir("rec_restart");

  double spent_before = 0.0;
  std::uint64_t epoch_before = 0;
  std::vector<double> answers_before;
  {
    auto store = storage::EpochStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    QueryService service;
    EpochManager manager(&service, data,
                         DurableOptions(store.value().get(), 0.3, 2.0), 42);
    ASSERT_TRUE(manager.PublishInitial().ok());
    auto replanned = manager.ReplanNow();
    ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
    spent_before = manager.stats().epsilon_spent;
    epoch_before = service.current_epoch();
    for (const Interval& probe : Probes(n)) {
      double answer = 0.0;
      service.Query(probe, &answer);
      answers_before.push_back(answer);
    }
  }  // the process "dies": everything in memory is gone

  auto store = storage::EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  QueryService service;
  EpochManager manager(&service, data,
                       DurableOptions(store.value().get(), 0.3, 2.0), 42);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().republished);
  EXPECT_EQ(recovered.value().trigger, ReplanTrigger::kRecover);
  EXPECT_EQ(recovered.value().epoch, epoch_before);
  EXPECT_EQ(service.current_epoch(), epoch_before);
  // EXPECT_EQ on doubles on purpose: the replayed ledger and the
  // restored answers must be bit-identical, not merely close.
  EXPECT_EQ(manager.stats().epsilon_spent, spent_before);
  EXPECT_EQ(manager.stats().recoveries, 1u);
  std::size_t i = 0;
  for (const Interval& probe : Probes(n)) {
    double answer = 0.0;
    service.Query(probe, &answer);
    EXPECT_EQ(answer, answers_before[i++])
        << "probe [" << probe.lo() << ", " << probe.hi() << "]";
  }
}

TEST(RecoveryTest, BudgetIsNeverDoubleSpendableAcrossRestart) {
  const std::int64_t n = 48;
  Histogram data = TestData(n);
  const std::string dir = FreshDir("rec_budget");

  // Budget fits the initial publish but not a second release.
  {
    auto store = storage::EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    QueryService service;
    EpochManager manager(&service, data,
                         DurableOptions(store.value().get(), 0.3, 0.5), 42);
    ASSERT_TRUE(manager.PublishInitial().ok());
    auto refused = manager.ReplanNow();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(manager.stats().budget_refusals, 1u);
    EXPECT_EQ(manager.stats().epsilon_spent, 0.3);
  }

  // The restart must inherit the exhausted state — recovery must not
  // reset the meter and let the server republish from scratch.
  auto store = storage::EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  QueryService service;
  EpochManager manager(&service, data,
                       DurableOptions(store.value().get(), 0.3, 0.5), 42);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().republished);
  EXPECT_EQ(manager.stats().epsilon_spent, 0.3);
  auto refused = manager.ReplanNow();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.stats().epsilon_spent, 0.3);
  EXPECT_EQ(manager.stats().budget_refusals, 1u);
}

TEST(RecoveryTest, CrashMidReplanStillCountsTheEpsilon) {
  const std::int64_t n = 48;
  Histogram data = TestData(n);
  const std::string dir = FreshDir("rec_midreplan");

  {
    auto store = storage::EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    QueryService service;
    EpochManager manager(&service, data,
                         DurableOptions(store.value().get(), 0.3, 2.0), 42);
    ASSERT_TRUE(manager.PublishInitial().ok());
    // Simulate SIGKILL between the replan's WAL append and its commit:
    // the spend record is durable, the swap and snapshot never happened.
    ASSERT_TRUE(store.value()->AppendSpend(0.3, "replan (manual)").ok());
  }

  auto store = storage::EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  QueryService service;
  EpochManager manager(&service, data,
                       DurableOptions(store.value().get(), 0.3, 2.0), 42);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  // The interrupted replan's release was never served, but its epsilon
  // was charged before the crash and must stay charged (conservative:
  // a crash can lose budget, never mint it).
  EXPECT_EQ(manager.stats().epsilon_spent, 0.3 + 0.3);
  // The served release is still the initial epoch — the half-born one
  // never becomes visible.
  EXPECT_TRUE(recovered.value().republished);
  EXPECT_EQ(recovered.value().epoch, 1u);
}

TEST(RecoveryTest, RecoverWithoutStoreIsRefusedNotFatal) {
  Histogram data = TestData(16);
  QueryService service;
  EpochManagerOptions options;
  options.base.epsilon = 0.5;
  options.async = false;
  EpochManager manager(&service, data, options, 42);
  auto recovered = manager.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, FreshDirectoryRecoversNothingThenPublishes) {
  const std::int64_t n = 32;
  Histogram data = TestData(n);
  auto store = storage::EpochStore::Open(FreshDir("rec_fresh"));
  ASSERT_TRUE(store.ok());
  QueryService service;
  EpochManager manager(&service, data,
                       DurableOptions(store.value().get(), 0.4, 1.0), 42);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().republished);
  EXPECT_EQ(manager.stats().epsilon_spent, 0.0);
  // Nothing restored: the normal first publish proceeds, and is durable.
  ASSERT_TRUE(manager.PublishInitial().ok());
  EXPECT_EQ(service.current_epoch(), 1u);
  EXPECT_EQ(manager.stats().epsilon_spent, 0.4);
}

TEST(RecoveryTest, RecoveredDomainMismatchIsIoError) {
  const std::string dir = FreshDir("rec_domain");
  {
    auto store = storage::EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Histogram data = TestData(64);
    QueryService service;
    EpochManager manager(&service, data,
                         DurableOptions(store.value().get(), 0.3, 2.0), 42);
    ASSERT_TRUE(manager.PublishInitial().ok());
  }
  // Restart against DIFFERENT data: serving the old release as if it
  // described this histogram would be silently wrong.
  auto store = storage::EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  Histogram other = TestData(32);
  QueryService service;
  EpochManager manager(&service, other,
                       DurableOptions(store.value().get(), 0.3, 2.0), 42);
  auto recovered = manager.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dphist::runtime
