// Threaded tests for the worker-pool transport: the binary frame
// protocol, protocol negotiation next to unchanged text sessions, the
// auth handshake, pipelining, and per-session stats — all over real
// loopback connections into the epoll/poll readiness loop. Part of the
// TSan CI filter (SessionPoolTransportTest.*).

#include "runtime/session_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "runtime/epoch_manager.h"
#include "runtime/transport.h"
#include "runtime/wire_format.h"
#include "service/query_service.h"

namespace dphist::runtime {
namespace {

Histogram TestData(std::int64_t n) {
  Rng rng(23);
  return Histogram::FromCounts(ZipfCounts(n, 1.3, 6 * n, &rng));
}

/// Text client: ship the script, return the transcript lines.
std::vector<std::string> RunTextClient(int port, const std::string& script,
                                       const std::string& auth = "") {
  auto stream = ConnectLoopback(port);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  if (!stream.ok()) return {};
  if (!auth.empty()) *stream.value() << "auth " << auth << "\n";
  *stream.value() << script;
  stream.value()->flush();
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(*stream.value(), line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> AnswerLines(const std::vector<std::string>& lines) {
  std::vector<std::string> answers;
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.find("error:"), std::string::npos) << line;
    answers.push_back(line);
  }
  return answers;
}

TEST(SessionPoolTransportTest, ConstantTimeEqualsAgreesWithOperator) {
  EXPECT_TRUE(ConstantTimeEquals("", ""));
  EXPECT_TRUE(ConstantTimeEquals("secret", "secret"));
  EXPECT_FALSE(ConstantTimeEquals("secret", "secres"));
  EXPECT_FALSE(ConstantTimeEquals("secret", "secre"));
  EXPECT_FALSE(ConstantTimeEquals("", "x"));
  EXPECT_FALSE(ConstantTimeEquals("Secret", "secret"));
}

TEST(SessionPoolTransportTest, BinaryClientAnswersMatchTheSnapshot) {
  const std::int64_t n = 128;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = 400.0;
  EpochManager manager(&service, data, options, 7);
  auto initial = manager.PublishInitial();
  ASSERT_TRUE(initial.ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  auto connected = BinaryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  BinaryClient& client = *connected.value();
  EXPECT_EQ(client.banner().rfind("# serving n=128 epoch=1", 0), 0u)
      << client.banner();
  EXPECT_EQ(client.hello().version, wire::kProtocolVersion);
  EXPECT_EQ(client.hello().domain_size, 128u);
  EXPECT_EQ(client.hello().epoch, 1u);

  const Interval queries[3] = {Interval(3, 10), Interval(0, 0),
                               Interval(5, 9)};
  client.SendQuery(1, 0, queries, 3);
  client.SendGoodbye();
  ASSERT_TRUE(client.Flush().ok());

  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, wire::FrameType::kAnswers);
  wire::AnswersFrame answers;
  ASSERT_TRUE(wire::ParseAnswers(reply.value().payload, &answers).ok());
  EXPECT_EQ(answers.id, 1u);
  EXPECT_EQ(answers.epoch, 1u);
  ASSERT_EQ(answers.values.size(), 3u);
  const Snapshot& snap = *initial.value().snapshot;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(answers.values[static_cast<std::size_t>(i)],
              snap.RangeCount(queries[i]))
        << i;
  }

  auto bye = client.ReadReply();
  ASSERT_TRUE(bye.ok());
  ASSERT_EQ(bye.value().type, wire::FrameType::kBye);
  wire::ByeFrame receipt;
  ASSERT_TRUE(wire::ParseBye(bye.value().payload, &receipt).ok());
  EXPECT_EQ(receipt.queries, 3u);
  EXPECT_EQ(receipt.epoch, 1u);

  server.WaitUntilStopped();
  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.binary_sessions, 1u);
  EXPECT_EQ(stats.text_sessions, 0u);
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.session_errors, 0u);
}

TEST(SessionPoolTransportTest, PipelinedQueriesComeBackInOrder) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  auto connected = BinaryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  BinaryClient& client = *connected.value();

  // Pipeline: 40 requests in one flush, nothing read until all are out.
  constexpr std::uint64_t kRequests = 40;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const Interval range(static_cast<std::int64_t>(id % 32),
                         static_cast<std::int64_t>(32 + id % 32));
    client.SendQuery(id, 0, &range, 1);
  }
  client.SendGoodbye();
  ASSERT_TRUE(client.Flush().ok());

  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << "id=" << id;
    ASSERT_EQ(reply.value().type, wire::FrameType::kAnswers);
    wire::AnswersFrame answers;
    ASSERT_TRUE(wire::ParseAnswers(reply.value().payload, &answers).ok());
    // In-order execution: replies echo the request ids in send order.
    EXPECT_EQ(answers.id, id);
    EXPECT_EQ(answers.values.size(), 1u);
  }
  auto bye = client.ReadReply();
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye.value().type, wire::FrameType::kBye);
  server.WaitUntilStopped();
  EXPECT_EQ(server.stats().queries, kRequests);
}

TEST(SessionPoolTransportTest, ExpectEpochMismatchIsARequestError) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  auto connected = BinaryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  BinaryClient& client = *connected.value();

  const Interval range(0, 7);
  client.SendQuery(1, /*expect_epoch=*/999, &range, 1);  // wrong epoch
  client.SendQuery(2, /*expect_epoch=*/1, &range, 1);    // current epoch
  client.SendGoodbye();
  ASSERT_TRUE(client.Flush().ok());

  auto first = client.ReadReply();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().type, wire::FrameType::kError);
  wire::ErrorFrame error;
  ASSERT_TRUE(wire::ParseError(first.value().payload, &error).ok());
  EXPECT_EQ(error.id, 1u);
  EXPECT_EQ(error.code,
            static_cast<std::uint64_t>(wire::WireError::kEpochMismatch));

  // The mismatch was request-scoped: the session keeps serving.
  auto second = client.ReadReply();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().type, wire::FrameType::kAnswers);
  wire::AnswersFrame answers;
  ASSERT_TRUE(wire::ParseAnswers(second.value().payload, &answers).ok());
  EXPECT_EQ(answers.id, 2u);
  EXPECT_EQ(answers.epoch, 1u);
  server.WaitUntilStopped();
  EXPECT_EQ(server.stats().session_errors, 0u);
}

TEST(SessionPoolTransportTest, BadRangeIsRecoverableMalformedFrameIsFatal) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 2;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  {
    // Out-of-domain range: ERROR reply, session survives.
    auto connected = BinaryClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok());
    BinaryClient& client = *connected.value();
    const Interval bad(0, n + 5);
    const Interval good(0, 5);
    client.SendQuery(1, 0, &bad, 1);
    client.SendQuery(2, 0, &good, 1);
    client.SendGoodbye();
    ASSERT_TRUE(client.Flush().ok());
    auto first = client.ReadReply();
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first.value().type, wire::FrameType::kError);
    auto second = client.ReadReply();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().type, wire::FrameType::kAnswers);
    auto bye = client.ReadReply();
    ASSERT_TRUE(bye.ok());
    EXPECT_EQ(bye.value().type, wire::FrameType::kBye);
  }
  {
    // Unknown frame type after negotiation: one ERROR, then close.
    auto stream = ConnectLoopback(server.port());
    ASSERT_TRUE(stream.ok());
    std::string banner;
    ASSERT_TRUE(std::getline(*stream.value(), banner));
    stream.value()->put(static_cast<char>(wire::kMagic));
    stream.value()->put('\x7F');  // not a frame type
    stream.value()->flush();
    // HELLO arrives, then the ERROR, then EOF.
    std::string bytes((std::istreambuf_iterator<char>(*stream.value())),
                      std::istreambuf_iterator<char>());
    wire::Frame frame;
    auto hello = wire::DecodeFrame(bytes, &frame);
    ASSERT_TRUE(hello.ok());
    EXPECT_EQ(frame.type, wire::FrameType::kHello);
    auto error = wire::DecodeFrame(
        std::string_view(bytes).substr(hello.value()), &frame);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(frame.type, wire::FrameType::kError);
  }
  server.WaitUntilStopped();
  EXPECT_EQ(server.stats().completed, 2u);
  EXPECT_EQ(server.stats().session_errors, 1u);
}

TEST(SessionPoolTransportTest, AuthTokenGatesBothProtocols) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 4;
  transport.auth_token = "hunter2";
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  // Wrong token: one error line, closed, counted.
  std::vector<std::string> refused =
      RunTextClient(server.port(), "q 0 5\nquit\n", "wrong");
  ASSERT_EQ(refused.size(), 1u);
  EXPECT_EQ(refused[0], "error: authentication failed");

  // Missing token entirely: the first line is consumed as the (failed)
  // handshake — nothing is served before auth.
  std::vector<std::string> missing =
      RunTextClient(server.port(), "q 0 5\nquit\n");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "error: authentication failed");

  // Right token: the text session proceeds normally...
  std::vector<std::string> served =
      RunTextClient(server.port(), "q 0 5\nquit\n", "hunter2");
  ASSERT_GE(served.size(), 3u);
  EXPECT_EQ(served[0].rfind("# serving n=64", 0), 0u);
  EXPECT_EQ(AnswerLines(served).size(), 1u);

  // ...and so does a binary session through the same handshake.
  auto binary = BinaryClient::Connect("127.0.0.1", server.port(), "hunter2");
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  binary.value()->SendGoodbye();
  ASSERT_TRUE(binary.value()->Flush().ok());
  auto bye = binary.value()->ReadReply();
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye.value().type, wire::FrameType::kBye);

  server.WaitUntilStopped();
  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.auth_failures, 2u);
  EXPECT_EQ(stats.session_errors, 2u);
  EXPECT_EQ(stats.text_sessions, 1u);
  EXPECT_EQ(stats.binary_sessions, 1u);
  EXPECT_EQ(stats.queries, 1u);
}

TEST(SessionPoolTransportTest, WrongAuthRejectsBinaryConnect) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 1;
  transport.auth_token = "hunter2";
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  auto refused = BinaryClient::Connect("127.0.0.1", server.port(), "nope");
  EXPECT_FALSE(refused.ok());
  server.WaitUntilStopped();
  EXPECT_EQ(server.stats().auth_failures, 1u);
}

TEST(SessionPoolTransportTest, SessionStatsReportProtocolAndCounters) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 1 << 10;
  QueryService service(service_options);
  EpochManagerOptions options;
  // H~ answers via decomposition walks, so its ranges pass the cache
  // admission policy — cache-hit counters below are deterministic.
  options.base.strategy = StrategyKind::kHTilde;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = 2;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  // Text session: `stats` reports the session-scoped counters.
  std::vector<std::string> text = RunTextClient(
      server.port(), "qb 2 0 5 0 5\nqb 2 0 5 0 5\nstats\nquit\n");
  const auto stats_line =
      std::find_if(text.begin(), text.end(), [](const std::string& line) {
        return line.find(" session_queries=") != std::string::npos;
      });
  ASSERT_NE(stats_line, text.end());
  EXPECT_NE(stats_line->find("session_queries=4"), std::string::npos)
      << *stats_line;
  EXPECT_NE(stats_line->find("session_batches=2"), std::string::npos);
  // The second identical batch was served from the cache.
  EXPECT_NE(stats_line->find("session_cache_hits=2"), std::string::npos);
  EXPECT_NE(stats_line->find("session_epochs=1"), std::string::npos);
  EXPECT_NE(stats_line->find("protocol=text"), std::string::npos);
  EXPECT_NE(stats_line->find("write_errors=0"), std::string::npos);

  // Binary session: STATS frame carries the same text with
  // protocol=binary.
  auto connected = BinaryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok());
  BinaryClient& client = *connected.value();
  const Interval range(0, 5);
  client.SendQuery(1, 0, &range, 1);
  client.SendStats(2);
  client.SendGoodbye();
  ASSERT_TRUE(client.Flush().ok());
  auto answers = client.ReadReply();
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().type, wire::FrameType::kAnswers);
  auto stats_reply = client.ReadReply();
  ASSERT_TRUE(stats_reply.ok());
  ASSERT_EQ(stats_reply.value().type, wire::FrameType::kStatsText);
  wire::StatsTextFrame stats_text;
  ASSERT_TRUE(
      wire::ParseStatsText(stats_reply.value().payload, &stats_text).ok());
  EXPECT_EQ(stats_text.id, 2u);
  EXPECT_NE(stats_text.text.find("protocol=binary"), std::string::npos)
      << stats_text.text;
  EXPECT_NE(stats_text.text.find("session_queries=1"), std::string::npos);

  server.WaitUntilStopped();
  // Two hits from the text session's repeated batch, one more when the
  // binary session asks for the same (cached, shared-service) range.
  EXPECT_EQ(server.stats().cache_hits, 3u);
  EXPECT_EQ(server.stats().batches, 3u);
}

// The tentpole's acceptance shape at pool scale: text and binary
// sessions mixed over a 2-worker pool while the shared every-N trigger
// republishes asynchronously. Every client's answer projection must be
// byte-identical and every client must see a republish announced
// (pushed, for binary, as a PLAN frame).
TEST(SessionPoolTransportTest, MixedProtocolsAgreeAcrossAsyncRepublish) {
  const std::int64_t n = 256;
  Histogram data = TestData(n);
  QueryServiceOptions service_options;
  service_options.cache_capacity = 1 << 10;
  QueryService service(service_options);
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = 400.0;  // every epoch rounds to the exact counts
  options.replan_every = 12;
  options.async = true;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  constexpr int kTextClients = 3;
  constexpr int kBinaryClients = 3;
  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = kTextClients + kBinaryClients;
  transport.workers = 2;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Interval> queries;
  for (std::int64_t i = 0; i < 20; ++i) {
    queries.emplace_back(i % n, std::min<std::int64_t>(n - 1, i * 3 + 7));
  }

  std::ostringstream script;
  for (const Interval& q : queries) {
    script << "q " << q.lo() << " " << q.hi() << "\n";
  }
  script << "quit\n";

  std::vector<std::vector<std::string>> text_answers(kTextClients);
  std::vector<int> text_planned(kTextClients, 0);
  std::vector<std::vector<double>> binary_answers(kBinaryClients);
  std::vector<int> binary_planned(kBinaryClients, 0);

  std::vector<std::thread> clients;
  for (int t = 0; t < kTextClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::string> transcript =
          RunTextClient(server.port(), script.str());
      text_answers[t] = AnswerLines(transcript);
      for (const std::string& line : transcript) {
        if (line.rfind("# planned ", 0) == 0 &&
            line.find("reason=every") != std::string::npos) {
          text_planned[t] += 1;
        }
      }
    });
  }
  for (int b = 0; b < kBinaryClients; ++b) {
    clients.emplace_back([&, b] {
      auto connected = BinaryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      BinaryClient& client = *connected.value();
      std::uint64_t id = 0;
      for (const Interval& q : queries) client.SendQuery(++id, 0, &q, 1);
      client.SendGoodbye();
      ASSERT_TRUE(client.Flush().ok());
      std::vector<BinaryClient::OwnedFrame> pushes;
      for (std::uint64_t want = 1; want <= queries.size(); ++want) {
        auto reply = client.ReadReply(&pushes);
        ASSERT_TRUE(reply.ok());
        ASSERT_EQ(reply.value().type, wire::FrameType::kAnswers);
        wire::AnswersFrame answers;
        ASSERT_TRUE(
            wire::ParseAnswers(reply.value().payload, &answers).ok());
        ASSERT_EQ(answers.id, want);
        binary_answers[b].push_back(answers.values.at(0));
      }
      auto bye = client.ReadReply(&pushes);
      ASSERT_TRUE(bye.ok());
      ASSERT_EQ(bye.value().type, wire::FrameType::kBye);
      for (const BinaryClient::OwnedFrame& push : pushes) {
        if (push.type != wire::FrameType::kPlan) continue;
        wire::PlanFrame plan;
        ASSERT_TRUE(wire::ParsePlan(push.payload, &plan).ok());
        if (plan.reason == "every") binary_planned[b] += 1;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server.WaitUntilStopped();

  // Identical projections: all text transcripts agree, and every binary
  // client's answers equal the text answers value-for-value.
  ASSERT_EQ(text_answers[0].size(), queries.size());
  for (int t = 1; t < kTextClients; ++t) {
    EXPECT_EQ(text_answers[t], text_answers[0]) << "text client " << t;
  }
  for (int b = 0; b < kBinaryClients; ++b) {
    ASSERT_EQ(binary_answers[b].size(), queries.size()) << b;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(binary_answers[b][i], std::stod(text_answers[0][i]))
          << "binary client " << b << " query " << i;
    }
  }
  // Every client saw the shared republish announced in its own session.
  for (int t = 0; t < kTextClients; ++t) {
    EXPECT_GE(text_planned[t], 1) << "text client " << t;
  }
  for (int b = 0; b < kBinaryClients; ++b) {
    EXPECT_GE(binary_planned[b], 1) << "binary client " << b;
  }
  EXPECT_GE(manager.stats().every, 1u);

  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kTextClients + kBinaryClients));
  EXPECT_EQ(stats.text_sessions, static_cast<std::uint64_t>(kTextClients));
  EXPECT_EQ(stats.binary_sessions,
            static_cast<std::uint64_t>(kBinaryClients));
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(
                               (kTextClients + kBinaryClients) *
                               queries.size()));
  EXPECT_EQ(stats.replans_announced,
            static_cast<std::uint64_t>(
                std::accumulate(text_planned.begin(), text_planned.end(),
                                0) +
                std::accumulate(binary_planned.begin(),
                                binary_planned.end(), 0)));
}

TEST(SessionPoolTransportTest, ManyConnectionsShareTwoWorkers) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  options.base.strategy = StrategyKind::kHBar;
  options.base.epsilon = 400.0;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  constexpr int kClients = 64;
  TransportOptions transport;
  transport.port = 0;
  transport.max_sessions = kClients;
  transport.workers = 2;
  transport.backlog = kClients;
  SocketServer server(service, manager, transport);
  ASSERT_TRUE(server.Start().ok());

  // Far more connections than workers: every one is a state machine in
  // a worker's shard, not a thread.
  std::vector<std::thread> clients;
  std::vector<std::size_t> answer_counts(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::string> transcript =
          RunTextClient(server.port(), "q 0 9\nq 10 19\nqb 1 0 63\nquit\n");
      answer_counts[static_cast<std::size_t>(t)] =
          AnswerLines(transcript).size();
    });
  }
  for (std::thread& client : clients) client.join();
  server.WaitUntilStopped();

  for (int t = 0; t < kClients; ++t) {
    EXPECT_EQ(answer_counts[static_cast<std::size_t>(t)], 3u) << t;
  }
  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(3 * kClients));
  EXPECT_EQ(stats.session_errors, 0u);
  EXPECT_EQ(stats.write_errors, 0u);
}

TEST(SessionPoolTransportTest, InvalidBindAddrFailsStart) {
  const std::int64_t n = 16;
  Histogram data = TestData(n);
  QueryService service;
  EpochManagerOptions options;
  EpochManager manager(&service, data, options, 7);
  ASSERT_TRUE(manager.PublishInitial().ok());

  TransportOptions transport;
  transport.port = 0;
  transport.bind_addr = "not-an-address";
  SocketServer server(service, manager, transport);
  Status started = server.Start();
  EXPECT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dphist::runtime
