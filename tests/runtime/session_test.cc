#include "runtime/session.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace dphist::runtime {
namespace {

Result<SessionCommand> ParseOne(const std::string& text,
                                std::int64_t domain = 64) {
  std::istringstream in(text);
  SessionReader reader(in, domain);
  return reader.Next();
}

TEST(SessionReaderTest, ParsesBareRangeLikeAWorkloadFile) {
  auto command = ParseOne("3 9\n");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command.value().verb, SessionVerb::kQuery);
  ASSERT_EQ(command.value().ranges.size(), 1u);
  EXPECT_EQ(command.value().ranges[0].lo(), 3);
  EXPECT_EQ(command.value().ranges[0].hi(), 9);

  auto comma = ParseOne("3,9\n");
  ASSERT_TRUE(comma.ok());
  EXPECT_EQ(comma.value().ranges[0].hi(), 9);
}

TEST(SessionReaderTest, ParsesExplicitVerbs) {
  auto q = ParseOne("q 0 5\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().verb, SessionVerb::kQuery);

  auto qb = ParseOne("qb 3 0 0 1 4 2 2\n");
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qb.value().verb, SessionVerb::kBatch);
  ASSERT_EQ(qb.value().ranges.size(), 3u);
  EXPECT_EQ(qb.value().ranges[1].lo(), 1);
  EXPECT_EQ(qb.value().ranges[1].hi(), 4);

  EXPECT_EQ(ParseOne("stats\n").value().verb, SessionVerb::kStats);
  EXPECT_EQ(ParseOne("replan\n").value().verb, SessionVerb::kReplan);
  EXPECT_EQ(ParseOne("quit\n").value().verb, SessionVerb::kQuit);
  EXPECT_EQ(ParseOne("").value().verb, SessionVerb::kQuit);  // EOF
}

TEST(SessionReaderTest, SkipsBlanksAndComments) {
  std::istringstream in("\n# a comment\n   \n7 8\n");
  SessionReader reader(in, 64);
  auto command = reader.Next();
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command.value().verb, SessionVerb::kQuery);
  EXPECT_EQ(reader.line(), 4);
}

TEST(SessionReaderTest, ErrorsCarryLineNumbersAndMatchLegacyMessages) {
  // The pre-runtime workload loader's messages are load-bearing: CLI
  // tests and user scripts grep for them.
  auto malformed = ParseOne("7\n");
  EXPECT_FALSE(malformed.ok());
  EXPECT_NE(malformed.status().message().find("query line 1"),
            std::string::npos);
  EXPECT_NE(malformed.status().message().find("expected \"lo hi\""),
            std::string::npos);

  std::istringstream in("0 5\n5 99\n");
  SessionReader reader(in, 64);
  ASSERT_TRUE(reader.Next().ok());
  auto oob = reader.Next();
  EXPECT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(oob.status().message().find("line 2"), std::string::npos);

  auto unknown = ParseOne("frobnicate 1 2\n");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("unknown command"),
            std::string::npos);
}

TEST(SessionReaderTest, SurvivesAMalformedLine) {
  // Interactive sessions report the error and keep serving: the reader
  // must stay usable after a failed Next().
  std::istringstream in("bogus\nq 1 2\n");
  SessionReader reader(in, 64);
  EXPECT_FALSE(reader.Next().ok());
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().verb, SessionVerb::kQuery);
  EXPECT_EQ(next.value().ranges[0].lo(), 1);
}

TEST(SessionReaderTest, ValidatesBatchShape) {
  EXPECT_FALSE(ParseOne("qb 0\n").ok());
  EXPECT_FALSE(ParseOne("qb -3 0 0\n").ok());
  EXPECT_FALSE(ParseOne("qb 2 0 0\n").ok());  // missing second pair
  auto oversized = ParseOne("qb 99999999 0 0\n");
  EXPECT_FALSE(oversized.ok());
  EXPECT_NE(oversized.status().message().find("exceeds"),
            std::string::npos);
}

TEST(ParseSessionLineTest, ParsesExtractedLinesWithoutAStream) {
  // The non-blocking transport splits its receive buffer on '\n' and
  // feeds the bare lines here — same grammar, no istream.
  SessionCommand command;
  auto parsed = ParseSessionLine("q 3 9", 64, 1, &command);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value());
  EXPECT_EQ(command.verb, SessionVerb::kQuery);
  ASSERT_EQ(command.ranges.size(), 1u);
  EXPECT_EQ(command.ranges[0].lo(), 3);
  EXPECT_EQ(command.ranges[0].hi(), 9);

  // Blank and comment lines carry no command but are not errors.
  EXPECT_FALSE(ParseSessionLine("", 64, 2, &command).value());
  EXPECT_FALSE(ParseSessionLine("   ", 64, 3, &command).value());
  EXPECT_FALSE(ParseSessionLine("# note", 64, 4, &command).value());

  // A trailing '\r' (telnet-style client) is tolerated.
  auto crlf = ParseSessionLine("quit\r", 64, 5, &command);
  ASSERT_TRUE(crlf.ok());
  EXPECT_TRUE(crlf.value());
  EXPECT_EQ(command.verb, SessionVerb::kQuit);
}

TEST(ParseSessionLineTest, DiagnosticsNameTheCallersLineNumber) {
  // Errors must be byte-identical to SessionReader's for the same line
  // number, so both transports report identically.
  SessionCommand command;
  auto direct = ParseSessionLine("7", 64, 41, &command);
  EXPECT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("query line 41"),
            std::string::npos);

  auto oob = ParseSessionLine("5 99", 64, 2, &command);
  EXPECT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(oob.status().message().find("line 2"), std::string::npos);

  std::istringstream in("frobnicate 1 2\n");
  SessionReader reader(in, 64);
  auto via_reader = reader.Next();
  auto via_line = ParseSessionLine("frobnicate 1 2", 64, 1, &command);
  ASSERT_FALSE(via_reader.ok());
  ASSERT_FALSE(via_line.ok());
  EXPECT_EQ(via_line.status().message(), via_reader.status().message());
}

TEST(SessionScriptTest, ReadsWholeScriptsAndStopsAtQuit) {
  std::istringstream in("0 5\nqb 2 0 0 1 1\nstats\nreplan\nquit\n8 8\n");
  auto script = ReadSessionScript(in, 64);
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script.value().size(), 4u);  // quit strips the tail
  EXPECT_EQ(script.value()[0].verb, SessionVerb::kQuery);
  EXPECT_EQ(script.value()[1].verb, SessionVerb::kBatch);
  EXPECT_EQ(script.value()[2].verb, SessionVerb::kStats);
  EXPECT_EQ(script.value()[3].verb, SessionVerb::kReplan);
}

TEST(SessionScriptTest, PropagatesTheFirstError) {
  std::istringstream in("0 5\nxx 1\n");
  auto script = ReadSessionScript(in, 64);
  EXPECT_FALSE(script.ok());
  EXPECT_NE(script.status().message().find("line 2"), std::string::npos);
}

TEST(SessionWriterTest, FormatsAnswersAndReports) {
  std::ostringstream out;
  SessionWriter writer(out);
  const double answers[] = {1234567.0, 2.5};
  writer.Answers(answers, 2);
  writer.BatchReceipt(2, 7);
  writer.Comment("hello");
  writer.Error(Status::InvalidArgument("bad"));
  EXPECT_EQ(out.str(),
            "1234567\n2.5\n# batch n=2 epoch=7\n# hello\n"
            "error: InvalidArgument: bad\n");
}

}  // namespace
}  // namespace dphist::runtime
