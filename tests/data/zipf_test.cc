#include "data/zipf.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dphist {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0.0;
  for (std::int64_t r = 0; r < 100; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(50, 1.3);
  for (std::int64_t r = 1; r < 50; ++r) {
    EXPECT_GT(zipf.Probability(r - 1), zipf.Probability(r));
  }
}

TEST(ZipfTest, RankRatioMatchesExponent) {
  ZipfDistribution zipf(1000, 2.0);
  // P(1)/P(2) = 2^s.
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(1), 4.0, 1e-9);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 10);
  }
}

TEST(ZipfTest, EmpiricalFrequencyTracksProbability) {
  ZipfDistribution zipf(20, 1.2);
  Rng rng(2);
  std::vector<std::int64_t> hits(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++hits[static_cast<std::size_t>(zipf.Sample(&rng))];
  for (std::int64_t r = 0; r < 5; ++r) {
    double freq = static_cast<double>(hits[static_cast<std::size_t>(r)]) / n;
    EXPECT_NEAR(freq, zipf.Probability(r), 0.01);
  }
}

TEST(ZipfTest, SingleRankDistribution) {
  ZipfDistribution zipf(1, 1.5);
  Rng rng(3);
  EXPECT_EQ(zipf.Sample(&rng), 0);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

TEST(ZipfCountsTest, TotalPreserved) {
  Rng rng(4);
  std::vector<std::int64_t> counts = ZipfCounts(100, 1.1, 5000, &rng);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            5000);
}

TEST(ZipfCountsTest, HeadIsHeavierThanTail) {
  Rng rng(5);
  std::vector<std::int64_t> counts = ZipfCounts(1000, 1.2, 100000, &rng);
  std::int64_t head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += counts[static_cast<std::size_t>(i)];
  for (int i = 990; i < 1000; ++i) tail += counts[static_cast<std::size_t>(i)];
  EXPECT_GT(head, 20 * std::max<std::int64_t>(tail, 1));
}

TEST(ZipfCountsTest, ZeroTotalGivesAllZeros) {
  Rng rng(6);
  std::vector<std::int64_t> counts = ZipfCounts(10, 1.0, 0, &rng);
  for (std::int64_t c : counts) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace dphist
