#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace dphist {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, SaveLoadRoundTrip) {
  Histogram original({1.5, 0.0, 42.0, 3.25}, "src");
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveHistogramCsv(original, path).ok());
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), original.counts());
  EXPECT_EQ(loaded.value().domain().attribute(), "src");
  std::remove(path.c_str());
}

TEST(CsvTest, LoadSkipsCommentsAndBlanks) {
  std::string path = TempPath("comments.csv");
  {
    std::ofstream out(path);
    out << "# a comment\n\n1\n# another\n2\n\n3\n";
  }
  auto loaded = LoadHistogramCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().counts(), (std::vector<double>{1, 2, 3}));
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  auto loaded = LoadHistogramCsv(TempPath("does_not_exist.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, LoadRejectsGarbage) {
  std::string path = TempPath("garbage.csv");
  {
    std::ofstream out(path);
    out << "1\nnot-a-number\n3\n";
  }
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadEmptyFileFails) {
  std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  auto loaded = LoadHistogramCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, AppendRowCreatesHeaderOnce) {
  std::string path = TempPath("rows.csv");
  std::remove(path.c_str());
  ASSERT_TRUE(AppendCsvRow(path, "a,b", {"1", "2"}).ok());
  ASSERT_TRUE(AppendCsvRow(path, "a,b", {"3", "4"}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dphist
