// The dataset generators must reproduce the *shape* properties the paper's
// experiments rely on (Section 5 / Appendix C); these tests pin them down.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/nettrace.h"
#include "data/search_logs.h"
#include "data/social_network.h"

namespace dphist {
namespace {

TEST(NetTraceTest, ShapeAndDeterminism) {
  NetTraceConfig config;
  config.num_hosts = 4096;
  config.num_connections = 30000;
  Histogram a = GenerateNetTrace(config);
  Histogram b = GenerateNetTrace(config);
  EXPECT_EQ(a.size(), 4096);
  EXPECT_EQ(a.counts(), b.counts());  // same seed, same data
  EXPECT_DOUBLE_EQ(a.Total(), 30000.0);
}

TEST(NetTraceTest, DifferentSeedsDiffer) {
  NetTraceConfig config;
  config.num_hosts = 1024;
  config.num_connections = 5000;
  Histogram a = GenerateNetTrace(config);
  config.seed = 43;
  Histogram b = GenerateNetTrace(config);
  EXPECT_NE(a.counts(), b.counts());
}

TEST(NetTraceTest, MostHostsQuietFewHostsBusy) {
  NetTraceConfig config;
  config.num_hosts = 8192;
  config.num_connections = 40000;
  Histogram data = GenerateNetTrace(config);
  // Sparse domain: at least the silent fraction of hosts has zero count.
  std::int64_t zeros = data.size() - data.NonZeroCount();
  EXPECT_GT(zeros, static_cast<std::int64_t>(0.5 * 8192));
  // Heavy tail: the busiest host dwarfs the median.
  std::vector<double> sorted = data.SortedCounts();
  EXPECT_GT(sorted.back(), 100.0);
}

TEST(NetTraceTest, DuplicateCountsDominate) {
  // Theorem 2 regime: d (distinct counts) << n.
  NetTraceConfig config;
  config.num_hosts = 8192;
  config.num_connections = 40000;
  Histogram data = GenerateNetTrace(config);
  EXPECT_LT(data.DistinctCountValues(), data.size() / 20);
}

TEST(SocialNetworkTest, DegreeSequenceBasics) {
  SocialNetworkConfig config;
  config.num_nodes = 2000;
  config.edges_per_node = 3;
  Histogram degrees = GenerateSocialNetworkDegrees(config);
  EXPECT_EQ(degrees.size(), 2000);
  // Sum of degrees = 2 * edge count; edges = seed clique + m per new node.
  std::int64_t m = config.edges_per_node;
  std::int64_t clique_edges = (m + 1) * m / 2;
  std::int64_t grown_edges = (config.num_nodes - m - 1) * m;
  EXPECT_DOUBLE_EQ(degrees.Total(),
                   2.0 * static_cast<double>(clique_edges + grown_edges));
  // Minimum degree is m (every arriving node gets m edges).
  std::vector<double> sorted = degrees.SortedCounts();
  EXPECT_GE(sorted.front(), static_cast<double>(m));
}

TEST(SocialNetworkTest, PowerLawHead) {
  SocialNetworkConfig config;
  config.num_nodes = 5000;
  config.edges_per_node = 4;
  Histogram degrees = GenerateSocialNetworkDegrees(config);
  std::vector<double> sorted = degrees.SortedCounts();
  // Hubs exist: max degree far above the minimum.
  EXPECT_GT(sorted.back(), 20.0 * sorted.front());
  // Duplicates dominate (many nodes share the low degrees).
  EXPECT_LT(degrees.DistinctCountValues(), degrees.size() / 10);
}

TEST(SocialNetworkTest, Deterministic) {
  SocialNetworkConfig config;
  config.num_nodes = 500;
  Histogram a = GenerateSocialNetworkDegrees(config);
  Histogram b = GenerateSocialNetworkDegrees(config);
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(KeywordFrequencyTest, DescendingRankOrder) {
  KeywordFrequencyConfig config;
  config.num_keywords = 5000;
  config.total_searches = 200000;
  Histogram data = GenerateKeywordFrequencies(config);
  EXPECT_EQ(data.size(), 5000);
  EXPECT_DOUBLE_EQ(data.Total(), 200000.0);
  const std::vector<double>& counts = data.counts();
  EXPECT_TRUE(std::is_sorted(counts.rbegin(), counts.rend()));
}

TEST(KeywordFrequencyTest, ZipfHead) {
  KeywordFrequencyConfig config;
  config.num_keywords = 5000;
  config.total_searches = 500000;
  Histogram data = GenerateKeywordFrequencies(config);
  // Top keyword claims a disproportionate share.
  EXPECT_GT(data.At(0), data.Total() / 200.0);
}

TEST(TemporalSeriesTest, BurstDominatesBaseline) {
  TemporalSeriesConfig config;
  config.num_slots = 8192;
  Histogram series = GenerateTemporalSeries(config);
  EXPECT_EQ(series.size(), 8192);
  // Count mass inside the burst window vs an equally sized early window.
  std::int64_t center = static_cast<std::int64_t>(0.7 * 8192);
  std::int64_t width = static_cast<std::int64_t>(0.05 * 8192);
  double burst = series.Count(Interval(center - width, center + width));
  double early = series.Count(Interval(0, 2 * width));
  EXPECT_GT(burst, 20.0 * std::max(early, 1.0));
}

TEST(TemporalSeriesTest, MostlyQuietEarly) {
  TemporalSeriesConfig config;
  config.num_slots = 8192;
  Histogram series = GenerateTemporalSeries(config);
  // The pre-burst half is sparse: most slots are zero.
  std::int64_t zeros = 0;
  std::int64_t half = 4096;
  for (std::int64_t t = 0; t < half; ++t) {
    if (series.At(t) == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, half / 2);
}

TEST(TemporalSeriesTest, DiurnalModulationVisible) {
  TemporalSeriesConfig config;
  config.num_slots = 16384;
  config.diurnal_depth = 0.9;
  Histogram series = GenerateTemporalSeries(config);
  // Aggregate by slot-of-day; the quietest slot should see far less
  // traffic than the busiest one.
  std::vector<double> by_slot(static_cast<std::size_t>(config.slots_per_day),
                              0.0);
  for (std::int64_t t = 0; t < series.size(); ++t) {
    by_slot[static_cast<std::size_t>(t % config.slots_per_day)] +=
        series.At(t);
  }
  double lo = *std::min_element(by_slot.begin(), by_slot.end());
  double hi = *std::max_element(by_slot.begin(), by_slot.end());
  EXPECT_GT(hi, 3.0 * std::max(lo, 1.0));
}

TEST(TemporalSeriesTest, Deterministic) {
  TemporalSeriesConfig config;
  config.num_slots = 1024;
  Histogram a = GenerateTemporalSeries(config);
  Histogram b = GenerateTemporalSeries(config);
  EXPECT_EQ(a.counts(), b.counts());
}

}  // namespace
}  // namespace dphist
