#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dphist::linalg {
namespace {

TEST(QrTest, SolvesSquareSystemExactly) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  // x = [1, 2] -> b = [4, 7].
  Vector x = qr.value().SolveLeastSquares({4.0, 7.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QrTest, LeastSquaresOfInconsistentSystem) {
  // Fit y = c to observations {1, 2, 3}: the LS solution is the mean.
  Matrix a = Matrix::FromRows({{1}, {1}, {1}});
  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  Vector x = qr.value().SolveLeastSquares({1.0, 2.0, 3.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(QrTest, LinearRegressionKnownFit) {
  // y = 2 t + 1 exactly; regression must recover slope/intercept.
  Matrix a = Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  Vector x = qr.value().SolveLeastSquares({1.0, 3.0, 5.0, 7.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QrTest, ResidualOrthogonalToColumns) {
  Rng rng(11);
  const std::size_t m = 20, n = 5;
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.NextUniform(-1, 1);
  }
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) b[i] = rng.NextUniform(-5, 5);

  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  Vector x = qr.value().SolveLeastSquares(b);
  Vector residual = Subtract(b, a.Multiply(x));
  // Normal equations: A^T r = 0 characterizes the LS minimizer.
  Vector atr = a.Transpose().Multiply(residual);
  EXPECT_LT(Norm2(atr), 1e-9);
}

TEST(QrTest, RejectsWideMatrix) {
  Matrix a(2, 3);
  auto qr = QrFactorization::Compute(a);
  EXPECT_FALSE(qr.ok());
  EXPECT_EQ(qr.status().code(), StatusCode::kInvalidArgument);
}

TEST(QrTest, RejectsRankDeficient) {
  // Second column is twice the first.
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  auto qr = QrFactorization::Compute(a);
  EXPECT_FALSE(qr.ok());
}

class QrRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(QrRandomSweep, RecoversPlantedSolution) {
  int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 77 + 1);
  std::size_t rows = static_cast<std::size_t>(2 * n);
  std::size_t cols = static_cast<std::size_t>(n);
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = rng.NextUniform(-2, 2);
  }
  Vector planted(cols);
  for (std::size_t j = 0; j < cols; ++j) planted[j] = rng.NextUniform(-3, 3);
  Vector b = a.Multiply(planted);  // Consistent system.

  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  Vector x = qr.value().SolveLeastSquares(b);
  for (std::size_t j = 0; j < cols; ++j) {
    EXPECT_NEAR(x[j], planted[j], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrRandomSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dphist::linalg
