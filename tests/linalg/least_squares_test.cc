#include "linalg/least_squares.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dphist::linalg {
namespace {

TEST(OlsTest, MeanAsRegression) {
  Matrix a = Matrix::FromRows({{1}, {1}, {1}, {1}});
  auto x = SolveOls(a, {2.0, 4.0, 6.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 5.0, 1e-12);
}

TEST(OlsTest, FittedValuesMinimizeResidual) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  Vector y = {1.0, 2.0, 4.0};
  auto fitted = OlsFittedValues(a, y);
  ASSERT_TRUE(fitted.ok());
  // Perturbing the solution should never reduce the residual.
  auto x = SolveOls(a, y);
  ASSERT_TRUE(x.ok());
  double best = Norm2(Subtract(y, a.Multiply(x.value())));
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Vector perturbed = x.value();
    for (double& v : perturbed) v += rng.NextUniform(-0.1, 0.1);
    double alt = Norm2(Subtract(y, a.Multiply(perturbed)));
    EXPECT_GE(alt + 1e-12, best);
  }
}

TEST(OlsTest, SizeMismatchRejected) {
  Matrix a = Matrix::FromRows({{1}, {1}});
  auto x = SolveOls(a, {1.0, 2.0, 3.0});
  EXPECT_FALSE(x.ok());
}

TEST(ProjectionTest, AlreadyFeasibleIsFixedPoint) {
  // Constraint: q0 + q1 = 4. Target (1, 3) already satisfies it.
  Matrix a = Matrix::FromRows({{1, 1}});
  auto q = ProjectOntoAffineSubspace(a, {4.0}, {1.0, 3.0});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(q.value()[1], 3.0, 1e-12);
}

TEST(ProjectionTest, ProjectsToNearestPointOnLine) {
  // Constraint: q0 + q1 = 2; target (2, 2) -> nearest point (1, 1).
  Matrix a = Matrix::FromRows({{1, 1}});
  auto q = ProjectOntoAffineSubspace(a, {2.0}, {2.0, 2.0});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(q.value()[1], 1.0, 1e-12);
}

TEST(ProjectionTest, SatisfiesConstraintsExactly) {
  Matrix a = Matrix::FromRows({{1, -1, 0}, {0, 1, -1}});
  Vector b = {0.5, -0.25};
  auto q = ProjectOntoAffineSubspace(a, b, {3.0, 1.0, 2.0});
  ASSERT_TRUE(q.ok());
  Vector achieved = a.Multiply(q.value());
  EXPECT_NEAR(achieved[0], b[0], 1e-10);
  EXPECT_NEAR(achieved[1], b[1], 1e-10);
}

TEST(ProjectionTest, IsIdempotent) {
  Matrix a = Matrix::FromRows({{1, 1, 1}});
  Vector b = {6.0};
  auto once = ProjectOntoAffineSubspace(a, b, {1.0, 2.0, 6.0});
  ASSERT_TRUE(once.ok());
  auto twice = ProjectOntoAffineSubspace(a, b, once.value());
  ASSERT_TRUE(twice.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(twice.value()[i], once.value()[i], 1e-10);
  }
}

TEST(ProjectionTest, NoFeasiblePointIsCloser) {
  Matrix a = Matrix::FromRows({{2, -1}});
  Vector b = {1.0};
  Vector target = {3.0, 0.5};
  auto q = ProjectOntoAffineSubspace(a, b, target);
  ASSERT_TRUE(q.ok());
  double best = Norm2(Subtract(q.value(), target));
  Rng rng(17);
  // Walk along the constraint line and verify no point beats the
  // projection.
  for (int trial = 0; trial < 100; ++trial) {
    double t = rng.NextUniform(-10.0, 10.0);
    Vector candidate = {t, 2.0 * t - 1.0};  // Satisfies 2x - y = 1.
    EXPECT_GE(Norm2(Subtract(candidate, target)) + 1e-12, best);
  }
}

TEST(ProjectionTest, RedundantConstraintsRejected) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}});
  auto q = ProjectOntoAffineSubspace(a, {2.0, 4.0}, {0.0, 0.0});
  EXPECT_FALSE(q.ok());
}

TEST(ProjectionTest, DimensionMismatchesRejected) {
  Matrix a = Matrix::FromRows({{1, 1}});
  EXPECT_FALSE(ProjectOntoAffineSubspace(a, {1.0, 2.0}, {0.0, 0.0}).ok());
  EXPECT_FALSE(ProjectOntoAffineSubspace(a, {1.0}, {0.0, 0.0, 0.0}).ok());
}

}  // namespace
}  // namespace dphist::linalg
