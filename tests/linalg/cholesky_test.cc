#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dphist::linalg {
namespace {

TEST(CholeskyTest, FactorOfIdentityIsIdentity) {
  auto f = CholeskyFactorization::Compute(Matrix::Identity(3));
  ASSERT_TRUE(f.ok());
  const Matrix& l = f.value().lower();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(CholeskyTest, ReconstructsInput) {
  Matrix a = Matrix::FromRows({{4, 2, 0}, {2, 5, 3}, {0, 3, 6}});
  auto f = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(f.ok());
  const Matrix& l = f.value().lower();
  Matrix rebuilt = l.Multiply(l.Transpose());
  EXPECT_LT(rebuilt.Subtract(a).MaxAbs(), 1e-12);
}

TEST(CholeskyTest, SolveKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto x = SolveSpd(a, {10.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.75, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.5, 1e-12);
}

TEST(CholeskyTest, SolveResidualIsTiny) {
  Rng rng(5);
  const std::size_t n = 12;
  // Random SPD matrix: B B^T + n I.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.NextUniform(-1, 1);
  }
  Matrix a = b.Multiply(b.Transpose());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = rng.NextUniform(-10, 10);

  auto x = SolveSpd(a, rhs);
  ASSERT_TRUE(x.ok());
  Vector residual = Subtract(a.Multiply(x.value()), rhs);
  EXPECT_LT(Norm2(residual), 1e-9);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  auto f = CholeskyFactorization::Compute(a);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  auto f = CholeskyFactorization::Compute(a);
  EXPECT_FALSE(f.ok());
}

TEST(CholeskyTest, RejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  auto f = CholeskyFactorization::Compute(a);
  EXPECT_FALSE(f.ok());
}

}  // namespace
}  // namespace dphist::linalg
