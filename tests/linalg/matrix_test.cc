#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace dphist::linalg {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixTest, FromRowsLaysOutValues) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
}

TEST(MatrixTest, IdentityMultiplicationIsIdentity) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  Matrix left = i.Multiply(a);
  Matrix right = a.Multiply(i);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(left(r, c), a(r, c));
      EXPECT_DOUBLE_EQ(right(r, c), a(r, c));
    }
  }
}

TEST(MatrixTest, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix p = a.Multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(MatrixTest, RectangularProductShapes) {
  Matrix a(2, 3);
  Matrix b(3, 4);
  Matrix p = a.Multiply(b);
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_EQ(p.cols(), 4u);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a = Matrix::FromRows({{1, 0, 2}, {0, 3, 0}});
  Vector v = {1.0, 2.0, 3.0};
  Vector out = a.Multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  Matrix tt = t.Transpose();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(tt(i, j), a(i, j));
  }
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  Matrix sum = a.Add(b);
  Matrix diff = a.Subtract(b);
  Matrix twice = a.Scale(2.0);
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(twice(1, 0), 6.0);
}

TEST(MatrixTest, DiagonalAndMaxAbs) {
  Matrix d = Matrix::Diagonal({1.0, -7.0, 2.0});
  EXPECT_DOUBLE_EQ(d(1, 1), -7.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d.MaxAbs(), 7.0);
}

TEST(VectorOpsTest, DotAddSubtractScaleNorm) {
  Vector a = {1.0, 2.0, 2.0};
  Vector b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  Vector s = Add(a, b);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  Vector d = Subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], -1.0);
  Vector sc = Scale(a, 3.0);
  EXPECT_DOUBLE_EQ(sc[2], 6.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
}

TEST(MatrixTest, ToStringContainsEntries) {
  Matrix a = Matrix::FromRows({{1, 2}});
  std::string s = a.ToString();
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

}  // namespace
}  // namespace dphist::linalg
