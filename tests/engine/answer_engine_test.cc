// Kernel conformance suite: the columnar answer engine must be
// BIT-identical to the decomposition-walker path (Snapshot::RangeCount)
// for every strategy it flattens, at every dispatch level this machine
// supports, over randomized domains / shard counts / batch sizes and the
// adversarial edges (single points, full domain, shard boundaries,
// shard-spanning ranges). "Bit-identical" is checked by comparing the
// doubles' bit patterns, not with a tolerance.

#include "engine/answer_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "engine/answer_plan.h"
#include "engine/kernels.h"
#include "service/snapshot.h"

namespace dphist {
namespace {

using engine::ActiveKernel;
using engine::AnswerBatch;
using engine::BestSupportedKernel;
using engine::ForceKernel;
using engine::KernelKind;
using engine::KernelKindName;
using engine::KernelSupported;
using engine::ParseKernelKind;

/// RAII guard: forces one dispatch level for the test body, then
/// restores env/auto selection so tests compose in any order.
class ScopedKernel {
 public:
  explicit ScopedKernel(KernelKind kind) { ForceKernel(kind); }
  ~ScopedKernel() { ForceKernel(std::nullopt); }
};

std::vector<KernelKind> SupportedKernels() {
  std::vector<KernelKind> kinds;
  for (int k = 0; k < engine::kKernelKindCount; ++k) {
    const KernelKind kind = static_cast<KernelKind>(k);
    if (KernelSupported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

Histogram TestData(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Histogram::FromCounts(ZipfCounts(n, 1.1, 8 * n, &rng));
}

std::shared_ptr<const Snapshot> MustBuild(const Histogram& data,
                                          const SnapshotOptions& options,
                                          std::uint64_t seed) {
  Rng rng(seed);
  auto built = Snapshot::Build(data, options, /*epoch=*/1, &rng);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.value();
}

/// A batch that hits every interesting shape: single points, the full
/// domain, ranges ending exactly on shard boundaries, spanning ranges,
/// plus uniform random fill.
std::vector<Interval> MixedBatch(std::int64_t n, std::int64_t shard_width,
                                 std::size_t count, Rng* rng) {
  std::vector<Interval> ranges;
  ranges.reserve(count);
  ranges.push_back(Interval(0, 0));
  ranges.push_back(Interval(n - 1, n - 1));
  ranges.push_back(Interval(0, n - 1));
  for (std::int64_t edge = shard_width - 1; edge < n && ranges.size() < count;
       edge += shard_width) {
    ranges.push_back(Interval(edge, edge));                      // boundary
    if (edge + 1 < n) ranges.push_back(Interval(edge, edge + 1));  // spanning
  }
  while (ranges.size() < count) {
    std::int64_t a = rng->NextInt(0, n - 1);
    std::int64_t b = rng->NextInt(0, n - 1);
    if (a > b) std::swap(a, b);
    ranges.push_back(Interval(a, b));
  }
  ranges.resize(count, Interval(0, 0));
  return ranges;
}

/// Bit-level equality, the whole point of the suite: EXPECT_DOUBLE_EQ
/// would hide a ULP of drift.
void ExpectBitIdentical(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::vector<Interval>& ranges,
                        KernelKind kind) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    std::memcpy(&want, &expected[i], sizeof(want));
    std::memcpy(&got, &actual[i], sizeof(got));
    ASSERT_EQ(want, got)
        << "kernel=" << KernelKindName(kind) << " query " << i << " ["
        << ranges[i].lo() << ", " << ranges[i].hi() << "]: walker "
        << expected[i] << " vs engine " << actual[i];
  }
}

struct Config {
  StrategyKind strategy;
  std::int64_t domain;
  std::int64_t shards;
  bool round;
  std::size_t batch;
};

TEST(AnswerEngineConformance, BitIdenticalToWalkerAtEveryKernelLevel) {
  const std::vector<Config> configs = {
      {StrategyKind::kLTilde, 1, 1, true, 1},
      {StrategyKind::kLTilde, 7, 3, true, 64},
      {StrategyKind::kLTilde, 1024, 8, true, 4096},
      {StrategyKind::kLTilde, 1000, 7, false, 977},
      {StrategyKind::kWavelet, 256, 1, true, 333},
      {StrategyKind::kWavelet, 513, 5, false, 2048},
      {StrategyKind::kHBar, 512, 4, false, 1024},
      {StrategyKind::kHBar, 300, 6, false, 17},
  };
  std::uint64_t seed = 1234;
  for (const Config& config : configs) {
    Histogram data = TestData(config.domain, ++seed);
    SnapshotOptions options;
    options.strategy = config.strategy;
    options.shards = config.shards;
    options.round_to_nonnegative_integers = config.round;
    if (config.strategy == StrategyKind::kHBar) {
      // H-bar only flattens when inference leaves the tree exactly
      // consistent, which is guaranteed with rounding and pruning off
      // (its answers are then raw prefix differences — the rounding that
      // did happen was at node level, never on the final answer).
      options.round_to_nonnegative_integers = false;
      options.prune_nonpositive_subtrees = false;
    }
    auto snap = MustBuild(data, options, ++seed);
    const engine::AnswerPlan* plan = snap->answer_plan();
    ASSERT_NE(plan, nullptr)
        << StrategyKindName(config.strategy) << " should flatten";

    Rng range_rng(++seed);
    std::vector<Interval> ranges =
        MixedBatch(config.domain, snap->shard_width(), config.batch,
                   &range_rng);
    std::vector<double> walker(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      walker[i] = snap->RangeCount(ranges[i]);
    }
    for (KernelKind kind : SupportedKernels()) {
      ScopedKernel forced(kind);
      ASSERT_EQ(ActiveKernel(), kind);
      std::vector<double> engine_out(ranges.size(), -1.0);
      AnswerBatch(*plan, ranges.data(), /*sel=*/nullptr, ranges.size(),
                  engine_out.data());
      ExpectBitIdentical(walker, engine_out, ranges, kind);
    }
  }
}

TEST(AnswerEngineConformance, SelectionListAnswersTheSelectedQueries) {
  Histogram data = TestData(512, 99);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 4;
  auto snap = MustBuild(data, options, 100);
  ASSERT_NE(snap->answer_plan(), nullptr);

  Rng range_rng(101);
  std::vector<Interval> ranges =
      MixedBatch(512, snap->shard_width(), 64, &range_rng);
  // Every other query, in scrambled order — the cache-miss shape.
  std::vector<std::int32_t> sel;
  for (std::int32_t i = static_cast<std::int32_t>(ranges.size()) - 1; i >= 0;
       i -= 2) {
    sel.push_back(i);
  }
  std::vector<double> out(sel.size(), -1.0);
  AnswerBatch(*snap->answer_plan(), ranges.data(), sel.data(), sel.size(),
              out.data());
  for (std::size_t j = 0; j < sel.size(); ++j) {
    const double want = snap->RangeCount(ranges[static_cast<std::size_t>(
        sel[j])]);
    std::uint64_t want_bits = 0;
    std::uint64_t got_bits = 0;
    std::memcpy(&want_bits, &want, sizeof(want_bits));
    std::memcpy(&got_bits, &out[j], sizeof(got_bits));
    EXPECT_EQ(want_bits, got_bits) << "sel[" << j << "] = " << sel[j];
  }
}

TEST(AnswerEnginePlan, PresenceMatchesStrategy) {
  Histogram data = TestData(128, 7);
  SnapshotOptions options;
  options.shards = 4;

  options.strategy = StrategyKind::kLTilde;
  EXPECT_NE(MustBuild(data, options, 8)->answer_plan(), nullptr);

  options.strategy = StrategyKind::kWavelet;
  EXPECT_NE(MustBuild(data, options, 9)->answer_plan(), nullptr);

  // H~ answers by decomposition walk; never flattenable.
  options.strategy = StrategyKind::kHTilde;
  EXPECT_EQ(MustBuild(data, options, 10)->answer_plan(), nullptr);

  // H-bar with rounding and pruning off is exactly consistent and
  // serves from its inferred prefix table.
  options.strategy = StrategyKind::kHBar;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  EXPECT_NE(MustBuild(data, options, 11)->answer_plan(), nullptr);

  // With Section 5.2 rounding/pruning the tree may lose exact
  // consistency; whatever the construction decided, the plan's presence
  // must agree with the fast-path choice, and any plan that does exist
  // must still answer identically to the walker.
  options.round_to_nonnegative_integers = true;
  options.prune_nonpositive_subtrees = true;
  auto rounded = MustBuild(data, options, 12);
  if (rounded->answer_plan() != nullptr) {
    std::vector<Interval> ranges = {Interval(0, 127), Interval(3, 90)};
    std::vector<double> out(ranges.size());
    AnswerBatch(*rounded->answer_plan(), ranges.data(), nullptr, ranges.size(),
                out.data());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_EQ(out[i], rounded->RangeCount(ranges[i]));
    }
  }
}

TEST(AnswerEnginePlan, LayoutIsAlignedAndIndexed) {
  Histogram data = TestData(100, 21);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 3;  // width 34: shards of 34, 34, 32 positions
  auto snap = MustBuild(data, options, 22);
  const engine::AnswerPlan* plan = snap->answer_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->domain_size, 100);
  EXPECT_EQ(plan->shard_count, 3);
  EXPECT_EQ(plan->shard_width, 34);
  ASSERT_EQ(plan->offsets.size(), 3u);
  EXPECT_EQ(plan->offsets[0], 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plan->prefix.data()) % 64, 0u);
  for (std::int64_t s = 0; s < plan->shard_count; ++s) {
    // Each shard's row starts on a 64-byte boundary.
    EXPECT_EQ((plan->offsets[static_cast<std::size_t>(s)] * 8) % 64, 0)
        << "shard " << s;
  }
}

TEST(AnswerEngineKernels, ParseAndNameRoundTrip) {
  for (int k = 0; k < engine::kKernelKindCount; ++k) {
    const KernelKind kind = static_cast<KernelKind>(k);
    auto parsed = ParseKernelKind(KernelKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseKernelKind("avx512").ok());
  EXPECT_FALSE(ParseKernelKind("").ok());
}

TEST(AnswerEngineKernels, ForceClampsToSupportedAndRestores) {
  EXPECT_TRUE(KernelSupported(KernelKind::kScalar));
  {
    ScopedKernel forced(KernelKind::kScalar);
    EXPECT_EQ(ActiveKernel(), KernelKind::kScalar);
  }
  // An unsupported request clamps to the best supported level rather
  // than dispatching to code the CPU cannot run.
  ForceKernel(KernelKind::kAvx2);
  if (!KernelSupported(KernelKind::kAvx2)) {
    EXPECT_EQ(ActiveKernel(), BestSupportedKernel());
  } else {
    EXPECT_EQ(ActiveKernel(), KernelKind::kAvx2);
  }
  ForceKernel(std::nullopt);
}

TEST(AnswerEngineCounters, TallyBatchesAndQueriesPerKernel) {
  Histogram data = TestData(64, 55);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 2;
  auto snap = MustBuild(data, options, 56);
  ASSERT_NE(snap->answer_plan(), nullptr);
  std::vector<Interval> ranges = {Interval(0, 10), Interval(5, 63),
                                  Interval(40, 40)};
  std::vector<double> out(ranges.size());

  ScopedKernel forced(KernelKind::kScalar);
  const engine::EngineCounters before = engine::GlobalEngineCounters();
  AnswerBatch(*snap->answer_plan(), ranges.data(), nullptr, ranges.size(),
              out.data());
  const engine::EngineCounters after = engine::GlobalEngineCounters();
  const int scalar = static_cast<int>(KernelKind::kScalar);
  EXPECT_EQ(after.batches[scalar], before.batches[scalar] + 1);
  EXPECT_EQ(after.queries[scalar], before.queries[scalar] + ranges.size());
}

}  // namespace
}  // namespace dphist
