#include "common/status.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue) {
  Result<int> r(9);
  EXPECT_EQ(r.value_or(-1), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace dphist
