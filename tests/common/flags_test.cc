#include "common/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dphist {
namespace {

Flags ParseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  Flags f = ParseArgs({"prog", "--trials=50", "--epsilon=0.1"});
  EXPECT_EQ(f.GetInt("trials", 0), 50);
  EXPECT_DOUBLE_EQ(f.GetDouble("epsilon", 0.0), 0.1);
}

TEST(FlagsTest, SpaceForm) {
  Flags f = ParseArgs({"prog", "--trials", "25"});
  EXPECT_EQ(f.GetInt("trials", 0), 25);
}

TEST(FlagsTest, BareBooleanFlag) {
  Flags f = ParseArgs({"prog", "--verbose"});
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("absent", false));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagsTest, ExplicitFalse) {
  Flags f = ParseArgs({"prog", "--round=false"});
  EXPECT_FALSE(f.GetBool("round", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags f = ParseArgs({"prog"});
  EXPECT_EQ(f.GetInt("trials", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("epsilon", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "default"), "default");
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseArgs({"prog", "input.csv", "--trials=5", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
  EXPECT_EQ(f.program(), "prog");
}

TEST(FlagsTest, EnvironmentFallback) {
  ::setenv("DPHIST_TEST_FLAG_ENV", "77", 1);
  Flags f = ParseArgs({"prog"});
  EXPECT_EQ(f.GetInt("trials", 1, "DPHIST_TEST_FLAG_ENV"), 77);
  // Explicit flag wins over the environment.
  Flags g = ParseArgs({"prog", "--trials=5"});
  EXPECT_EQ(g.GetInt("trials", 1, "DPHIST_TEST_FLAG_ENV"), 5);
  ::unsetenv("DPHIST_TEST_FLAG_ENV");
}

TEST(FlagsTest, FlagFollowedByFlagKeepsBoth) {
  Flags f = ParseArgs({"prog", "--a", "--b=2"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_EQ(f.GetInt("b", 0), 2);
}

}  // namespace
}  // namespace dphist
