#include "common/laplace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"

namespace dphist {
namespace {

TEST(LaplaceTest, VarianceFormula) {
  EXPECT_DOUBLE_EQ(LaplaceDistribution(1.0).Variance(), 2.0);
  EXPECT_DOUBLE_EQ(LaplaceDistribution(10.0).Variance(), 200.0);
  EXPECT_DOUBLE_EQ(LaplaceDistribution(0.5).Variance(), 0.5);
}

TEST(LaplaceTest, PdfSymmetricAndPeaked) {
  LaplaceDistribution lap(2.0);
  EXPECT_DOUBLE_EQ(lap.Pdf(1.5), lap.Pdf(-1.5));
  EXPECT_GT(lap.Pdf(0.0), lap.Pdf(0.1));
  EXPECT_DOUBLE_EQ(lap.Pdf(0.0), 1.0 / (2.0 * 2.0));
}

TEST(LaplaceTest, CdfAtZeroIsHalf) {
  LaplaceDistribution lap(3.0);
  EXPECT_DOUBLE_EQ(lap.Cdf(0.0), 0.5);
}

TEST(LaplaceTest, CdfMonotoneAndBounded) {
  LaplaceDistribution lap(1.0);
  double prev = 0.0;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    double c = lap.Cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(LaplaceTest, QuantileInvertsCdf) {
  LaplaceDistribution lap(1.7);
  for (double u = 0.05; u < 1.0; u += 0.05) {
    EXPECT_NEAR(lap.Cdf(lap.Quantile(u)), u, 1e-12);
  }
}

TEST(LaplaceTest, QuantileMedianIsZero) {
  LaplaceDistribution lap(4.0);
  EXPECT_NEAR(lap.Quantile(0.5), 0.0, 1e-12);
}

TEST(LaplaceTest, SampleMomentsMatchTheory) {
  LaplaceDistribution lap(2.0);
  Rng rng(99);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(lap.Sample(&rng));
  EXPECT_NEAR(stat.Mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.Variance(), lap.Variance(), lap.Variance() * 0.05);
}

TEST(LaplaceTest, SampleAbsMeanMatchesScale) {
  // E|Lap(b)| = b.
  LaplaceDistribution lap(3.0);
  Rng rng(100);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += std::abs(lap.Sample(&rng));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(LaplaceTest, SampleVectorLengthAndIndependence) {
  LaplaceDistribution lap(1.0);
  Rng rng(101);
  std::vector<double> v = lap.SampleVector(1000, &rng);
  ASSERT_EQ(v.size(), 1000u);
  // Neighboring draws should not be identical.
  int identical = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] == v[i - 1]) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(LaplaceTest, TailProbabilityExponential) {
  // P(|X| > t) = exp(-t/b).
  LaplaceDistribution lap(1.0);
  Rng rng(102);
  const int n = 200000;
  int exceed = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(lap.Sample(&rng)) > 3.0) ++exceed;
  }
  double expected = std::exp(-3.0);
  EXPECT_NEAR(static_cast<double>(exceed) / n, expected, expected * 0.15);
}

class LaplaceScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceScaleSweep, SampledVarianceTracksScale) {
  double scale = GetParam();
  LaplaceDistribution lap(scale);
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 60000; ++i) stat.Add(lap.Sample(&rng));
  EXPECT_NEAR(stat.Variance(), 2.0 * scale * scale,
              2.0 * scale * scale * 0.08);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceScaleSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0, 100.0));

}  // namespace
}  // namespace dphist
