#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dphist {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123);
  Rng b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextDouble() == b.NextDouble()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextOpenDoubleNeverZero) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextOpenDouble(), 0.0);
  }
}

TEST(RngTest, NextUniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.NextUniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit with high probability.
}

TEST(RngTest, NextIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextInt(7, 7), 7);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(6);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(7);
  const double mean = 4.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkedStreamsDecorrelate) {
  Rng parent(11);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextDouble() == child2.NextDouble()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministicGivenParentSeed) {
  Rng parent_a(12);
  Rng parent_b(12);
  Rng child_a = parent_a.Fork();
  Rng child_b = parent_b.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child_a.NextDouble(), child_b.NextDouble());
  }
}

}  // namespace
}  // namespace dphist
