#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace dphist {
namespace {

TEST(ParallelForTest, RunsEveryTaskExactlyOnce) {
  for (std::int64_t threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(257, threads, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, ZeroTasksIsANoOp) {
  ParallelFor(0, 8, [](std::int64_t) { FAIL() << "no task should run"; });
}

TEST(ParallelForTest, MoreThreadsThanTasksIsFine) {
  std::atomic<int> runs{0};
  ParallelFor(3, 16, [&](std::int64_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 3);
}

TEST(ParallelForTest, DisjointSlotWritesNeedNoSynchronization) {
  std::vector<double> out(1000, 0.0);
  ParallelFor(1000, 4, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelForTest, TaskExceptionPropagatesToCaller) {
  // Same contract as the sequential path: a throwing task surfaces at
  // the ParallelFor call site instead of terminating a worker thread.
  for (std::int64_t threads : {1, 4}) {
    EXPECT_THROW(
        ParallelFor(32, threads,
                    [](std::int64_t i) {
                      if (i == 7) throw std::runtime_error("task failed");
                    }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(ResolveThreadCountTest, PassesThroughPositiveAndResolvesZero) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

}  // namespace
}  // namespace dphist
