#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dphist {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStatTest, SingleObservation) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 4.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStatTest, KnownMeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Population variance is 4; unbiased sample variance is 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat all, left, right;
  std::vector<double> xs = {1.5, -2.0, 3.25, 8.0, 0.0, -4.5, 2.25, 9.75};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 4 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(2.0);
  double mean = a.Mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStat b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(BatchStatsTest, MeanAndVariance) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(BatchStatsTest, QuantileEndpointsAndMedian) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
}

TEST(BatchStatsTest, QuantileInterpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 7.5);
}

TEST(DistanceTest, SquaredErrorAndMse) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {2.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(SquaredError(a, b), 1.0 + 4.0 + 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, b), 5.0 / 3.0);
}

TEST(DistanceTest, NormsOnKnownVectors) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
}

TEST(DistanceTest, IdenticalVectorsAreZeroApart) {
  std::vector<double> a = {1.5, -2.5, 0.0};
  EXPECT_DOUBLE_EQ(SquaredError(a, a), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, a), 0.0);
}

}  // namespace
}  // namespace dphist
