#include "mechanism/privacy_accountant.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(PrivacyAccountantTest, StartsEmpty) {
  PrivacyAccountant accountant(1.0);
  EXPECT_DOUBLE_EQ(accountant.total_budget(), 1.0);
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.0);
  EXPECT_DOUBLE_EQ(accountant.remaining(), 1.0);
  EXPECT_TRUE(accountant.ledger().empty());
}

TEST(PrivacyAccountantTest, SequentialCompositionAccumulates) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.25, "degree sequence").ok());
  EXPECT_TRUE(accountant.Spend(0.5, "universal histogram").ok());
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.75);
  EXPECT_DOUBLE_EQ(accountant.remaining(), 0.25);
  ASSERT_EQ(accountant.ledger().size(), 2u);
  EXPECT_EQ(accountant.ledger()[0].purpose, "degree sequence");
  EXPECT_DOUBLE_EQ(accountant.ledger()[1].epsilon, 0.5);
}

TEST(PrivacyAccountantTest, RefusesOverspend) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.9, "first").ok());
  Status s = accountant.Spend(0.2, "too much");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // The failed spend must not be recorded.
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.9);
  EXPECT_EQ(accountant.ledger().size(), 1u);
}

TEST(PrivacyAccountantTest, ExactBudgetIsAllowed) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.5, "a").ok());
  EXPECT_TRUE(accountant.Spend(0.5, "b").ok());
  EXPECT_NEAR(accountant.remaining(), 0.0, 1e-12);
  EXPECT_FALSE(accountant.CanSpend(0.01));
}

TEST(PrivacyAccountantTest, ManySmallSpendsWithFloatDrift) {
  PrivacyAccountant accountant(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.Spend(0.1, "slice").ok()) << "slice " << i;
  }
  EXPECT_FALSE(accountant.Spend(0.1, "eleventh").ok());
}

TEST(PrivacyAccountantTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant accountant(1.0);
  EXPECT_EQ(accountant.Spend(0.0, "zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.Spend(-0.5, "negative").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(accountant.CanSpend(0.0));
}

TEST(PrivacyAccountantDeathTest, RejectsNonPositiveBudget) {
  EXPECT_DEATH(PrivacyAccountant(0.0), "positive");
}

}  // namespace
}  // namespace dphist
