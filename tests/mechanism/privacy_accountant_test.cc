#include "mechanism/privacy_accountant.h"

#include <gtest/gtest.h>

namespace dphist {
namespace {

TEST(PrivacyAccountantTest, StartsEmpty) {
  PrivacyAccountant accountant(1.0);
  EXPECT_DOUBLE_EQ(accountant.total_budget(), 1.0);
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.0);
  EXPECT_DOUBLE_EQ(accountant.remaining(), 1.0);
  EXPECT_TRUE(accountant.ledger().empty());
}

TEST(PrivacyAccountantTest, SequentialCompositionAccumulates) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.25, "degree sequence").ok());
  EXPECT_TRUE(accountant.Spend(0.5, "universal histogram").ok());
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.75);
  EXPECT_DOUBLE_EQ(accountant.remaining(), 0.25);
  ASSERT_EQ(accountant.ledger().size(), 2u);
  EXPECT_EQ(accountant.ledger()[0].purpose, "degree sequence");
  EXPECT_DOUBLE_EQ(accountant.ledger()[1].epsilon, 0.5);
}

TEST(PrivacyAccountantTest, RefusesOverspend) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.9, "first").ok());
  Status s = accountant.Spend(0.2, "too much");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // The failed spend must not be recorded.
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.9);
  EXPECT_EQ(accountant.ledger().size(), 1u);
}

TEST(PrivacyAccountantTest, ExactBudgetIsAllowed) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.5, "a").ok());
  EXPECT_TRUE(accountant.Spend(0.5, "b").ok());
  EXPECT_NEAR(accountant.remaining(), 0.0, 1e-12);
  EXPECT_FALSE(accountant.CanSpend(0.01));
}

TEST(PrivacyAccountantTest, ManySmallSpendsWithFloatDrift) {
  PrivacyAccountant accountant(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.Spend(0.1, "slice").ok()) << "slice " << i;
  }
  EXPECT_FALSE(accountant.Spend(0.1, "eleventh").ok());
}

TEST(PrivacyAccountantTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant accountant(1.0);
  EXPECT_EQ(accountant.Spend(0.0, "zero").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.Spend(-0.5, "negative").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(accountant.CanSpend(0.0));
}

TEST(PrivacyAccountantDeathTest, RejectsNonPositiveBudget) {
  EXPECT_DEATH(PrivacyAccountant(0.0), "positive");
}

TEST(PrivacyAccountantTest, CompensatedSumIsExactForManyTinySpends) {
  // 1000 x 0.001 drifts visibly under naive double accumulation
  // (1000 * 0.001 != 1.0 in naive left-to-right summation); the
  // Neumaier fold keeps the gate exact, so all 1000 spends are
  // admitted and the 1001st is refused.
  PrivacyAccountant accountant(1.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(accountant.Spend(0.001, "tiny").ok()) << "spend " << i;
  }
  EXPECT_FALSE(accountant.CanSpend(0.001));
  EXPECT_FALSE(accountant.Spend(0.001, "over").ok());
  EXPECT_EQ(accountant.ledger().size(), 1000u);
}

TEST(PrivacyAccountantTest, RemainingIsNeverNegative) {
  PrivacyAccountant accountant(0.15);
  EXPECT_TRUE(accountant.Spend(0.1, "a").ok());
  EXPECT_TRUE(accountant.Spend(accountant.remaining(), "rest").ok());
  EXPECT_GE(accountant.remaining(), 0.0);
  EXPECT_EQ(accountant.remaining(), 0.0);
}

TEST(PrivacyAccountantTest, RollbackRestoresExactPriorState) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Spend(0.1, "a").ok());
  EXPECT_TRUE(accountant.Spend(0.2, "b").ok());
  const double spent_two = accountant.spent();
  EXPECT_TRUE(accountant.Spend(0.3, "doomed").ok());
  ASSERT_TRUE(accountant.RollbackLast().ok());
  // Bit-identical, not approximately equal: rollback refolds the
  // remaining ledger, exactly what replaying a truncated WAL computes.
  EXPECT_EQ(accountant.spent(), spent_two);
  ASSERT_EQ(accountant.ledger().size(), 2u);
  EXPECT_EQ(accountant.ledger().back().purpose, "b");
}

TEST(PrivacyAccountantTest, RollbackOnEmptyLedgerFails) {
  PrivacyAccountant accountant(1.0);
  EXPECT_FALSE(accountant.RollbackLast().ok());
}

TEST(PrivacyAccountantTest, ImportLedgerReproducesSpentBitForBit) {
  PrivacyAccountant original(1.0);
  EXPECT_TRUE(original.Spend(0.1, "publish (initial)").ok());
  EXPECT_TRUE(original.Spend(0.07, "replan (every)").ok());
  EXPECT_TRUE(original.Spend(0.003, "replan (drift)").ok());

  PrivacyAccountant restored(1.0);
  std::vector<PrivacyAccountant::Entry> ledger = original.ledger();
  ASSERT_TRUE(restored.ImportLedger(std::move(ledger)).ok());
  EXPECT_EQ(restored.spent(), original.spent());
  EXPECT_EQ(restored.remaining(), original.remaining());
  ASSERT_EQ(restored.ledger().size(), 3u);
  EXPECT_EQ(restored.ledger()[1].purpose, "replan (every)");
}

TEST(PrivacyAccountantTest, ImportIsNotReGatedAgainstTheBudget) {
  // A persisted ledger describes releases that already happened; a
  // shrunken budget must not reject history, only future spends.
  PrivacyAccountant accountant(0.5);
  ASSERT_TRUE(accountant
                  .ImportLedger({{0.4, "old publish"}, {0.4, "old replan"}})
                  .ok());
  EXPECT_EQ(accountant.spent(), 0.4 + 0.4);
  EXPECT_EQ(accountant.remaining(), 0.0);
  EXPECT_FALSE(accountant.CanSpend(0.01));
}

TEST(PrivacyAccountantTest, ImportRequiresEmptyAccountantAndValidEntries) {
  PrivacyAccountant accountant(1.0);
  EXPECT_FALSE(accountant.ImportLedger({{-0.1, "negative"}}).ok());
  EXPECT_FALSE(accountant.ImportLedger({{0.0, "zero"}}).ok());
  EXPECT_TRUE(accountant.Spend(0.1, "a").ok());
  EXPECT_FALSE(accountant.ImportLedger({{0.1, "b"}}).ok());
}

}  // namespace
}  // namespace dphist
