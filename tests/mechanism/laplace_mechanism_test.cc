#include "mechanism/laplace_mechanism.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "query/hierarchical_query.h"
#include "query/sorted_query.h"
#include "query/unit_query.h"

namespace dphist {
namespace {

TEST(LaplaceMechanismTest, NoiseScaleIsSensitivityOverEpsilon) {
  LaplaceMechanism mechanism(0.5);
  UnitQuery l(16);
  HierarchicalQuery h(16, 2);  // height 5
  EXPECT_DOUBLE_EQ(mechanism.NoiseScale(l), 2.0);
  EXPECT_DOUBLE_EQ(mechanism.NoiseScale(h), 10.0);
}

TEST(LaplaceMechanismTest, NoiseVarianceFormula) {
  // error per answer = 2 (Delta/eps)^2; for L at eps=1 that's 2.
  LaplaceMechanism mechanism(1.0);
  UnitQuery l(16);
  EXPECT_DOUBLE_EQ(mechanism.NoiseVariance(l), 2.0);
}

TEST(LaplaceMechanismTest, AnswerHasQueryLength) {
  Histogram data = Histogram::FromCounts({2, 0, 10, 2});
  LaplaceMechanism mechanism(1.0);
  Rng rng(1);
  EXPECT_EQ(mechanism.AnswerQuery(UnitQuery(4), data, &rng).size(), 4u);
  EXPECT_EQ(mechanism.AnswerQuery(HierarchicalQuery(4, 2), data, &rng).size(),
            7u);
  EXPECT_EQ(mechanism.AnswerQuery(SortedQuery(4), data, &rng).size(), 4u);
}

TEST(LaplaceMechanismTest, NoiseIsCenteredOnTruth) {
  Histogram data = Histogram::FromCounts({5, 5, 5, 5});
  UnitQuery query(4);
  LaplaceMechanism mechanism(1.0);
  Rng rng(7);
  RunningStat per_answer[4];
  for (int t = 0; t < 20000; ++t) {
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    for (int i = 0; i < 4; ++i) per_answer[i].Add(noisy[i]);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(per_answer[i].Mean(), 5.0, 0.06);
    EXPECT_NEAR(per_answer[i].Variance(), 2.0, 0.15);
  }
}

TEST(LaplaceMechanismTest, EmpiricalErrorMatchesSection21Formula) {
  // error(L~) = 2 n / eps^2 (total squared error over the n answers).
  const std::int64_t n = 64;
  const double eps = 0.5;
  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 3));
  UnitQuery query(n);
  LaplaceMechanism mechanism(eps);
  Rng rng(11);
  RunningStat total_error;
  std::vector<double> truth = query.Evaluate(data);
  for (int t = 0; t < 4000; ++t) {
    total_error.Add(
        SquaredError(mechanism.AnswerQuery(query, data, &rng), truth));
  }
  double expected = 2.0 * static_cast<double>(n) / (eps * eps);
  EXPECT_NEAR(total_error.Mean(), expected, expected * 0.05);
}

TEST(LaplaceMechanismTest, SmallerEpsilonMeansMoreNoise) {
  Histogram data = Histogram::FromCounts({10, 10, 10, 10, 10, 10, 10, 10});
  UnitQuery query(8);
  std::vector<double> truth = query.Evaluate(data);
  Rng rng(13);
  RunningStat strict_error, loose_error;
  for (int t = 0; t < 2000; ++t) {
    strict_error.Add(SquaredError(
        LaplaceMechanism(0.1).AnswerQuery(query, data, &rng), truth));
    loose_error.Add(SquaredError(
        LaplaceMechanism(1.0).AnswerQuery(query, data, &rng), truth));
  }
  EXPECT_GT(strict_error.Mean(), 10.0 * loose_error.Mean());
}

TEST(LaplaceMechanismTest, PerturbUsesGivenScale) {
  LaplaceMechanism mechanism(1.0);
  Rng rng(17);
  RunningStat stat;
  std::vector<double> zeros(1, 0.0);
  for (int t = 0; t < 50000; ++t) {
    stat.Add(mechanism.Perturb(zeros, 3.0, &rng)[0]);
  }
  EXPECT_NEAR(stat.Variance(), 2.0 * 9.0, 0.5);
}

TEST(LaplaceMechanismTest, DeterministicGivenSeed) {
  Histogram data = Histogram::FromCounts({1, 2, 3, 4});
  UnitQuery query(4);
  LaplaceMechanism mechanism(1.0);
  Rng rng_a(23), rng_b(23);
  EXPECT_EQ(mechanism.AnswerQuery(query, data, &rng_a),
            mechanism.AnswerQuery(query, data, &rng_b));
}

TEST(LaplaceMechanismDeathTest, RejectsNonPositiveEpsilon) {
  EXPECT_DEATH(LaplaceMechanism(0.0), "positive");
  EXPECT_DEATH(LaplaceMechanism(-1.0), "positive");
}

}  // namespace
}  // namespace dphist
