#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace dphist::storage {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

WalRecord Spend(double epsilon, const std::string& purpose) {
  WalRecord record;
  record.type = WalRecordType::kSpend;
  record.epsilon = epsilon;
  record.purpose = purpose;
  return record;
}

WalRecord Swap(std::uint64_t epoch) {
  WalRecord record;
  record.type = WalRecordType::kEpochSwap;
  record.epoch = epoch;
  return record;
}

TEST(WriteAheadLogTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("wal_roundtrip.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(wal.value()->Append(Spend(0.25, "publish (initial)")).ok());
  ASSERT_TRUE(wal.value()->Append(Swap(1)).ok());
  ASSERT_TRUE(wal.value()->Append(Spend(0.1, "replan (every)")).ok());

  auto replay = wal.value()->Replay();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay.value().tail_torn);
  ASSERT_EQ(replay.value().records.size(), 3u);
  EXPECT_EQ(replay.value().records[0].type, WalRecordType::kSpend);
  // Bit-exact epsilon: the ledger is the privacy guarantee.
  EXPECT_EQ(replay.value().records[0].epsilon, 0.25);
  EXPECT_EQ(replay.value().records[0].purpose, "publish (initial)");
  EXPECT_EQ(replay.value().records[1].type, WalRecordType::kEpochSwap);
  EXPECT_EQ(replay.value().records[1].epoch, 1u);
  EXPECT_EQ(replay.value().records[2].epsilon, 0.1);
}

TEST(WriteAheadLogTest, ReopenResumesAppending) {
  const std::string path = TempPath("wal_reopen.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Spend(0.5, "first life")).ok());
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(Spend(0.25, "second life")).ok());
  auto replay = wal.value()->Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().records[0].purpose, "first life");
  EXPECT_EQ(replay.value().records[1].purpose, "second life");
}

TEST(WriteAheadLogTest, TruncateRollsBackRecords) {
  const std::string path = TempPath("wal_truncate.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(Spend(0.5, "kept")).ok());
  auto offset = wal.value()->Append(Spend(0.25, "rolled back"));
  ASSERT_TRUE(offset.ok());
  ASSERT_TRUE(wal.value()->Append(Swap(2)).ok());
  ASSERT_TRUE(wal.value()->TruncateTo(offset.value()).ok());

  auto replay = wal.value()->Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].purpose, "kept");
  EXPECT_EQ(wal.value()->size(), offset.value());
}

TEST(WriteAheadLogTest, TornTailIsSkippedNotFatal) {
  const std::string path = TempPath("wal_torn.log");
  std::uint64_t clean_size = 0;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Spend(0.5, "complete")).ok());
    clean_size = wal.value()->size();
  }
  // Simulate a crash mid-append: a few bytes of a record that never
  // finished, dangling at EOF.
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file.write("\x01\x00\x02", 3);
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  auto replay = wal.value()->Replay();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.value().tail_torn);
  EXPECT_EQ(replay.value().clean_size, clean_size);
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].purpose, "complete");
}

TEST(WriteAheadLogTest, MidFileCorruptionIsIoError) {
  const std::string path = TempPath("wal_corrupt.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(Spend(0.5, "first")).ok());
    ASSERT_TRUE(wal.value()->Append(Spend(0.25, "second")).ok());
  }
  // Flip one byte inside the FIRST record's payload: followed by intact
  // data, this cannot be a torn tail — it is corruption and must refuse.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(20);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  auto replay = wal.value()->Replay();
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dphist::storage
