#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace dphist::storage {
namespace {

TEST(PageTest, SealAndOpenRoundTrip) {
  const std::string payload = "per-shard estimator state";
  Page page;
  ASSERT_TRUE(
      SealPage(PageType::kSnapshotData, payload.data(), payload.size(), &page)
          .ok());
  Result<PageView> view = OpenPage(page);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().type, PageType::kSnapshotData);
  EXPECT_EQ(view.value().payload, payload);
}

TEST(PageTest, EmptyPayloadIsValid) {
  Page page;
  ASSERT_TRUE(SealPage(PageType::kSnapshotMeta, nullptr, 0, &page).ok());
  Result<PageView> view = OpenPage(page);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value().payload.empty());
}

TEST(PageTest, FullCapacityPayloadFitsExactly) {
  std::string payload(kPagePayloadCapacity, 'x');
  Page page;
  ASSERT_TRUE(
      SealPage(PageType::kSnapshotData, payload.data(), payload.size(), &page)
          .ok());
  Result<PageView> view = OpenPage(page);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().payload.size(), kPagePayloadCapacity);

  payload.push_back('y');
  EXPECT_FALSE(
      SealPage(PageType::kSnapshotData, payload.data(), payload.size(), &page)
          .ok());
}

TEST(PageTest, BitFlipInPayloadIsRefused) {
  const std::string payload = "the checksum must catch this";
  Page page;
  ASSERT_TRUE(
      SealPage(PageType::kSnapshotData, payload.data(), payload.size(), &page)
          .ok());
  page.bytes[kPageHeaderSize + 3] ^= 0x01;
  Result<PageView> view = OpenPage(page);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kIoError);
}

TEST(PageTest, WrongMagicIsRefused) {
  Page page;
  ASSERT_TRUE(SealPage(PageType::kSnapshotMeta, "m", 1, &page).ok());
  page.bytes[0] = 'X';
  Result<PageView> view = OpenPage(page);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kIoError);
}

TEST(PageTest, ZeroedPageIsRefusedNotDecodedAsEmpty) {
  // A page of all zeros (e.g. a hole from a torn multi-page write) must
  // refuse at the magic check, not open as an empty kFree page.
  Page page{};
  EXPECT_FALSE(OpenPage(page).ok());
}

TEST(PageTest, Crc32MatchesKnownVector) {
  // The IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Chaining two halves must equal one pass.
  std::uint32_t chained = Crc32("12345", 5);
  chained = Crc32("6789", 4, chained);
  EXPECT_EQ(chained, 0xCBF43926u);
}

}  // namespace
}  // namespace dphist::storage
