#include "storage/epoch_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"

namespace dphist::storage {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Histogram TestData(std::int64_t n) {
  Rng rng(17);
  return Histogram::FromCounts(ZipfCounts(n, 1.2, 5 * n, &rng));
}

std::vector<Interval> Probes(std::int64_t n) {
  return {Interval(0, 0), Interval(0, n - 1), Interval(n / 4, n / 2),
          Interval(3, 3 + n / 3), Interval(n / 2, n - 1)};
}

TEST(EpochStoreTest, FreshDirectoryRecoversEmpty) {
  auto store = EpochStore::Open(FreshDir("es_fresh"));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_TRUE(state.value().ledger.empty());
  EXPECT_EQ(state.value().last_swap_epoch, 0u);
  EXPECT_FALSE(state.value().wal_tail_torn);
  EXPECT_EQ(state.value().snapshot, nullptr);
  EXPECT_FALSE(state.value().profile.has_value());
}

TEST(EpochStoreTest, WalLedgerSurvivesReopen) {
  const std::string dir = FreshDir("es_ledger");
  {
    auto store = EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->AppendSpend(0.5, "publish (initial)").ok());
    ASSERT_TRUE(store.value()->AppendEpochSwap(1).ok());
    ASSERT_TRUE(store.value()->AppendSpend(0.25, "replan (manual)").ok());
    ASSERT_TRUE(store.value()->AppendEpochSwap(2).ok());
  }
  auto store = EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().ledger.size(), 2u);
  EXPECT_EQ(state.value().ledger[0].epsilon, 0.5);
  EXPECT_EQ(state.value().ledger[0].purpose, "publish (initial)");
  EXPECT_EQ(state.value().ledger[1].epsilon, 0.25);
  EXPECT_EQ(state.value().last_swap_epoch, 2u);
}

TEST(EpochStoreTest, RollbackToErasesChargeAndSwap) {
  auto store = EpochStore::Open(FreshDir("es_rollback"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->AppendSpend(0.5, "kept").ok());
  auto offset = store.value()->AppendSpend(0.25, "failed publish");
  ASSERT_TRUE(offset.ok());
  ASSERT_TRUE(store.value()->AppendEpochSwap(7).ok());
  ASSERT_TRUE(store.value()->RollbackTo(offset.value()).ok());

  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().ledger.size(), 1u);
  EXPECT_EQ(state.value().ledger[0].purpose, "kept");
  EXPECT_EQ(state.value().last_swap_epoch, 0u);
}

TEST(EpochStoreTest, SnapshotRoundTripIsBitIdenticalAllStrategies) {
  const std::int64_t n = 96;
  Histogram data = TestData(n);
  for (StrategyKind strategy :
       {StrategyKind::kLTilde, StrategyKind::kHTilde, StrategyKind::kHBar,
        StrategyKind::kWavelet}) {
    SCOPED_TRACE(StrategyKindName(strategy));
    SnapshotOptions options;
    options.strategy = strategy;
    options.epsilon = 0.4;
    options.shards = 3;
    Rng rng(99);
    auto built = Snapshot::Build(data, options, 5, &rng);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    auto store = EpochStore::Open(
        FreshDir(std::string("es_round_") + StrategyKindName(strategy)));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->PersistSnapshot(*built.value(), nullptr).ok());

    auto state = store.value()->Recover();
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    ASSERT_NE(state.value().snapshot, nullptr);
    const Snapshot& restored = *state.value().snapshot;
    EXPECT_EQ(restored.epoch(), 5u);
    EXPECT_EQ(restored.domain_size(), n);
    EXPECT_EQ(restored.strategy(), strategy);
    EXPECT_EQ(restored.shard_count(), built.value()->shard_count());
    for (const Interval& probe : Probes(n)) {
      // EXPECT_EQ, not NEAR: recovery must reproduce the released
      // answers bit for bit, or it is a different (unpaid-for) release.
      EXPECT_EQ(restored.RangeCount(probe), built.value()->RangeCount(probe))
          << "probe [" << probe.lo() << ", " << probe.hi() << "]";
    }
  }
}

TEST(EpochStoreTest, LatestPersistWins) {
  const std::int64_t n = 48;
  Histogram data = TestData(n);
  SnapshotOptions options;
  options.strategy = StrategyKind::kHBar;
  options.epsilon = 0.3;
  Rng rng(7);
  auto first = Snapshot::Build(data, options, 1, &rng);
  auto second = Snapshot::Build(data, options, 2, &rng);
  ASSERT_TRUE(first.ok() && second.ok());

  auto store = EpochStore::Open(FreshDir("es_latest"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->PersistSnapshot(*first.value(), nullptr).ok());
  ASSERT_TRUE(store.value()->PersistSnapshot(*second.value(), nullptr).ok());
  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok());
  ASSERT_NE(state.value().snapshot, nullptr);
  EXPECT_EQ(state.value().snapshot->epoch(), 2u);
  for (const Interval& probe : Probes(n)) {
    EXPECT_EQ(state.value().snapshot->RangeCount(probe),
              second.value()->RangeCount(probe));
  }
}

TEST(EpochStoreTest, WorkloadProfileRoundTrips) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  SnapshotOptions options;
  options.strategy = StrategyKind::kHTilde;
  options.epsilon = 0.2;
  Rng rng(3);
  auto built = Snapshot::Build(data, options, 1, &rng);
  ASSERT_TRUE(built.ok());

  planner::WorkloadProfile profile(n);
  profile.AddQuery(Interval(2, 9));
  profile.AddQuery(Interval(30, 60));
  profile.AddLength(5, 2.5);

  auto store = EpochStore::Open(FreshDir("es_profile"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->PersistSnapshot(*built.value(), &profile).ok());
  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state.value().profile.has_value());
  const planner::WorkloadProfile& restored = *state.value().profile;
  EXPECT_EQ(restored.domain_size(), n);
  EXPECT_EQ(restored.length_weights(), profile.length_weights());
  EXPECT_EQ(restored.position_heat(), profile.position_heat());
  EXPECT_EQ(restored.total_weight(), profile.total_weight());
}

TEST(EpochStoreTest, CorruptSnapshotRefusesLoudly) {
  const std::int64_t n = 64;
  Histogram data = TestData(n);
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.epsilon = 0.2;
  Rng rng(11);
  auto built = Snapshot::Build(data, options, 1, &rng);
  ASSERT_TRUE(built.ok());

  const std::string dir = FreshDir("es_corrupt");
  {
    auto store = EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->PersistSnapshot(*built.value(), nullptr).ok());
  }
  // Flip one byte inside the first data page's payload.
  {
    std::fstream file(dir + "/snapshot.db",
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(4096 + 100);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(4096 + 100);
    byte = static_cast<char>(byte ^ 0x10);
    file.write(&byte, 1);
  }
  auto store = EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  auto state = store.value()->Recover();
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kIoError);
}

TEST(EpochStoreTest, TornWalTailIsTruncatedOnRecover) {
  const std::string dir = FreshDir("es_torn");
  std::uint64_t clean_size = 0;
  {
    auto store = EpochStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->AppendSpend(0.5, "complete").ok());
    clean_size = store.value()->wal_size();
  }
  {
    std::ofstream file(dir + "/wal.log", std::ios::binary | std::ios::app);
    file.write("DPW", 3);  // a record header that never finished
  }
  auto store = EpochStore::Open(dir);
  ASSERT_TRUE(store.ok());
  auto state = store.value()->Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_TRUE(state.value().wal_tail_torn);
  ASSERT_EQ(state.value().ledger.size(), 1u);
  EXPECT_EQ(store.value()->wal_size(), clean_size);
  // The truncation repaired the file: a second recovery is clean.
  auto again = store.value()->Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().wal_tail_torn);
}

}  // namespace
}  // namespace dphist::storage
