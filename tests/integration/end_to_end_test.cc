// End-to-end pipelines over synthetic datasets: data owner answers under
// epsilon-DP, analyst post-processes, range queries are served — the full
// Figure 1 workflow, including privacy budgeting across both histogram
// tasks.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/nettrace.h"
#include "data/search_logs.h"
#include "estimators/unattributed.h"
#include "estimators/universal.h"
#include "mechanism/laplace_mechanism.h"
#include "mechanism/privacy_accountant.h"
#include "query/hierarchical_query.h"

namespace dphist {
namespace {

TEST(EndToEndTest, DegreeSequenceWorkflow) {
  // Data owner: NetTrace-like degrees; analyst asks S at eps = 0.1.
  NetTraceConfig data_config;
  data_config.num_hosts = 2048;
  data_config.num_connections = 10000;
  Histogram data = GenerateNetTrace(data_config);

  PrivacyAccountant accountant(1.0);
  ASSERT_TRUE(accountant.Spend(0.1, "degree sequence").ok());

  Rng rng(1);
  std::vector<double> noisy = SampleNoisySortedCounts(data, 0.1, &rng);
  std::vector<double> inferred =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  std::vector<double> truth = TrueSortedCounts(data);

  // Inference must improve markedly on this duplicate-heavy data.
  EXPECT_LT(SquaredError(inferred, truth) * 5.0,
            SquaredError(noisy, truth));
  EXPECT_DOUBLE_EQ(accountant.remaining(), 0.9);
}

TEST(EndToEndTest, UniversalHistogramWorkflow) {
  TemporalSeriesConfig data_config;
  data_config.num_slots = 2048;
  Histogram data = GenerateTemporalSeries(data_config);

  UniversalOptions options;
  options.epsilon = 0.5;
  Rng rng(2);
  HBarEstimator h_bar(data, options, &rng);

  // Large-range answers track the truth. Tolerance accounts for the
  // positive bias the Section 5.2 rounding step introduces in the
  // near-zero half of the series (negative leaf noise clips to zero).
  Interval whole(0, data.size() - 1);
  EXPECT_NEAR(h_bar.RangeCount(whole), data.Count(whole),
              0.10 * data.Count(whole) + 50.0);

  // Without rounding, the consistent estimate is unbiased and the root
  // estimate is sharp: a much tighter check holds.
  UniversalOptions raw = options;
  raw.round_to_nonnegative_integers = false;
  raw.prune_nonpositive_subtrees = false;
  HBarEstimator h_bar_raw(data, raw, &rng);
  EXPECT_NEAR(h_bar_raw.RangeCount(whole), data.Count(whole),
              0.01 * data.Count(whole) + 200.0);
}

TEST(EndToEndTest, CrossoverBetweenLTildeAndHTilde) {
  // Fig. 6's qualitative shape: L~ wins small ranges, H~ wins large ones.
  // The crossover sits near range ~ ell^2 * E[#subtrees] (~2000 in the
  // paper's height-17 tree), so the domain must be big enough for ranges
  // beyond it — 16384 leaves (ell = 15) with 8192-length ranges works.
  NetTraceConfig data_config;
  data_config.num_hosts = 16384;
  data_config.num_connections = 60000;
  Histogram data = GenerateNetTrace(data_config);

  UniversalOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;  // pure mechanism errors
  options.prune_nonpositive_subtrees = false;

  Rng rng(3);
  RunningStat small_l, small_h, large_l, large_h;
  for (int t = 0; t < 30; ++t) {
    LTildeEstimator l_tilde(data, options, &rng);
    HTildeEstimator h_tilde(data, options, &rng);
    for (int i = 0; i < 20; ++i) {
      std::int64_t lo_small = rng.NextInt(0, data.size() - 3);
      Interval small(lo_small, lo_small + 1);
      std::int64_t lo_large = rng.NextInt(0, data.size() - 8192 - 1);
      Interval large(lo_large, lo_large + 8191);
      double dsl = l_tilde.RangeCount(small) - data.Count(small);
      double dsh = h_tilde.RangeCount(small) - data.Count(small);
      double dll = l_tilde.RangeCount(large) - data.Count(large);
      double dlh = h_tilde.RangeCount(large) - data.Count(large);
      small_l.Add(dsl * dsl);
      small_h.Add(dsh * dsh);
      large_l.Add(dll * dll);
      large_h.Add(dlh * dlh);
    }
  }
  EXPECT_LT(small_l.Mean(), small_h.Mean());  // L~ wins unit-ish ranges
  EXPECT_GT(large_l.Mean(), large_h.Mean());  // H~ wins half-domain ranges
}

TEST(EndToEndTest, PruningMakesHBarCompetitiveAtSmallRangesOnSparseData) {
  // Section 5.2: on sparse domains, H-bar "can effectively identify
  // [sparse regions] because it has noisy observations at higher levels
  // of the tree", which is why it can approach (and on the paper's
  // datasets sometimes beat) L~ even at leaf granularity despite carrying
  // log(n)-times more noise per count. The dataset-independent parts of
  // that claim, verified here:
  //   (a) pruning strictly improves H-bar at unit ranges on sparse data;
  //   (b) with pruning, H-bar's unit-range error is within a small factor
  //       of L~'s — closing most of the ell^2 noise-variance gap
  //       (2 ell^2/eps^2 vs 2/eps^2 = 169x raw for this tree).
  // The large-range comparison (where H beats L) is covered without
  // rounding by CrossoverBetweenLTildeAndHTilde; with Section 5.2
  // rounding enabled, large-range error for *both* estimators is
  // dominated by the accumulation of clipped-noise bias across quiet
  // positions, which is a property of the rounding step, not of the
  // inference contribution under test here.
  NetTraceConfig data_config;
  data_config.num_hosts = 4096;   // tree height ell = 13
  data_config.num_connections = 3000;
  data_config.silent_fraction = 0.95;
  data_config.cluster_size = 32;
  Histogram data = GenerateNetTrace(data_config);

  UniversalOptions pruned;
  pruned.epsilon = 1.0;
  UniversalOptions unpruned = pruned;
  unpruned.prune_nonpositive_subtrees = false;

  HierarchicalQuery query(data.size(), pruned.branching);
  LaplaceMechanism mechanism(pruned.epsilon);
  Rng rng(4);
  RunningStat err_l, err_hb, err_hb_unpruned;
  for (int t = 0; t < 40; ++t) {
    LTildeEstimator l_tilde(data, pruned, &rng);
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    HBarEstimator h_bar(data.size(), pruned, noisy);
    HBarEstimator h_bar_raw(data.size(), unpruned, noisy);
    for (int i = 0; i < 100; ++i) {
      std::int64_t pos = rng.NextInt(0, data.size() - 1);
      Interval unit(pos, pos);
      double truth = data.Count(unit);
      double dl = l_tilde.RangeCount(unit) - truth;
      double dh = h_bar.RangeCount(unit) - truth;
      double dr = h_bar_raw.RangeCount(unit) - truth;
      err_l.Add(dl * dl);
      err_hb.Add(dh * dh);
      err_hb_unpruned.Add(dr * dr);
    }
  }
  // (a) pruning strictly helps at unit ranges on sparse data.
  EXPECT_LT(err_hb.Mean(), err_hb_unpruned.Mean() / 2.0);
  // (b) within a small factor of L~ despite 169x more raw noise variance.
  EXPECT_LT(err_hb.Mean(), 20.0 * err_l.Mean());
}

TEST(EndToEndTest, BudgetRefusalStopsSecondTask) {
  PrivacyAccountant accountant(0.15);
  EXPECT_TRUE(accountant.Spend(0.1, "universal histogram").ok());
  Status s = accountant.Spend(0.1, "degree sequence");
  EXPECT_FALSE(s.ok());
  // 0.1 + 0.05 lands a hair above 0.15 in double arithmetic, and the
  // accountant gates exactly — no drift tolerance to sneak through.
  EXPECT_FALSE(accountant.Spend(0.05, "degree sequence (reduced)").ok());
  // But asking for exactly what is left always succeeds and zeroes the
  // budget: remaining() is derived from the same compensated fold the
  // gate replays.
  EXPECT_TRUE(
      accountant.Spend(accountant.remaining(), "degree sequence (rest)").ok());
  EXPECT_EQ(accountant.remaining(), 0.0);
}

TEST(EndToEndTest, InferenceIsDeterministicPostProcessing) {
  // Proposition 2's mechanism: inference consumes only the noisy output,
  // so the same noisy draw must always produce the same estimate.
  TemporalSeriesConfig data_config;
  data_config.num_slots = 512;
  Histogram data = GenerateTemporalSeries(data_config);
  UniversalOptions options;
  options.epsilon = 1.0;
  Rng rng(5);
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
  HBarEstimator a(data.size(), options, noisy);
  HBarEstimator b(data.size(), options, noisy);
  EXPECT_EQ(a.leaf_estimates(), b.leaf_estimates());
}

}  // namespace
}  // namespace dphist
