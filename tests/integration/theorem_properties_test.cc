// Empirical verification of the paper's theorems at test scale:
// Theorem 2's error(S-bar) dependence on the number of distinct counts d,
// and Theorem 4's optimality and witness-query claims for H-bar.

#include <gtest/gtest.h>

#include <cmath>

#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "inference/isotonic.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

namespace dphist {
namespace {

// Average total squared error of isotonic regression on a planted sorted
// sequence under Lap(1/eps) noise.
double IsotonicError(const std::vector<double>& truth, double eps,
                     int trials, std::uint64_t seed) {
  Rng rng(seed);
  LaplaceDistribution noise(1.0 / eps);
  RunningStat err;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> noisy = truth;
    for (double& x : noisy) x += noise.Sample(&rng);
    err.Add(SquaredError(IsotonicRegression(noisy), truth));
  }
  return err.Mean();
}

// A sorted sequence of length n with exactly d distinct values, equal run
// lengths, and well-separated steps.
std::vector<double> StepSequence(std::size_t n, std::size_t d) {
  std::vector<double> truth(n);
  std::size_t run = n / d;
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(std::min(i / run, d - 1)) * 50.0;
  }
  return truth;
}

TEST(Theorem2Test, ConstantSequenceErrorIsPolyLog) {
  // d = 1: error(S-bar) = O(log^3 n / eps^2) vs error(S~) = 2n/eps^2.
  const std::size_t n = 1024;
  const double eps = 1.0;
  double err = IsotonicError(StepSequence(n, 1), eps, 60, 1);
  double stilde = 2.0 * static_cast<double>(n) / (eps * eps);
  // log2(1024)^3 = 1000, same order as n here, so require a 10x win which
  // only materializes through actual pooling.
  EXPECT_LT(err * 10.0, stilde);
}

TEST(Theorem2Test, ErrorGrowsWithDistinctCount) {
  // Fix n, sweep d: error should increase monotonically (allowing slack)
  // and roughly linearly in d.
  const std::size_t n = 512;
  const double eps = 1.0;
  double err_d1 = IsotonicError(StepSequence(n, 1), eps, 60, 2);
  double err_d4 = IsotonicError(StepSequence(n, 4), eps, 60, 3);
  double err_d16 = IsotonicError(StepSequence(n, 16), eps, 60, 4);
  EXPECT_LT(err_d1, err_d4);
  EXPECT_LT(err_d4, err_d16);
  // Near-linear growth in d: quadrupling d should land within [2x, 8x].
  EXPECT_GT(err_d16 / err_d4, 2.0);
  EXPECT_LT(err_d16 / err_d4, 8.0);
}

TEST(Theorem2Test, ErrorSublinearInNWhenDFixed) {
  // Fix d = 4, quadruple n: error(S-bar) should grow far slower than n
  // (poly-log), while error(S~) grows linearly.
  const double eps = 1.0;
  double err_n256 = IsotonicError(StepSequence(256, 4), eps, 60, 5);
  double err_n1024 = IsotonicError(StepSequence(1024, 4), eps, 60, 6);
  EXPECT_LT(err_n1024 / err_n256, 2.5);  // linear growth would be 4x
}

TEST(Theorem2Test, AllDistinctSequenceGivesNoBigWin) {
  // d = n: both estimators scale linearly; inference cannot pool anything
  // when every step is large, so the win is bounded.
  const std::size_t n = 256;
  const double eps = 1.0;
  std::vector<double> truth(n);
  for (std::size_t i = 0; i < n; ++i) truth[i] = static_cast<double>(i) * 50.0;
  double err = IsotonicError(truth, eps, 60, 7);
  double stilde = 2.0 * static_cast<double>(n) / (eps * eps);
  // With huge gaps the projection is almost surely the identity.
  EXPECT_GT(err, 0.9 * stilde);
  EXPECT_LT(err, 1.1 * stilde);
}

// ---- Theorem 4 ----

TEST(Theorem4Test, HBarBeatsEveryDecompositionEstimator) {
  // (ii): H-bar has minimal error among linear unbiased estimators; in
  // particular it must not lose to the H~ subtree-decomposition estimator
  // on any fixed query, measured over many draws.
  const std::int64_t n = 64;
  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 2));
  UniversalOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;

  HierarchicalQuery query(n, 2);
  LaplaceMechanism mechanism(options.epsilon);
  Rng rng(8);
  std::vector<Interval> queries = {Interval(0, 0), Interval(3, 17),
                                   Interval(1, 62), Interval(16, 47),
                                   Interval(0, 63)};
  std::vector<RunningStat> err_ht(queries.size()), err_hb(queries.size());
  for (int t = 0; t < 1500; ++t) {
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    HTildeEstimator ht(n, options, noisy);
    HBarEstimator hb(n, options, noisy);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      double truth = data.Count(queries[i]);
      double dt = ht.RangeCount(queries[i]) - truth;
      double db = hb.RangeCount(queries[i]) - truth;
      err_ht[i].Add(dt * dt);
      err_hb[i].Add(db * db);
    }
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_LE(err_hb[i].Mean(), err_ht[i].Mean() * 1.08)
        << "query " << queries[i].ToString();
  }
}

TEST(Theorem4Test, WitnessQueryAchievesClaimedFactor) {
  // (iv): for q = everything but the two extreme leaves,
  // error(H-bar_q) <= 3 / (2(ell-1)(k-1) - k) * error(H~_q).
  const std::int64_t n = 64;  // ell = 7, k = 2 -> bound factor 3/10
  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 1));
  UniversalOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;

  HierarchicalQuery query(n, 2);
  const double ell = static_cast<double>(query.tree().height());
  const double k = 2.0;
  LaplaceMechanism mechanism(options.epsilon);
  Interval witness(1, n - 2);

  Rng rng(9);
  RunningStat err_ht, err_hb;
  for (int t = 0; t < 3000; ++t) {
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    HTildeEstimator ht(n, options, noisy);
    HBarEstimator hb(n, options, noisy);
    double truth = data.Count(witness);
    double dt = ht.RangeCount(witness) - truth;
    double db = hb.RangeCount(witness) - truth;
    err_ht.Add(dt * dt);
    err_hb.Add(db * db);
  }
  double bound = 3.0 / (2.0 * (ell - 1.0) * (k - 1.0) - k);
  EXPECT_LT(err_hb.Mean() / err_ht.Mean(), bound * 1.25)
      << "measured ratio " << err_hb.Mean() / err_ht.Mean()
      << " vs bound " << bound;

  // Cross-check error(H~_q) against its closed form:
  // (2(k-1)(ell-1) - k) subtrees x 2 ell^2 / eps^2 per count.
  double expected_ht =
      (2.0 * (k - 1.0) * (ell - 1.0) - k) * 2.0 * ell * ell;
  EXPECT_NEAR(err_ht.Mean(), expected_ht, expected_ht * 0.1);
  // And the decomposition really is that large.
  EXPECT_EQ(static_cast<double>(DecomposeRange(query.tree(), witness).size()),
            2.0 * (k - 1.0) * (ell - 1.0) - k);
}

TEST(Theorem4Test, HBarRangeErrorIsPolyLogEverywhere) {
  // (iii): error(H-bar_q) = O(ell^3 / eps^2) for all q. Measure the worst
  // observed error over a size sweep and compare with c * ell^3.
  const std::int64_t n = 256;  // ell = 9
  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 3));
  UniversalOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;

  HierarchicalQuery query(n, 2);
  LaplaceMechanism mechanism(options.epsilon);
  Rng rng(10);
  double worst = 0.0;
  for (std::int64_t size : Fig6RangeSizes(n)) {
    RunningStat err;
    for (int t = 0; t < 400; ++t) {
      std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
      HBarEstimator hb(n, options, noisy);
      std::vector<Interval> ranges = RandomRangesOfSize(n, size, 5, &rng);
      for (const Interval& q : ranges) {
        double d = hb.RangeCount(q) - data.Count(q);
        err.Add(d * d);
      }
    }
    worst = std::max(worst, err.Mean());
  }
  double ell = static_cast<double>(query.tree().height());
  EXPECT_LT(worst, 4.0 * ell * ell * ell);
}

}  // namespace
}  // namespace dphist
