// Statistical verification of the epsilon-differential-privacy guarantee
// (Definition 2.1) on neighboring databases, and of Proposition 2 (post-
// processing cannot weaken it).
//
// For the Laplace mechanism the guarantee is analytic, so these tests act
// as end-to-end checks that noise really is calibrated to sensitivity: we
// estimate output probabilities over a bin grid from many draws and check
// Pr[A(I) in S] <= e^eps * Pr[A(I') in S] + statistical slack.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "domain/histogram.h"
#include "estimators/unattributed.h"
#include "inference/isotonic.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "query/sorted_query.h"
#include "query/unit_query.h"

namespace dphist {
namespace {

constexpr int kTrials = 60000;
constexpr double kBinWidth = 1.0;
constexpr int kBins = 16;  // bins cover [-8, 8) around the true count

// Bins draws of a single output coordinate; a marginal likelihood-ratio
// check is a necessary condition for joint DP and is where calibration
// bugs would show.
std::vector<double> BinnedFrequencies(const QuerySequence& query,
                                      const Histogram& data, double epsilon,
                                      std::size_t coordinate,
                                      std::uint64_t seed) {
  LaplaceMechanism mechanism(epsilon);
  Rng rng(seed);
  std::vector<double> truth = query.Evaluate(data);
  std::vector<double> freq(kBins, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    double offset = noisy[coordinate] - truth[coordinate];
    int bin = static_cast<int>(std::floor(offset / kBinWidth)) + kBins / 2;
    if (bin >= 0 && bin < kBins) freq[static_cast<std::size_t>(bin)] += 1.0;
  }
  for (double& f : freq) f /= kTrials;
  return freq;
}

void ExpectLikelihoodRatioBounded(const std::vector<double>& p,
                                  const std::vector<double>& q,
                                  double epsilon) {
  double bound = std::exp(epsilon);
  for (std::size_t b = 0; b < p.size(); ++b) {
    if (p[b] < 0.005 || q[b] < 0.005) continue;  // skip noisy rare bins
    EXPECT_LE(p[b], bound * q[b] * 1.15) << "bin " << b;
    EXPECT_LE(q[b], bound * p[b] * 1.15) << "bin " << b;
  }
}

TEST(PrivacyPropertyTest, UnitQuerySatisfiesEpsilonDp) {
  Histogram data = Histogram::FromCounts({3, 1, 4, 1});
  Histogram neighbor = data;
  neighbor.Increment(0);  // add one record
  UnitQuery query(4);
  const double eps = 1.0;
  // Shift the neighbor's binned frequencies into the base frame: compare
  // the distribution of (output - truth-of-I) under both databases.
  LaplaceMechanism mechanism(eps);
  Rng rng_a(11), rng_b(12);
  std::vector<double> truth = query.Evaluate(data);
  std::vector<double> freq_base(kBins, 0.0), freq_nbr(kBins, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    double a = mechanism.AnswerQuery(query, data, &rng_a)[0] - truth[0];
    double b = mechanism.AnswerQuery(query, neighbor, &rng_b)[0] - truth[0];
    int bin_a = static_cast<int>(std::floor(a / kBinWidth)) + kBins / 2;
    int bin_b = static_cast<int>(std::floor(b / kBinWidth)) + kBins / 2;
    if (bin_a >= 0 && bin_a < kBins) freq_base[bin_a] += 1.0;
    if (bin_b >= 0 && bin_b < kBins) freq_nbr[bin_b] += 1.0;
  }
  for (double& f : freq_base) f /= kTrials;
  for (double& f : freq_nbr) f /= kTrials;
  ExpectLikelihoodRatioBounded(freq_base, freq_nbr, eps);
}

TEST(PrivacyPropertyTest, HierarchicalQuerySatisfiesEpsilonDp) {
  // H's sensitivity is 3 here; noise is scaled up accordingly, so the
  // per-coordinate likelihood ratio must stay within e^eps even though a
  // record shifts three coordinates at once.
  Histogram data = Histogram::FromCounts({3, 1, 4, 1});
  Histogram neighbor = data;
  neighbor.Increment(2);
  HierarchicalQuery query(4, 2);
  const double eps = 1.0;
  LaplaceMechanism mechanism(eps);
  Rng rng_a(13), rng_b(14);
  std::vector<double> truth = query.Evaluate(data);
  // Track the root coordinate (changes by 1 between neighbors).
  std::vector<double> freq_base(kBins, 0.0), freq_nbr(kBins, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    double a = mechanism.AnswerQuery(query, data, &rng_a)[0] - truth[0];
    double b = mechanism.AnswerQuery(query, neighbor, &rng_b)[0] - truth[0];
    int bin_a = static_cast<int>(std::floor(a / kBinWidth)) + kBins / 2;
    int bin_b = static_cast<int>(std::floor(b / kBinWidth)) + kBins / 2;
    if (bin_a >= 0 && bin_a < kBins) freq_base[bin_a] += 1.0;
    if (bin_b >= 0 && bin_b < kBins) freq_nbr[bin_b] += 1.0;
  }
  for (double& f : freq_base) f /= kTrials;
  for (double& f : freq_nbr) f /= kTrials;
  // The root differs by 1 but noise scale is 3/eps, so the observed ratio
  // must respect exp(eps/3) per unit — comfortably within exp(eps).
  ExpectLikelihoodRatioBounded(freq_base, freq_nbr, eps);
}

TEST(PrivacyPropertyTest, SortedQueryNoiseIsSensitivityCalibrated) {
  // S has sensitivity 1: its noise must match L's scale, NOT shrink
  // because of sorting. Variance of each coordinate's noise = 2/eps^2.
  Histogram data = Histogram::FromCounts({5, 5, 5, 5});
  const double eps = 0.5;
  std::vector<double> freq = BinnedFrequencies(SortedQuery(4), data, eps,
                                               /*coordinate=*/1, 15);
  // Center bins must follow the Laplace(2) shape: P(bin [0,1)) =
  // CDF(1)-CDF(0).
  LaplaceDistribution lap(1.0 / eps);
  double expected = lap.Cdf(1.0) - lap.Cdf(0.0);
  EXPECT_NEAR(freq[kBins / 2], expected, 0.01);
}

TEST(PrivacyPropertyTest, PostProcessingIsDeterministic) {
  // Proposition 2: S-bar is a deterministic function of s~, so it adds no
  // privacy-relevant randomness.
  std::vector<double> noisy = {4.2, -1.0, 3.3, 9.9};
  EXPECT_EQ(IsotonicRegression(noisy), IsotonicRegression(noisy));
}

TEST(PrivacyPropertyTest, InferenceCommutesThroughDpInterface) {
  // The paper notes the server may run inference itself; analyst-side and
  // server-side post-processing must be byte-identical.
  Histogram data = Histogram::FromCounts({2, 0, 10, 2});
  Rng rng(16);
  std::vector<double> noisy = SampleNoisySortedCounts(data, 1.0, &rng);
  std::vector<double> analyst_side =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  std::vector<double> server_side = IsotonicRegression(noisy);
  EXPECT_EQ(analyst_side, server_side);
}

}  // namespace
}  // namespace dphist
