// Every worked example in the paper, verified end to end. These tests pin
// our implementation to the paper's numbers: Fig. 2's query variations and
// inferred answers, Example 1-6 values, and the Fig. 4 tree.

#include <gtest/gtest.h>

#include "domain/histogram.h"
#include "inference/hierarchical.h"
#include "inference/isotonic.h"
#include "query/hierarchical_query.h"
#include "query/sorted_query.h"
#include "query/unit_query.h"
#include "tree/tree_layout.h"

namespace dphist {
namespace {

// Fig. 2(a): out-degrees of sources 000, 001, 010, 011 are 2, 0, 10, 2.
Histogram TraceData() { return Histogram::FromCounts({2, 0, 10, 2}, "src"); }

TEST(PaperExamplesTest, Example1UnitQuery) {
  // L(I) = <2, 0, 10, 2>.
  UnitQuery l(4);
  EXPECT_EQ(l.Evaluate(TraceData()), (std::vector<double>{2, 0, 10, 2}));
}

TEST(PaperExamplesTest, Example2Sensitivity) {
  EXPECT_DOUBLE_EQ(UnitQuery(4).Sensitivity(), 1.0);
}

TEST(PaperExamplesTest, Example3SortedQuery) {
  // S(I) = <0, 2, 2, 10>.
  SortedQuery s(4);
  EXPECT_EQ(s.Evaluate(TraceData()), (std::vector<double>{0, 2, 2, 10}));
}

TEST(PaperExamplesTest, Example6HierarchicalQuery) {
  // H = <C0**, C00*, C01*, C000, C001, C010, C011>,
  // H(I) = <14, 2, 12, 2, 0, 10, 2>, height ell = 3.
  HierarchicalQuery h(4, 2);
  EXPECT_EQ(h.Evaluate(TraceData()),
            (std::vector<double>{14, 2, 12, 2, 0, 10, 2}));
  EXPECT_EQ(h.tree().height(), 3);
  EXPECT_DOUBLE_EQ(h.Sensitivity(), 3.0);
}

TEST(PaperExamplesTest, Fig2PrivateOutputsInferToPaperAnswers) {
  // Fig. 2(b) reports, for the noisy draws shown, the inferred answers:
  //   H~(I) = <13, 3, 11, 4, 1, 12, 1> -> H(I)-bar = <14, 3, 11, 3, 0, 11, 0>
  //   S~(I) = <1, 2, 0, 11>            -> S(I)-bar = <1, 1, 1, 11>
  TreeLayout tree(4, 2);
  HierarchicalInferenceResult h =
      HierarchicalInference(tree, {13, 3, 11, 4, 1, 12, 1});
  std::vector<double> expected_h = {14, 3, 11, 3, 0, 11, 0};
  ASSERT_EQ(h.node_estimates.size(), expected_h.size());
  for (std::size_t i = 0; i < expected_h.size(); ++i) {
    EXPECT_NEAR(h.node_estimates[i], expected_h[i], 1e-9) << "node " << i;
  }

  std::vector<double> s = IsotonicRegression({1, 2, 0, 11});
  std::vector<double> expected_s = {1, 1, 1, 11};
  for (std::size_t i = 0; i < expected_s.size(); ++i) {
    EXPECT_NEAR(s[i], expected_s[i], 1e-9) << "position " << i;
  }
}

TEST(PaperExamplesTest, Fig4TreeStructure) {
  // The tree of Fig. 4: root C0** covering [0,3], children C00* [0,1] and
  // C01* [2,3], four unit leaves.
  TreeLayout tree(4, 2);
  EXPECT_EQ(tree.NodeRange(0), Interval(0, 3));
  EXPECT_EQ(tree.NodeRange(1), Interval(0, 1));
  EXPECT_EQ(tree.NodeRange(2), Interval(2, 3));
  EXPECT_EQ(tree.NodeRange(3), Interval(0, 0));
  EXPECT_EQ(tree.NodeRange(6), Interval(3, 3));
}

TEST(PaperExamplesTest, Section42ErrorOfHTildeFormula) {
  // "Each noisy count has error equal to 2 ell^2 / eps^2": the variance of
  // Lap(ell/eps).
  HierarchicalQuery h(65536, 2);  // the experiments' height-17 tree
  double eps = 1.0;
  double scale = h.Sensitivity() / eps;
  EXPECT_DOUBLE_EQ(2.0 * scale * scale,
                   2.0 * 17.0 * 17.0);  // 578 per count at eps=1
}

TEST(PaperExamplesTest, Theorem4FactorAtHeight16) {
  // "in a height 16 binary tree ... H-bar_q is more accurate than H~_q by
  // a factor of (2(ell-1)(k-1) - k)/3 = 9.33".
  double ell = 16, k = 2;
  double factor = (2.0 * (ell - 1.0) * (k - 1.0) - k) / 3.0;
  EXPECT_NEAR(factor, 9.33, 0.01);
}

TEST(PaperExamplesTest, GradesExampleSensitivities) {
  // Intro: (x_A..x_F) has sensitivity 1; adding x_t and x_p raises it to 3
  // (one record touches one grade, the passing count, and the total).
  // Model the 7-query sequence as H-like reasoning: each record affects
  // the grade leaf + up to two aggregates.
  // Verified concretely: adding one A-student changes x_A, x_p, x_t.
  std::vector<double> before = {30, 24, 10, 7, 4, 3, 6};
  std::vector<double> after = {31, 25, 11, 7, 4, 3, 6};
  double l1 = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    l1 += std::abs(after[i] - before[i]);
  }
  EXPECT_DOUBLE_EQ(l1, 3.0);
}

}  // namespace
}  // namespace dphist
