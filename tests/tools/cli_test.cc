#include "tools/cli_commands.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/csv.h"
#include "runtime/transport.h"

namespace dphist::cli {
namespace {

int RunMainWithInput(const std::string& input,
                     std::initializer_list<const char*> args,
                     std::string* out_text, std::string* err_text) {
  std::vector<const char*> argv = {"dphist_cli"};
  argv.insert(argv.end(), args);
  std::istringstream in(input);
  std::ostringstream out, err;
  int code = Main(static_cast<int>(argv.size()), argv.data(), in, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

int RunMain(std::initializer_list<const char*> args, std::string* out_text,
            std::string* err_text) {
  return RunMainWithInput("", args, out_text, err_text);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, NoCommandPrintsUsage) {
  std::string out, err;
  EXPECT_EQ(RunMain({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(RunMain({"frobnicate"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliTest, MissingFlagsReported) {
  std::string out, err;
  EXPECT_EQ(RunMain({"generate", "--dataset", "social"}, &out, &err), 1);
  EXPECT_NE(err.find("--output"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownDataset) {
  std::string out, err;
  std::string path = TempPath("cli_unknown.csv");
  EXPECT_EQ(RunMain({"generate", "--dataset", "mars", "--output",
                     path.c_str()},
                    &out, &err),
            1);
  EXPECT_NE(err.find("unknown dataset"), std::string::npos);
}

TEST(CliTest, FullPipelineGenerateReleaseQuery) {
  std::string data_path = TempPath("cli_data.csv");
  std::string release_path = TempPath("cli_release.csv");
  std::string out, err;

  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "300"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("wrote 300 counts"), std::string::npos);

  ASSERT_EQ(RunMain({"release-universal", "--input", data_path.c_str(),
                     "--output", release_path.c_str(), "--epsilon", "0.5"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("released eps=0.5"), std::string::npos);

  // The release is loadable and queryable.
  auto release = LoadHistogramCsv(release_path);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release.value().size(), 300);

  ASSERT_EQ(RunMain({"query", "--release", release_path.c_str(), "--lo",
                     "0", "--hi", "299"},
                    &out, &err),
            0)
      << err;
  double total = std::strtod(out.c_str(), nullptr);
  // Degree total of the synthetic graph is ~2 * 3.98 * 300; the eps=0.5
  // release should land in the right ballpark.
  EXPECT_GT(total, 500.0);
  EXPECT_LT(total, 5000.0);

  std::remove(data_path.c_str());
  std::remove(release_path.c_str());
}

TEST(CliTest, ReleaseSortedRoundTrip) {
  std::string data_path = TempPath("cli_sorted_data.csv");
  std::string release_path = TempPath("cli_sorted_release.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "nettrace", "--output",
                     data_path.c_str(), "--size", "512"},
                    &out, &err),
            0)
      << err;
  ASSERT_EQ(RunMain({"release-sorted", "--input", data_path.c_str(),
                     "--output", release_path.c_str(), "--epsilon", "1.0"},
                    &out, &err),
            0)
      << err;
  auto release = LoadHistogramCsv(release_path);
  ASSERT_TRUE(release.ok());
  // S-bar output is sorted ascending.
  const auto& counts = release.value().counts();
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i] + 1e-9, counts[i - 1]);
  }
  std::remove(data_path.c_str());
  std::remove(release_path.c_str());
}

TEST(CliTest, ReleaseUniversalValidatesParameters) {
  std::string data_path = TempPath("cli_param_data.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "100"},
                    &out, &err),
            0);
  EXPECT_EQ(RunMain({"release-universal", "--input", data_path.c_str(),
                     "--output", TempPath("x.csv").c_str(), "--epsilon",
                     "-1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("epsilon"), std::string::npos);
  EXPECT_EQ(RunMain({"release-universal", "--input", data_path.c_str(),
                     "--output", TempPath("x.csv").c_str(), "--epsilon",
                     "1", "--branching", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("branching"), std::string::npos);
  std::remove(data_path.c_str());
}

TEST(CliTest, QueryValidatesBounds) {
  std::string release_path = TempPath("cli_bounds.csv");
  {
    Histogram h({1.0, 2.0, 3.0});
    ASSERT_TRUE(SaveHistogramCsv(h, release_path).ok());
  }
  std::string out, err;
  EXPECT_EQ(RunMain({"query", "--release", release_path.c_str(), "--lo",
                     "2", "--hi", "5"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("out of bounds"), std::string::npos);
  EXPECT_EQ(RunMain({"query", "--release", release_path.c_str(), "--lo",
                     "0", "--hi", "2"},
                    &out, &err),
            0);
  EXPECT_EQ(std::strtod(out.c_str(), nullptr), 6.0);
  std::remove(release_path.c_str());
}

TEST(CliTest, ServeAnswersWorkloadFile) {
  std::string data_path = TempPath("cli_serve_data.csv");
  std::string queries_path = TempPath("cli_serve_queries.txt");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "200"},
                    &out, &err),
            0)
      << err;
  {
    std::ofstream queries(queries_path);
    queries << "0 199\n"        // full domain
            << "5,9\n"          // comma form
            << "\n"             // blank lines are skipped
            << "0 199\n";       // repeat: served from the cache
  }

  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1.0", "--strategy",
                     "htilde", "--shards", "2", "--threads", "2"},
                    &out, &err),
            0)
      << err;
  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 4u);  // 3 answers + stats comment
  // Identical queries get identical answers (one snapshot, one cache).
  EXPECT_EQ(rows[0], rows[2]);
  EXPECT_NE(rows[3].find("# served 3 queries from epoch 1"),
            std::string::npos);
  EXPECT_NE(rows[3].find("htilde"), std::string::npos);

  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(CliTest, ServeValidatesQueriesAndFlags) {
  std::string data_path = TempPath("cli_serve_bad_data.csv");
  std::string queries_path = TempPath("cli_serve_bad_queries.txt");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "50"},
                    &out, &err),
            0);

  // Unknown strategy.
  { std::ofstream q(queries_path); q << "0 10\n"; }
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1", "--strategy",
                     "fourier"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("unknown strategy"), std::string::npos);

  // Out-of-bounds query line.
  { std::ofstream q(queries_path); q << "0 10\n10 50\n"; }
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("line 2"), std::string::npos);

  // Malformed query line.
  { std::ofstream q(queries_path); q << "7\n"; }
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("expected \"lo hi\""), std::string::npos);

  // A non-numeric first token is an error too, never silently skipped
  // (skipping would misalign answers with input lines).
  { std::ofstream q(queries_path); q << "xx 50\n0 10\n"; }
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("line 1"), std::string::npos);

  // Missing query file.
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     TempPath("nope_queries.txt").c_str(), "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("cannot open"), std::string::npos);

  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(CliTest, ServeIsDeterministicAcrossThreadCounts) {
  std::string data_path = TempPath("cli_serve_det_data.csv");
  std::string queries_path = TempPath("cli_serve_det_queries.txt");
  std::string out1, out8, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "nettrace", "--output",
                     data_path.c_str(), "--size", "256"},
                    &out1, &err),
            0);
  {
    std::ofstream queries(queries_path);
    for (int i = 0; i < 64; ++i) queries << i << " " << (i + 190) << "\n";
  }
  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "0.5", "--seed",
                     "11", "--threads", "1"},
                    &out1, &err),
            0)
      << err;
  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "0.5", "--seed",
                     "11", "--threads", "8"},
                    &out8, &err),
            0)
      << err;
  // Same seed, same snapshot, same answers — the thread count only
  // changes the stats line (threads=...), never an answer line.
  std::string answers1 = out1.substr(0, out1.find("# served"));
  std::string answers8 = out8.substr(0, out8.find("# served"));
  EXPECT_EQ(answers1, answers8);

  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(CliTest, PlanGoldenOutput) {
  // Golden regression for `dphist plan`: L~ and H~ costs are exact
  // rational closed forms (no linear algebra), so this table must
  // reproduce byte for byte on every platform. The workload mixes a
  // unit count, a short aligned range, and the full domain.
  std::string queries_path = TempPath("cli_plan_gold.txt");
  {
    std::ofstream queries(queries_path);
    queries << "0 0\n8 15\n0 31\n";
  }
  std::string out, err;
  ASSERT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "32", "--epsilon", "1", "--strategies",
                     "ltilde,htilde", "--max-shards", "4"},
                    &out, &err),
            0)
      << err;
  EXPECT_EQ(out,
            "# workload: 3 queries over domain 32 (3 distinct lengths)\n"
            "strategy shards       mean_var      worst_var  note\n"
            "ltilde        1        27.3333             64\n"
            "ltilde        2        27.3333             64\n"
            "ltilde        4        27.3333             64\n"
            "htilde        4        82.6667            128\n"
            "htilde        2        95.8333            200\n"
            "htilde        1            114            288\n"
            "plan: strategy=ltilde shards=1 mean_var=27.3333 "
            "worst_var=64\n");
  std::remove(queries_path.c_str());
}

TEST(CliTest, PlanReportsInfeasibleCandidatesAndObjective) {
  std::string queries_path = TempPath("cli_plan_infeasible.txt");
  { std::ofstream queries(queries_path); queries << "0 63\n"; }
  std::string out, err;
  // Cap the analyzer width so unsharded H-bar is infeasible but sharded
  // H-bar is not; the table must carry the reason, not silently drop it.
  // The cap only binds on the dense (test-oracle) path, so opt into it.
  ASSERT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "64", "--epsilon", "1", "--strategies", "hbar",
                     "--max-shards", "4", "--dense-oracle",
                     "--max-analyzer-width", "16"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("infeasible"), std::string::npos);
  EXPECT_NE(out.find("plan: strategy=hbar shards=4"), std::string::npos);

  // On the default recurrence path the same cap is ignored: every
  // candidate is feasible and unsharded H-bar ranks normally.
  ASSERT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "64", "--epsilon", "1", "--strategies", "hbar",
                     "--max-shards", "4", "--max-analyzer-width", "16"},
                    &out, &err),
            0)
      << err;
  EXPECT_EQ(out.find("infeasible"), std::string::npos) << out;

  // The worst-case objective is accepted; nonsense objectives are not.
  EXPECT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "64", "--epsilon", "1", "--objective", "worst"},
                    &out, &err),
            0)
      << err;
  EXPECT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "64", "--epsilon", "1", "--objective", "median"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("objective"), std::string::npos);
  std::remove(queries_path.c_str());
}

TEST(CliTest, PlanValidatesFlags) {
  std::string queries_path = TempPath("cli_plan_bad.txt");
  { std::ofstream queries(queries_path); queries << "0 1\n"; }
  std::string out, err;
  // Needs a domain source.
  EXPECT_EQ(RunMain({"plan", "--queries", queries_path.c_str(),
                     "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("--input"), std::string::npos);
  // auto is a request to plan, not a candidate.
  EXPECT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "8", "--epsilon", "1", "--strategies", "auto"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("auto"), std::string::npos);
  // Strategy typos surface the parse error.
  EXPECT_EQ(RunMain({"plan", "--queries", queries_path.c_str(), "--domain",
                     "8", "--epsilon", "1", "--strategies", "fourier"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("unknown strategy"), std::string::npos);
  std::remove(queries_path.c_str());
}

TEST(CliTest, ServeAutoPicksLTildeForUnitWorkload) {
  std::string data_path = TempPath("cli_auto_unit_data.csv");
  std::string queries_path = TempPath("cli_auto_unit_queries.txt");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "256"},
                    &out, &err),
            0)
      << err;
  {
    std::ofstream queries(queries_path);
    for (int i = 0; i < 64; ++i) queries << i << " " << i << "\n";
  }
  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1", "--strategy",
                     "auto"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("# planned strategy=ltilde"), std::string::npos)
      << out;
  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(CliTest, ServeAutoPicksAHierarchyForLongRangeWorkload) {
  std::string data_path = TempPath("cli_auto_long_data.csv");
  std::string queries_path = TempPath("cli_auto_long_queries.txt");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "256"},
                    &out, &err),
            0)
      << err;
  {
    std::ofstream queries(queries_path);
    queries << "0 127\n0 255\n64 255\n32 159\n";
  }
  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1", "--strategy",
                     "auto"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("# planned strategy="), std::string::npos) << out;
  EXPECT_EQ(out.find("# planned strategy=ltilde"), std::string::npos)
      << "long ranges must resolve to a hierarchical strategy\n"
      << out;
  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

// The acceptance-criterion transcript: a scripted streaming session
// whose unit-count traffic crosses the every-N replan trigger must
// demonstrably switch strategy — the transcript carries the new
// "# planned strategy=" line — while every batch is answered under one
// epoch (the "# batch ... epoch=" receipts).
TEST(CliTest, ServeStdinCrossingReplanTriggerSwitchesStrategy) {
  std::string data_path = TempPath("cli_stdin_data.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "256"},
                    &out, &err),
            0)
      << err;

  // 5 batches of 8 unit queries; the 4th crosses --replan-every 32.
  std::string script;
  for (int b = 0; b < 5; ++b) {
    script += "qb 8";
    for (int i = 0; i < 8; ++i) {
      script += " " + std::to_string(8 * b + i) + " " +
                std::to_string(8 * b + i);
    }
    script += "\n";
  }
  script += "stats\nquit\n";

  ASSERT_EQ(RunMainWithInput(
                script,
                {"serve", "--input", data_path.c_str(), "--stdin",
                 "--epsilon", "1", "--strategy", "auto", "--replan-every",
                 "32", "--replan-sync"},
                &out, &err),
            0)
      << err;

  // Banner, then the initial plan against the neutral prior (which must
  // not be L~ — the sweep contains long ranges).
  EXPECT_NE(out.find("# serving n=256 epoch=1"), std::string::npos) << out;
  EXPECT_NE(out.find("reason=initial"), std::string::npos) << out;
  // The observed unit traffic crossed the trigger and switched to L~.
  EXPECT_NE(out.find("# planned strategy=ltilde"), std::string::npos)
      << out;
  EXPECT_NE(out.find("reason=every"), std::string::npos) << out;
  // Single-epoch receipts for every batch, before and after the swap.
  EXPECT_NE(out.find("# batch n=8 epoch=1"), std::string::npos) << out;
  EXPECT_NE(out.find("# batch n=8 epoch=2"), std::string::npos) << out;
  // The stats surface reports the lifecycle.
  EXPECT_NE(out.find("replans=1"), std::string::npos) << out;
  EXPECT_NE(out.find("epsilon_spent=2"), std::string::npos) << out;
  EXPECT_NE(out.find("# served 40 queries"), std::string::npos) << out;
  std::remove(data_path.c_str());
}

TEST(CliTest, ServeStdinManualReplanAndStats) {
  std::string data_path = TempPath("cli_stdin_manual_data.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "128"},
                    &out, &err),
            0)
      << err;
  ASSERT_EQ(RunMainWithInput(
                "q 0 0\nq 5 5\nq 9 9\nreplan\nq 0 0\nstats\nquit\n",
                {"serve", "--input", data_path.c_str(), "--stdin",
                 "--epsilon", "1", "--strategy", "hbar"},
                &out, &err),
            0)
      << err;
  // The manual replan switched the unit-heavy session away from the
  // concrete initial strategy and spent a second epsilon.
  EXPECT_NE(out.find("# planned strategy=ltilde"), std::string::npos)
      << out;
  EXPECT_NE(out.find("reason=manual"), std::string::npos) << out;
  EXPECT_NE(out.find("epoch=2"), std::string::npos) << out;
  EXPECT_NE(out.find("epsilon_spent=2"), std::string::npos) << out;
  std::remove(data_path.c_str());
}

TEST(CliTest, ServeStdinSurvivesParseErrors) {
  std::string data_path = TempPath("cli_stdin_err_data.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "64"},
                    &out, &err),
            0)
      << err;
  // A typo mid-session reports an error and keeps serving; the next
  // query still gets an answer and the session exits cleanly.
  ASSERT_EQ(RunMainWithInput("frobnicate\nq 0 63\nquit\n",
                             {"serve", "--input", data_path.c_str(),
                              "--stdin", "--epsilon", "1"},
                             &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown command"), std::string::npos) << out;
  EXPECT_NE(out.find("# served 1 queries"), std::string::npos) << out;
  std::remove(data_path.c_str());
}

TEST(CliTest, ServeQueriesFileAcceptsSessionCommands) {
  // The file mode shares the session grammar: a workload file may carry
  // control commands, and the same parser serves both paths.
  std::string data_path = TempPath("cli_file_session_data.csv");
  std::string queries_path = TempPath("cli_file_session_queries.txt");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "128"},
                    &out, &err),
            0)
      << err;
  {
    std::ofstream queries(queries_path);
    queries << "# a comment\n"
            << "0 0\n"
            << "q 5 5\n"
            << "replan\n"
            << "qb 2 0 63 7 7\n"
            << "stats\n";
  }
  ASSERT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     queries_path.c_str(), "--epsilon", "1", "--strategy",
                     "htilde"},
                    &out, &err),
            0)
      << err;
  // 4 answers; the replan between them republished at epoch 2.
  EXPECT_NE(out.find("# planned strategy="), std::string::npos) << out;
  EXPECT_NE(out.find("reason=manual"), std::string::npos) << out;
  EXPECT_NE(out.find("# served 4 queries from epoch 2"), std::string::npos)
      << out;
  std::remove(data_path.c_str());
  std::remove(queries_path.c_str());
}

TEST(CliTest, ServeListenServesTwoConcurrentClients) {
  // Network mode end to end through the real flag wiring: the server
  // publishes once, writes the resolved ephemeral port to --port-file,
  // serves exactly --max-sessions connections, and exits with a
  // listener summary. Two concurrent clients replay the same script;
  // with a huge epsilon and integer rounding their answer lines agree
  // byte-for-byte whatever epoch each command lands on.
  std::string data_path = TempPath("cli_listen_data.csv");
  std::string port_path = TempPath("cli_listen_port.txt");
  std::remove(port_path.c_str());
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "128"},
                    &out, &err),
            0)
      << err;

  std::string server_out, server_err;
  int server_code = -1;
  std::thread server_thread([&] {
    server_code = RunMain({"serve", "--input", data_path.c_str(),
                           "--listen", "0", "--max-sessions", "2",
                           "--epsilon", "400", "--strategy", "hbar",
                           "--replan-every", "8", "--port-file",
                           port_path.c_str()},
                          &server_out, &server_err);
  });

  // The port file appears once the listener is up.
  int port = 0;
  for (int i = 0; i < 200 && port == 0; ++i) {
    std::ifstream port_file(port_path);
    if (!(port_file >> port)) {
      port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_GT(port, 0) << "server never wrote its port file";

  const std::string script =
      "q 0 7\nq 8 15\nq 16 31\nq 0 127\nq 64 64\n"
      "qb 3 0 0 1 1 2 2\nquit\n";
  auto run_client = [&](std::vector<std::string>* transcript) {
    auto stream = runtime::ConnectLoopback(port);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    *stream.value() << script;
    stream.value()->flush();
    std::string line;
    while (std::getline(*stream.value(), line)) transcript->push_back(line);
  };
  std::vector<std::string> transcripts[2];
  std::thread clients[2];
  for (int t = 0; t < 2; ++t) {
    clients[t] = std::thread([&, t] { run_client(&transcripts[t]); });
  }
  for (std::thread& client : clients) client.join();
  server_thread.join();

  EXPECT_EQ(server_code, 0) << server_err;
  EXPECT_NE(server_out.find("# listening port="), std::string::npos)
      << server_out;
  EXPECT_NE(server_out.find("# served 16 queries over 2 sessions"),
            std::string::npos)
      << server_out;

  auto answers = [](const std::vector<std::string>& lines) {
    std::vector<std::string> kept;
    for (const std::string& line : lines) {
      if (!line.empty() && line[0] != '#') kept.push_back(line);
    }
    return kept;
  };
  for (int t = 0; t < 2; ++t) {
    ASSERT_FALSE(transcripts[t].empty());
    EXPECT_EQ(transcripts[t][0].rfind("# serving n=128", 0), 0u)
        << transcripts[t][0];
    EXPECT_EQ(answers(transcripts[t]).size(), 8u);
    EXPECT_NE(transcripts[t].back().find("# served 8 queries"),
              std::string::npos)
        << transcripts[t].back();
  }
  EXPECT_EQ(answers(transcripts[0]), answers(transcripts[1]));

  std::remove(data_path.c_str());
  std::remove(port_path.c_str());
}

TEST(CliTest, ServeListenValidatesFlags) {
  std::string data_path = TempPath("cli_listen_flags_data.csv");
  std::string out, err;
  ASSERT_EQ(RunMain({"generate", "--dataset", "social", "--output",
                     data_path.c_str(), "--size", "64"},
                    &out, &err),
            0)
      << err;
  // --stdin and --listen are exclusive.
  EXPECT_EQ(RunMainWithInput("quit\n",
                             {"serve", "--input", data_path.c_str(),
                              "--stdin", "--listen", "0", "--epsilon", "1"},
                             &out, &err),
            1);
  EXPECT_NE(err.find("exclusive"), std::string::npos) << err;
  // A workload file cannot ride along with a listener either — it
  // would be silently ignored.
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--queries",
                     "/tmp/nope.txt", "--listen", "0", "--epsilon", "1",
                     "--max-sessions", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("exclusive"), std::string::npos) << err;
  // Out-of-range port is rejected before any publish is attempted.
  EXPECT_EQ(RunMain({"serve", "--input", data_path.c_str(), "--listen",
                     "70000", "--epsilon", "1", "--max-sessions", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("port"), std::string::npos) << err;
  std::remove(data_path.c_str());
}

TEST(CliTest, LintVerbIsCleanAgainstCommittedBaseline) {
  // Regression: the verb once crashed on flag parsing before linting a
  // single file, so this exercises the full path — tree walk, baseline
  // application, per-rule table — through the real CLI entry point.
  std::string out, err;
  EXPECT_EQ(RunMain({"lint", "--root", DPHIST_SOURCE_DIR}, &out, &err), 0)
      << err;
  EXPECT_NE(out.find("serving-check"), std::string::npos) << out;
  EXPECT_NE(out.find("files scanned"), std::string::npos) << out;
}

TEST(CliTest, LintVerbFailsWithoutBaseline) {
  // Pointing at an empty baseline exposes the pre-existing debt as
  // fresh findings: non-zero exit and a count in the error.
  const std::string empty = TempPath("empty_baseline.txt");
  { std::ofstream touch(empty); }
  std::string out, err;
  EXPECT_EQ(RunMain({"lint", "--root", DPHIST_SOURCE_DIR, "--baseline",
                     empty.c_str()},
                    &out, &err),
            1);
  EXPECT_NE(err.find("fresh finding"), std::string::npos) << err;
  EXPECT_NE(out.find("[serving-check]"), std::string::npos) << out;
}

TEST(CliTest, MissingInputFileSurfacesIoError) {
  std::string out, err;
  EXPECT_EQ(RunMain({"release-sorted", "--input",
                     TempPath("nope.csv").c_str(), "--output",
                     TempPath("out.csv").c_str(), "--epsilon", "1"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

}  // namespace
}  // namespace dphist::cli
