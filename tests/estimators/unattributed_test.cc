#include "estimators/unattributed.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/social_network.h"

namespace dphist {
namespace {

Histogram PaperExample() { return Histogram::FromCounts({2, 0, 10, 2}); }

TEST(UnattributedTest, TrueSortedCountsMatchesExample) {
  EXPECT_EQ(TrueSortedCounts(PaperExample()),
            (std::vector<double>{0, 2, 2, 10}));
}

TEST(UnattributedTest, EstimatorNames) {
  EXPECT_EQ(UnattributedEstimatorName(UnattributedEstimator::kSTilde), "S~");
  EXPECT_EQ(UnattributedEstimatorName(UnattributedEstimator::kSTildeRounded),
            "S~r");
  EXPECT_EQ(UnattributedEstimatorName(UnattributedEstimator::kSBar), "S-bar");
}

TEST(UnattributedTest, NoisySampleHasRightLengthAndCenter) {
  Histogram data = PaperExample();
  Rng rng(1);
  RunningStat last;
  for (int t = 0; t < 5000; ++t) {
    std::vector<double> noisy = SampleNoisySortedCounts(data, 1.0, &rng);
    ASSERT_EQ(noisy.size(), 4u);
    last.Add(noisy[3]);
  }
  EXPECT_NEAR(last.Mean(), 10.0, 0.1);  // centered on S(I)[3]
}

TEST(UnattributedTest, STildeIsIdentity) {
  std::vector<double> noisy = {3.2, -1.0, 5.5};
  EXPECT_EQ(
      ApplyUnattributedEstimator(UnattributedEstimator::kSTilde, noisy),
      noisy);
}

TEST(UnattributedTest, STildeRoundedSortsAndRounds) {
  std::vector<double> noisy = {3.2, -1.0, 0.6};
  std::vector<double> fixed = ApplyUnattributedEstimator(
      UnattributedEstimator::kSTildeRounded, noisy);
  EXPECT_EQ(fixed, (std::vector<double>{0.0, 1.0, 3.0}));
}

TEST(UnattributedTest, SBarIsSorted) {
  std::vector<double> noisy = {5.0, 1.0, 4.0, 2.0};
  std::vector<double> fitted =
      ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy);
  EXPECT_TRUE(std::is_sorted(fitted.begin(), fitted.end()));
}

TEST(UnattributedTest, SBarBeatsSTildeOnDuplicateHeavyData) {
  // The headline Fig. 5 result at miniature scale: a degree sequence with
  // many duplicates, eps = 0.1, S-bar error should be far below S~ error.
  SocialNetworkConfig config;
  config.num_nodes = 1000;
  Histogram data = GenerateSocialNetworkDegrees(config);
  std::vector<double> truth = TrueSortedCounts(data);
  Rng rng(7);
  RunningStat err_stilde, err_sbar;
  for (int t = 0; t < 40; ++t) {
    std::vector<double> noisy = SampleNoisySortedCounts(data, 0.1, &rng);
    err_stilde.Add(SquaredError(
        ApplyUnattributedEstimator(UnattributedEstimator::kSTilde, noisy),
        truth));
    err_sbar.Add(SquaredError(
        ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy),
        truth));
  }
  // Order of magnitude improvement, as the paper reports.
  EXPECT_LT(err_sbar.Mean() * 10.0, err_stilde.Mean());
}

TEST(UnattributedTest, SBarNeverWorseThanSTilde) {
  // Projection property: guaranteed per-draw, not just on average.
  Histogram data = PaperExample();
  std::vector<double> truth = TrueSortedCounts(data);
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> noisy = SampleNoisySortedCounts(data, 0.5, &rng);
    double e_tilde = SquaredError(noisy, truth);
    double e_bar = SquaredError(
        ApplyUnattributedEstimator(UnattributedEstimator::kSBar, noisy),
        truth);
    EXPECT_LE(e_bar, e_tilde + 1e-9);
  }
}

TEST(UnattributedTest, STildeErrorMatchesTheory) {
  // error(S~) = 2 n / eps^2.
  Histogram data = PaperExample();
  std::vector<double> truth = TrueSortedCounts(data);
  const double eps = 0.5;
  Rng rng(9);
  RunningStat err;
  for (int t = 0; t < 20000; ++t) {
    err.Add(SquaredError(SampleNoisySortedCounts(data, eps, &rng), truth));
  }
  double expected = 2.0 * 4.0 / (eps * eps);
  EXPECT_NEAR(err.Mean(), expected, expected * 0.05);
}

}  // namespace
}  // namespace dphist
