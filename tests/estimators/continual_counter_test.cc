#include "estimators/continual_counter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/laplace.h"
#include "common/statistics.h"

namespace dphist {
namespace {

TEST(ContinualCounterTest, TermCountIsPopcount) {
  EXPECT_EQ(ContinualCounter::TermCount(1), 1);
  EXPECT_EQ(ContinualCounter::TermCount(2), 1);
  EXPECT_EQ(ContinualCounter::TermCount(3), 2);
  EXPECT_EQ(ContinualCounter::TermCount(7), 3);
  EXPECT_EQ(ContinualCounter::TermCount(8), 1);
  EXPECT_EQ(ContinualCounter::TermCount(255), 8);
}

TEST(ContinualCounterTest, NoiseScaleIsHeightOverEpsilon) {
  Rng rng(1);
  ContinualCounter counter(64, 0.5, rng);  // height 7
  EXPECT_DOUBLE_EQ(counter.noise_scale(), 7.0 / 0.5);
  EXPECT_EQ(counter.horizon(), 64);
}

TEST(ContinualCounterTest, ReleasesAreRepeatable) {
  // Proposition 2 in streaming form: re-asking a prefix returns the SAME
  // value — no fresh randomness per query.
  Rng rng(2);
  ContinualCounter counter(16, 1.0, rng);
  for (int t = 0; t < 10; ++t) counter.Observe(3.0);
  double first = counter.PrefixEstimate(7);
  for (int repeat = 0; repeat < 5; ++repeat) {
    EXPECT_DOUBLE_EQ(counter.PrefixEstimate(7), first);
  }
}

TEST(ContinualCounterTest, EarlierPrefixesUnchangedByLaterArrivals) {
  // Once released, history must not be rewritten by new observations.
  Rng rng(3);
  ContinualCounter counter(32, 1.0, rng);
  for (int t = 0; t < 8; ++t) counter.Observe(1.0);
  double at8 = counter.PrefixEstimate(8);
  for (int t = 8; t < 32; ++t) counter.Observe(5.0);
  EXPECT_DOUBLE_EQ(counter.PrefixEstimate(8), at8);
}

TEST(ContinualCounterTest, UnbiasedRunningTotals) {
  RunningStat at_13, at_64;
  for (int trial = 0; trial < 4000; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 7 + 1);
    ContinualCounter counter(64, 1.0, rng);
    for (int t = 0; t < 64; ++t) counter.Observe(2.0);
    at_13.Add(counter.PrefixEstimate(13));
    at_64.Add(counter.PrefixEstimate(64));
  }
  EXPECT_NEAR(at_13.Mean(), 26.0, 1.5);
  EXPECT_NEAR(at_64.Mean(), 128.0, 1.5);
}

TEST(ContinualCounterTest, ErrorBoundedByTermCountTimesNodeVariance) {
  // Var(prefix t) = popcount(t) * 2 * (height/eps)^2 exactly.
  const std::int64_t horizon = 64;
  const double eps = 1.0;
  const double node_var = 2.0 * 49.0;  // height 7
  for (std::int64_t t : {std::int64_t{7}, std::int64_t{32},
                         std::int64_t{63}}) {
    RunningStat stat;
    for (int trial = 0; trial < 6000; ++trial) {
      Rng rng(static_cast<std::uint64_t>(trial) * 13 + 5);
      ContinualCounter counter(horizon, eps, rng);
      for (std::int64_t s = 0; s < horizon; ++s) counter.Observe(0.0);
      stat.Add(counter.PrefixEstimate(t));
    }
    double expected_var =
        static_cast<double>(ContinualCounter::TermCount(t)) * node_var;
    EXPECT_NEAR(stat.Variance(), expected_var, expected_var * 0.12)
        << "t=" << t;
  }
}

TEST(ContinualCounterTest, BeatsNaivePerStepNoiseAtLateTimes) {
  // The naive eps-DP counter splits eps across T releases (or adds fresh
  // Lap(T/eps)-scale noise); its error at time t grows ~ t. The binary
  // mechanism's error is poly-log and essentially flat.
  const std::int64_t horizon = 256;
  const double eps = 1.0;
  RunningStat binary_err, naive_err;
  for (int trial = 0; trial < 500; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 31 + 9);
    ContinualCounter counter(horizon, eps, rng);
    // Naive: every per-step count gets Lap(1/eps') noise with
    // eps' = eps / horizon (each item appears in ALL later prefixes, so
    // the budget must cover every release).
    LaplaceDistribution naive_noise(static_cast<double>(horizon) / eps);
    double naive_prefix = 0.0;
    for (std::int64_t t = 0; t < horizon; ++t) {
      counter.Observe(1.0);
      naive_prefix += 1.0 + naive_noise.Sample(&rng);
    }
    double d_binary = counter.RunningTotal() - 256.0;
    double d_naive = naive_prefix - 256.0;
    binary_err.Add(d_binary * d_binary);
    naive_err.Add(d_naive * d_naive);
  }
  EXPECT_LT(binary_err.Mean() * 50.0, naive_err.Mean());
}

TEST(ContinualCounterTest, NonPowerOfTwoHorizon) {
  Rng rng(4);
  ContinualCounter counter(100, 1.0, rng);
  for (int t = 0; t < 100; ++t) counter.Observe(1.0);
  EXPECT_EQ(counter.steps(), 100);
  EXPECT_NEAR(counter.RunningTotal(), 100.0, 120.0);
}

TEST(ContinualCounterTest, RunningTotalBeforeAnyObservation) {
  Rng rng(5);
  ContinualCounter counter(8, 1.0, rng);
  EXPECT_DOUBLE_EQ(counter.RunningTotal(), 0.0);
}

TEST(ContinualCounterDeathTest, GuardsMisuse) {
  Rng rng(6);
  ContinualCounter counter(4, 1.0, rng);
  EXPECT_DEATH(counter.PrefixEstimate(1), "within the observed stream");
  counter.Observe(1.0);
  EXPECT_DEATH(counter.PrefixEstimate(2), "within the observed stream");
  counter.Observe(1.0);
  counter.Observe(1.0);
  counter.Observe(1.0);
  EXPECT_DEATH(counter.Observe(1.0), "exceeded the horizon");
}

TEST(ContinualCounterTest, CreateValidatesInsteadOfAborting) {
  Rng rng(4);
  EXPECT_FALSE(ContinualCounter::Create(0, 1.0, rng).ok());
  EXPECT_FALSE(ContinualCounter::Create(-3, 1.0, rng).ok());
  EXPECT_FALSE(ContinualCounter::Create(16, 0.0, rng).ok());
  EXPECT_FALSE(ContinualCounter::Create(16, -0.5, rng).ok());
  auto counter = ContinualCounter::Create(16, 1.0, rng);
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(counter.value().horizon(), 16);
}

}  // namespace
}  // namespace dphist
