// Tests for the batched / allocation-free answer paths of the universal
// estimators: the H-bar prefix-sum fast path must be indistinguishable
// from the subtree-decomposition reference, and every estimator's batched
// RangeCounts must match its scalar RangeCount.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"

namespace dphist {
namespace {

Histogram ZipfData(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Histogram::FromCounts(ZipfCounts(n, 1.2, 4 * n, &rng));
}

TEST(HBarFastPathTest, PrefixMatchesDecompositionAcrossBranchingFactors) {
  // The acceptance property: for consistent trees the O(1) prefix answers
  // equal the decomposition answers to 1e-9, for every branching factor.
  for (std::int64_t branching = 2; branching <= 16; ++branching) {
    Histogram data = ZipfData(600, 17u + static_cast<std::uint64_t>(branching));
    UniversalOptions options;
    options.epsilon = 0.5;
    options.branching = branching;
    options.round_to_nonnegative_integers = false;
    options.prune_nonpositive_subtrees = false;
    Rng rng(91u * static_cast<std::uint64_t>(branching));
    HBarEstimator h_bar(data, options, &rng);
    ASSERT_TRUE(h_bar.uses_prefix_fast_path()) << "k=" << branching;

    Rng query_rng(7);
    for (int trial = 0; trial < 200; ++trial) {
      std::int64_t lo = query_rng.NextInt(0, data.size() - 1);
      std::int64_t hi = query_rng.NextInt(lo, data.size() - 1);
      Interval q(lo, hi);
      EXPECT_NEAR(h_bar.RangeCount(q), h_bar.RangeCountViaDecomposition(q),
                  1e-9)
          << "k=" << branching << " range " << q.ToString();
    }
  }
}

TEST(HBarFastPathTest, RoundingDisablesThePrefixPathButKeepsAnswers) {
  // Rounding each node independently breaks parent-equals-children, so
  // construction must detect the inconsistency and answer by
  // decomposition — matching the decomposition reference exactly.
  Histogram data = ZipfData(300, 5);
  UniversalOptions options;
  options.epsilon = 0.2;
  Rng rng(23);
  HBarEstimator h_bar(data, options, &rng);
  EXPECT_FALSE(h_bar.uses_prefix_fast_path());

  Rng query_rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::int64_t lo = query_rng.NextInt(0, data.size() - 1);
    std::int64_t hi = query_rng.NextInt(lo, data.size() - 1);
    Interval q(lo, hi);
    EXPECT_DOUBLE_EQ(h_bar.RangeCount(q), h_bar.RangeCountViaDecomposition(q));
  }
}

TEST(HBarFastPathTest, PrefixAnswersEqualLeafSums) {
  Histogram data = ZipfData(200, 9);
  UniversalOptions options;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  Rng rng(31);
  HBarEstimator h_bar(data, options, &rng);
  ASSERT_TRUE(h_bar.uses_prefix_fast_path());
  for (std::int64_t lo = 0; lo < data.size(); lo += 17) {
    std::int64_t hi = std::min<std::int64_t>(lo + 23, data.size() - 1);
    double leaf_sum = 0.0;
    for (std::int64_t i = lo; i <= hi; ++i) {
      leaf_sum += h_bar.leaf_estimates()[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(h_bar.RangeCount(Interval(lo, hi)), leaf_sum, 1e-9);
  }
}

TEST(BatchedRangeCountsTest, MatchesScalarAnswersOnAllThreeEstimators) {
  Histogram data = ZipfData(500, 2);
  UniversalOptions options;
  options.epsilon = 0.5;
  Rng rng(13);
  LTildeEstimator l_tilde(data, options, &rng);
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
  HTildeEstimator h_tilde(data.size(), options, noisy);
  HBarEstimator h_bar(data.size(), options, noisy);

  Rng workload_rng(77);
  std::vector<Interval> ranges =
      RandomRangesOfSize(data.size(), 37, 200, &workload_rng);
  for (const RangeCountEstimator* est :
       {static_cast<const RangeCountEstimator*>(&l_tilde),
        static_cast<const RangeCountEstimator*>(&h_tilde),
        static_cast<const RangeCountEstimator*>(&h_bar)}) {
    std::vector<double> batched = est->RangeCounts(ranges);
    ASSERT_EQ(batched.size(), ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], est->RangeCount(ranges[i]))
          << est->Name() << " range " << ranges[i].ToString();
    }
  }
}

TEST(BatchedRangeCountsTest, DefaultBaseImplementationForwardsToScalar) {
  // An estimator that does not override the batched hook still gets
  // correct batched answers through the base-class loop.
  class ConstantEstimator : public RangeCountEstimator {
   public:
    double RangeCount(const Interval& range) const override {
      return static_cast<double>(range.Length());
    }
    std::string Name() const override { return "const"; }
  };
  ConstantEstimator est;
  std::vector<Interval> ranges = {Interval(0, 4), Interval(2, 2),
                                  Interval(1, 9)};
  std::vector<double> out = est.RangeCounts(ranges);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 9.0);
}

}  // namespace
}  // namespace dphist
