#include "estimators/universal2d.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/laplace.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/spatial.h"
#include "inference/hierarchical.h"

namespace dphist {
namespace {

GridHistogram SmallGrid() {
  // 8x8 with two hot cells and empty corners.
  GridHistogram g(8, 8);
  g.Set(1, 1, 30.0);
  g.Set(6, 5, 12.0);
  g.Set(3, 4, 5.0);
  return g;
}

Universal2dOptions NoPostProcessing(double epsilon) {
  Universal2dOptions options;
  options.epsilon = epsilon;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  return options;
}

TEST(EvaluateQuadtreeCountsTest, RootIsTotalAndParentsSumChildren) {
  GridHistogram data = SmallGrid();
  QuadtreeLayout quad(8, 8);
  std::vector<double> counts = EvaluateQuadtreeCounts(quad, data);
  EXPECT_DOUBLE_EQ(counts[0], 47.0);
  EXPECT_LT(MaxConsistencyViolation(quad.tree(), counts), 1e-12);
  // Spot check: the quadrant holding (1,1) carries its mass.
  for (std::int64_t c : quad.tree().Children(0)) {
    if (quad.NodeRect(c).Contains(1, 1)) {
      EXPECT_DOUBLE_EQ(counts[static_cast<std::size_t>(c)], 30.0);
    }
  }
}

TEST(L2dTest, UnbiasedAndErrorScalesWithArea) {
  GridHistogram data = SmallGrid();
  Rng rng(1);
  RunningStat total_stat, err_small, err_large;
  Rect small(0, 1, 0, 1), large(0, 3, 0, 3);
  for (int t = 0; t < 4000; ++t) {
    L2dEstimator est(data, NoPostProcessing(1.0), &rng);
    total_stat.Add(est.RectCount(data.FullRect()));
    double ds = est.RectCount(small) - data.Count(small);
    double dl = est.RectCount(large) - data.Count(large);
    err_small.Add(ds * ds);
    err_large.Add(dl * dl);
  }
  EXPECT_NEAR(total_stat.Mean(), 47.0, 1.0);
  // Variance = 2 * area / eps^2.
  EXPECT_NEAR(err_small.Mean(), 8.0, 1.0);
  EXPECT_NEAR(err_large.Mean(), 32.0, 4.0);
}

TEST(Quad2dTildeTest, SensitivityScaledNoiseAtRoot) {
  GridHistogram data = SmallGrid();
  Rng rng(2);
  RunningStat root_stat;
  for (int t = 0; t < 4000; ++t) {
    Quad2dTildeEstimator est(data, NoPostProcessing(1.0), &rng);
    root_stat.Add(est.node_answers()[0]);
  }
  EXPECT_NEAR(root_stat.Mean(), 47.0, 1.0);
  // Height of an 8x8 quadtree is 4 -> variance 2 * 16 = 32.
  EXPECT_NEAR(root_stat.Variance(), 32.0, 4.0);
}

TEST(Quad2dTildeTest, AlignedRectUsesOneNode) {
  GridHistogram data = SmallGrid();
  Rng rng(3);
  Quad2dTildeEstimator est(data, NoPostProcessing(1.0), &rng);
  // The full grid is the root.
  EXPECT_NEAR(est.RectCount(Rect(0, 7, 0, 7)), est.node_answers()[0], 1e-9);
}

TEST(Quad2dBarTest, OutputConsistentWithoutPostProcessing) {
  GridHistogram data = SmallGrid();
  Rng rng(4);
  Quad2dBarEstimator est(data, NoPostProcessing(0.5), &rng);
  EXPECT_LT(MaxConsistencyViolation(est.quadtree().tree(),
                                    est.node_estimates()),
            1e-8);
}

TEST(Quad2dBarTest, NeverWorseThanQuadTildeOnAverage) {
  GridHistogram data = SmallGrid();
  Universal2dOptions options = NoPostProcessing(0.5);
  Rng rng(5);
  QuadtreeLayout quad(8, 8);
  std::vector<double> exact = EvaluateQuadtreeCounts(quad, data);
  LaplaceDistribution noise(static_cast<double>(quad.height()) /
                            options.epsilon);
  RunningStat err_tilde, err_bar;
  std::vector<Rect> queries = {Rect(0, 5, 1, 6), Rect(2, 3, 2, 7),
                               Rect(0, 7, 0, 3)};
  for (int t = 0; t < 1500; ++t) {
    std::vector<double> noisy = exact;
    for (double& v : noisy) v += noise.Sample(&rng);
    Quad2dBarEstimator bar(8, 8, options, noisy);
    // Tilde answers straight from the same noisy vector.
    for (const Rect& q : queries) {
      double truth = data.Count(q);
      double tilde_answer = 0.0;
      for (std::int64_t v : quad.DecomposeRect(q)) {
        tilde_answer += noisy[static_cast<std::size_t>(v)];
      }
      double dt = tilde_answer - truth;
      double db = bar.RectCount(q) - truth;
      err_tilde.Add(dt * dt);
      err_bar.Add(db * db);
    }
  }
  EXPECT_LT(err_bar.Mean(), err_tilde.Mean());
}

TEST(Quad2dBarTest, PruningZeroesEmptyQuadrants) {
  Universal2dOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = true;
  QuadtreeLayout quad(4, 4);
  // Hand-build: root positive, one quadrant strongly negative.
  std::vector<double> noisy(static_cast<std::size_t>(quad.node_count()),
                            1.0);
  noisy[0] = 10.0;
  // Find the quadrant containing (0,0) and make its subtree negative.
  std::int64_t target = -1;
  for (std::int64_t c : quad.tree().Children(0)) {
    if (quad.NodeRect(c).Contains(0, 0)) target = c;
  }
  noisy[static_cast<std::size_t>(target)] = -40.0;
  for (std::int64_t c : quad.tree().Children(target)) {
    noisy[static_cast<std::size_t>(c)] = -10.0;
  }
  Quad2dBarEstimator bar(4, 4, options, noisy);
  EXPECT_DOUBLE_EQ(bar.RectCount(Rect(0, 1, 0, 1)), 0.0);
}

TEST(Quad2dBarTest, RoundingYieldsIntegerAnswersOnAlignedBlocks) {
  GridHistogram data = SmallGrid();
  Universal2dOptions options;  // defaults: prune + round
  options.epsilon = 0.5;
  Rng rng(6);
  Quad2dBarEstimator bar(data, options, &rng);
  // Aligned blocks are answered by a single rounded node.
  double answer = bar.RectCount(Rect(0, 3, 0, 3));
  EXPECT_GE(answer, 0.0);
  EXPECT_DOUBLE_EQ(answer, std::round(answer));
}

TEST(SpatialDataTest, ShapeAndDeterminism) {
  SpatialConfig config;
  config.side = 64;
  config.num_points = 5000;
  GridHistogram a = GenerateSpatialBlobs(config);
  GridHistogram b = GenerateSpatialBlobs(config);
  EXPECT_EQ(a.rows(), 64);
  EXPECT_DOUBLE_EQ(a.Total(), 5000.0);
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(SpatialDataTest, MassConcentratesInClusters) {
  SpatialConfig config;
  config.side = 128;
  config.num_points = 20000;
  config.num_clusters = 4;
  config.uniform_fraction = 0.02;
  GridHistogram data = GenerateSpatialBlobs(config);
  // The densest 10% of cells should hold the bulk of the mass (Gaussian
  // blobs put ~87% of points within 2 sigma of the four centers, which
  // occupy well under a tenth of the grid).
  std::vector<double> cells = data.counts();
  std::sort(cells.begin(), cells.end(), std::greater<double>());
  double top = 0.0;
  std::size_t top_count = cells.size() / 10;
  for (std::size_t i = 0; i < top_count; ++i) top += cells[i];
  EXPECT_GT(top, 0.75 * data.Total());
}

TEST(EndToEnd2dTest, SpatialWorkloadInferenceWins) {
  SpatialConfig config;
  config.side = 64;
  config.num_points = 30000;
  GridHistogram data = GenerateSpatialBlobs(config);
  Universal2dOptions options = NoPostProcessing(0.2);
  Rng rng(7);
  RunningStat err_tilde, err_bar;
  for (int t = 0; t < 40; ++t) {
    Quad2dTildeEstimator tilde(data, options, &rng);
    Quad2dBarEstimator bar(data, options, &rng);
    for (int q = 0; q < 25; ++q) {
      std::int64_t r0 = rng.NextInt(0, 47);
      std::int64_t c0 = rng.NextInt(0, 47);
      Rect rect(r0, r0 + 15, c0, c0 + 15);
      double truth = data.Count(rect);
      double dt = tilde.RectCount(rect) - truth;
      double db = bar.RectCount(rect) - truth;
      err_tilde.Add(dt * dt);
      err_bar.Add(db * db);
    }
  }
  EXPECT_LT(err_bar.Mean(), err_tilde.Mean());
}

TEST(Universal2dTest, CreateFactoriesValidateInsteadOfAborting) {
  GridHistogram data = SmallGrid();
  Universal2dOptions options = NoPostProcessing(1.0);
  Rng rng(9);
  EXPECT_FALSE(L2dEstimator::Create(data, options, nullptr).ok());
  EXPECT_FALSE(Quad2dTildeEstimator::Create(data, options, nullptr).ok());
  EXPECT_FALSE(Quad2dBarEstimator::Create(data, options, nullptr).ok());
  Universal2dOptions bad = options;
  bad.epsilon = 0.0;
  EXPECT_FALSE(L2dEstimator::Create(data, bad, &rng).ok());
  EXPECT_FALSE(Quad2dBarEstimator::Create(data, bad, &rng).ok());
  auto l = L2dEstimator::Create(data, options, &rng);
  ASSERT_TRUE(l.ok());
  auto q = Quad2dTildeEstimator::Create(data, options, &rng);
  ASSERT_TRUE(q.ok());
  auto b = Quad2dBarEstimator::Create(data, options, &rng);
  ASSERT_TRUE(b.ok());
}

}  // namespace
}  // namespace dphist
