#include "estimators/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"

namespace dphist {
namespace {

TEST(HaarTransformTest, TwoElementBasis) {
  std::vector<double> coefficients = HaarTransform({3.0, 1.0});
  ASSERT_EQ(coefficients.size(), 2u);
  EXPECT_DOUBLE_EQ(coefficients[0], 2.0);  // average
  EXPECT_DOUBLE_EQ(coefficients[1], 1.0);  // (3-1)/2
}

TEST(HaarTransformTest, KnownFourElementDecomposition) {
  // values = {4, 2, 5, 1}: avg = 3; root detail = ((3) - (3))/2 = 0;
  // left detail = (4-2)/2 = 1; right detail = (5-1)/2 = 2.
  std::vector<double> coefficients = HaarTransform({4, 2, 5, 1});
  ASSERT_EQ(coefficients.size(), 4u);
  EXPECT_DOUBLE_EQ(coefficients[0], 3.0);
  EXPECT_DOUBLE_EQ(coefficients[1], 0.0);
  EXPECT_DOUBLE_EQ(coefficients[2], 1.0);
  EXPECT_DOUBLE_EQ(coefficients[3], 2.0);
}

TEST(HaarTransformTest, RoundTripsRandomVectors) {
  Rng rng(1);
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 1024u}) {
    std::vector<double> values(n);
    for (double& v : values) v = rng.NextUniform(-10, 10);
    std::vector<double> back = InverseHaarTransform(HaarTransform(values));
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], values[i], 1e-9);
    }
  }
}

TEST(HaarTransformTest, LinearityOfTransform) {
  Rng rng(2);
  std::vector<double> a(16), b(16), sum(16);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = rng.NextUniform(-5, 5);
    b[i] = rng.NextUniform(-5, 5);
    sum[i] = a[i] + b[i];
  }
  std::vector<double> ta = HaarTransform(a);
  std::vector<double> tb = HaarTransform(b);
  std::vector<double> tsum = HaarTransform(sum);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(tsum[i], ta[i] + tb[i], 1e-10);
  }
}

TEST(HaarTransformDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(HaarTransform({1.0, 2.0, 3.0}), "power of two");
}

TEST(HaarSensitivityTest, WeightedSensitivityFormula) {
  EXPECT_DOUBLE_EQ(HaarWeightedSensitivity(2), 2.0);
  EXPECT_DOUBLE_EQ(HaarWeightedSensitivity(1024), 11.0);
  EXPECT_DOUBLE_EQ(HaarWeightedSensitivity(65536), 17.0);
}

TEST(HaarSensitivityTest, EmpiricalWeightedNeighborDelta) {
  // One record at any position must change the *weighted* coefficient
  // vector by exactly 1 + log2(n) in L1 (the Privelet invariant that
  // calibrates the noise).
  const std::size_t n = 64;
  Rng rng(3);
  std::vector<double> values(n);
  for (double& v : values) v = rng.NextUniform(0, 10);
  std::vector<double> base = HaarTransform(values);
  for (std::size_t pos : {0u, 5u, 31u, 63u}) {
    std::vector<double> neighbor = values;
    neighbor[pos] += 1.0;
    std::vector<double> shifted = HaarTransform(neighbor);
    double weighted_l1 =
        std::abs(shifted[0] - base[0]) * static_cast<double>(n);
    std::size_t level_start = 1;
    std::size_t block = n;
    while (level_start < n) {
      for (std::size_t i = level_start; i < 2 * level_start; ++i) {
        weighted_l1 += std::abs(shifted[i] - base[i]) *
                       static_cast<double>(block);
      }
      block /= 2;
      level_start *= 2;
    }
    EXPECT_NEAR(weighted_l1, HaarWeightedSensitivity(n), 1e-9) << pos;
  }
}

TEST(WaveletEstimatorTest, UnbiasedRangeAnswers) {
  Histogram data = Histogram::FromCounts({5, 0, 3, 7, 0, 0, 2, 9});
  WaveletOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  Rng rng(4);
  Interval q(1, 6);
  double truth = data.Count(q);
  RunningStat stat;
  for (int t = 0; t < 6000; ++t) {
    WaveletEstimator est(data, options, &rng);
    stat.Add(est.RangeCount(q));
  }
  EXPECT_NEAR(stat.Mean(), truth, 0.5);
}

TEST(WaveletEstimatorTest, PadsNonPowerOfTwoDomains) {
  Histogram data = Histogram::FromCounts({1, 2, 3, 4, 5});
  WaveletOptions options;
  options.round_to_nonnegative_integers = false;
  Rng rng(5);
  WaveletEstimator est(data, options, &rng);
  EXPECT_EQ(est.padded_size(), 8);
  EXPECT_EQ(est.leaf_estimates().size(), 5u);
  // Full-domain query stays close to the truth at eps = 1.
  EXPECT_NEAR(est.RangeCount(Interval(0, 4)), 15.0, 40.0);
}

TEST(WaveletEstimatorTest, RoundingClampsAnswers) {
  Histogram data = Histogram::FromCounts({0, 0, 0, 0});
  WaveletOptions options;
  options.epsilon = 0.5;
  Rng rng(6);
  for (int t = 0; t < 50; ++t) {
    WaveletEstimator est(data, options, &rng);
    double answer = est.RangeCount(Interval(0, 3));
    EXPECT_GE(answer, 0.0);
    EXPECT_DOUBLE_EQ(answer, std::round(answer));
  }
}

TEST(WaveletEstimatorTest, ErrorComparableToBinaryHTheory) {
  // Li et al.'s equivalence (paper Section 6): the wavelet error for
  // range queries is within a small constant of the binary H~ error
  // O(log^3 n / eps^2). Check the measured error against that envelope.
  const std::int64_t n = 256;  // log2 = 8
  Histogram data = Histogram::FromCounts(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 2));
  WaveletOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  Rng rng(7);
  RunningStat err;
  Interval q(17, 200);  // awkwardly aligned range
  double truth = data.Count(q);
  for (int t = 0; t < 3000; ++t) {
    WaveletEstimator est(data, options, &rng);
    double d = est.RangeCount(q) - truth;
    err.Add(d * d);
  }
  double log_n = std::log2(static_cast<double>(n));
  EXPECT_LT(err.Mean(), 4.0 * log_n * log_n * log_n);
  EXPECT_GT(err.Mean(), 0.05 * log_n * log_n * log_n);
}

TEST(WaveletTest, CreateValidatesInsteadOfAborting) {
  Histogram data = Histogram::FromCounts({1, 2, 3});
  WaveletOptions options;
  options.epsilon = 1.0;
  Rng rng(5);
  EXPECT_FALSE(WaveletEstimator::Create(data, options, nullptr).ok());
  WaveletOptions bad = options;
  bad.epsilon = 0.0;
  EXPECT_FALSE(WaveletEstimator::Create(data, bad, &rng).ok());
  auto built = WaveletEstimator::Create(data, options, &rng);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built.value()->RangeCount(Interval(0, 2)), -100.0);
}

TEST(WaveletTest, RestoreReproducesAnswersBitForBit) {
  Histogram data = Histogram::FromCounts({4, 1, 0, 7, 2});
  WaveletOptions options;
  options.epsilon = 0.8;
  Rng rng(6);
  WaveletEstimator original(data, options, &rng);
  auto restored =
      WaveletEstimator::Restore(options, original.leaf_estimates());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (std::int64_t lo = 0; lo < data.size(); ++lo) {
    for (std::int64_t hi = lo; hi < data.size(); ++hi) {
      EXPECT_EQ(restored.value()->RangeCount(Interval(lo, hi)),
                original.RangeCount(Interval(lo, hi)));
    }
  }
  EXPECT_FALSE(WaveletEstimator::Restore(options, {}).ok());
}

}  // namespace
}  // namespace dphist
