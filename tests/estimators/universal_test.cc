#include "estimators/universal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "inference/hierarchical.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "tree/range_decomposition.h"

namespace dphist {
namespace {

Histogram SparseData() {
  // 32 positions, two active clusters, long zero runs.
  std::vector<std::int64_t> counts(32, 0);
  counts[3] = 20;
  counts[4] = 15;
  counts[20] = 7;
  return Histogram::FromCounts(counts);
}

UniversalOptions NoRounding(double epsilon) {
  UniversalOptions options;
  options.epsilon = epsilon;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = false;
  return options;
}

TEST(LTildeTest, UnbiasedPerPosition) {
  Histogram data = SparseData();
  Rng rng(1);
  RunningStat at3;
  for (int t = 0; t < 5000; ++t) {
    LTildeEstimator est(data, NoRounding(1.0), &rng);
    at3.Add(est.leaf_estimates()[3]);
  }
  EXPECT_NEAR(at3.Mean(), 20.0, 0.15);
}

TEST(LTildeTest, RangeCountIsLeafSum) {
  Histogram data = SparseData();
  Rng rng(2);
  LTildeEstimator est(data, NoRounding(1.0), &rng);
  const std::vector<double>& leaves = est.leaf_estimates();
  double manual = leaves[3] + leaves[4] + leaves[5];
  EXPECT_NEAR(est.RangeCount(Interval(3, 5)), manual, 1e-9);
}

TEST(LTildeTest, RangeErrorGrowsLinearly) {
  // error(L~_q) = 2 (y - x + 1) / eps^2: doubling the range doubles it.
  Histogram data = SparseData();
  Rng rng(3);
  RunningStat err_small, err_large;
  for (int t = 0; t < 4000; ++t) {
    LTildeEstimator est(data, NoRounding(1.0), &rng);
    double truth_small = data.Count(Interval(0, 7));
    double truth_large = data.Count(Interval(0, 15));
    double ds = est.RangeCount(Interval(0, 7)) - truth_small;
    double dl = est.RangeCount(Interval(0, 15)) - truth_large;
    err_small.Add(ds * ds);
    err_large.Add(dl * dl);
  }
  EXPECT_NEAR(err_small.Mean(), 16.0, 1.5);   // 8 leaves * 2/eps^2
  EXPECT_NEAR(err_large.Mean(), 32.0, 3.0);   // 16 leaves * 2/eps^2
}

TEST(HTildeTest, UsesScaledNoise) {
  // H over 32 leaves has height 6; per-node variance = 2*(6/eps)^2.
  Histogram data = SparseData();
  Rng rng(4);
  RunningStat root;
  for (int t = 0; t < 5000; ++t) {
    HTildeEstimator est(data, NoRounding(1.0), &rng);
    root.Add(est.node_answers()[0]);
  }
  EXPECT_NEAR(root.Mean(), data.Total(), 1.0);
  EXPECT_NEAR(root.Variance(), 72.0, 8.0);
}

TEST(HTildeTest, RangeCountMatchesDecompositionByHand) {
  Histogram data = SparseData();
  Rng rng(5);
  UniversalOptions options = NoRounding(1.0);
  HTildeEstimator est(data, options, &rng);
  // [0, 15] is exactly the root's left child (node 1).
  EXPECT_NEAR(est.RangeCount(Interval(0, 15)), est.node_answers()[1], 1e-9);
  // Full domain is the root.
  EXPECT_NEAR(est.RangeCount(Interval(0, 31)), est.node_answers()[0], 1e-9);
}

TEST(HTildeTest, SharedDrawConstructorMatches) {
  Histogram data = SparseData();
  UniversalOptions options = NoRounding(1.0);
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  Rng rng(6);
  std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
  HTildeEstimator est(data.size(), options, noisy);
  for (std::int64_t lo = 0; lo < 32; lo += 5) {
    Interval q(lo, std::min<std::int64_t>(lo + 6, 31));
    double manual = 0.0;
    // est must reproduce sums of the given noisy vector exactly.
    HTildeEstimator direct(data.size(), options, noisy);
    manual = direct.RangeCount(q);
    EXPECT_DOUBLE_EQ(est.RangeCount(q), manual);
  }
}

TEST(HBarTest, LeafPrefixAndDecompositionAgree) {
  // Consistency makes every way of answering a range agree: summing
  // inferred leaves equals summing any subtree decomposition.
  Histogram data = SparseData();
  UniversalOptions options = NoRounding(1.0);
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  Rng rng(7);
  std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
  HBarEstimator h_bar(data.size(), options, noisy);

  const TreeLayout& tree = h_bar.tree();
  for (int trial = 0; trial < 50; ++trial) {
    std::int64_t lo = rng.NextInt(0, 31);
    std::int64_t hi = rng.NextInt(lo, 31);
    double from_leaves = h_bar.RangeCount(Interval(lo, hi));
    double from_nodes = 0.0;
    for (std::int64_t v : DecomposeRange(tree, Interval(lo, hi))) {
      from_nodes += h_bar.node_estimates()[static_cast<std::size_t>(v)];
    }
    EXPECT_NEAR(from_leaves, from_nodes, 1e-8);
  }
}

TEST(HBarTest, NeverWorseThanHTildeOnAverage) {
  Histogram data = SparseData();
  UniversalOptions options = NoRounding(0.5);
  HierarchicalQuery query(data.size(), options.branching);
  LaplaceMechanism mechanism(options.epsilon);
  Rng rng(8);
  RunningStat err_ht, err_hb;
  for (int t = 0; t < 2000; ++t) {
    std::vector<double> noisy = mechanism.AnswerQuery(query, data, &rng);
    HTildeEstimator ht(data.size(), options, noisy);
    HBarEstimator hb(data.size(), options, noisy);
    for (std::int64_t lo : {0, 5, 11}) {
      Interval q(lo, lo + 9);
      double truth = data.Count(q);
      double dt = ht.RangeCount(q) - truth;
      double db = hb.RangeCount(q) - truth;
      err_ht.Add(dt * dt);
      err_hb.Add(db * db);
    }
  }
  EXPECT_LT(err_hb.Mean(), err_ht.Mean());
}

TEST(HBarTest, PruningZeroesSparseRegions) {
  // With pruning on and a strongly negative subtree draw, leaves under it
  // must come out exactly zero.
  UniversalOptions options;
  options.epsilon = 1.0;
  options.round_to_nonnegative_integers = false;
  options.prune_nonpositive_subtrees = true;
  TreeLayout tree(8, 2);
  // Hand-build a noisy vector: left half very negative, right half clean.
  std::vector<double> noisy = {4.0, -8.0, 12.0, -4.0, -4.0, 6.0, 6.0,
                               -2.0, -2.0, -2.0, -2.0, 3.0, 3.0, 3.0, 3.0};
  HBarEstimator est(8, options, noisy);
  for (std::int64_t pos = 0; pos < 4; ++pos) {
    EXPECT_DOUBLE_EQ(est.leaf_estimates()[static_cast<std::size_t>(pos)], 0.0);
  }
  EXPECT_DOUBLE_EQ(est.RangeCount(Interval(0, 3)), 0.0);
}

TEST(HBarTest, RoundingProducesNonNegativeIntegers) {
  Histogram data = SparseData();
  UniversalOptions options;  // defaults: rounding + pruning on
  options.epsilon = 0.2;
  Rng rng(9);
  HBarEstimator est(data, options, &rng);
  for (double v : est.leaf_estimates()) {
    EXPECT_GE(v, 0.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(UniversalEstimatorsTest, NamesAreStable) {
  Histogram data = SparseData();
  Rng rng(10);
  UniversalOptions options = NoRounding(1.0);
  EXPECT_EQ(LTildeEstimator(data, options, &rng).Name(), "L~");
  EXPECT_EQ(HTildeEstimator(data, options, &rng).Name(), "H~");
  EXPECT_EQ(HBarEstimator(data, options, &rng).Name(), "H-bar");
}

class BranchingSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BranchingSweep, HBarConsistentForAnyBranching) {
  std::int64_t k = GetParam();
  Histogram data = SparseData();
  UniversalOptions options = NoRounding(1.0);
  options.branching = k;
  Rng rng(static_cast<std::uint64_t>(k));
  HBarEstimator est(data, options, &rng);
  EXPECT_LT(MaxConsistencyViolation(est.tree(), est.node_estimates()), 1e-8);
  // All (padded) leaves sum to the root estimate.
  double all_leaf_sum = 0.0;
  for (std::int64_t pos = 0; pos < est.tree().leaf_count(); ++pos) {
    all_leaf_sum += est.node_estimates()[static_cast<std::size_t>(
        est.tree().LeafNode(pos))];
  }
  EXPECT_NEAR(all_leaf_sum, est.node_estimates()[0], 1e-8);
  // RangeCount over the real domain equals the sum of the real-domain
  // leaf estimates (padding excluded).
  double real_leaf_sum = 0.0;
  for (std::int64_t pos = 0; pos < 32; ++pos) {
    real_leaf_sum += est.node_estimates()[static_cast<std::size_t>(
        est.tree().LeafNode(pos))];
  }
  EXPECT_NEAR(est.RangeCount(Interval(0, 31)), real_leaf_sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Branchings, BranchingSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(RestoreTest, AllThreeStrategiesRoundTripBitForBit) {
  Histogram data = Histogram::FromCounts({3, 0, 5, 1, 2, 8});
  UniversalOptions options;
  options.epsilon = 0.7;
  const std::int64_t n = data.size();

  Rng rng_l(21);
  LTildeEstimator l(data, options, &rng_l);
  auto l2 = LTildeEstimator::Restore(options, l.leaf_estimates());
  ASSERT_TRUE(l2.ok()) << l2.status().ToString();

  Rng rng_h(22);
  HTildeEstimator h(data, options, &rng_h);
  auto h2 = HTildeEstimator::Restore(n, options, h.node_answers());
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();

  Rng rng_b(23);
  HBarEstimator b(data, options, &rng_b);
  auto b2 = HBarEstimator::Restore(n, options, b.node_estimates());
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();

  for (std::int64_t lo = 0; lo < n; ++lo) {
    for (std::int64_t hi = lo; hi < n; ++hi) {
      const Interval range(lo, hi);
      EXPECT_EQ(l2.value()->RangeCount(range), l.RangeCount(range));
      EXPECT_EQ(h2.value()->RangeCount(range), h.RangeCount(range));
      EXPECT_EQ(b2.value()->RangeCount(range), b.RangeCount(range));
    }
  }
}

TEST(RestoreTest, StructurallyWrongStateIsRefused) {
  UniversalOptions options;
  options.epsilon = 0.7;
  EXPECT_FALSE(LTildeEstimator::Restore(options, {}).ok());
  // A hierarchy over 6 leaves has more than 6 nodes; a leaf-sized
  // vector cannot be a persisted node vector.
  EXPECT_FALSE(
      HTildeEstimator::Restore(6, options, std::vector<double>(6, 0.0))
          .ok());
  EXPECT_FALSE(
      HBarEstimator::Restore(6, options, std::vector<double>(6, 0.0)).ok());
  UniversalOptions bad = options;
  bad.branching = 1;
  EXPECT_FALSE(
      HTildeEstimator::Restore(6, bad, std::vector<double>(11, 0.0)).ok());
}

TEST(CreateTest, ValidatesInsteadOfAborting) {
  Histogram data = SparseData();
  UniversalOptions options;
  options.epsilon = 1.0;
  Rng rng(5);

  // A missing RNG is a Status for every strategy, not an abort.
  EXPECT_FALSE(LTildeEstimator::Create(data, options, nullptr).ok());
  EXPECT_FALSE(HTildeEstimator::Create(data, options, nullptr).ok());
  EXPECT_FALSE(HBarEstimator::Create(data, options, nullptr).ok());

  // So is a non-positive epsilon...
  UniversalOptions no_budget = options;
  no_budget.epsilon = 0.0;
  EXPECT_FALSE(LTildeEstimator::Create(data, no_budget, &rng).ok());
  EXPECT_FALSE(HBarEstimator::Create(data, no_budget, &rng).ok());

  // ...and a degenerate branching factor for the tree strategies (L~
  // has no tree, so it does not care).
  UniversalOptions flat = options;
  flat.branching = 1;
  EXPECT_FALSE(HTildeEstimator::Create(data, flat, &rng).ok());
  EXPECT_FALSE(HBarEstimator::Create(data, flat, &rng).ok());
  EXPECT_TRUE(LTildeEstimator::Create(data, flat, &rng).ok());

  // Valid inputs build estimators that answer like the constructors'.
  auto l = LTildeEstimator::Create(data, options, &rng);
  auto h = HTildeEstimator::Create(data, options, &rng);
  auto b = HBarEstimator::Create(data, options, &rng);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const Interval whole(0, data.size() - 1);
  EXPECT_EQ(l.value()->leaf_estimates().size(),
            static_cast<std::size_t>(data.size()));
  EXPECT_GE(b.value()->RangeCount(whole), 0.0);
  EXPECT_NO_FATAL_FAILURE({ (void)h.value()->RangeCount(whole); });
}

}  // namespace
}  // namespace dphist
