#include "estimators/blum_histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/zipf.h"

namespace dphist {
namespace {

Histogram UniformData(std::int64_t n, std::int64_t per_position) {
  return Histogram::FromCounts(std::vector<std::int64_t>(
      static_cast<std::size_t>(n), per_position));
}

TEST(BlumHistogramTest, BoundariesAreSortedAndInRange) {
  Histogram data = UniformData(256, 10);
  BlumHistogramConfig config;
  config.num_bins = 8;
  Rng rng(1);
  BlumEquiDepthHistogram est(data, config, &rng);
  const auto& bounds = est.boundaries();
  ASSERT_EQ(bounds.size(), 8u);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_GE(bounds[i], 0);
    EXPECT_LT(bounds[i], 256);
    if (i > 0) {
      EXPECT_GT(bounds[i], bounds[i - 1]);
    }
  }
  EXPECT_EQ(bounds.back(), 255);
}

TEST(BlumHistogramTest, TotalMassMatchesEstimate) {
  Histogram data = UniformData(128, 5);
  BlumHistogramConfig config;
  config.num_bins = 4;
  Rng rng(2);
  BlumEquiDepthHistogram est(data, config, &rng);
  EXPECT_NEAR(est.RangeCount(Interval(0, 127)), est.estimated_total(), 1e-6);
}

TEST(BlumHistogramTest, UniformDataAnsweredWell) {
  // Equi-depth histograms are exact (up to noise) on uniform data.
  const std::int64_t n = 512;
  Histogram data = UniformData(n, 20);
  BlumHistogramConfig config;
  config.epsilon = 5.0;  // low noise: isolate the representation error
  config.num_bins = 16;
  Rng rng(3);
  BlumEquiDepthHistogram est(data, config, &rng);
  for (std::int64_t lo = 0; lo + 64 <= n; lo += 64) {
    Interval q(lo, lo + 63);
    double truth = data.Count(q);
    EXPECT_NEAR(est.RangeCount(q), truth, 0.15 * truth);
  }
}

TEST(BlumHistogramTest, SingleBinSpreadsUniformly) {
  Histogram data = UniformData(64, 2);
  BlumHistogramConfig config;
  config.num_bins = 1;
  config.epsilon = 10.0;
  Rng rng(4);
  BlumEquiDepthHistogram est(data, config, &rng);
  // Half the domain should carry about half the (noisy) total.
  EXPECT_NEAR(est.RangeCount(Interval(0, 31)), est.estimated_total() / 2.0,
              1.0);
}

TEST(BlumHistogramTest, ErrorGrowsWithDatabaseSize) {
  // Appendix E's point: BLR's absolute range error grows with N while the
  // per-query noise of H~ does not depend on N. Scale the same shape by
  // 16x and watch the absolute error rise.
  Rng data_rng(5);
  std::vector<std::int64_t> small_counts =
      ZipfCounts(256, 1.2, 2000, &data_rng);
  std::vector<std::int64_t> large_counts = small_counts;
  for (auto& c : large_counts) c *= 16;
  Histogram small = Histogram::FromCounts(small_counts);
  Histogram large = Histogram::FromCounts(large_counts);

  BlumHistogramConfig config;
  config.num_bins = 8;
  RunningStat err_small, err_large;
  Rng rng(6);
  for (int t = 0; t < 30; ++t) {
    BlumEquiDepthHistogram est_small(small, config, &rng);
    BlumEquiDepthHistogram est_large(large, config, &rng);
    for (std::int64_t lo = 0; lo + 32 <= 256; lo += 32) {
      Interval q(lo, lo + 31);
      err_small.Add(std::abs(est_small.RangeCount(q) - small.Count(q)));
      err_large.Add(std::abs(est_large.RangeCount(q) - large.Count(q)));
    }
  }
  EXPECT_GT(err_large.Mean(), 4.0 * err_small.Mean());
}

TEST(BlumHistogramTest, MoreBinsThanPositionsClamped) {
  Histogram data = UniformData(4, 3);
  BlumHistogramConfig config;
  config.num_bins = 100;
  Rng rng(7);
  BlumEquiDepthHistogram est(data, config, &rng);
  EXPECT_LE(est.boundaries().size(), 4u);
}

TEST(UsefulnessBoundsTest, HTildeBoundFormula) {
  // n = 65536 -> ell = 17; check the closed form directly.
  double bound = HTildeUsefulDatabaseSize(65536, 0.05, 0.05, 1.0);
  double ell = 17.0;
  double expected =
      16.0 * std::pow(ell, 1.5) * std::log(2.0 * 65536.0 * 65536.0 / 0.05) /
      (0.05 * 1.0);
  EXPECT_NEAR(bound, expected, 1e-6);
}

TEST(UsefulnessBoundsTest, HTildeScalesBetterInAlphaThanBlum) {
  // Appendix E: H~ needs N ~ 1/alpha while BLR needs N ~ 1/alpha^3, so
  // tightening alpha by 10x should widen the gap by ~100x.
  double h_1 = HTildeUsefulDatabaseSize(65536, 0.05, 0.05, 1.0);
  double h_01 = HTildeUsefulDatabaseSize(65536, 0.05, 0.05, 0.1);
  double b_1 = BlumUsefulDatabaseSize(65536, 0.05, 0.05, 1.0);
  double b_01 = BlumUsefulDatabaseSize(65536, 0.05, 0.05, 0.1);
  EXPECT_NEAR(h_01 / h_1, 10.0, 1e-6);
  EXPECT_NEAR(b_01 / b_1, 1000.0, 1e-6);
}

TEST(UsefulnessBoundsTest, BothGrowSlowlyInDomainSize) {
  // Poly-log in n: jumping n by 16x should far less than double the
  // bounds.
  double h_small = HTildeUsefulDatabaseSize(4096, 0.05, 0.05, 0.5);
  double h_large = HTildeUsefulDatabaseSize(65536, 0.05, 0.05, 0.5);
  EXPECT_LT(h_large, 2.0 * h_small);
  double b_small = BlumUsefulDatabaseSize(4096, 0.05, 0.05, 0.5);
  double b_large = BlumUsefulDatabaseSize(65536, 0.05, 0.05, 0.5);
  EXPECT_LT(b_large, 2.0 * b_small);
}

}  // namespace
}  // namespace dphist
