// Proves the hot query paths allocate nothing: this binary replaces the
// global operator new/delete with counting versions and asserts that
// answering ranges — scalar or batched, on all three universal
// estimators and on the raw tree visitor — performs zero heap
// allocations per query. Kept out of dphist_tests so the instrumentation
// cannot interfere with unrelated suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "domain/histogram.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"
#include "service/query_service.h"
#include "tree/range_decomposition.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dphist {
namespace {

/// Runs `fn` once as warm-up, then again while counting heap allocations.
template <typename Fn>
std::size_t AllocationsDuring(Fn&& fn) {
  fn();  // warm-up: first-use lazy initialization doesn't count
  const std::size_t before = g_allocation_count.load();
  fn();
  return g_allocation_count.load() - before;
}

std::vector<Interval> FixedWorkload(std::int64_t domain_size) {
  Rng rng(5);
  return RandomRangesOfSize(domain_size, domain_size / 3, 256, &rng);
}

TEST(AllocationCountTest, ForEachRangeNodeAllocatesNothing) {
  TreeLayout tree(1 << 16, 2);
  std::vector<Interval> workload = FixedWorkload(tree.leaf_count());
  double sink = 0.0;
  std::size_t allocs = AllocationsDuring([&] {
    for (const Interval& q : workload) {
      ForEachRangeNode(tree, q, [&](std::int64_t v) {
        sink += static_cast<double>(v);
      });
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(sink, 0.0);
}

TEST(AllocationCountTest, ScratchBufferDecompositionAllocatesNothing) {
  TreeLayout tree(1 << 14, 4);
  std::vector<Interval> workload = FixedWorkload(tree.leaf_count());
  std::vector<std::int64_t> scratch;
  scratch.reserve(static_cast<std::size_t>(MaxDecompositionSize(tree)));
  std::size_t sink = 0;
  std::size_t allocs = AllocationsDuring([&] {
    for (const Interval& q : workload) {
      DecomposeRangeInto(tree, q, &scratch);
      sink += scratch.size();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(sink, 0u);
}

class EstimatorAllocationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng data_rng(3);
    data_ = std::make_unique<Histogram>(
        Histogram::FromCounts(ZipfCounts(kDomain, 1.2, 4 * kDomain,
                                         &data_rng)));
    UniversalOptions options;
    options.epsilon = 0.5;
    Rng rng(29);
    l_tilde_ = std::make_unique<LTildeEstimator>(*data_, options, &rng);
    HierarchicalQuery query(kDomain, options.branching);
    LaplaceMechanism mechanism(options.epsilon);
    std::vector<double> noisy = mechanism.AnswerQuery(query, *data_, &rng);
    h_tilde_ = std::make_unique<HTildeEstimator>(kDomain, options, noisy);
    h_bar_rounded_ = std::make_unique<HBarEstimator>(kDomain, options, noisy);
    options.round_to_nonnegative_integers = false;
    options.prune_nonpositive_subtrees = false;
    h_bar_consistent_ =
        std::make_unique<HBarEstimator>(kDomain, options, noisy);
    workload_ = FixedWorkload(kDomain);
    answers_.resize(workload_.size());
  }

  std::size_t ScalarAllocations(const RangeCountEstimator& est) {
    return AllocationsDuring([&] {
      double sink = 0.0;
      for (const Interval& q : workload_) sink += est.RangeCount(q);
      sink_ = sink;
    });
  }

  std::size_t BatchedAllocations(const RangeCountEstimator& est) {
    return AllocationsDuring([&] {
      est.RangeCountsInto(workload_.data(), workload_.size(),
                          answers_.data());
    });
  }

  static constexpr std::int64_t kDomain = 1 << 12;
  std::unique_ptr<Histogram> data_;
  std::unique_ptr<LTildeEstimator> l_tilde_;
  std::unique_ptr<HTildeEstimator> h_tilde_;
  std::unique_ptr<HBarEstimator> h_bar_rounded_;
  std::unique_ptr<HBarEstimator> h_bar_consistent_;
  std::vector<Interval> workload_;
  std::vector<double> answers_;
  double sink_ = 0.0;
};

TEST_F(EstimatorAllocationTest, LTildeQueriesAreAllocationFree) {
  EXPECT_EQ(ScalarAllocations(*l_tilde_), 0u);
  EXPECT_EQ(BatchedAllocations(*l_tilde_), 0u);
}

TEST_F(EstimatorAllocationTest, HTildeQueriesAreAllocationFree) {
  EXPECT_EQ(ScalarAllocations(*h_tilde_), 0u);
  EXPECT_EQ(BatchedAllocations(*h_tilde_), 0u);
}

TEST_F(EstimatorAllocationTest, HBarPrefixPathIsAllocationFree) {
  ASSERT_TRUE(h_bar_consistent_->uses_prefix_fast_path());
  EXPECT_EQ(ScalarAllocations(*h_bar_consistent_), 0u);
  EXPECT_EQ(BatchedAllocations(*h_bar_consistent_), 0u);
}

TEST_F(EstimatorAllocationTest, HBarDecompositionFallbackIsAllocationFree) {
  ASSERT_FALSE(h_bar_rounded_->uses_prefix_fast_path());
  EXPECT_EQ(ScalarAllocations(*h_bar_rounded_), 0u);
  EXPECT_EQ(BatchedAllocations(*h_bar_rounded_), 0u);
}

TEST(ServiceAllocationTest, UncachedQueryBatchIsAllocationFree) {
  // The serving hot path inherits the estimators' zero-allocation
  // guarantee when the cache is off: QueryBatch loads the snapshot
  // shared_ptr (refcount bump, no heap) and forwards the whole batch.
  Rng data_rng(3);
  Histogram data = Histogram::FromCounts(
      ZipfCounts(1 << 12, 1.2, 4 << 12, &data_rng));
  QueryService service;  // cache_capacity = 0
  SnapshotOptions options;
  options.strategy = StrategyKind::kHTilde;
  ASSERT_TRUE(service.Publish(data, options, 9).ok());

  std::vector<Interval> workload = FixedWorkload(1 << 12);
  std::vector<double> answers(workload.size());
  std::size_t allocs = AllocationsDuring([&] {
    service.QueryBatch(workload.data(), workload.size(), answers.data());
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(ServiceAllocationTest, CachedQueryBatchStopsAllocatingOnceWarm) {
  // With the cache on, a miss inserts (allocates); a warm replay of the
  // same workload is pure hits and must allocate nothing.
  Rng data_rng(3);
  Histogram data = Histogram::FromCounts(
      ZipfCounts(1 << 12, 1.2, 4 << 12, &data_rng));
  QueryServiceOptions service_options;
  service_options.cache_capacity = 4096;
  QueryService service(service_options);
  SnapshotOptions options;
  options.strategy = StrategyKind::kHTilde;
  ASSERT_TRUE(service.Publish(data, options, 9).ok());

  std::vector<Interval> workload = FixedWorkload(1 << 12);
  std::vector<double> answers(workload.size());
  // AllocationsDuring's built-in warm-up pass fills the cache.
  std::size_t allocs = AllocationsDuring([&] {
    service.QueryBatch(workload.data(), workload.size(), answers.data());
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(service.cache_stats().hits, 0u);
}

TEST(ServiceAllocationTest, EngineBatchesAreAllocationFreeOnceWarm) {
  // The columnar answer engine's scratch lives in thread-local arenas
  // that grow to the high-water batch size: after one warm-up batch —
  // which includes shard-spanning queries, the shape that exercises the
  // piece-expansion scratch — steady-state batches through the plan
  // allocate nothing.
  Rng data_rng(3);
  Histogram data = Histogram::FromCounts(
      ZipfCounts(1 << 12, 1.2, 4 << 12, &data_rng));
  QueryService service;  // cache_capacity = 0: every batch runs the engine
  SnapshotOptions options;
  options.strategy = StrategyKind::kLTilde;
  options.shards = 8;
  ASSERT_TRUE(service.Publish(data, options, 9).ok());
  ASSERT_NE(service.snapshot()->answer_plan(), nullptr);

  // FixedWorkload draws ranges of width domain/3 — far wider than a
  // shard (width 512), so the batch is dominated by spanning queries.
  std::vector<Interval> workload = FixedWorkload(1 << 12);
  std::vector<double> answers(workload.size());
  std::size_t allocs = AllocationsDuring([&] {
    service.QueryBatch(workload.data(), workload.size(), answers.data());
  });
  EXPECT_EQ(allocs, 0u);
}

TEST_F(EstimatorAllocationTest, LegacyDecomposeRangeStillAllocates) {
  // Sanity check that the counter actually observes the old path's
  // allocation — otherwise the zero readings above would prove nothing.
  const TreeLayout& tree = h_tilde_->tree();
  std::size_t allocs = AllocationsDuring([&] {
    for (const Interval& q : workload_) {
      sink_ += static_cast<double>(DecomposeRange(tree, q).size());
    }
  });
  EXPECT_GE(allocs, workload_.size());
}

}  // namespace
}  // namespace dphist
