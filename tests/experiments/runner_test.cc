#include "experiments/runner.h"

#include <gtest/gtest.h>

#include "data/social_network.h"

namespace dphist {
namespace {

Histogram SmallDuplicateHeavyData() {
  SocialNetworkConfig config;
  config.num_nodes = 300;
  config.edges_per_node = 3;
  return GenerateSocialNetworkDegrees(config);
}

TEST(UnattributedRunnerTest, ProducesOneCellPerEpsilonEstimator) {
  UnattributedExperimentConfig config;
  config.epsilons = {1.0, 0.1};
  config.trials = 5;
  std::vector<UnattributedCell> cells =
      RunUnattributedExperiment(SmallDuplicateHeavyData(), config);
  EXPECT_EQ(cells.size(), 2u * 3u);
}

TEST(UnattributedRunnerTest, SBarBeatsSTildeInEveryCell) {
  UnattributedExperimentConfig config;
  config.epsilons = {0.1};
  config.trials = 10;
  std::vector<UnattributedCell> cells =
      RunUnattributedExperiment(SmallDuplicateHeavyData(), config);
  double err_stilde = 0.0, err_sbar = 0.0;
  for (const auto& cell : cells) {
    if (cell.estimator == UnattributedEstimator::kSTilde) {
      err_stilde = cell.total_squared_error;
    }
    if (cell.estimator == UnattributedEstimator::kSBar) {
      err_sbar = cell.total_squared_error;
    }
  }
  EXPECT_GT(err_stilde, 0.0);
  EXPECT_LT(err_sbar, err_stilde);
}

TEST(UnattributedRunnerTest, PerCountErrorIsTotalOverN) {
  UnattributedExperimentConfig config;
  config.epsilons = {1.0};
  config.trials = 3;
  Histogram data = SmallDuplicateHeavyData();
  std::vector<UnattributedCell> cells =
      RunUnattributedExperiment(data, config);
  for (const auto& cell : cells) {
    EXPECT_NEAR(cell.per_count_error,
                cell.total_squared_error / static_cast<double>(data.size()),
                1e-12);
  }
}

TEST(UnattributedRunnerTest, STildeMatchesClosedFormError) {
  // error(S~) = 2 n / eps^2 — the runner should reproduce it closely.
  UnattributedExperimentConfig config;
  config.epsilons = {0.5};
  config.trials = 200;
  Histogram data = SmallDuplicateHeavyData();
  std::vector<UnattributedCell> cells =
      RunUnattributedExperiment(data, config);
  double expected = 2.0 * static_cast<double>(data.size()) / 0.25;
  for (const auto& cell : cells) {
    if (cell.estimator == UnattributedEstimator::kSTilde) {
      EXPECT_NEAR(cell.total_squared_error, expected, expected * 0.12);
    }
  }
}

TEST(UnattributedRunnerTest, DeterministicGivenSeed) {
  UnattributedExperimentConfig config;
  config.trials = 3;
  Histogram data = SmallDuplicateHeavyData();
  auto a = RunUnattributedExperiment(data, config);
  auto b = RunUnattributedExperiment(data, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].total_squared_error, b[i].total_squared_error);
  }
}

TEST(UniversalRunnerTest, CellsCoverAllSizesAndEstimators) {
  UniversalExperimentConfig config;
  config.epsilons = {1.0};
  config.trials = 2;
  config.ranges_per_size = 10;
  Histogram data = SmallDuplicateHeavyData();  // 300 -> padded 512, ell=10
  std::vector<UniversalCell> cells = RunUniversalExperiment(data, config);
  // Fig6RangeSizes(300): 2,4,...,256 = 8 sizes; 3 estimators.
  EXPECT_EQ(cells.size(), 8u * 3u);
  for (const auto& cell : cells) {
    EXPECT_GE(cell.avg_squared_error, 0.0);
  }
}

TEST(UniversalRunnerTest, LTildeErrorScalesWithRangeSize) {
  UniversalExperimentConfig config;
  config.epsilons = {1.0};
  config.trials = 6;
  config.ranges_per_size = 100;
  config.round_to_nonnegative_integers = false;  // isolate the pure theory
  Histogram data = SmallDuplicateHeavyData();
  std::vector<UniversalCell> cells = RunUniversalExperiment(data, config);
  double err_2 = 0.0, err_256 = 0.0;
  for (const auto& cell : cells) {
    if (cell.estimator != "L~") continue;
    if (cell.range_size == 2) err_2 = cell.avg_squared_error;
    if (cell.range_size == 256) err_256 = cell.avg_squared_error;
  }
  // Theory: error grows linearly in range size, 128x here. Allow slack.
  EXPECT_GT(err_256, 40.0 * err_2);
}

TEST(UniversalRunnerTest, HBarNoWorseThanHTildeAtLargeRanges) {
  UniversalExperimentConfig config;
  config.epsilons = {0.1};
  config.trials = 6;
  config.ranges_per_size = 100;
  // Pure-inference comparison: the Section 4.2 pruning heuristic is for
  // sparse domains and would distort this dense degree sequence.
  config.prune_nonpositive_subtrees = false;
  config.round_to_nonnegative_integers = false;
  Histogram data = SmallDuplicateHeavyData();
  std::vector<UniversalCell> cells = RunUniversalExperiment(data, config);
  double err_ht = 0.0, err_hb = 0.0;
  std::int64_t largest = 0;
  for (const auto& cell : cells) largest = std::max(largest, cell.range_size);
  for (const auto& cell : cells) {
    if (cell.range_size != largest) continue;
    if (cell.estimator == "H~") err_ht = cell.avg_squared_error;
    if (cell.estimator == "H-bar") err_hb = cell.avg_squared_error;
  }
  EXPECT_LE(err_hb, err_ht * 1.05);
}

TEST(ErrorProfileTest, ShapesAndBaseline) {
  Histogram data = SmallDuplicateHeavyData();
  ErrorProfile profile = RunErrorProfile(data, 1.0, 20, 3);
  EXPECT_EQ(profile.true_sorted_descending.size(),
            static_cast<std::size_t>(data.size()));
  EXPECT_EQ(profile.sbar_error.size(), static_cast<std::size_t>(data.size()));
  EXPECT_DOUBLE_EQ(profile.stilde_error, 2.0);
  // Descending order.
  for (std::size_t i = 1; i < profile.true_sorted_descending.size(); ++i) {
    EXPECT_GE(profile.true_sorted_descending[i - 1],
              profile.true_sorted_descending[i]);
  }
}

TEST(ErrorProfileTest, UniformRunsHaveTinyError) {
  // A long constant stretch lets inference average noise away (Fig. 7's
  // message): mid-run error must be far below the S~ baseline.
  std::vector<std::int64_t> counts(200, 5);
  counts[0] = 50;  // one distinct big count
  Histogram data = Histogram::FromCounts(counts);
  ErrorProfile profile = RunErrorProfile(data, 1.0, 50, 4);
  // Middle of the uniform run (descending order puts the run at the tail).
  double mid_run_error = profile.sbar_error[100];
  EXPECT_LT(mid_run_error, profile.stilde_error / 4.0);
}

}  // namespace
}  // namespace dphist
