// Committed fixed-seed golden outputs for the Fig. 5 / Fig. 6 experiment
// runners (see parallel_runner_test.cc). Values are hexfloat literals,
// so the expectation is BIT-IDENTICAL reproduction — the runners fork
// per-trial RNG streams in trial order and merge deterministically, and
// any change to the noise sampling, estimator pipeline, or merge order
// shows up here as a hard failure at every thread count.
//
// To regenerate after an *intentional* protocol change, run dphist_tests
// with DPHIST_PRINT_GOLDEN=1 and --gtest_filter='*GoldenCells*', then
// paste the printed rows over these arrays.
//
// Configs (golden_cells_test section of parallel_runner_test.cc):
//   data:          GenerateSocialNetworkDegrees(num_nodes=300,
//                  edges_per_node=3), default seed
//   universal:     epsilons {1.0, 0.1}, trials 5, ranges_per_size 40,
//                  branching 2, seed 7
//   unattributed:  epsilons {1.0, 0.01}, trials 6, seed 7

#ifndef DPHIST_TESTS_EXPERIMENTS_GOLDEN_CELLS_H_
#define DPHIST_TESTS_EXPERIMENTS_GOLDEN_CELLS_H_

#include <cstdint>

#include "estimators/unattributed.h"

namespace dphist::golden {

struct GoldenUniversalCell {
  double epsilon;
  const char* estimator;
  std::int64_t range_size;
  double avg_squared_error;
};

inline constexpr GoldenUniversalCell kUniversalCells[] = {
    {0x1p+0, "L~", 2, 0x1.01eb851eb851fp+2},
    {0x1p+0, "H~", 2, 0x1.8e66666666666p+7},
    {0x1p+0, "H-bar", 2, 0x1.ec3d70a3d70a5p+6},
    {0x1p+0, "L~", 4, 0x1.1570a3d70a3d7p+3},
    {0x1p+0, "H~", 4, 0x1.7b51eb851eb86p+8},
    {0x1p+0, "H-bar", 4, 0x1.fef5c28f5c28fp+6},
    {0x1p+0, "L~", 8, 0x1.887ae147ae148p+3},
    {0x1p+0, "H~", 8, 0x1.ca2147ae147aep+8},
    {0x1p+0, "H-bar", 8, 0x1.423851eb851ecp+7},
    {0x1p+0, "L~", 16, 0x1.f0147ae147ae1p+4},
    {0x1p+0, "H~", 16, 0x1.6958f5c28f5c2p+9},
    {0x1p+0, "H-bar", 16, 0x1.85eb851eb851fp+7},
    {0x1p+0, "L~", 32, 0x1.be70a3d70a3d8p+5},
    {0x1p+0, "H~", 32, 0x1.c0ef5c28f5c2bp+9},
    {0x1p+0, "H-bar", 32, 0x1.ddd47ae147ae1p+7},
    {0x1p+0, "L~", 64, 0x1.001999999999ap+7},
    {0x1p+0, "H~", 64, 0x1.0a6e147ae147bp+10},
    {0x1p+0, "H-bar", 64, 0x1.072b851eb851ep+8},
    {0x1p+0, "L~", 128, 0x1.f830a3d70a3d8p+7},
    {0x1p+0, "H~", 128, 0x1.0d44cccccccccp+10},
    {0x1p+0, "H-bar", 128, 0x1.188f5c28f5c28p+8},
    {0x1p+0, "L~", 256, 0x1.a536666666667p+9},
    {0x1p+0, "H~", 256, 0x1.18ecccccccccdp+10},
    {0x1p+0, "H-bar", 256, 0x1.874cccccccccdp+8},
    {0x1.999999999999ap-4, "L~", 2, 0x1.a5a3d70a3d709p+7},
    {0x1.999999999999ap-4, "H~", 2, 0x1.9c4ad70a3d709p+13},
    {0x1.999999999999ap-4, "H-bar", 2, 0x1.04c3851eb851ep+12},
    {0x1.999999999999ap-4, "L~", 4, 0x1.9c4b851eb851fp+8},
    {0x1.999999999999ap-4, "H~", 4, 0x1.8d94c28f5c28fp+14},
    {0x1.999999999999ap-4, "H-bar", 4, 0x1.143bc28f5c28fp+13},
    {0x1.999999999999ap-4, "L~", 8, 0x1.41d23d70a3d71p+10},
    {0x1.999999999999ap-4, "H~", 8, 0x1.ad61b851eb852p+14},
    {0x1.999999999999ap-4, "H-bar", 8, 0x1.5ade333333333p+13},
    {0x1.999999999999ap-4, "L~", 16, 0x1.29a170a3d70a2p+11},
    {0x1.999999999999ap-4, "H~", 16, 0x1.1b3f7d70a3d7p+15},
    {0x1.999999999999ap-4, "H-bar", 16, 0x1.ca581eb851eb8p+13},
    {0x1.999999999999ap-4, "L~", 32, 0x1.551f851eb851ep+12},
    {0x1.999999999999ap-4, "H~", 32, 0x1.96c46e147ae14p+15},
    {0x1.999999999999ap-4, "H-bar", 32, 0x1.1b5ad1eb851ebp+14},
    {0x1.999999999999ap-4, "L~", 64, 0x1.c418851eb851ep+13},
    {0x1.999999999999ap-4, "H~", 64, 0x1.35a45ae147ae2p+16},
    {0x1.999999999999ap-4, "H-bar", 64, 0x1.0fb4666666667p+14},
    {0x1.999999999999ap-4, "L~", 128, 0x1.173c30a3d70a3p+15},
    {0x1.999999999999ap-4, "H~", 128, 0x1.71da5851eb852p+16},
    {0x1.999999999999ap-4, "H-bar", 128, 0x1.485a147ae147bp+14},
    {0x1.999999999999ap-4, "L~", 256, 0x1.0690ee147ae15p+16},
    {0x1.999999999999ap-4, "H~", 256, 0x1.7e84999999998p+17},
    {0x1.999999999999ap-4, "H-bar", 256, 0x1.949d333333334p+13},
};

struct GoldenUnattributedCell {
  double epsilon;
  UnattributedEstimator estimator;
  double total_squared_error;
  double per_count_error;
};

inline constexpr GoldenUnattributedCell kUnattributedCells[] = {
    {0x1p+0, UnattributedEstimator::kSTilde, 0x1.35e126185b873p+9,
     0x1.086e34fce44a6p+1},
    {0x1p+0, UnattributedEstimator::kSTildeRounded, 0x1.9faaaaaaaaaabp+7,
     0x1.62b3c4d5e6f81p-1},
    {0x1p+0, UnattributedEstimator::kSBar, 0x1.ba9cbc346c756p+5,
     0x1.79b21ee50e0b7p-3},
    {0x1.47ae147ae147bp-7, UnattributedEstimator::kSTilde,
     0x1.60bb1406cb1e4p+22, 0x1.2cff36a2cf76p+14},
    {0x1.47ae147ae147bp-7, UnattributedEstimator::kSTildeRounded,
     0x1.3f7e515555556p+21, 0x1.10a26789abcep+13},
    {0x1.47ae147ae147bp-7, UnattributedEstimator::kSBar,
     0x1.90450d3e2c3dbp+16, 0x1.559041e9f5f73p+8},
};

}  // namespace dphist::golden

#endif  // DPHIST_TESTS_EXPERIMENTS_GOLDEN_CELLS_H_
