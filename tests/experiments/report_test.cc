#include "experiments/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dphist {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"dataset", "eps", "error"});
  table.AddRow({"NetTrace", "1.0", "12.5"});
  table.AddRow({"SearchLogs", "0.01", "3"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  // Header present, separator present, both rows present.
  EXPECT_NE(text.find("dataset"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("NetTrace"), std::string::npos);
  EXPECT_NE(text.find("SearchLogs"), std::string::npos);
  // Columns align: "eps" starts at the same offset in header and rows.
  std::istringstream lines(text);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  std::size_t eps_col = header.find("eps");
  EXPECT_EQ(row1.find("1.0"), eps_col);
  EXPECT_EQ(row2.find("0.01"), eps_col);
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"a"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find('a'), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(FormatTest, Scientific) {
  EXPECT_EQ(FormatScientific(12345.0), "1.23e+04");
  EXPECT_EQ(FormatScientific(0.5), "0.5");
}

TEST(FormatTest, FixedTrimsZeros) {
  EXPECT_EQ(FormatFixed(1.5), "1.5");
  EXPECT_EQ(FormatFixed(2.0), "2");
  EXPECT_EQ(FormatFixed(0.1235), "0.1235");
}

TEST(FormatTest, Ratio) { EXPECT_EQ(FormatRatio(9.333), "9.33x"); }

TEST(BannerTest, WrapsTitle) {
  std::ostringstream out;
  PrintBanner(out, "Figure 5");
  EXPECT_EQ(out.str(), "\n== Figure 5 ==\n");
}

}  // namespace
}  // namespace dphist
