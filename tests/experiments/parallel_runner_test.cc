// The parallel experiment runners must be bit-identical to the sequential
// run: trial Rngs are forked up front in trial order and partial results
// merged deterministically, so the thread count can never change a cell.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/social_network.h"
#include "estimators/unattributed.h"
#include "experiments/runner.h"
#include "tests/experiments/golden_cells.h"

namespace dphist {
namespace {

Histogram TestData() {
  SocialNetworkConfig config;
  config.num_nodes = 300;
  config.edges_per_node = 3;
  return GenerateSocialNetworkDegrees(config);
}

TEST(ParallelRunnerTest, UniversalCellsBitIdenticalAcrossThreadCounts) {
  Histogram data = TestData();
  UniversalExperimentConfig config;
  config.epsilons = {1.0, 0.1};
  config.trials = 6;
  config.ranges_per_size = 50;

  config.threads = 1;
  std::vector<UniversalCell> sequential = RunUniversalExperiment(data, config);
  ASSERT_FALSE(sequential.empty());
  for (std::int64_t threads : {4, 8}) {
    config.threads = threads;
    std::vector<UniversalCell> parallel = RunUniversalExperiment(data, config);
    ASSERT_EQ(parallel.size(), sequential.size()) << threads << " threads";
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].epsilon, sequential[i].epsilon);
      EXPECT_EQ(parallel[i].estimator, sequential[i].estimator);
      EXPECT_EQ(parallel[i].range_size, sequential[i].range_size);
      // Bit-identical, not merely close.
      EXPECT_EQ(parallel[i].avg_squared_error, sequential[i].avg_squared_error)
          << "cell " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelRunnerTest, UnattributedCellsBitIdenticalAcrossThreadCounts) {
  Histogram data = TestData();
  UnattributedExperimentConfig config;
  config.epsilons = {1.0, 0.01};
  config.trials = 8;

  config.threads = 1;
  std::vector<UnattributedCell> sequential =
      RunUnattributedExperiment(data, config);
  ASSERT_FALSE(sequential.empty());
  for (std::int64_t threads : {4, 8}) {
    config.threads = threads;
    std::vector<UnattributedCell> parallel =
        RunUnattributedExperiment(data, config);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].epsilon, sequential[i].epsilon);
      EXPECT_EQ(parallel[i].estimator, sequential[i].estimator);
      EXPECT_EQ(parallel[i].total_squared_error,
                sequential[i].total_squared_error)
          << "cell " << i << " at " << threads << " threads";
      EXPECT_EQ(parallel[i].per_count_error, sequential[i].per_count_error);
    }
  }
}

TEST(ParallelRunnerTest, HardwareConcurrencyKnobAlsoBitIdentical) {
  Histogram data = TestData();
  UniversalExperimentConfig config;
  config.epsilons = {0.1};
  config.trials = 3;
  config.ranges_per_size = 20;

  config.threads = 1;
  std::vector<UniversalCell> sequential = RunUniversalExperiment(data, config);
  config.threads = 0;  // hardware concurrency
  std::vector<UniversalCell> parallel = RunUniversalExperiment(data, config);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].avg_squared_error, sequential[i].avg_squared_error);
  }
}

// ---- Golden-file regression (committed fixed-seed expected outputs) ----
//
// The runners must reproduce tests/experiments/golden_cells.h bit for
// bit — at 1 thread AND at 8 threads, since the parallel merge is
// deterministic by design. Regenerate (after an intentional protocol
// change) with DPHIST_PRINT_GOLDEN=1.

UniversalExperimentConfig GoldenUniversalConfig(std::int64_t threads) {
  UniversalExperimentConfig config;
  config.epsilons = {1.0, 0.1};
  config.trials = 5;
  config.ranges_per_size = 40;
  config.threads = threads;
  return config;
}

UnattributedExperimentConfig GoldenUnattributedConfig(std::int64_t threads) {
  UnattributedExperimentConfig config;
  config.epsilons = {1.0, 0.01};
  config.trials = 6;
  config.threads = threads;
  return config;
}

bool PrintGoldenRequested() {
  const char* env = std::getenv("DPHIST_PRINT_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenCellsTest, UniversalRunnerReproducesGoldenBitForBit) {
  Histogram data = TestData();
  for (std::int64_t threads : {1, 8}) {
    std::vector<UniversalCell> cells =
        RunUniversalExperiment(data, GoldenUniversalConfig(threads));
    if (PrintGoldenRequested() && threads == 1) {
      for (const UniversalCell& c : cells) {
        std::printf("    {%a, \"%s\", %lld, %a},\n", c.epsilon,
                    c.estimator.c_str(),
                    static_cast<long long>(c.range_size),
                    c.avg_squared_error);
      }
    }
    ASSERT_EQ(cells.size(), std::size(golden::kUniversalCells))
        << threads << " threads";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const golden::GoldenUniversalCell& want = golden::kUniversalCells[i];
      EXPECT_EQ(cells[i].epsilon, want.epsilon) << i;
      EXPECT_EQ(cells[i].estimator, want.estimator) << i;
      EXPECT_EQ(cells[i].range_size, want.range_size) << i;
      // Bit-identical, not merely close.
      EXPECT_EQ(cells[i].avg_squared_error, want.avg_squared_error)
          << "cell " << i << " (" << cells[i].estimator << ", eps "
          << cells[i].epsilon << ", size " << cells[i].range_size << ") at "
          << threads << " threads";
    }
  }
}

TEST(GoldenCellsTest, UnattributedRunnerReproducesGoldenBitForBit) {
  Histogram data = TestData();
  for (std::int64_t threads : {1, 8}) {
    std::vector<UnattributedCell> cells =
        RunUnattributedExperiment(data, GoldenUnattributedConfig(threads));
    if (PrintGoldenRequested() && threads == 1) {
      for (const UnattributedCell& c : cells) {
        std::printf("    {%a, UnattributedEstimator(%d), %a, %a},\n",
                    c.epsilon, static_cast<int>(c.estimator),
                    c.total_squared_error, c.per_count_error);
      }
    }
    ASSERT_EQ(cells.size(), std::size(golden::kUnattributedCells))
        << threads << " threads";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const golden::GoldenUnattributedCell& want =
          golden::kUnattributedCells[i];
      EXPECT_EQ(cells[i].epsilon, want.epsilon) << i;
      EXPECT_EQ(cells[i].estimator, want.estimator) << i;
      EXPECT_EQ(cells[i].total_squared_error, want.total_squared_error)
          << "cell " << i << " at " << threads << " threads";
      EXPECT_EQ(cells[i].per_count_error, want.per_count_error)
          << "cell " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace dphist
