// The parallel experiment runners must be bit-identical to the sequential
// run: trial Rngs are forked up front in trial order and partial results
// merged deterministically, so the thread count can never change a cell.

#include <gtest/gtest.h>

#include <vector>

#include "data/social_network.h"
#include "experiments/runner.h"

namespace dphist {
namespace {

Histogram TestData() {
  SocialNetworkConfig config;
  config.num_nodes = 300;
  config.edges_per_node = 3;
  return GenerateSocialNetworkDegrees(config);
}

TEST(ParallelRunnerTest, UniversalCellsBitIdenticalAcrossThreadCounts) {
  Histogram data = TestData();
  UniversalExperimentConfig config;
  config.epsilons = {1.0, 0.1};
  config.trials = 6;
  config.ranges_per_size = 50;

  config.threads = 1;
  std::vector<UniversalCell> sequential = RunUniversalExperiment(data, config);
  ASSERT_FALSE(sequential.empty());
  for (std::int64_t threads : {4, 8}) {
    config.threads = threads;
    std::vector<UniversalCell> parallel = RunUniversalExperiment(data, config);
    ASSERT_EQ(parallel.size(), sequential.size()) << threads << " threads";
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].epsilon, sequential[i].epsilon);
      EXPECT_EQ(parallel[i].estimator, sequential[i].estimator);
      EXPECT_EQ(parallel[i].range_size, sequential[i].range_size);
      // Bit-identical, not merely close.
      EXPECT_EQ(parallel[i].avg_squared_error, sequential[i].avg_squared_error)
          << "cell " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelRunnerTest, UnattributedCellsBitIdenticalAcrossThreadCounts) {
  Histogram data = TestData();
  UnattributedExperimentConfig config;
  config.epsilons = {1.0, 0.01};
  config.trials = 8;

  config.threads = 1;
  std::vector<UnattributedCell> sequential =
      RunUnattributedExperiment(data, config);
  ASSERT_FALSE(sequential.empty());
  for (std::int64_t threads : {4, 8}) {
    config.threads = threads;
    std::vector<UnattributedCell> parallel =
        RunUnattributedExperiment(data, config);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].epsilon, sequential[i].epsilon);
      EXPECT_EQ(parallel[i].estimator, sequential[i].estimator);
      EXPECT_EQ(parallel[i].total_squared_error,
                sequential[i].total_squared_error)
          << "cell " << i << " at " << threads << " threads";
      EXPECT_EQ(parallel[i].per_count_error, sequential[i].per_count_error);
    }
  }
}

TEST(ParallelRunnerTest, HardwareConcurrencyKnobAlsoBitIdentical) {
  Histogram data = TestData();
  UniversalExperimentConfig config;
  config.epsilons = {0.1};
  config.trials = 3;
  config.ranges_per_size = 20;

  config.threads = 1;
  std::vector<UniversalCell> sequential = RunUniversalExperiment(data, config);
  config.threads = 0;  // hardware concurrency
  std::vector<UniversalCell> parallel = RunUniversalExperiment(data, config);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].avg_squared_error, sequential[i].avg_squared_error);
  }
}

}  // namespace
}  // namespace dphist
