#include "tree/tree_layout.h"

#include <gtest/gtest.h>

#include <tuple>

namespace dphist {
namespace {

TEST(TreeLayoutTest, PaperExampleBinaryTreeOfFourLeaves) {
  // Fig. 4: k = 2 over four addresses; height ell = 3, seven nodes.
  TreeLayout tree(4, 2);
  EXPECT_EQ(tree.branching(), 2);
  EXPECT_EQ(tree.height(), 3);
  EXPECT_EQ(tree.leaf_count(), 4);
  EXPECT_EQ(tree.node_count(), 7);
}

TEST(TreeLayoutTest, PadsToNextPower) {
  TreeLayout tree(5, 2);
  EXPECT_EQ(tree.leaf_count(), 8);
  EXPECT_EQ(tree.requested_leaf_count(), 5);
  EXPECT_EQ(tree.height(), 4);
  EXPECT_EQ(tree.node_count(), 15);
}

TEST(TreeLayoutTest, SingleLeafDegenerateTree) {
  TreeLayout tree(1, 2);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_TRUE(tree.IsRoot(0));
  EXPECT_TRUE(tree.IsLeaf(0));
}

TEST(TreeLayoutTest, ParentChildRelations) {
  TreeLayout tree(4, 2);
  EXPECT_EQ(tree.FirstChild(0), 1);
  EXPECT_EQ(tree.FirstChild(1), 3);
  EXPECT_EQ(tree.FirstChild(2), 5);
  EXPECT_EQ(tree.Parent(1), 0);
  EXPECT_EQ(tree.Parent(2), 0);
  EXPECT_EQ(tree.Parent(5), 2);
  EXPECT_EQ(tree.Parent(6), 2);
  std::vector<std::int64_t> kids = tree.Children(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 3);
  EXPECT_EQ(kids[1], 4);
}

TEST(TreeLayoutTest, DepthAndLevels) {
  TreeLayout tree(8, 2);  // height 4, 15 nodes
  EXPECT_EQ(tree.Depth(0), 0);
  EXPECT_EQ(tree.Depth(1), 1);
  EXPECT_EQ(tree.Depth(2), 1);
  EXPECT_EQ(tree.Depth(3), 2);
  EXPECT_EQ(tree.Depth(7), 3);
  EXPECT_EQ(tree.Depth(14), 3);
  EXPECT_EQ(tree.LevelStart(0), 0);
  EXPECT_EQ(tree.LevelStart(3), 7);
  EXPECT_EQ(tree.LevelSize(0), 1);
  EXPECT_EQ(tree.LevelSize(3), 8);
}

TEST(TreeLayoutTest, NodeRangesPartitionEachLevel) {
  TreeLayout tree(16, 2);
  for (std::int64_t d = 0; d < tree.height(); ++d) {
    std::int64_t expected_lo = 0;
    for (std::int64_t i = 0; i < tree.LevelSize(d); ++i) {
      Interval r = tree.NodeRange(tree.LevelStart(d) + i);
      EXPECT_EQ(r.lo(), expected_lo);
      expected_lo = r.hi() + 1;
    }
    EXPECT_EQ(expected_lo, tree.leaf_count());
  }
}

TEST(TreeLayoutTest, ParentRangeIsUnionOfChildRanges) {
  TreeLayout tree(27, 3);
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    if (tree.IsLeaf(v)) continue;
    Interval parent = tree.NodeRange(v);
    std::vector<std::int64_t> kids = tree.Children(v);
    EXPECT_EQ(tree.NodeRange(kids.front()).lo(), parent.lo());
    EXPECT_EQ(tree.NodeRange(kids.back()).hi(), parent.hi());
    for (std::size_t i = 1; i < kids.size(); ++i) {
      EXPECT_EQ(tree.NodeRange(kids[i]).lo(),
                tree.NodeRange(kids[i - 1]).hi() + 1);
    }
  }
}

TEST(TreeLayoutTest, LeafNodeRoundTrip) {
  TreeLayout tree(9, 3);
  for (std::int64_t pos = 0; pos < tree.leaf_count(); ++pos) {
    std::int64_t leaf = tree.LeafNode(pos);
    EXPECT_TRUE(tree.IsLeaf(leaf));
    EXPECT_EQ(tree.LeafPosition(leaf), pos);
    EXPECT_EQ(tree.NodeRange(leaf), Interval::Unit(pos));
  }
}

TEST(TreeLayoutTest, LeavesUnderMatchesRangeLength) {
  TreeLayout tree(64, 4);
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    EXPECT_EQ(tree.LeavesUnder(v), tree.NodeRange(v).Length());
  }
}

class TreeGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(TreeGeometrySweep, NodeCountClosedForm) {
  auto [leaves, k] = GetParam();
  TreeLayout tree(leaves, k);
  // m = (k^ell - 1) / (k - 1).
  std::int64_t expected = 0;
  std::int64_t width = 1;
  for (std::int64_t d = 0; d < tree.height(); ++d) {
    expected += width;
    width *= k;
  }
  EXPECT_EQ(tree.node_count(), expected);
  EXPECT_GE(tree.leaf_count(), leaves);
  EXPECT_LT(tree.leaf_count(), leaves * k);
}

TEST_P(TreeGeometrySweep, EveryNonRootHasConsistentParent) {
  auto [leaves, k] = GetParam();
  TreeLayout tree(leaves, k);
  for (std::int64_t v = 1; v < tree.node_count(); ++v) {
    std::int64_t p = tree.Parent(v);
    EXPECT_EQ(tree.Depth(p), tree.Depth(v) - 1);
    EXPECT_TRUE(tree.NodeRange(p).Covers(tree.NodeRange(v)));
    bool found = false;
    for (std::int64_t c : tree.Children(p)) {
      if (c == v) found = true;
    }
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeGeometrySweep,
    ::testing::Values(std::make_tuple(std::int64_t{1}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{2}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{7}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{16}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{100}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{9}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{50}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{64}, std::int64_t{4}),
                      std::make_tuple(std::int64_t{17}, std::int64_t{5})));

TEST(TreeLayoutDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(TreeLayout(0, 2), "at least one leaf");
  EXPECT_DEATH(TreeLayout(4, 1), "branching");
}

}  // namespace
}  // namespace dphist
