// Property tests for the allocation-free range visitor: ForEachRangeNode,
// the caller-owned-buffer DecomposeRangeInto, and the DecomposeRange
// wrapper must agree on every tree shape and range. Because all three
// now share one engine, the oracle below re-implements the original
// recursive decomposition independently — comparing the visitor against
// itself would prove nothing.

#include "tree/range_decomposition.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"

namespace dphist {
namespace {

/// The pre-visitor recursive formulation, kept verbatim as an
/// independent reference: emit any node the range covers, recurse into
/// overlapping children otherwise. DFS order == increasing interval
/// order, which is also the visitor's documented emission order.
void ReferenceDecomposeInto(const TreeLayout& tree, std::int64_t node,
                            const Interval& range,
                            std::vector<std::int64_t>* out) {
  Interval covered = tree.NodeRange(node);
  if (!covered.Overlaps(range)) return;
  if (range.Covers(covered)) {
    out->push_back(node);
    return;
  }
  ASSERT_FALSE(tree.IsLeaf(node));
  std::int64_t first = tree.FirstChild(node);
  for (std::int64_t i = 0; i < tree.branching(); ++i) {
    ReferenceDecomposeInto(tree, first + i, range, out);
  }
}

std::vector<std::int64_t> ReferenceDecomposition(const TreeLayout& tree,
                                                 const Interval& range) {
  std::vector<std::int64_t> out;
  ReferenceDecomposeInto(tree, 0, range, &out);
  return out;
}

std::vector<std::int64_t> CollectVisited(const TreeLayout& tree,
                                         const Interval& range) {
  std::vector<std::int64_t> visited;
  ForEachRangeNode(tree, range,
                   [&](std::int64_t v) { visited.push_back(v); });
  return visited;
}

TEST(RangeVisitorTest, MatchesRecursiveReferenceOnHandPickedRanges) {
  TreeLayout tree(16, 2);
  const Interval cases[] = {Interval(0, 15), Interval(0, 0), Interval(15, 15),
                            Interval(1, 14), Interval(4, 7),  Interval(3, 12),
                            Interval(0, 7),  Interval(8, 15), Interval(5, 5)};
  for (const Interval& range : cases) {
    EXPECT_EQ(CollectVisited(tree, range), ReferenceDecomposition(tree, range))
        << "range " << range.ToString();
  }
}

TEST(RangeVisitorTest, ScratchBufferVariantReusesCapacity) {
  TreeLayout tree(1024, 2);
  std::vector<std::int64_t> scratch;
  scratch.reserve(static_cast<std::size_t>(MaxDecompositionSize(tree)));
  const std::int64_t* stable_data = scratch.data();
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::int64_t lo = rng.NextInt(0, 1023);
    std::int64_t hi = rng.NextInt(lo, 1023);
    DecomposeRangeInto(tree, Interval(lo, hi), &scratch);
    EXPECT_EQ(scratch, ReferenceDecomposition(tree, Interval(lo, hi)));
    // MaxDecompositionSize bounds every decomposition, so a buffer
    // reserved once never reallocates.
    EXPECT_EQ(scratch.data(), stable_data);
  }
}

class RangeVisitorSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(RangeVisitorSweep, VisitsExactlyTheReferenceNodeSequence) {
  auto [leaves, k] = GetParam();
  TreeLayout tree(leaves, k);
  Rng rng(static_cast<std::uint64_t>(leaves * 131 + k));
  std::vector<std::int64_t> scratch;
  for (int trial = 0; trial < 300; ++trial) {
    std::int64_t lo = rng.NextInt(0, tree.leaf_count() - 1);
    std::int64_t hi = rng.NextInt(lo, tree.leaf_count() - 1);
    Interval range(lo, hi);
    std::vector<std::int64_t> reference = ReferenceDecomposition(tree, range);
    EXPECT_EQ(CollectVisited(tree, range), reference)
        << "visitor diverged on " << range.ToString() << " leaves=" << leaves
        << " k=" << k;
    DecomposeRangeInto(tree, range, &scratch);
    EXPECT_EQ(scratch, reference)
        << "scratch variant diverged on " << range.ToString();
    EXPECT_EQ(DecomposeRange(tree, range), reference)
        << "wrapper diverged on " << range.ToString();
    EXPECT_LE(static_cast<std::int64_t>(reference.size()),
              MaxDecompositionSize(tree));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RangeVisitorSweep,
    ::testing::Values(std::make_tuple(std::int64_t{1}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{2}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{16}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{1000}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{4096}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{81}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{100}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{256}, std::int64_t{4}),
                      std::make_tuple(std::int64_t{625}, std::int64_t{5}),
                      std::make_tuple(std::int64_t{343}, std::int64_t{7}),
                      std::make_tuple(std::int64_t{1331}, std::int64_t{11}),
                      std::make_tuple(std::int64_t{4096}, std::int64_t{16})));

TEST(RangeVisitorDeathTest, RejectsOutOfBounds) {
  TreeLayout tree(8, 2);
  EXPECT_DEATH(ForEachRangeNode(tree, Interval(0, 8), [](std::int64_t) {}),
               "outside");
}

}  // namespace
}  // namespace dphist
