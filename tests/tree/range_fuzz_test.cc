// Fuzz-style randomized sweep for the range-decomposition engine:
// adversarial branchings and domain sizes that are NOT powers of k (so
// the padded fringe and its off-by-one edges get exercised), with every
// decomposition cross-checked against a brute-force interval cover and
// the canonical minimality/ordering invariants.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "domain/interval.h"
#include "tree/range_decomposition.h"
#include "tree/tree_layout.h"

namespace dphist {
namespace {

/// Checks every structural invariant of a minimal decomposition of
/// `range`.
void CheckDecomposition(const TreeLayout& tree, const Interval& range,
                        const std::vector<std::int64_t>& nodes) {
  // Non-empty, within the node table.
  EXPECT_FALSE(nodes.empty());
  for (std::int64_t v : nodes) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, tree.node_count());
  }

  // Brute-force cover check: the node intervals, in emission order, must
  // be disjoint, in increasing order, and tile `range` exactly with no
  // gaps — position by position.
  std::int64_t cursor = range.lo();
  for (std::int64_t v : nodes) {
    Interval node_range = tree.NodeRange(v);
    EXPECT_EQ(node_range.lo(), cursor)
        << "gap or overlap before node " << v;
    cursor = node_range.hi() + 1;
  }
  EXPECT_EQ(cursor, range.hi() + 1) << "cover stops short of the range";

  // Minimality: no emitted node's parent is fully covered by the range
  // (otherwise the parent should have been emitted instead), which is
  // exactly the canonical minimal antichain.
  for (std::int64_t v : nodes) {
    if (tree.IsRoot(v)) continue;
    Interval parent_range = tree.NodeRange(tree.Parent(v));
    EXPECT_FALSE(range.Covers(parent_range))
        << "node " << v << " has a fully covered parent";
  }

  // The paper's size bound: at most 2(k-1)(ell-1) nodes for any range.
  EXPECT_LE(static_cast<std::int64_t>(nodes.size()),
            MaxDecompositionSize(tree));
}

/// Ranges that hit the padding edges of a tree over `requested` leaves:
/// unit ranges at both ends, the full requested domain, ranges ending
/// exactly at the requested boundary (where padded zeros begin), and the
/// full padded domain.
std::vector<Interval> AdversarialRanges(const TreeLayout& tree,
                                        std::int64_t requested) {
  const std::int64_t padded = tree.leaf_count();
  std::vector<Interval> ranges = {
      Interval(0, 0),
      Interval(padded - 1, padded - 1),
      Interval(0, padded - 1),
  };
  if (requested > 1) {
    ranges.emplace_back(0, requested - 1);
    ranges.emplace_back(requested - 2, requested - 1);
    ranges.emplace_back(1, requested - 1);
  }
  if (requested < padded) {
    // Straddle the requested/padded boundary.
    ranges.emplace_back(requested - 1, requested);
    ranges.emplace_back(0, requested);
    ranges.emplace_back(requested, padded - 1);
  }
  return ranges;
}

TEST(RangeFuzzTest, RandomTreesAndRangesMatchBruteForceCover) {
  Rng rng(4242);
  int total_cases = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const std::int64_t k = rng.NextInt(2, 7);
    // Mostly non-powers of k; sizes up to a few thousand keep the brute
    // force cheap while spanning several tree levels.
    const std::int64_t requested = rng.NextInt(1, 3000);
    TreeLayout tree(requested, k);
    SCOPED_TRACE("k=" + std::to_string(k) +
                 " requested=" + std::to_string(requested));

    std::vector<Interval> ranges = AdversarialRanges(tree, requested);
    for (int extra = 0; extra < 12; ++extra) {
      std::int64_t lo = rng.NextInt(0, tree.leaf_count() - 1);
      ranges.emplace_back(lo, rng.NextInt(lo, tree.leaf_count() - 1));
    }

    std::vector<std::int64_t> via_visitor;
    std::vector<std::int64_t> via_into;
    for (const Interval& range : ranges) {
      SCOPED_TRACE("range " + range.ToString());
      via_visitor.clear();
      ForEachRangeNode(tree, range, [&](std::int64_t v) {
        via_visitor.push_back(v);
      });
      CheckDecomposition(tree, range, via_visitor);

      // All three entry points emit the identical node sequence.
      DecomposeRangeInto(tree, range, &via_into);
      EXPECT_EQ(via_into, via_visitor);
      EXPECT_EQ(DecomposeRange(tree, range), via_visitor);
      ++total_cases;
    }
  }
  // The sweep really ran (guards against silently empty loops).
  EXPECT_GT(total_cases, 2000);
}

TEST(RangeFuzzTest, PowerBoundaryDomains) {
  // Domains one off a power of k are the nastiest padding cases: the
  // requested boundary sits just beside a subtree boundary.
  Rng rng(11);
  for (std::int64_t k : {2, 3, 5}) {
    for (std::int64_t power = k; power <= 625 && power <= k * k * k * k;
         power *= k) {
      for (std::int64_t requested :
           {power - 1, power, power + 1}) {
        if (requested < 1) continue;
        TreeLayout tree(requested, k);
        SCOPED_TRACE("k=" + std::to_string(k) +
                     " requested=" + std::to_string(requested));
        for (const Interval& range : AdversarialRanges(tree, requested)) {
          std::vector<std::int64_t> nodes;
          DecomposeRangeInto(tree, range, &nodes);
          CheckDecomposition(tree, range, nodes);
        }
        // Exhaustive sweep for the smallest trees.
        if (tree.leaf_count() <= 32) {
          for (std::int64_t lo = 0; lo < tree.leaf_count(); ++lo) {
            for (std::int64_t hi = lo; hi < tree.leaf_count(); ++hi) {
              std::vector<std::int64_t> all;
              DecomposeRangeInto(tree, Interval(lo, hi), &all);
              CheckDecomposition(tree, Interval(lo, hi), all);
            }
          }
        }
      }
    }
  }
}

TEST(RangeFuzzTest, DegenerateSingleLeafTree) {
  TreeLayout tree(1, 2);
  std::vector<std::int64_t> nodes;
  DecomposeRangeInto(tree, Interval(0, 0), &nodes);
  EXPECT_EQ(nodes, (std::vector<std::int64_t>{0}));
}

}  // namespace
}  // namespace dphist
