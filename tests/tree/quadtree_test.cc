#include "tree/quadtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace dphist {
namespace {

TEST(MortonTest, KnownEncodings) {
  EXPECT_EQ(MortonEncode(0, 0), 0);
  EXPECT_EQ(MortonEncode(0, 1), 1);
  EXPECT_EQ(MortonEncode(1, 0), 2);
  EXPECT_EQ(MortonEncode(1, 1), 3);
  EXPECT_EQ(MortonEncode(0, 2), 4);
  EXPECT_EQ(MortonEncode(2, 0), 8);
  EXPECT_EQ(MortonEncode(3, 3), 15);
}

TEST(MortonTest, RoundTripsRandomCoordinates) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    std::int64_t row = rng.NextInt(0, (1 << 20) - 1);
    std::int64_t col = rng.NextInt(0, (1 << 20) - 1);
    std::int64_t r2, c2;
    MortonDecode(MortonEncode(row, col), &r2, &c2);
    EXPECT_EQ(r2, row);
    EXPECT_EQ(c2, col);
  }
}

TEST(MortonTest, QuadrantBlocksAreContiguous) {
  // All cells of any aligned 2^j x 2^j block form one contiguous Morton
  // range — the property the quadtree mapping relies on.
  for (std::int64_t block_side : {2, 4, 8}) {
    for (std::int64_t base_row = 0; base_row < 16; base_row += block_side) {
      for (std::int64_t base_col = 0; base_col < 16;
           base_col += block_side) {
        std::set<std::int64_t> indices;
        for (std::int64_t r = 0; r < block_side; ++r) {
          for (std::int64_t c = 0; c < block_side; ++c) {
            indices.insert(MortonEncode(base_row + r, base_col + c));
          }
        }
        EXPECT_EQ(*indices.rbegin() - *indices.begin() + 1,
                  static_cast<std::int64_t>(indices.size()))
            << "block at " << base_row << "," << base_col;
      }
    }
  }
}

TEST(QuadtreeLayoutTest, GeometryOfFourByFour) {
  QuadtreeLayout quad(4, 4);
  EXPECT_EQ(quad.side(), 4);
  EXPECT_EQ(quad.height(), 3);        // 16 leaves, k=4 -> 1 + 4 + 16
  EXPECT_EQ(quad.node_count(), 21);
  EXPECT_EQ(quad.NodeRect(0), Rect(0, 3, 0, 3));
}

TEST(QuadtreeLayoutTest, PadsRectangularGrids) {
  QuadtreeLayout quad(5, 3);
  EXPECT_EQ(quad.side(), 8);
  EXPECT_EQ(quad.rows(), 5);
  EXPECT_EQ(quad.cols(), 3);
  EXPECT_EQ(quad.height(), 4);  // 64 leaves
}

TEST(QuadtreeLayoutTest, ChildrenPartitionParentRect) {
  QuadtreeLayout quad(8, 8);
  const TreeLayout& tree = quad.tree();
  for (std::int64_t v = 0; v < quad.node_count(); ++v) {
    if (tree.IsLeaf(v)) continue;
    Rect parent = quad.NodeRect(v);
    std::int64_t child_area = 0;
    for (std::int64_t c : tree.Children(v)) {
      Rect child = quad.NodeRect(c);
      EXPECT_TRUE(parent.Covers(child));
      child_area += child.Area();
    }
    EXPECT_EQ(child_area, parent.Area());
    // Children are pairwise disjoint.
    std::vector<std::int64_t> kids = tree.Children(v);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      for (std::size_t j = i + 1; j < kids.size(); ++j) {
        EXPECT_FALSE(
            quad.NodeRect(kids[i]).Overlaps(quad.NodeRect(kids[j])));
      }
    }
  }
}

TEST(QuadtreeLayoutTest, LeafCellRoundTrip) {
  QuadtreeLayout quad(8, 8);
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 8; ++c) {
      std::int64_t leaf = quad.LeafNode(r, c);
      EXPECT_TRUE(quad.tree().IsLeaf(leaf));
      std::int64_t r2, c2;
      quad.LeafCell(leaf, &r2, &c2);
      EXPECT_EQ(r2, r);
      EXPECT_EQ(c2, c);
      EXPECT_EQ(quad.NodeRect(leaf), Rect(r, r, c, c));
    }
  }
}

void ExpectExactRectCover(const QuadtreeLayout& quad,
                          const std::vector<std::int64_t>& nodes,
                          const Rect& rect) {
  // Disjoint blocks whose total area matches and all inside the rect.
  std::int64_t area = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Rect block = quad.NodeRect(nodes[i]);
    EXPECT_TRUE(rect.Covers(block));
    area += block.Area();
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      EXPECT_FALSE(block.Overlaps(quad.NodeRect(nodes[j])));
    }
  }
  EXPECT_EQ(area, rect.Area());
}

TEST(QuadtreeDecompositionTest, AlignedBlocksAreSingleNodes) {
  QuadtreeLayout quad(8, 8);
  std::vector<std::int64_t> full = quad.DecomposeRect(Rect(0, 7, 0, 7));
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0], 0);
  std::vector<std::int64_t> quadrant = quad.DecomposeRect(Rect(4, 7, 0, 3));
  ASSERT_EQ(quadrant.size(), 1u);
  EXPECT_EQ(quad.NodeRect(quadrant[0]), Rect(4, 7, 0, 3));
}

TEST(QuadtreeDecompositionTest, SingleCell) {
  QuadtreeLayout quad(8, 8);
  std::vector<std::int64_t> nodes = quad.DecomposeRect(Rect(5, 5, 2, 2));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], quad.LeafNode(5, 2));
}

TEST(QuadtreeDecompositionTest, ExhaustiveSmallGrid) {
  QuadtreeLayout quad(8, 8);
  for (std::int64_t r0 = 0; r0 < 8; ++r0) {
    for (std::int64_t r1 = r0; r1 < 8; ++r1) {
      for (std::int64_t c0 = 0; c0 < 8; ++c0) {
        for (std::int64_t c1 = c0; c1 < 8; ++c1) {
          Rect rect(r0, r1, c0, c1);
          ExpectExactRectCover(quad, quad.DecomposeRect(rect), rect);
        }
      }
    }
  }
}

TEST(QuadtreeDecompositionTest, RandomRectsOnLargerGrid) {
  QuadtreeLayout quad(64, 64);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t r0 = rng.NextInt(0, 63);
    std::int64_t r1 = rng.NextInt(r0, 63);
    std::int64_t c0 = rng.NextInt(0, 63);
    std::int64_t c1 = rng.NextInt(c0, 63);
    Rect rect(r0, r1, c0, c1);
    std::vector<std::int64_t> nodes = quad.DecomposeRect(rect);
    ExpectExactRectCover(quad, nodes, rect);
    // Minimality: no complete sibling quartet may appear.
    std::vector<std::int64_t> sorted = nodes;
    std::sort(sorted.begin(), sorted.end());
    for (std::int64_t v : sorted) {
      if (v == 0) continue;
      std::int64_t parent = quad.tree().Parent(v);
      bool all_present = true;
      for (std::int64_t sib : quad.tree().Children(parent)) {
        if (!std::binary_search(sorted.begin(), sorted.end(), sib)) {
          all_present = false;
          break;
        }
      }
      EXPECT_FALSE(all_present);
    }
  }
}

TEST(QuadtreeDecompositionDeathTest, RejectsOutOfBounds) {
  QuadtreeLayout quad(8, 8);
  EXPECT_DEATH(quad.DecomposeRect(Rect(0, 8, 0, 7)), "outside");
}

}  // namespace
}  // namespace dphist
