#include "tree/range_decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"

namespace dphist {
namespace {

void ExpectExactCover(const TreeLayout& tree,
                      const std::vector<std::int64_t>& nodes,
                      const Interval& range) {
  // Disjoint and exactly covering: sorted node ranges tile the query range.
  std::vector<Interval> ranges;
  ranges.reserve(nodes.size());
  for (std::int64_t v : nodes) ranges.push_back(tree.NodeRange(v));
  std::sort(ranges.begin(), ranges.end(),
            [](const Interval& a, const Interval& b) { return a.lo() < b.lo(); });
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().lo(), range.lo());
  EXPECT_EQ(ranges.back().hi(), range.hi());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].lo(), ranges[i - 1].hi() + 1);
  }
}

TEST(RangeDecompositionTest, FullRangeIsRootOnly) {
  TreeLayout tree(16, 2);
  std::vector<std::int64_t> nodes =
      DecomposeRange(tree, Interval(0, 15));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 0);
}

TEST(RangeDecompositionTest, SingleLeaf) {
  TreeLayout tree(8, 2);
  std::vector<std::int64_t> nodes = DecomposeRange(tree, Interval::Unit(5));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], tree.LeafNode(5));
}

TEST(RangeDecompositionTest, AlignedSubtree) {
  TreeLayout tree(8, 2);
  // [4, 7] is exactly the right child of the root's right child? No:
  // [4, 7] is the right child of the root (depth 1, second node).
  std::vector<std::int64_t> nodes = DecomposeRange(tree, Interval(4, 7));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 2);
}

TEST(RangeDecompositionTest, PaperWorstCaseMiddleRange) {
  // Theorem 4 (iv)'s witness: all leaves except the two extremes. In a
  // height-4 binary tree (8 leaves), [1, 6] needs 2(k-1)(ell-1) - k =
  // 2*3 - 2 = 4 nodes.
  TreeLayout tree(8, 2);
  std::vector<std::int64_t> nodes = DecomposeRange(tree, Interval(1, 6));
  EXPECT_EQ(nodes.size(), 4u);
  ExpectExactCover(tree, nodes, Interval(1, 6));
}

TEST(RangeDecompositionTest, MinimalityOnSmallTreeByBruteForce) {
  // For every range of a 16-leaf binary tree, no strictly smaller exact
  // cover exists among all antichains — verified by checking the greedy
  // cover never uses two siblings' worth of children where the parent
  // would do.
  TreeLayout tree(16, 2);
  for (std::int64_t lo = 0; lo < 16; ++lo) {
    for (std::int64_t hi = lo; hi < 16; ++hi) {
      std::vector<std::int64_t> nodes =
          DecomposeRange(tree, Interval(lo, hi));
      ExpectExactCover(tree, nodes, Interval(lo, hi));
      // Minimality: no full sibling group may appear (their parent would
      // have been chosen instead).
      std::vector<std::int64_t> sorted = nodes;
      std::sort(sorted.begin(), sorted.end());
      for (std::int64_t v : sorted) {
        if (v == 0) continue;
        std::int64_t parent = tree.Parent(v);
        bool all_siblings_present = true;
        for (std::int64_t sib : tree.Children(parent)) {
          if (!std::binary_search(sorted.begin(), sorted.end(), sib)) {
            all_siblings_present = false;
            break;
          }
        }
        EXPECT_FALSE(all_siblings_present)
            << "children of " << parent << " all present; not minimal";
      }
    }
  }
}

class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(DecompositionSweep, RandomRangesCoverExactlyWithinBound) {
  auto [leaves, k] = GetParam();
  TreeLayout tree(leaves, k);
  Rng rng(static_cast<std::uint64_t>(leaves * 31 + k));
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t lo = rng.NextInt(0, tree.leaf_count() - 1);
    std::int64_t hi = rng.NextInt(lo, tree.leaf_count() - 1);
    Interval range(lo, hi);
    std::vector<std::int64_t> nodes = DecomposeRange(tree, range);
    ExpectExactCover(tree, nodes, range);
    EXPECT_LE(static_cast<std::int64_t>(nodes.size()),
              MaxDecompositionSize(tree));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionSweep,
    ::testing::Values(std::make_tuple(std::int64_t{2}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{16}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{1024}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{1000}, std::int64_t{2}),
                      std::make_tuple(std::int64_t{81}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{100}, std::int64_t{3}),
                      std::make_tuple(std::int64_t{256}, std::int64_t{4}),
                      std::make_tuple(std::int64_t{125}, std::int64_t{5})));

TEST(RangeDecompositionTest, DecompositionSumsMatchDirectCounts) {
  TreeLayout tree(32, 2);
  Rng rng(3);
  // Node values built from random leaf counts.
  std::vector<double> leaf(32);
  for (double& v : leaf) v = rng.NextUniform(0, 9);
  std::vector<double> node(static_cast<std::size_t>(tree.node_count()), 0.0);
  for (std::int64_t pos = 0; pos < 32; ++pos) {
    node[static_cast<std::size_t>(tree.LeafNode(pos))] = leaf[pos];
  }
  for (std::int64_t v = tree.node_count() - 1; v > 0; --v) {
    node[static_cast<std::size_t>(tree.Parent(v))] +=
        node[static_cast<std::size_t>(v)];
  }
  for (int trial = 0; trial < 100; ++trial) {
    std::int64_t lo = rng.NextInt(0, 31);
    std::int64_t hi = rng.NextInt(lo, 31);
    double from_decomposition = 0.0;
    for (std::int64_t v : DecomposeRange(tree, Interval(lo, hi))) {
      from_decomposition += node[static_cast<std::size_t>(v)];
    }
    double direct = 0.0;
    for (std::int64_t i = lo; i <= hi; ++i) direct += leaf[i];
    EXPECT_NEAR(from_decomposition, direct, 1e-9);
  }
}

TEST(RangeDecompositionDeathTest, RejectsOutOfBounds) {
  TreeLayout tree(8, 2);
  EXPECT_DEATH(DecomposeRange(tree, Interval(0, 8)), "outside");
}

}  // namespace
}  // namespace dphist
