#include "query/unit_query.h"

#include "common/check.h"

namespace dphist {

UnitQuery::UnitQuery(std::int64_t domain_size) : domain_size_(domain_size) {
  DPHIST_CHECK(domain_size > 0);
}

std::vector<double> UnitQuery::Evaluate(const Histogram& data) const {
  DPHIST_CHECK_MSG(data.size() == domain_size_,
                   "data domain does not match query domain");
  return data.counts();
}

}  // namespace dphist
