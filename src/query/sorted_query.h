// The sorted query sequence S (Section 3): the unit counts of L in rank
// (ascending) order — the unattributed histogram.
//
// Sensitivity is 1 (Proposition 3): adding a record turns some count x
// into x+1; placing the incremented value at the *last* position holding x
// keeps the sequence sorted, so exactly one position changes by one.

#ifndef DPHIST_QUERY_SORTED_QUERY_H_
#define DPHIST_QUERY_SORTED_QUERY_H_

#include "query/query_sequence.h"

namespace dphist {

/// Rank-ordered unit counts; answers satisfy S[i] <= S[i+1] by definition.
class SortedQuery : public QuerySequence {
 public:
  /// Builds S over a domain of `domain_size` positions.
  explicit SortedQuery(std::int64_t domain_size);

  std::int64_t size() const override { return domain_size_; }
  std::vector<double> Evaluate(const Histogram& data) const override;
  double Sensitivity() const override { return 1.0; }
  std::string Name() const override { return "S"; }

 private:
  std::int64_t domain_size_;
};

}  // namespace dphist

#endif  // DPHIST_QUERY_SORTED_QUERY_H_
