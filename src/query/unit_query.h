// The unit-length query sequence L (Section 2):
//   L = < c([x1]), ..., c([xn]) >
// one counting query per domain position. Sensitivity 1 (Example 2):
// adding or removing a record changes exactly one count by exactly one.

#ifndef DPHIST_QUERY_UNIT_QUERY_H_
#define DPHIST_QUERY_UNIT_QUERY_H_

#include "query/query_sequence.h"

namespace dphist {

/// The conventional histogram query: all unit-length counts in order.
class UnitQuery : public QuerySequence {
 public:
  /// Builds L over a domain of `domain_size` positions.
  explicit UnitQuery(std::int64_t domain_size);

  std::int64_t size() const override { return domain_size_; }
  std::vector<double> Evaluate(const Histogram& data) const override;
  double Sensitivity() const override { return 1.0; }
  std::string Name() const override { return "L"; }

 private:
  std::int64_t domain_size_;
};

}  // namespace dphist

#endif  // DPHIST_QUERY_UNIT_QUERY_H_
