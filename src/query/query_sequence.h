// Query sequences (Section 2): vectors of counting queries with a known
// L1 sensitivity.
//
// A QuerySequence knows how to evaluate itself on a Histogram (producing
// the true answer Q(I)) and what its sensitivity Delta-Q is (Definition
// 2.2). The Laplace mechanism (mechanism/laplace_mechanism.h) turns any
// QuerySequence into an epsilon-differentially-private randomized answer.

#ifndef DPHIST_QUERY_QUERY_SEQUENCE_H_
#define DPHIST_QUERY_QUERY_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "domain/histogram.h"

namespace dphist {

/// A sequence of counting queries over one ordered domain.
class QuerySequence {
 public:
  virtual ~QuerySequence() = default;

  /// Number of counting queries in the sequence (the d of Proposition 1).
  virtual std::int64_t size() const = 0;

  /// The true answer Q(I) on the given data.
  virtual std::vector<double> Evaluate(const Histogram& data) const = 0;

  /// The L1 sensitivity Delta-Q: the largest possible L1 change of the
  /// answer vector when one record is added to or removed from the data.
  virtual double Sensitivity() const = 0;

  /// Short name ("L", "H", "S") for reports.
  virtual std::string Name() const = 0;
};

}  // namespace dphist

#endif  // DPHIST_QUERY_QUERY_SEQUENCE_H_
