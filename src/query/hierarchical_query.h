// The hierarchical query sequence H (Section 4): interval counts for every
// node of a k-ary tree over the domain, in BFS order.
//
// Sensitivity is the tree height ell (Proposition 4): one record lies in
// exactly one leaf interval and in each ancestor interval, so adding or
// removing it changes exactly ell counts by one each.

#ifndef DPHIST_QUERY_HIERARCHICAL_QUERY_H_
#define DPHIST_QUERY_HIERARCHICAL_QUERY_H_

#include "query/query_sequence.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Tree-of-intervals query; answers are one count per tree node.
class HierarchicalQuery : public QuerySequence {
 public:
  /// Builds H over a domain of `domain_size` positions with branching
  /// factor `branching` (>= 2). The domain is padded inside the tree.
  HierarchicalQuery(std::int64_t domain_size, std::int64_t branching);

  /// The tree geometry shared with inference and the range engine.
  const TreeLayout& tree() const { return tree_; }

  /// The caller's domain size (pre-padding).
  std::int64_t domain_size() const { return domain_size_; }

  std::int64_t size() const override { return tree_.node_count(); }

  /// Counts for every node: leaf counts are the data counts (zero in the
  /// padding), internal counts are exact sums of their children.
  std::vector<double> Evaluate(const Histogram& data) const override;

  double Sensitivity() const override {
    return static_cast<double>(tree_.height());
  }

  std::string Name() const override { return "H"; }

 private:
  std::int64_t domain_size_;
  TreeLayout tree_;
};

}  // namespace dphist

#endif  // DPHIST_QUERY_HIERARCHICAL_QUERY_H_
