#include "query/hierarchical_query.h"

#include "common/check.h"

namespace dphist {

HierarchicalQuery::HierarchicalQuery(std::int64_t domain_size,
                                     std::int64_t branching)
    : domain_size_(domain_size), tree_(domain_size, branching) {}

std::vector<double> HierarchicalQuery::Evaluate(const Histogram& data) const {
  DPHIST_CHECK_MSG(data.size() == domain_size_,
                   "data domain does not match query domain");
  std::vector<double> answers(
      static_cast<std::size_t>(tree_.node_count()), 0.0);
  // Fill leaves (padding stays zero), then accumulate bottom-up; children
  // have larger ids than parents so one reverse scan suffices.
  for (std::int64_t pos = 0; pos < domain_size_; ++pos) {
    answers[static_cast<std::size_t>(tree_.LeafNode(pos))] = data.At(pos);
  }
  for (std::int64_t v = tree_.node_count() - 1; v > 0; --v) {
    answers[static_cast<std::size_t>(tree_.Parent(v))] +=
        answers[static_cast<std::size_t>(v)];
  }
  return answers;
}

}  // namespace dphist
