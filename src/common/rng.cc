#include "common/rng.h"

#include "common/check.h"

namespace dphist {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

double Rng::NextDouble() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::NextOpenDouble() {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return u;
}

double Rng::NextUniform(double lo, double hi) {
  DPHIST_CHECK(lo < hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  DPHIST_CHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::NextGaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

std::int64_t Rng::NextPoisson(double mean) {
  DPHIST_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool Rng::NextBernoulli(double p) {
  DPHIST_CHECK(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::Fork() {
  // Draw two words so forked streams decorrelate even for adjacent seeds.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace dphist
