#include "common/laplace.h"

#include <cmath>

#include "common/check.h"

namespace dphist {

LaplaceDistribution::LaplaceDistribution(double scale) : scale_(scale) {
  DPHIST_CHECK_MSG(scale > 0.0, "Laplace scale must be positive");
}

double LaplaceDistribution::Pdf(double x) const {
  return std::exp(-std::abs(x) / scale_) / (2.0 * scale_);
}

double LaplaceDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / scale_);
  return 1.0 - 0.5 * std::exp(-x / scale_);
}

double LaplaceDistribution::Quantile(double u) const {
  DPHIST_CHECK(u > 0.0 && u < 1.0);
  if (u < 0.5) return scale_ * std::log(2.0 * u);
  return -scale_ * std::log(2.0 * (1.0 - u));
}

double LaplaceDistribution::Sample(Rng* rng) const {
  DPHIST_CHECK(rng != nullptr);
  return Quantile(rng->NextOpenDouble());
}

std::vector<double> LaplaceDistribution::SampleVector(std::size_t n,
                                                      Rng* rng) const {
  std::vector<double> out(n);
  SampleInto(out.data(), n, rng);
  return out;
}

void LaplaceDistribution::SampleInto(double* out, std::size_t n,
                                     Rng* rng) const {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK(n == 0 || out != nullptr);
  for (std::size_t i = 0; i < n; ++i) out[i] = Quantile(rng->NextOpenDouble());
}

void LaplaceDistribution::AddSamplesTo(double* values, std::size_t n,
                                       Rng* rng) const {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK(n == 0 || values != nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] += Quantile(rng->NextOpenDouble());
  }
}

}  // namespace dphist
