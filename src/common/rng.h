// Deterministic random number generation.
//
// All randomness in dphist flows through Rng so that every experiment is
// reproducible from a single seed. Rng wraps std::mt19937_64 and exposes the
// handful of primitive draws the library needs; distribution-specific
// samplers (Laplace, Zipf, ...) build on these.

#ifndef DPHIST_COMMON_RNG_H_
#define DPHIST_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace dphist {

/// Deterministic pseudo-random source. Not thread-safe; use one per thread.
class Rng {
 public:
  /// Seeds the generator. The default seed is fixed so that callers who do
  /// not care about seeding still get reproducible runs.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// A double drawn uniformly from [0, 1).
  double NextDouble();

  /// A double drawn uniformly from the open interval (0, 1). Useful for
  /// inverse-CDF sampling where log(0) must be avoided.
  double NextOpenDouble();

  /// A double drawn uniformly from [lo, hi). Requires lo < hi.
  double NextUniform(double lo, double hi);

  /// An integer drawn uniformly from [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// A sample from the standard normal distribution.
  double NextGaussian();

  /// A sample from Poisson(mean). Requires mean >= 0.
  std::int64_t NextPoisson(double mean);

  /// A sample from Bernoulli(p) as a bool. Requires 0 <= p <= 1.
  bool NextBernoulli(double p);

  /// Derives an independent child generator; useful for giving each trial
  /// of an experiment its own stream while keeping the parent reproducible.
  Rng Fork();

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dphist

#endif  // DPHIST_COMMON_RNG_H_
