#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace dphist {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  auto now = std::chrono::system_clock::now();
  std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&t, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %s\n", stamp, LevelName(level),
               message.c_str());
}

}  // namespace dphist
