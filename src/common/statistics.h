// Streaming and batch statistics used by the experiment harness and tests.

#ifndef DPHIST_COMMON_STATISTICS_H_
#define DPHIST_COMMON_STATISTICS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace dphist {

/// Welford-style streaming accumulator for mean and variance.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  std::size_t count() const { return count_; }
  /// Sample mean; 0 when empty.
  double Mean() const;
  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const;
  /// Square root of Variance().
  double StdDev() const;
  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }
  /// Largest observation; -inf when empty.
  double Max() const { return max_; }
  /// Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of `values`; 0 when empty.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance of `values`; 0 with fewer than two elements.
double Variance(const std::vector<double>& values);

/// The q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Requires a non-empty vector.
double Quantile(std::vector<double> values, double q);

/// Sum of squared differences between two equal-length vectors.
double SquaredError(const std::vector<double>& a, const std::vector<double>& b);

/// SquaredError / n: mean squared error per component.
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// L1 distance between two equal-length vectors.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// L2 (Euclidean) distance between two equal-length vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Largest absolute componentwise difference.
double LInfDistance(const std::vector<double>& a,
                    const std::vector<double>& b);

}  // namespace dphist

#endif  // DPHIST_COMMON_STATISTICS_H_
