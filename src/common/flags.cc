#include "common/flags.h"

#include <cstdlib>
#include <string>

namespace dphist {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` form: consume the next token unless it is also a flag.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback,
                             const std::string& env) const {
  auto it = values_.find(name);
  if (it != values_.end() && !it->second.empty()) return it->second;
  if (!env.empty()) {
    const char* v = std::getenv(env.c_str());
    if (v != nullptr && v[0] != '\0') return v;
  }
  return fallback;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t fallback,
                           const std::string& env) const {
  std::string s = GetString(name, "", env);
  if (s.empty()) return fallback;
  return std::strtoll(s.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback,
                        const std::string& env) const {
  std::string s = GetString(name, "", env);
  if (s.empty()) return fallback;
  return std::strtod(s.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  return false;
}

}  // namespace dphist
