#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.h"

namespace dphist {

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mu = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mu) * (v - mu);
  return ss / static_cast<double>(values.size() - 1);
}

double Quantile(std::vector<double> values, double q) {
  DPHIST_CHECK(!values.empty());
  DPHIST_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double SquaredError(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPHIST_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DPHIST_CHECK(!a.empty());
  return SquaredError(a, b) / static_cast<double>(a.size());
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  DPHIST_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(SquaredError(a, b));
}

double LInfDistance(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPHIST_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace dphist
