// The Laplace distribution Lap(b): density (1/2b) exp(-|x|/b).
//
// This is the noise distribution of the Laplace mechanism (Dwork et al.,
// TCC 2006; Proposition 1 of Hay et al.). Sampling uses the inverse CDF so
// a single uniform draw yields one noise value deterministically.

#ifndef DPHIST_COMMON_LAPLACE_H_
#define DPHIST_COMMON_LAPLACE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace dphist {

/// Zero-mean Laplace distribution with scale b > 0.
class LaplaceDistribution {
 public:
  /// Constructs Lap(scale). Requires scale > 0.
  explicit LaplaceDistribution(double scale);

  /// The scale parameter b.
  double scale() const { return scale_; }

  /// Variance of Lap(b), equal to 2 b^2.
  double Variance() const { return 2.0 * scale_ * scale_; }

  /// Density at x.
  double Pdf(double x) const;

  /// Cumulative distribution function at x.
  double Cdf(double x) const;

  /// Inverse CDF; maps u in (0,1) to the u-quantile.
  double Quantile(double u) const;

  /// Draws a single sample.
  double Sample(Rng* rng) const;

  /// Draws `n` i.i.d. samples.
  std::vector<double> SampleVector(std::size_t n, Rng* rng) const;

  /// Batched form: fills out[0..n) with i.i.d. samples. Consumes exactly
  /// the same rng stream as n calls to Sample, with no allocation.
  void SampleInto(double* out, std::size_t n, Rng* rng) const;

  /// Batched perturbation: adds an independent sample to each of
  /// values[0..n) in place — the Laplace-mechanism inner loop without an
  /// intermediate noise vector or output copy.
  void AddSamplesTo(double* values, std::size_t n, Rng* rng) const;

 private:
  double scale_;
};

}  // namespace dphist

#endif  // DPHIST_COMMON_LAPLACE_H_
