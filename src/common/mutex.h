// Annotated synchronization primitives for Clang thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so
// `GUARDED_BY(some_std_mutex)` is rejected by `-Wthread-safety` there.
// dphist::Mutex is the standard fix (the Chromium base::Lock / RocksDB
// port::Mutex pattern): a zero-overhead wrapper whose Lock/Unlock are
// annotated, making it a capability the analysis can track while the
// implementation stays plain std::mutex. All guarded members in this
// codebase use dphist::Mutex; raw std::mutex in annotated classes is
// rejected by dphist_lint.
//
//   class Counters {
//     void Add(std::uint64_t n) {
//       MutexLock lock(mutex_);
//       total_ += n;
//     }
//     mutable Mutex mutex_;
//     std::uint64_t total_ DPHIST_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition waits use CondVar::Wait(mutex) inside an explicit
// `while (!predicate)` loop rather than the std::condition_variable
// predicate overload: the analysis treats a lambda as a separate
// function, so guarded reads inside a wait-predicate lambda could not
// be verified, while the explicit loop body is checked like any other
// locked region.

#ifndef DPHIST_COMMON_MUTEX_H_
#define DPHIST_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dphist {

/// std::mutex with thread-safety-analysis capability annotations.
/// Same cost, same semantics; exists so members can be GUARDED_BY it.
class DPHIST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DPHIST_ACQUIRE() { mu_.lock(); }
  void Unlock() DPHIST_RELEASE() { mu_.unlock(); }
  bool TryLock() DPHIST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documented escape hatch: tells the analysis this mutex is held (or
  /// that the access it guards is otherwise safe) from here to the end
  /// of the scope. std::mutex cannot check ownership at runtime, so
  /// this is purely an analysis assertion — every call site must carry
  /// a comment proving the access safe (e.g. data published via a
  /// release/acquire flag, or a structurally single-threaded phase).
  void AssertHeld() const DPHIST_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for dphist::Mutex, annotated as a scoped capability so the
/// analysis knows the mutex is held for exactly this object's lifetime.
class DPHIST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPHIST_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DPHIST_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with dphist::Mutex. Wait requires the
/// mutex (checked by the analysis) and atomically releases/reacquires
/// it exactly like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DPHIST_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the unique_lock's ownership claim so the caller's
    // (analysis-tracked) hold continues seamlessly.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime state: a pure analysis token for
/// exclusion protocols that are not mutexes. The EpochManager's busy
/// token is the canonical use — "at most one replan in flight" is
/// enforced at runtime by a bool under the manager's mutex, and this
/// phantom capability lets functions that must run inside that
/// exclusion window say so with DPHIST_REQUIRES(busy_cap_), so the
/// compiler proves every path that takes the token also releases it.
class DPHIST_CAPABILITY("token") PhantomCapability {
 public:
  PhantomCapability() = default;
  PhantomCapability(const PhantomCapability&) = delete;
  PhantomCapability& operator=(const PhantomCapability&) = delete;

  /// No-ops at runtime; callers pair them with the real (runtime)
  /// exclusion mechanism inside the same critical section.
  void Acquire() DPHIST_ACQUIRE() {}
  void Release() DPHIST_RELEASE() {}
  void AssertHeld() const DPHIST_ASSERT_CAPABILITY(this) {}
};

}  // namespace dphist

#endif  // DPHIST_COMMON_MUTEX_H_
