// Minimal command-line flag parsing for bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unrecognized flags are reported; positional arguments are collected.
// Values can also be supplied through environment variables (used by the
// bench suite so `DPHIST_TRIALS=50 ./bench_...` restores the paper's full
// protocol without editing commands).

#ifndef DPHIST_COMMON_FLAGS_H_
#define DPHIST_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dphist {

/// Parsed command line: flag key/value pairs plus positional arguments.
class Flags {
 public:
  /// Parses argv. Flags look like --key=value, --key value, or --key.
  static Flags Parse(int argc, const char* const* argv);

  /// True if the flag was supplied (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of the flag, or `fallback` if absent. If the flag is
  /// absent, the environment variable `env` (when non-empty) is consulted
  /// before the fallback.
  std::string GetString(const std::string& name, const std::string& fallback,
                        const std::string& env = "") const;

  /// Integer value of the flag with env-var and fallback handling as above.
  std::int64_t GetInt(const std::string& name, std::int64_t fallback,
                      const std::string& env = "") const;

  /// Double value of the flag with env-var and fallback handling as above.
  double GetDouble(const std::string& name, double fallback,
                   const std::string& env = "") const;

  /// Boolean value; a bare `--name` means true, `--name=false` means false.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]); empty if argc == 0.
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dphist

#endif  // DPHIST_COMMON_FLAGS_H_
