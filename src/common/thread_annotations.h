// Clang Thread Safety Analysis attribute macros.
//
// These wrap the Clang `-Wthread-safety` capability attributes so that
// locking invariants — which member a mutex guards, which functions
// acquire or require it — live in the type system instead of comments.
// Under Clang the annotations are enforced at compile time (CI builds
// the tree with `-Werror=thread-safety`); under every other compiler
// they expand to nothing, so gcc builds are unaffected.
//
// The raw std::mutex carries no capability attributes in libstdc++, so
// annotated code must guard members with dphist::Mutex (common/mutex.h),
// the annotated wrapper these macros were written for.
//
// Quick reference (see docs/ThreadSafetyAnalysis in the Clang manual):
//
//   DPHIST_GUARDED_BY(mu)    data member readable/writable only with mu
//   DPHIST_PT_GUARDED_BY(mu) pointee guarded by mu (pointer itself free)
//   DPHIST_REQUIRES(mu)      caller must hold mu across the call
//   DPHIST_ACQUIRE(mu)       function acquires mu and returns holding it
//   DPHIST_RELEASE(mu)       function releases a held mu
//   DPHIST_TRY_ACQUIRE(b,mu) acquires mu iff the function returns b
//   DPHIST_EXCLUDES(mu)      caller must NOT hold mu (deadlock guard)
//   DPHIST_ASSERT_CAPABILITY(mu)
//                            runtime-asserted escape: tells the analysis
//                            mu is held from here on. Every use must
//                            carry a comment proving why the access is
//                            safe (e.g. release/acquire publication).
//   DPHIST_CAPABILITY(name)  class declares a capability (a lock type)
//   DPHIST_SCOPED_CAPABILITY RAII type that acquires in its constructor
//
// Policy: DPHIST_NO_THREAD_SAFETY_ANALYSIS exists for completeness but
// is banned on serving-path functions (enforced by dphist_lint); use a
// documented DPHIST_ASSERT_CAPABILITY escape instead so the exemption is
// scoped to one access pattern, not a whole function body.

#ifndef DPHIST_COMMON_THREAD_ANNOTATIONS_H_
#define DPHIST_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define DPHIST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DPHIST_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

#define DPHIST_CAPABILITY(x) DPHIST_THREAD_ANNOTATION_(capability(x))

#define DPHIST_SCOPED_CAPABILITY DPHIST_THREAD_ANNOTATION_(scoped_lockable)

#define DPHIST_GUARDED_BY(x) DPHIST_THREAD_ANNOTATION_(guarded_by(x))

#define DPHIST_PT_GUARDED_BY(x) DPHIST_THREAD_ANNOTATION_(pt_guarded_by(x))

#define DPHIST_ACQUIRED_BEFORE(...) \
  DPHIST_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define DPHIST_ACQUIRED_AFTER(...) \
  DPHIST_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define DPHIST_REQUIRES(...) \
  DPHIST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define DPHIST_REQUIRES_SHARED(...) \
  DPHIST_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define DPHIST_ACQUIRE(...) \
  DPHIST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define DPHIST_ACQUIRE_SHARED(...) \
  DPHIST_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define DPHIST_RELEASE(...) \
  DPHIST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define DPHIST_RELEASE_SHARED(...) \
  DPHIST_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define DPHIST_TRY_ACQUIRE(...) \
  DPHIST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define DPHIST_TRY_ACQUIRE_SHARED(...) \
  DPHIST_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define DPHIST_EXCLUDES(...) DPHIST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define DPHIST_ASSERT_CAPABILITY(x) \
  DPHIST_THREAD_ANNOTATION_(assert_capability(x))

#define DPHIST_ASSERT_SHARED_CAPABILITY(x) \
  DPHIST_THREAD_ANNOTATION_(assert_shared_capability(x))

#define DPHIST_RETURN_CAPABILITY(x) DPHIST_THREAD_ANNOTATION_(lock_returned(x))

#define DPHIST_NO_THREAD_SAFETY_ANALYSIS \
  DPHIST_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DPHIST_COMMON_THREAD_ANNOTATIONS_H_
