// Tiny leveled logger for bench and example binaries.
//
// The library itself never logs (it is a pure computation library); logging
// exists so experiment drivers can narrate progress without each binary
// reinventing timestamp formatting.

#ifndef DPHIST_COMMON_LOGGING_H_
#define DPHIST_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dphist {

/// Severity for log messages.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum level.
LogLevel GetLogLevel();

/// Emits `message` at `level` to stderr with a timestamp prefix.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dphist

#define DPHIST_LOG(level) \
  ::dphist::internal::LogStream(::dphist::LogLevel::level)

#endif  // DPHIST_COMMON_LOGGING_H_
