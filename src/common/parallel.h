// Deterministic parallel task execution for the experiment harness.
//
// The runners parallelize over *trials*: each trial owns a pre-forked Rng
// and writes results into its own slot, so the outcome is a pure function
// of the task index regardless of which worker executes it or in what
// order. That is what keeps parallel runs bit-identical to sequential
// ones — ParallelFor itself only supplies the workers.

#ifndef DPHIST_COMMON_PARALLEL_H_
#define DPHIST_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace dphist {

/// Resolves a user-facing thread-count knob: values >= 1 pass through,
/// 0 (or negative) means "use the hardware concurrency" (at least 1).
std::int64_t ResolveThreadCount(std::int64_t configured);

/// Runs fn(i) for every i in [0, task_count), using up to `threads`
/// workers (the calling thread counts as one). Tasks must be independent:
/// they may share read-only state but must write only to disjoint slots.
/// threads <= 1 degenerates to a plain sequential loop with no thread
/// creation. Blocks until every task has finished. If a task throws, the
/// first exception is rethrown to the caller once all workers have
/// stopped (remaining queued tasks may be skipped).
void ParallelFor(std::int64_t task_count, std::int64_t threads,
                 const std::function<void(std::int64_t)>& fn);

}  // namespace dphist

#endif  // DPHIST_COMMON_PARALLEL_H_
