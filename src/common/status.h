// Lightweight Status / Result types for fallible operations.
//
// Following the RocksDB idiom, library entry points that can fail for
// reasons outside the caller's control (bad input files, out-of-range
// parameters supplied by a user) return Status or Result<T> instead of
// throwing. Programming errors (violated preconditions inside the library)
// are handled by DPHIST_CHECK in check.h.

#ifndef DPHIST_COMMON_STATUS_H_
#define DPHIST_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dphist {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a short human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

/// Outcome of an operation: OK or an error code with a message.
///
/// [[nodiscard]] on the class makes silently dropping a returned Status
/// a compile error everywhere (gcc/clang -Werror=unused-result in CI):
/// a fallible call either checks .ok() or is visibly, deliberately
/// discarded at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns an IoError status with the given message.
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for diagnostics.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. [[nodiscard]] for the
/// same reason as Status: ignoring a Result loses the error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result; `status` must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::Ok() when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// The held value. Must only be called when ok().
  const T& value() const& { return std::get<T>(payload_); }
  /// The held value (move form). Must only be called when ok().
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// The held value or `fallback` when in error state.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace dphist

#endif  // DPHIST_COMMON_STATUS_H_
