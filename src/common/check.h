// Precondition checking for programming errors.
//
// DPHIST_CHECK is always on (release included): the cost is negligible next
// to the numeric work this library does, and silent contract violations in a
// privacy library are worse than an abort. DPHIST_DCHECK compiles out in
// NDEBUG builds and is for hot inner loops only.

#ifndef DPHIST_COMMON_CHECK_H_
#define DPHIST_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dphist::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "dphist check failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dphist::internal

#define DPHIST_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dphist::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                   \
  } while (0)

#define DPHIST_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dphist::internal::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define DPHIST_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define DPHIST_DCHECK(expr) DPHIST_CHECK(expr)
#endif

#endif  // DPHIST_COMMON_CHECK_H_
