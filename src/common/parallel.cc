#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"

namespace dphist {

std::int64_t ResolveThreadCount(std::int64_t configured) {
  if (configured >= 1) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::int64_t>(hw);
}

void ParallelFor(std::int64_t task_count, std::int64_t threads,
                 const std::function<void(std::int64_t)>& fn) {
  DPHIST_CHECK(task_count >= 0);
  DPHIST_CHECK(fn != nullptr);
  if (task_count == 0) return;
  threads = std::min(ResolveThreadCount(threads), task_count);
  if (threads <= 1) {
    for (std::int64_t i = 0; i < task_count; ++i) fn(i);
    return;
  }

  // Work-stealing over a shared counter: workers pull the next unclaimed
  // task index until none remain. Scheduling order is nondeterministic,
  // but tasks write to disjoint slots so results never depend on it. A
  // task that throws would std::terminate its worker thread, so the
  // first exception is captured and rethrown to the caller after the
  // join — matching what the sequential path above does naturally.
  std::atomic<std::int64_t> next{0};
  // Locals cannot be GUARDED_BY (the analysis only tracks members), but
  // the annotated Mutex keeps the tree on one lock type.
  std::exception_ptr first_error;
  Mutex error_mutex;  // dphist-lint: allow(mutex-guard)
  auto worker = [&]() {
    while (true) {
      std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task_count) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (std::int64_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // The calling thread is the last worker.
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dphist
