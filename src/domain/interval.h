// Closed integer intervals over an ordered domain.
//
// The paper writes intervals as [x, y] with x, y in dom and abbreviates
// [x, x] as [x] (Section 2). We index domain positions 0..n-1.

#ifndef DPHIST_DOMAIN_INTERVAL_H_
#define DPHIST_DOMAIN_INTERVAL_H_

#include <cstdint>
#include <string>

namespace dphist {

/// Inclusive interval [lo, hi] of domain positions. Requires lo <= hi.
class Interval {
 public:
  /// Constructs [lo, hi]. Checked: lo <= hi.
  Interval(std::int64_t lo, std::int64_t hi);

  /// The unit interval [x, x].
  static Interval Unit(std::int64_t x) { return Interval(x, x); }

  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }

  /// Number of positions covered: hi - lo + 1.
  std::int64_t Length() const { return hi_ - lo_ + 1; }

  /// True iff position x lies in [lo, hi].
  bool Contains(std::int64_t x) const { return lo_ <= x && x <= hi_; }

  /// True iff `other` is fully inside this interval.
  bool Covers(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  /// True iff the two intervals share at least one position.
  bool Overlaps(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// True iff the two intervals are adjacent or overlapping (their union
  /// is a single interval).
  bool Touches(const Interval& other) const {
    return lo_ <= other.hi_ + 1 && other.lo_ <= hi_ + 1;
  }

  bool operator==(const Interval& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

  /// Renders "[lo, hi]".
  std::string ToString() const;

 private:
  std::int64_t lo_;
  std::int64_t hi_;
};

}  // namespace dphist

#endif  // DPHIST_DOMAIN_INTERVAL_H_
