// Histogram: per-position counts over an ordered domain.
//
// A Histogram is the library's stand-in for the private database instance
// I: the vector of unit-length counts L(I) is a sufficient statistic for
// every query sequence the paper considers (L, H, S are all functions of
// it), so algorithms consume Histogram rather than raw tuples. Counts are
// stored as doubles so the same container carries true (integral) counts,
// noisy answers, and inferred estimates.

#ifndef DPHIST_DOMAIN_HISTOGRAM_H_
#define DPHIST_DOMAIN_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "domain/domain.h"
#include "domain/interval.h"

namespace dphist {

/// Counts over an ordered domain, with O(1) range sums after the first
/// range query (lazy prefix table, invalidated on mutation).
///
/// Thread safety: all const accessors are safe to call concurrently from
/// any number of threads, with no caller-side ceremony — including the
/// *first* Count()/Total() call, which materializes the prefix table
/// under an internal mutex with double-checked locking (as does the
/// first call after a mutation). Laziness is kept deliberately:
/// histograms on the publish hot path (per-shard slices inside
/// Snapshot::Build) are consumed through counts() and never pay for a
/// prefix pass. Mutating concurrently with reads is still undefined, as
/// for any container.
class Histogram {
 public:
  /// A zero histogram over `domain`.
  explicit Histogram(Domain domain);

  /// A histogram with the given counts; counts.size() defines the domain.
  explicit Histogram(std::vector<double> counts,
                     std::string attribute = "value");

  /// Builds from integer counts.
  static Histogram FromCounts(const std::vector<std::int64_t>& counts,
                              std::string attribute = "value");

  // The internal prefix mutex is not copyable/movable, so the special
  // members are spelled out; they copy/move the data and the cached
  // prefix state but give each instance its own mutex.
  Histogram(const Histogram& other);
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(const Histogram& other);
  Histogram& operator=(Histogram&& other) noexcept;

  /// The domain.
  const Domain& domain() const { return domain_; }

  /// Number of positions.
  std::int64_t size() const { return domain_.size(); }

  /// Count at a position (checked).
  double At(std::int64_t position) const;

  /// Sets the count at a position (checked).
  void Set(std::int64_t position, double count);

  /// Adds `delta` to the count at a position (checked).
  void Increment(std::int64_t position, double delta = 1.0);

  /// The counting query c([x, y]): sum of counts in the interval.
  /// This is the paper's `Select count(*) ... Where x <= R.A <= y`.
  double Count(const Interval& range) const;

  /// Total of all counts (== Count over the full domain).
  double Total() const;

  /// All counts in domain order.
  const std::vector<double>& counts() const { return counts_; }

  /// Counts in ascending order: the unattributed histogram S(I) (§3).
  std::vector<double> SortedCounts() const;

  /// Number of nonzero positions.
  std::int64_t NonZeroCount() const;

  /// Number of distinct count values (the `d` of Theorem 2).
  std::int64_t DistinctCountValues() const;

 private:
  void EnsurePrefix() const;
  void BuildPrefix() const DPHIST_REQUIRES(prefix_mutex_);

  Domain domain_;
  std::vector<double> counts_;
  // prefix_[i] = sum of counts[0..i). Written only under prefix_mutex_;
  // readers on the query path go through the prefix_valid_ release/
  // acquire publication instead of the mutex (see Count()).
  mutable std::vector<double> prefix_ DPHIST_GUARDED_BY(prefix_mutex_);
  mutable std::atomic<bool> prefix_valid_{false};
  mutable Mutex prefix_mutex_;
};

}  // namespace dphist

#endif  // DPHIST_DOMAIN_HISTOGRAM_H_
