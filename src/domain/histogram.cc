#include "domain/histogram.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"

namespace dphist {

Histogram::Histogram(Domain domain)
    : domain_(std::move(domain)),
      counts_(static_cast<std::size_t>(domain_.size()), 0.0) {}

Histogram::Histogram(std::vector<double> counts, std::string attribute)
    : domain_(static_cast<std::int64_t>(counts.size()), std::move(attribute)),
      counts_(std::move(counts)) {
  DPHIST_CHECK(!counts_.empty());
}

Histogram Histogram::FromCounts(const std::vector<std::int64_t>& counts,
                                std::string attribute) {
  std::vector<double> values(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    values[i] = static_cast<double>(counts[i]);
  }
  return Histogram(std::move(values), std::move(attribute));
}

Histogram::Histogram(const Histogram& other) : domain_(other.domain_) {
  // Copying from a const& is a const access, so it must be safe against
  // a concurrent EnsurePrefix rebuild in `other`: take its mutex while
  // reading the prefix state.
  MutexLock lock(other.prefix_mutex_);
  counts_ = other.counts_;
  prefix_ = other.prefix_;
  prefix_valid_.store(other.prefix_valid_.load(std::memory_order_acquire),
                      std::memory_order_release);
}

Histogram::Histogram(Histogram&& other) noexcept
    : domain_(std::move(other.domain_)),
      counts_(std::move(other.counts_)),
      prefix_(std::move(other.prefix_)),
      prefix_valid_(other.prefix_valid_.load(std::memory_order_acquire)) {}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  domain_ = other.domain_;
  // Mutating *this concurrently with any other access is undefined (as
  // for any container), so this thread is the sole accessor of our own
  // prefix state — assert our capability rather than locking, which
  // keeps the lock order single-mutex (no A=B vs B=A deadlock).
  prefix_mutex_.AssertHeld();
  {
    MutexLock lock(other.prefix_mutex_);
    counts_ = other.counts_;
    prefix_ = other.prefix_;
    prefix_valid_.store(other.prefix_valid_.load(std::memory_order_acquire),
                        std::memory_order_release);
  }
  return *this;
}

Histogram& Histogram::operator=(Histogram&& other) noexcept {
  if (this == &other) return *this;
  domain_ = std::move(other.domain_);
  counts_ = std::move(other.counts_);
  // Same single-accessor argument as copy-assignment, on both sides: a
  // moved-from object must not be touched concurrently either.
  prefix_mutex_.AssertHeld();
  other.prefix_mutex_.AssertHeld();
  prefix_ = std::move(other.prefix_);
  prefix_valid_.store(other.prefix_valid_.load(std::memory_order_acquire),
                      std::memory_order_release);
  return *this;
}

double Histogram::At(std::int64_t position) const {
  DPHIST_CHECK(position >= 0 && position < size());
  return counts_[static_cast<std::size_t>(position)];
}

void Histogram::Set(std::int64_t position, double count) {
  DPHIST_CHECK(position >= 0 && position < size());
  counts_[static_cast<std::size_t>(position)] = count;
  prefix_valid_.store(false, std::memory_order_release);
}

void Histogram::Increment(std::int64_t position, double delta) {
  DPHIST_CHECK(position >= 0 && position < size());
  counts_[static_cast<std::size_t>(position)] += delta;
  prefix_valid_.store(false, std::memory_order_release);
}

void Histogram::BuildPrefix() const {
  prefix_.assign(counts_.size() + 1, 0.0);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + counts_[i];
  }
  prefix_valid_.store(true, std::memory_order_release);
}

void Histogram::EnsurePrefix() const {
  if (prefix_valid_.load(std::memory_order_acquire)) return;
  // Only reachable after a mutation; double-checked so concurrent first
  // reads after a (single-threaded) mutation phase rebuild exactly once.
  MutexLock lock(prefix_mutex_);
  if (prefix_valid_.load(std::memory_order_relaxed)) return;
  BuildPrefix();
}

double Histogram::Count(const Interval& range) const {
  DPHIST_CHECK_MSG(domain_.ContainsInterval(range),
                   "range query outside the domain");
  EnsurePrefix();
  // Documented lock-free read: EnsurePrefix returned only after
  // observing prefix_valid_ == true with acquire order, which pairs
  // with BuildPrefix's release store *after* filling prefix_ — so the
  // table this thread sees is complete, and it stays immutable until a
  // mutation (undefined to run concurrently with reads, per the class
  // contract) clears the flag. Taking prefix_mutex_ here would
  // serialize every reader on the query hot path for no added safety.
  prefix_mutex_.AssertHeld();
  return prefix_[static_cast<std::size_t>(range.hi()) + 1] -
         prefix_[static_cast<std::size_t>(range.lo())];
}

double Histogram::Total() const { return Count(domain_.FullRange()); }

std::vector<double> Histogram::SortedCounts() const {
  std::vector<double> sorted = counts_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::int64_t Histogram::NonZeroCount() const {
  std::int64_t n = 0;
  for (double c : counts_) {
    if (c != 0.0) ++n;
  }
  return n;
}

std::int64_t Histogram::DistinctCountValues() const {
  std::set<double> distinct(counts_.begin(), counts_.end());
  return static_cast<std::int64_t>(distinct.size());
}

}  // namespace dphist
