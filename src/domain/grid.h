// Two-dimensional domains: grids, rectangles, and grid histograms.
//
// Appendix B lists "extend the technique for universal histograms to
// multi-dimensional range queries" as future work; this module provides
// the 2-D substrate (the analogue of interval.h/histogram.h) for the
// quadtree-based implementation in tree/quadtree.h and
// estimators/universal2d.h.

#ifndef DPHIST_DOMAIN_GRID_H_
#define DPHIST_DOMAIN_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dphist {

/// Inclusive axis-aligned rectangle of grid cells.
class Rect {
 public:
  /// Constructs [row_lo..row_hi] x [col_lo..col_hi]; checked non-empty.
  Rect(std::int64_t row_lo, std::int64_t row_hi, std::int64_t col_lo,
       std::int64_t col_hi);

  std::int64_t row_lo() const { return row_lo_; }
  std::int64_t row_hi() const { return row_hi_; }
  std::int64_t col_lo() const { return col_lo_; }
  std::int64_t col_hi() const { return col_hi_; }

  /// Number of cells covered.
  std::int64_t Area() const {
    return (row_hi_ - row_lo_ + 1) * (col_hi_ - col_lo_ + 1);
  }

  /// True iff the cell (row, col) lies inside.
  bool Contains(std::int64_t row, std::int64_t col) const {
    return row_lo_ <= row && row <= row_hi_ && col_lo_ <= col &&
           col <= col_hi_;
  }

  /// True iff `other` lies fully inside this rectangle.
  bool Covers(const Rect& other) const {
    return row_lo_ <= other.row_lo_ && other.row_hi_ <= row_hi_ &&
           col_lo_ <= other.col_lo_ && other.col_hi_ <= col_hi_;
  }

  /// True iff the two rectangles share at least one cell.
  bool Overlaps(const Rect& other) const {
    return row_lo_ <= other.row_hi_ && other.row_lo_ <= row_hi_ &&
           col_lo_ <= other.col_hi_ && other.col_lo_ <= col_hi_;
  }

  bool operator==(const Rect& other) const {
    return row_lo_ == other.row_lo_ && row_hi_ == other.row_hi_ &&
           col_lo_ == other.col_lo_ && col_hi_ == other.col_hi_;
  }

  /// Renders "[r0..r1] x [c0..c1]".
  std::string ToString() const;

 private:
  std::int64_t row_lo_;
  std::int64_t row_hi_;
  std::int64_t col_lo_;
  std::int64_t col_hi_;
};

/// Counts over a rows x cols grid with O(1) rectangle sums (2-D prefix
/// table, rebuilt lazily after mutation).
class GridHistogram {
 public:
  /// A zero grid of the given shape (both dimensions > 0).
  GridHistogram(std::int64_t rows, std::int64_t cols,
                std::string attribute = "cell");

  /// Builds from row-major counts; counts.size() must be rows * cols.
  static GridHistogram FromCounts(std::int64_t rows, std::int64_t cols,
                                  const std::vector<std::int64_t>& counts,
                                  std::string attribute = "cell");

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  const std::string& attribute() const { return attribute_; }

  /// The full grid as a rectangle.
  Rect FullRect() const { return Rect(0, rows_ - 1, 0, cols_ - 1); }

  /// True iff the rectangle lies inside the grid.
  bool ContainsRect(const Rect& rect) const {
    return rect.row_lo() >= 0 && rect.row_hi() < rows_ &&
           rect.col_lo() >= 0 && rect.col_hi() < cols_;
  }

  /// Count at a cell (checked).
  double At(std::int64_t row, std::int64_t col) const;

  /// Sets the count at a cell (checked).
  void Set(std::int64_t row, std::int64_t col, double count);

  /// Adds delta at a cell (checked).
  void Increment(std::int64_t row, std::int64_t col, double delta = 1.0);

  /// The 2-D counting query: sum of counts inside `rect`.
  double Count(const Rect& rect) const;

  /// Sum of all counts.
  double Total() const;

  /// Row-major counts.
  const std::vector<double>& counts() const { return counts_; }

 private:
  void EnsurePrefix() const;

  std::int64_t rows_;
  std::int64_t cols_;
  std::string attribute_;
  std::vector<double> counts_;
  /// prefix_[(r+1) * (cols_+1) + (c+1)] = sum over [0..r] x [0..c].
  mutable std::vector<double> prefix_;
  mutable bool prefix_valid_ = false;
};

}  // namespace dphist

#endif  // DPHIST_DOMAIN_GRID_H_
