#include "domain/grid.h"

#include "common/check.h"

namespace dphist {

Rect::Rect(std::int64_t row_lo, std::int64_t row_hi, std::int64_t col_lo,
           std::int64_t col_hi)
    : row_lo_(row_lo), row_hi_(row_hi), col_lo_(col_lo), col_hi_(col_hi) {
  DPHIST_CHECK_MSG(row_lo <= row_hi && col_lo <= col_hi,
                   "rect requires lo <= hi on both axes");
}

std::string Rect::ToString() const {
  return "[" + std::to_string(row_lo_) + ".." + std::to_string(row_hi_) +
         "] x [" + std::to_string(col_lo_) + ".." + std::to_string(col_hi_) +
         "]";
}

GridHistogram::GridHistogram(std::int64_t rows, std::int64_t cols,
                             std::string attribute)
    : rows_(rows),
      cols_(cols),
      attribute_(std::move(attribute)),
      counts_(static_cast<std::size_t>(rows * cols), 0.0) {
  DPHIST_CHECK_MSG(rows > 0 && cols > 0, "grid must be non-empty");
}

GridHistogram GridHistogram::FromCounts(
    std::int64_t rows, std::int64_t cols,
    const std::vector<std::int64_t>& counts, std::string attribute) {
  DPHIST_CHECK(static_cast<std::int64_t>(counts.size()) == rows * cols);
  GridHistogram grid(rows, cols, std::move(attribute));
  for (std::size_t i = 0; i < counts.size(); ++i) {
    grid.counts_[i] = static_cast<double>(counts[i]);
  }
  return grid;
}

double GridHistogram::At(std::int64_t row, std::int64_t col) const {
  DPHIST_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  return counts_[static_cast<std::size_t>(row * cols_ + col)];
}

void GridHistogram::Set(std::int64_t row, std::int64_t col, double count) {
  DPHIST_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  counts_[static_cast<std::size_t>(row * cols_ + col)] = count;
  prefix_valid_ = false;
}

void GridHistogram::Increment(std::int64_t row, std::int64_t col,
                              double delta) {
  DPHIST_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  counts_[static_cast<std::size_t>(row * cols_ + col)] += delta;
  prefix_valid_ = false;
}

void GridHistogram::EnsurePrefix() const {
  if (prefix_valid_) return;
  std::size_t stride = static_cast<std::size_t>(cols_) + 1;
  prefix_.assign((static_cast<std::size_t>(rows_) + 1) * stride, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      std::size_t ur = static_cast<std::size_t>(r);
      std::size_t uc = static_cast<std::size_t>(c);
      prefix_[(ur + 1) * stride + (uc + 1)] =
          counts_[ur * static_cast<std::size_t>(cols_) + uc] +
          prefix_[ur * stride + (uc + 1)] + prefix_[(ur + 1) * stride + uc] -
          prefix_[ur * stride + uc];
    }
  }
  prefix_valid_ = true;
}

double GridHistogram::Count(const Rect& rect) const {
  DPHIST_CHECK_MSG(ContainsRect(rect), "rect query outside the grid");
  EnsurePrefix();
  std::size_t stride = static_cast<std::size_t>(cols_) + 1;
  auto p = [&](std::int64_t r, std::int64_t c) {
    return prefix_[static_cast<std::size_t>(r) * stride +
                   static_cast<std::size_t>(c)];
  };
  return p(rect.row_hi() + 1, rect.col_hi() + 1) -
         p(rect.row_lo(), rect.col_hi() + 1) -
         p(rect.row_hi() + 1, rect.col_lo()) + p(rect.row_lo(), rect.col_lo());
}

double GridHistogram::Total() const { return Count(FullRect()); }

}  // namespace dphist
