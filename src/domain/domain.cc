#include "domain/domain.h"

#include "common/check.h"

namespace dphist {

Domain::Domain(std::int64_t size, std::string attribute)
    : size_(size), attribute_(std::move(attribute)) {
  DPHIST_CHECK_MSG(size > 0, "domain size must be positive");
}

void Domain::SetLabels(std::vector<std::string> labels) {
  DPHIST_CHECK(static_cast<std::int64_t>(labels.size()) == size_);
  labels_ = std::move(labels);
}

std::string Domain::LabelAt(std::int64_t position) const {
  DPHIST_CHECK(position >= 0 && position < size_);
  if (labels_.empty()) return std::to_string(position);
  return labels_[static_cast<std::size_t>(position)];
}

}  // namespace dphist
