#include "domain/interval.h"

#include "common/check.h"

namespace dphist {

Interval::Interval(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
  DPHIST_CHECK_MSG(lo <= hi, "interval requires lo <= hi");
}

std::string Interval::ToString() const {
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

}  // namespace dphist
