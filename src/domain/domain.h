// Ordered attribute domains.
//
// A histogram is built over one ordered "range attribute" (Section 1). The
// Domain records the attribute's size and, optionally, printable labels for
// positions (IP addresses, timestamps, ...). Labels are cosmetic: every
// algorithm operates on positions 0..size-1.

#ifndef DPHIST_DOMAIN_DOMAIN_H_
#define DPHIST_DOMAIN_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "domain/interval.h"

namespace dphist {

/// An ordered domain of `size` positions with an attribute name.
class Domain {
 public:
  /// Constructs a domain of the given size (> 0) named `attribute`.
  explicit Domain(std::int64_t size, std::string attribute = "value");

  /// Number of positions.
  std::int64_t size() const { return size_; }

  /// Attribute name for reports.
  const std::string& attribute() const { return attribute_; }

  /// The full interval [0, size-1].
  Interval FullRange() const { return Interval(0, size_ - 1); }

  /// True iff [x, y] lies inside the domain.
  bool ContainsInterval(const Interval& range) const {
    return range.lo() >= 0 && range.hi() < size_;
  }

  /// Attaches printable labels; `labels.size()` must equal size().
  void SetLabels(std::vector<std::string> labels);

  /// Label for a position; falls back to the position number.
  std::string LabelAt(std::int64_t position) const;

 private:
  std::int64_t size_;
  std::string attribute_;
  std::vector<std::string> labels_;
};

}  // namespace dphist

#endif  // DPHIST_DOMAIN_DOMAIN_H_
