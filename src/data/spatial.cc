#include "data/spatial.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace dphist {

GridHistogram GenerateSpatialBlobs(const SpatialConfig& config) {
  DPHIST_CHECK(config.side > 0);
  DPHIST_CHECK(config.num_points >= 0);
  DPHIST_CHECK(config.num_clusters >= 1);
  DPHIST_CHECK(config.uniform_fraction >= 0.0 &&
               config.uniform_fraction <= 1.0);
  Rng rng(config.seed);

  // Cluster centers away from the borders so blobs stay mostly in-grid.
  std::vector<std::pair<double, double>> centers;
  centers.reserve(static_cast<std::size_t>(config.num_clusters));
  double margin = std::min(static_cast<double>(config.side) * 0.1,
                           3.0 * config.cluster_stddev);
  for (std::int64_t c = 0; c < config.num_clusters; ++c) {
    centers.emplace_back(
        rng.NextUniform(margin, static_cast<double>(config.side) - margin),
        rng.NextUniform(margin, static_cast<double>(config.side) - margin));
  }

  GridHistogram grid(config.side, config.side, "location");
  auto clamp = [&](double v) {
    return std::min<std::int64_t>(
        config.side - 1,
        std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(v))));
  };
  for (std::int64_t p = 0; p < config.num_points; ++p) {
    std::int64_t row, col;
    if (rng.NextBernoulli(config.uniform_fraction)) {
      row = rng.NextInt(0, config.side - 1);
      col = rng.NextInt(0, config.side - 1);
    } else {
      const auto& center =
          centers[static_cast<std::size_t>(rng.NextInt(
              0, config.num_clusters - 1))];
      row = clamp(center.first + config.cluster_stddev * rng.NextGaussian());
      col = clamp(center.second + config.cluster_stddev * rng.NextGaussian());
    }
    grid.Increment(row, col);
  }
  return grid;
}

}  // namespace dphist
