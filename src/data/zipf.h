// Zipf-distributed sampling.
//
// Heavy-tailed count distributions are the regime where the paper's
// inference shines (Theorem 2: many duplicated small counts). Zipf is the
// standard generator for such shapes and underlies the NetTrace and
// SearchLogs substitutes.

#ifndef DPHIST_DATA_ZIPF_H_
#define DPHIST_DATA_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dphist {

/// Zipf distribution over ranks 1..n with exponent s > 0:
/// P(rank = r) proportional to r^-s. Sampling is inverse-CDF over a
/// precomputed table (O(log n) per draw).
class ZipfDistribution {
 public:
  /// Builds the rank table. Requires n >= 1 and exponent > 0.
  ZipfDistribution(std::int64_t n, double exponent);

  /// Number of ranks.
  std::int64_t n() const { return n_; }

  /// The exponent s.
  double exponent() const { return exponent_; }

  /// Draws a rank in [0, n) (0-indexed; rank 0 is the most likely).
  std::int64_t Sample(Rng* rng) const;

  /// Probability of rank r (0-indexed).
  double Probability(std::int64_t r) const;

 private:
  std::int64_t n_;
  double exponent_;
  std::vector<double> cdf_;
};

/// Draws `total` Zipf(n, exponent) samples and returns the per-rank tally —
/// a heavy-tailed histogram with sum `total`.
std::vector<std::int64_t> ZipfCounts(std::int64_t n, double exponent,
                                     std::int64_t total, Rng* rng);

}  // namespace dphist

#endif  // DPHIST_DATA_ZIPF_H_
