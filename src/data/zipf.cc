#include "data/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dphist {

ZipfDistribution::ZipfDistribution(std::int64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  DPHIST_CHECK(n >= 1);
  DPHIST_CHECK(exponent > 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::int64_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[static_cast<std::size_t>(r)] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::int64_t ZipfDistribution::Sample(Rng* rng) const {
  DPHIST_CHECK(rng != nullptr);
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<std::int64_t>(it - cdf_.begin());
}

double ZipfDistribution::Probability(std::int64_t r) const {
  DPHIST_CHECK(r >= 0 && r < n_);
  double lo = r == 0 ? 0.0 : cdf_[static_cast<std::size_t>(r - 1)];
  return cdf_[static_cast<std::size_t>(r)] - lo;
}

std::vector<std::int64_t> ZipfCounts(std::int64_t n, double exponent,
                                     std::int64_t total, Rng* rng) {
  DPHIST_CHECK(total >= 0);
  ZipfDistribution zipf(n, exponent);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < total; ++i) {
    ++counts[static_cast<std::size_t>(zipf.Sample(rng))];
  }
  return counts;
}

}  // namespace dphist
