#include "data/nettrace.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "data/zipf.h"

namespace dphist {

Histogram GenerateNetTrace(const NetTraceConfig& config) {
  DPHIST_CHECK(config.num_hosts > 0);
  DPHIST_CHECK(config.num_connections >= 0);
  DPHIST_CHECK(config.silent_fraction >= 0.0 && config.silent_fraction < 1.0);
  DPHIST_CHECK(config.cluster_size >= 1);
  Rng rng(config.seed);

  // Draw connection tallies for the active hosts with Zipf popularity.
  std::int64_t active = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(config.num_hosts) *
                                   (1.0 - config.silent_fraction)));
  std::vector<std::int64_t> tallies =
      ZipfCounts(active, config.zipf_exponent, config.num_connections, &rng);
  // Tallies arrive rank-ordered; shuffle so busy hosts land in random
  // clusters rather than all in the first one.
  std::shuffle(tallies.begin(), tallies.end(), rng.engine());

  // Place active hosts in contiguous clusters (subnets). Divide the IP
  // space into cluster_size-wide blocks and activate a random subset of
  // blocks: silent space then consists of long contiguous runs, matching
  // real address space and enabling subtree pruning to find empty regions.
  std::int64_t cluster = std::min(config.cluster_size, config.num_hosts);
  std::int64_t total_blocks = (config.num_hosts + cluster - 1) / cluster;
  std::int64_t needed_blocks = (active + cluster - 1) / cluster;
  needed_blocks = std::min(needed_blocks, total_blocks);

  std::vector<std::int64_t> block_ids(static_cast<std::size_t>(total_blocks));
  std::iota(block_ids.begin(), block_ids.end(), 0);
  std::shuffle(block_ids.begin(), block_ids.end(), rng.engine());
  block_ids.resize(static_cast<std::size_t>(needed_blocks));
  std::sort(block_ids.begin(), block_ids.end());

  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(config.num_hosts), 0);
  std::int64_t placed = 0;
  for (std::int64_t block : block_ids) {
    std::int64_t start = block * cluster;
    std::int64_t end = std::min(start + cluster, config.num_hosts);
    for (std::int64_t pos = start; pos < end && placed < active; ++pos) {
      counts[static_cast<std::size_t>(pos)] =
          tallies[static_cast<std::size_t>(placed++)];
    }
  }
  return Histogram::FromCounts(counts, "external_host");
}

}  // namespace dphist
