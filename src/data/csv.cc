#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dphist {

Status SaveHistogramCsv(const Histogram& histogram, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "# attribute: " << histogram.domain().attribute() << "\n";
  for (double c : histogram.counts()) out << c << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Histogram> LoadHistogramCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string attribute = "value";
  std::vector<double> counts;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string kAttrPrefix = "# attribute: ";
      if (line.rfind(kAttrPrefix, 0) == 0) {
        attribute = line.substr(kAttrPrefix.size());
      }
      continue;
    }
    std::istringstream parse(line);
    double value = 0.0;
    if (!(parse >> value)) {
      return Status::IoError("unparseable line in " + path + ": " + line);
    }
    counts.push_back(value);
  }
  if (counts.empty()) return Status::IoError("no counts found in " + path);
  return Histogram(std::move(counts), std::move(attribute));
}

Status AppendCsvRow(const std::string& path, const std::string& header,
                    const std::vector<std::string>& fields) {
  bool exists = false;
  {
    std::ifstream probe(path);
    exists = probe.good();
  }
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::IoError("cannot open for appending: " + path);
  if (!exists && !header.empty()) out << header << "\n";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out << fields[i] << (i + 1 < fields.size() ? "," : "");
  }
  out << "\n";
  if (!out) return Status::IoError("append failed: " + path);
  return Status::Ok();
}

}  // namespace dphist
