// Synthetic SocialNetwork: stand-in for the paper's university friendship
// graph (~11K students).
//
// The experiment needs the graph's degree sequence. We synthesize one with
// a preferential-attachment (Barabasi-Albert) process, which yields the
// power-law-with-many-duplicates shape the paper highlights ("the typical
// degree sequences that arise in real data, such as the power-law
// distribution, contain very large uniform subsequences", Appendix C).

#ifndef DPHIST_DATA_SOCIAL_NETWORK_H_
#define DPHIST_DATA_SOCIAL_NETWORK_H_

#include <cstdint>

#include "common/rng.h"
#include "domain/histogram.h"

namespace dphist {

/// Parameters of the synthetic friendship graph.
struct SocialNetworkConfig {
  /// Number of nodes (students). The paper's graph has ~11,000.
  std::int64_t num_nodes = 11000;
  /// Edges attached per arriving node (BA parameter m).
  std::int64_t edges_per_node = 4;
  /// Generator seed.
  std::uint64_t seed = 42;
};

/// Node degrees over [0, num_nodes): the degree of node i at position i.
/// Differential privacy in this task protects individual friendships
/// (edges), matching the paper's threat model.
Histogram GenerateSocialNetworkDegrees(const SocialNetworkConfig& config);

}  // namespace dphist

#endif  // DPHIST_DATA_SOCIAL_NETWORK_H_
