// Synthetic SearchLogs: stand-in for the paper's search-query log.
//
// The paper derives two histograms from its (synthetic, for the same
// privacy reasons) search-log data:
//   1. Fig. 5: search frequency of the top-20K keywords over a 3-month
//      window — a rank-frequency vector, Zipf by Heaps/Zipf folklore.
//   2. Fig. 6 bottom: the temporal frequency of one term ("Obama") from
//      Jan 2004 onward, a day split into 16 slots — a mostly-quiet series
//      with a huge localized burst (the 2008 election).
// Both generators reproduce those shapes.

#ifndef DPHIST_DATA_SEARCH_LOGS_H_
#define DPHIST_DATA_SEARCH_LOGS_H_

#include <cstdint>

#include "common/rng.h"
#include "domain/histogram.h"

namespace dphist {

/// Parameters for the rank-frequency (top-K keyword) histogram.
struct KeywordFrequencyConfig {
  /// Number of keywords tracked (domain size).
  std::int64_t num_keywords = 20000;
  /// Total searches in the window.
  std::int64_t total_searches = 2000000;
  /// Zipf exponent of keyword popularity.
  double zipf_exponent = 1.05;
  /// Generator seed.
  std::uint64_t seed = 42;
};

/// Position i holds the search count of the i-th ranked keyword
/// (descending), matching the Fig. 5 query description.
Histogram GenerateKeywordFrequencies(const KeywordFrequencyConfig& config);

/// Parameters for a single term's time series.
struct TemporalSeriesConfig {
  /// Number of time slots (16 per day in the paper). 32768 slots is about
  /// 5.6 years at 16/day, spanning 2004 to "the present" of the paper.
  std::int64_t num_slots = 32768;
  /// Poisson rate of background searches per slot before the burst.
  double base_rate = 0.2;
  /// Center of the burst, as a fraction of the series (the 2008 election
  /// sits ~70% of the way from Jan 2004 to mid 2010).
  double burst_center = 0.7;
  /// Burst width as a fraction of the series.
  double burst_width = 0.05;
  /// Peak Poisson rate at the burst center.
  double burst_peak_rate = 400.0;
  /// Post-burst sustained interest multiplier on base_rate.
  double post_burst_multiplier = 25.0;
  /// Depth of the diurnal modulation in [0, 1): 0 = flat days.
  double diurnal_depth = 0.8;
  /// Slots per day for the diurnal cycle.
  std::int64_t slots_per_day = 16;
  /// Generator seed.
  std::uint64_t seed = 42;
};

/// Per-slot search counts for one term over the whole period.
Histogram GenerateTemporalSeries(const TemporalSeriesConfig& config);

}  // namespace dphist

#endif  // DPHIST_DATA_SEARCH_LOGS_H_
