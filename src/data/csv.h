// CSV persistence for histograms and experiment results.
//
// Deliberately tiny: one numeric column for histogram counts (with an
// optional header) and a generic row writer used by the bench harness to
// dump series for external plotting.

#ifndef DPHIST_DATA_CSV_H_
#define DPHIST_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "domain/histogram.h"

namespace dphist {

/// Writes one count per line (optionally preceded by "# attribute: name").
Status SaveHistogramCsv(const Histogram& histogram, const std::string& path);

/// Reads a histogram written by SaveHistogramCsv. Lines beginning with '#'
/// are comments; blank lines are skipped.
Result<Histogram> LoadHistogramCsv(const std::string& path);

/// Appends a comma-joined row to an open text file at `path` (creating it
/// with `header` if absent). Used by benches to export plot data.
Status AppendCsvRow(const std::string& path, const std::string& header,
                    const std::vector<std::string>& fields);

}  // namespace dphist

#endif  // DPHIST_DATA_CSV_H_
