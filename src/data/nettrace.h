// Synthetic NetTrace: stand-in for the paper's university IP-level trace.
//
// The paper's NetTrace is a bipartite connection graph between internal
// and external hosts; the histogram of interest counts, for each external
// host, how many internal hosts it contacted (~65K external hosts). The
// real trace is proprietary, so we generate connections whose per-host
// tallies reproduce the properties the experiments depend on:
//   - heavy-tailed degrees (a few hosts with thousands of connections),
//   - a vast majority of hosts with 0/1/2 connections (long uniform runs
//     in sorted order — the Theorem 2 regime), and
//   - a sparse domain when viewed positionally (most IPs quiet), which is
//     what makes H-bar beat L~ even at small ranges (Section 5.2).

#ifndef DPHIST_DATA_NETTRACE_H_
#define DPHIST_DATA_NETTRACE_H_

#include <cstdint>

#include "common/rng.h"
#include "domain/histogram.h"

namespace dphist {

/// Parameters of the synthetic trace.
struct NetTraceConfig {
  /// Number of external hosts = histogram domain size.
  std::int64_t num_hosts = 65536;
  /// Total connections (records). One record = one (internal, external)
  /// edge; differential privacy protects individual connections.
  std::int64_t num_connections = 300000;
  /// Zipf exponent of host popularity; larger = heavier head.
  double zipf_exponent = 1.1;
  /// Fraction of hosts that never appear (silent IP space). Active hosts
  /// are placed in contiguous clusters (subnets), so the silent space
  /// forms long runs — the structure that lets H-bar's subtree pruning
  /// recognize empty regions (Section 5.2).
  double silent_fraction = 0.55;
  /// Number of consecutive addresses per active cluster (subnet size).
  std::int64_t cluster_size = 64;
  /// Generator seed.
  std::uint64_t seed = 42;
};

/// Per-host connection counts over [0, num_hosts).
Histogram GenerateNetTrace(const NetTraceConfig& config);

}  // namespace dphist

#endif  // DPHIST_DATA_NETTRACE_H_
