#include "data/social_network.h"

#include <vector>

#include "common/check.h"

namespace dphist {

Histogram GenerateSocialNetworkDegrees(const SocialNetworkConfig& config) {
  DPHIST_CHECK(config.num_nodes > 1);
  DPHIST_CHECK(config.edges_per_node >= 1);
  DPHIST_CHECK(config.edges_per_node < config.num_nodes);
  Rng rng(config.seed);

  std::vector<std::int64_t> degree(
      static_cast<std::size_t>(config.num_nodes), 0);
  // Endpoint pool: each node id appears once per incident edge, so a
  // uniform draw from the pool is degree-proportional (preferential
  // attachment) without any per-step renormalization.
  std::vector<std::int64_t> endpoint_pool;
  endpoint_pool.reserve(
      static_cast<std::size_t>(2 * config.edges_per_node * config.num_nodes));

  // Seed clique over the first m+1 nodes so early draws are well-defined.
  std::int64_t m = config.edges_per_node;
  for (std::int64_t a = 0; a <= m; ++a) {
    for (std::int64_t b = a + 1; b <= m; ++b) {
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  }

  for (std::int64_t v = m + 1; v < config.num_nodes; ++v) {
    for (std::int64_t e = 0; e < m; ++e) {
      std::int64_t pick = endpoint_pool[static_cast<std::size_t>(rng.NextInt(
          0, static_cast<std::int64_t>(endpoint_pool.size()) - 1))];
      ++degree[static_cast<std::size_t>(pick)];
      ++degree[static_cast<std::size_t>(v)];
      endpoint_pool.push_back(pick);
      endpoint_pool.push_back(v);
    }
  }
  return Histogram::FromCounts(degree, "student");
}

}  // namespace dphist
