#include "data/search_logs.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "data/zipf.h"

namespace dphist {

Histogram GenerateKeywordFrequencies(const KeywordFrequencyConfig& config) {
  DPHIST_CHECK(config.num_keywords > 0);
  DPHIST_CHECK(config.total_searches >= 0);
  Rng rng(config.seed);
  std::vector<std::int64_t> counts = ZipfCounts(
      config.num_keywords, config.zipf_exponent, config.total_searches, &rng);
  // The Fig. 5 query reports counts by keyword *rank*, so order descending.
  std::sort(counts.begin(), counts.end(), std::greater<std::int64_t>());
  return Histogram::FromCounts(counts, "keyword_rank");
}

Histogram GenerateTemporalSeries(const TemporalSeriesConfig& config) {
  DPHIST_CHECK(config.num_slots > 0);
  DPHIST_CHECK(config.base_rate >= 0.0);
  DPHIST_CHECK(config.burst_width > 0.0);
  DPHIST_CHECK(config.diurnal_depth >= 0.0 && config.diurnal_depth < 1.0);
  DPHIST_CHECK(config.slots_per_day > 0);
  Rng rng(config.seed);

  const double n = static_cast<double>(config.num_slots);
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(config.num_slots), 0);
  for (std::int64_t t = 0; t < config.num_slots; ++t) {
    double frac = static_cast<double>(t) / n;
    // Background interest, jumping to a sustained higher plateau after the
    // burst (people keep searching a name once it is famous).
    double rate = config.base_rate;
    if (frac > config.burst_center) rate *= config.post_burst_multiplier;
    // Gaussian burst around the event.
    double dx = (frac - config.burst_center) / config.burst_width;
    rate += config.burst_peak_rate * std::exp(-0.5 * dx * dx);
    // Diurnal modulation: quiet nights, busy evenings.
    double day_phase = 2.0 * 3.14159265358979323846 *
                       static_cast<double>(t % config.slots_per_day) /
                       static_cast<double>(config.slots_per_day);
    rate *= 1.0 - config.diurnal_depth * 0.5 * (1.0 + std::cos(day_phase));
    counts[static_cast<std::size_t>(t)] = rng.NextPoisson(rate);
  }
  return Histogram::FromCounts(counts, "time_slot");
}

}  // namespace dphist
