// Synthetic 2-D spatial data for the multi-dimensional histogram
// extension: clustered point masses over a grid (think geo-tagged events
// — dense downtowns, empty countryside), the 2-D analogue of NetTrace's
// clustered sparsity.

#ifndef DPHIST_DATA_SPATIAL_H_
#define DPHIST_DATA_SPATIAL_H_

#include <cstdint>

#include "common/rng.h"
#include "domain/grid.h"

namespace dphist {

/// Parameters of the synthetic spatial dataset.
struct SpatialConfig {
  /// Grid side (rows = cols = side).
  std::int64_t side = 256;
  /// Total points to place.
  std::int64_t num_points = 100000;
  /// Number of Gaussian clusters.
  std::int64_t num_clusters = 8;
  /// Cluster standard deviation in cells.
  double cluster_stddev = 6.0;
  /// Fraction of points placed uniformly at random (background noise).
  double uniform_fraction = 0.05;
  /// Generator seed.
  std::uint64_t seed = 42;
};

/// Per-cell point counts; differential privacy protects single points.
GridHistogram GenerateSpatialBlobs(const SpatialConfig& config);

}  // namespace dphist

#endif  // DPHIST_DATA_SPATIAL_H_
