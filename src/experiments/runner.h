// Multi-trial experiment runners reproducing the paper's evaluation
// protocol (Section 5): average squared error over repeated draws from the
// differentially private mechanisms, and over random range workloads for
// the universal-histogram task.
//
// The per-trial loops of RunUnattributedExperiment and
// RunUniversalExperiment run on a worker pool (`threads` in the configs).
// Every trial's Rng is forked from the master stream up front in trial
// order and each trial writes into its own result slot, merged in trial
// order afterwards — so the output is bit-identical for any thread count,
// including 1.

#ifndef DPHIST_EXPERIMENTS_RUNNER_H_
#define DPHIST_EXPERIMENTS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "domain/histogram.h"
#include "estimators/unattributed.h"

namespace dphist {

/// Protocol knobs for the Fig. 5 experiment.
struct UnattributedExperimentConfig {
  /// Privacy levels, in the paper's order.
  std::vector<double> epsilons = {1.0, 0.1, 0.01};
  /// Noise redraws per (epsilon, estimator) cell. Paper: 50.
  std::int64_t trials = 50;
  /// Seed for the whole experiment (each trial forks its own stream).
  std::uint64_t seed = 7;
  /// Worker threads for the trial loop; 0 = hardware concurrency. The
  /// result is bit-identical for every value.
  std::int64_t threads = 1;
};

/// One Fig. 5 bar: average error of one estimator at one privacy level.
struct UnattributedCell {
  double epsilon;
  UnattributedEstimator estimator;
  /// Average over trials of sum_i (est[i] - S(I)[i])^2.
  double total_squared_error;
  /// total_squared_error / n — the per-count mean squared error, which is
  /// the scale Fig. 5 plots (error(S~) = 2/eps^2 per count).
  double per_count_error;
};

/// Runs the Fig. 5 protocol on one dataset.
std::vector<UnattributedCell> RunUnattributedExperiment(
    const Histogram& data, const UnattributedExperimentConfig& config);

/// Protocol knobs for the Fig. 6 experiment.
struct UniversalExperimentConfig {
  std::vector<double> epsilons = {1.0, 0.1, 0.01};
  /// Noise redraws per epsilon. Paper: 50.
  std::int64_t trials = 50;
  /// Random ranges per (trial, range size). Paper: 1000.
  std::int64_t ranges_per_size = 1000;
  /// Tree branching factor. Paper: 2.
  std::int64_t branching = 2;
  /// Round all estimates to non-negative integers (Section 5.2).
  bool round_to_nonnegative_integers = true;
  /// Prune non-positive subtrees in H-bar (Section 4.2).
  bool prune_nonpositive_subtrees = true;
  std::uint64_t seed = 7;
  /// Worker threads for the trial loop; 0 = hardware concurrency. The
  /// result is bit-identical for every value.
  std::int64_t threads = 1;
};

/// One Fig. 6 point: average squared error of one estimator for ranges of
/// one size at one privacy level.
struct UniversalCell {
  double epsilon;
  std::string estimator;  // "L~", "H~", "H-bar"
  std::int64_t range_size;
  /// Average over trials and ranges of (est(q) - true(q))^2.
  double avg_squared_error;
};

/// Runs the Fig. 6 protocol on one dataset. H~ and H-bar are evaluated on
/// the same noisy draw each trial, isolating the effect of inference.
std::vector<UniversalCell> RunUniversalExperiment(
    const Histogram& data, const UniversalExperimentConfig& config);

/// Fig. 7: per-position error profile of S-bar vs S~ on one dataset.
struct ErrorProfile {
  /// S(I) sorted descending (the order Fig. 7 plots).
  std::vector<double> true_sorted_descending;
  /// Mean squared error of S-bar at each position (same order).
  std::vector<double> sbar_error;
  /// Expected per-position error of S~, constant 2/eps^2.
  double stilde_error;
};

/// Runs the Fig. 7 protocol (paper: 200 trials, eps = 1.0).
ErrorProfile RunErrorProfile(const Histogram& data, double epsilon,
                             std::int64_t trials, std::uint64_t seed);

}  // namespace dphist

#endif  // DPHIST_EXPERIMENTS_RUNNER_H_
