// Plain-text table rendering for the bench binaries.
//
// Every bench prints the same rows/series its paper figure shows; this
// module keeps the formatting consistent (fixed-width columns, scientific
// notation for errors) so outputs are easy to diff across runs.

#ifndef DPHIST_EXPERIMENTS_REPORT_H_
#define DPHIST_EXPERIMENTS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dphist {

/// Column-aligned text table.
class TablePrinter {
 public:
  /// Sets the header row.
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds one row; must have as many fields as there are columns.
  void AddRow(std::vector<std::string> fields);

  /// Renders header, separator, and rows.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Scientific formatting with 3 significant digits ("1.23e+04").
std::string FormatScientific(double value);

/// Fixed formatting with up to 4 decimals, trimming trailing zeros.
std::string FormatFixed(double value);

/// Renders a ratio as "12.3x".
std::string FormatRatio(double value);

/// Prints a banner line ("== title ==") for bench section headers.
void PrintBanner(std::ostream& out, const std::string& title);

}  // namespace dphist

#endif  // DPHIST_EXPERIMENTS_REPORT_H_
