#include "experiments/report.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dphist {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DPHIST_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> fields) {
  DPHIST_CHECK_MSG(fields.size() == columns_.size(),
                   "row width does not match the header");
  rows_.push_back(std::move(fields));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& fields) {
    for (std::size_t c = 0; c < fields.size(); ++c) {
      out << fields[c];
      if (c + 1 < fields.size()) {
        out << std::string(widths[c] - fields[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatScientific(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

std::string FormatFixed(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string FormatRatio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

void PrintBanner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace dphist
