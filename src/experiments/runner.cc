#include "experiments/runner.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "inference/isotonic.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"

namespace dphist {
namespace {

/// Forks one child stream per trial, in trial order, so the set of
/// per-trial Rngs is independent of how trials are later scheduled.
std::vector<Rng> ForkTrialRngs(Rng* master, std::size_t count) {
  std::vector<Rng> rngs;
  rngs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) rngs.push_back(master->Fork());
  return rngs;
}

}  // namespace

std::vector<UnattributedCell> RunUnattributedExperiment(
    const Histogram& data, const UnattributedExperimentConfig& config) {
  DPHIST_CHECK(config.trials > 0);
  const std::vector<double> truth = TrueSortedCounts(data);
  const double n = static_cast<double>(truth.size());
  const std::size_t num_estimators = std::size(kAllUnattributedEstimators);
  const std::size_t trials = static_cast<std::size_t>(config.trials);

  // One task per (epsilon, trial) pair; rngs forked up front in the same
  // nested order the sequential loop would visit them.
  const std::size_t num_tasks = config.epsilons.size() * trials;
  Rng master(config.seed);
  std::vector<Rng> task_rngs = ForkTrialRngs(&master, num_tasks);

  // errors[task * num_estimators + e] = this trial's total squared error.
  std::vector<double> errors(num_tasks * num_estimators, 0.0);
  ParallelFor(
      static_cast<std::int64_t>(num_tasks), config.threads,
      [&](std::int64_t task) {
        const std::size_t eps_index =
            static_cast<std::size_t>(task) / trials;
        const double epsilon = config.epsilons[eps_index];
        Rng trial_rng = task_rngs[static_cast<std::size_t>(task)];
        std::vector<double> noisy =
            SampleNoisySortedCounts(data, epsilon, &trial_rng);
        std::size_t idx = 0;
        for (UnattributedEstimator estimator : kAllUnattributedEstimators) {
          std::vector<double> estimate =
              ApplyUnattributedEstimator(estimator, noisy);
          errors[static_cast<std::size_t>(task) * num_estimators + idx++] =
              SquaredError(estimate, truth);
        }
      });

  // Deterministic reduction in trial order.
  std::vector<UnattributedCell> cells;
  for (std::size_t e = 0; e < config.epsilons.size(); ++e) {
    std::vector<RunningStat> error_by_estimator(num_estimators);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::size_t task = e * trials + t;
      for (std::size_t i = 0; i < num_estimators; ++i) {
        error_by_estimator[i].Add(errors[task * num_estimators + i]);
      }
    }
    for (std::size_t i = 0; i < num_estimators; ++i) {
      double total = error_by_estimator[i].Mean();
      cells.push_back(UnattributedCell{config.epsilons[e],
                                       kAllUnattributedEstimators[i], total,
                                       total / n});
    }
  }
  return cells;
}

std::vector<UniversalCell> RunUniversalExperiment(
    const Histogram& data, const UniversalExperimentConfig& config) {
  DPHIST_CHECK(config.trials > 0);
  DPHIST_CHECK(config.ranges_per_size > 0);
  const std::int64_t domain_size = data.size();
  const std::vector<std::int64_t> sizes = Fig6RangeSizes(domain_size);
  const std::size_t trials = static_cast<std::size_t>(config.trials);
  const std::size_t ranges_per_size =
      static_cast<std::size_t>(config.ranges_per_size);
  constexpr std::size_t kNumEstimators = 3;  // L~, H~, H-bar

  // Histogram's const accessors are thread-safe (eager prefix table), so
  // workers take true range counts straight from data.Count(). The
  // (trial-invariant) true tree counts are evaluated once instead of
  // once per trial.
  const HierarchicalQuery h_query(domain_size, config.branching);
  const std::vector<double> true_nodes = h_query.Evaluate(data);

  const std::size_t num_tasks = config.epsilons.size() * trials;
  Rng master(config.seed);
  std::vector<Rng> task_rngs = ForkTrialRngs(&master, num_tasks);

  // stats[task][size_index * 3 + estimator] accumulates this trial's
  // squared errors; merged across trials afterwards in trial order.
  std::vector<std::vector<RunningStat>> stats(
      num_tasks, std::vector<RunningStat>(sizes.size() * kNumEstimators));

  ParallelFor(
      static_cast<std::int64_t>(num_tasks), config.threads,
      [&](std::int64_t task_index) {
        const std::size_t task = static_cast<std::size_t>(task_index);
        const double epsilon = config.epsilons[task / trials];
        UniversalOptions options;
        options.epsilon = epsilon;
        options.branching = config.branching;
        options.round_to_nonnegative_integers =
            config.round_to_nonnegative_integers;
        options.prune_nonpositive_subtrees =
            config.prune_nonpositive_subtrees;
        const LaplaceMechanism mechanism(epsilon);

        Rng trial_rng = task_rngs[task];
        LTildeEstimator l_tilde(data, options, &trial_rng);
        // One hierarchical draw shared by H~ and H-bar.
        std::vector<double> noisy_nodes = mechanism.Perturb(
            true_nodes, mechanism.NoiseScale(h_query), &trial_rng);
        HBarEstimator h_bar(domain_size, options, noisy_nodes);
        HTildeEstimator h_tilde(domain_size, options,
                                std::move(noisy_nodes));

        std::vector<double> answers_l(ranges_per_size);
        std::vector<double> answers_ht(ranges_per_size);
        std::vector<double> answers_hb(ranges_per_size);
        std::vector<RunningStat>& trial_stats = stats[task];
        for (std::size_t s = 0; s < sizes.size(); ++s) {
          std::vector<Interval> ranges = RandomRangesOfSize(
              domain_size, sizes[s], config.ranges_per_size, &trial_rng);
          l_tilde.RangeCountsInto(ranges.data(), ranges.size(),
                                  answers_l.data());
          h_tilde.RangeCountsInto(ranges.data(), ranges.size(),
                                  answers_ht.data());
          h_bar.RangeCountsInto(ranges.data(), ranges.size(),
                                answers_hb.data());
          for (std::size_t q = 0; q < ranges.size(); ++q) {
            const double truth = data.Count(ranges[q]);
            const double dl = answers_l[q] - truth;
            const double dht = answers_ht[q] - truth;
            const double dhb = answers_hb[q] - truth;
            trial_stats[s * kNumEstimators + 0].Add(dl * dl);
            trial_stats[s * kNumEstimators + 1].Add(dht * dht);
            trial_stats[s * kNumEstimators + 2].Add(dhb * dhb);
          }
        }
      });

  std::vector<UniversalCell> cells;
  for (std::size_t e = 0; e < config.epsilons.size(); ++e) {
    std::vector<RunningStat> merged(sizes.size() * kNumEstimators);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::vector<RunningStat>& trial_stats = stats[e * trials + t];
      for (std::size_t i = 0; i < merged.size(); ++i) {
        merged[i].Merge(trial_stats[i]);
      }
    }
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      cells.push_back(UniversalCell{config.epsilons[e], "L~", sizes[s],
                                    merged[s * kNumEstimators + 0].Mean()});
      cells.push_back(UniversalCell{config.epsilons[e], "H~", sizes[s],
                                    merged[s * kNumEstimators + 1].Mean()});
      cells.push_back(UniversalCell{config.epsilons[e], "H-bar", sizes[s],
                                    merged[s * kNumEstimators + 2].Mean()});
    }
  }
  return cells;
}

ErrorProfile RunErrorProfile(const Histogram& data, double epsilon,
                             std::int64_t trials, std::uint64_t seed) {
  DPHIST_CHECK(trials > 0);
  // Work in ascending order (the inference order), flip for display.
  const std::vector<double> truth_ascending = TrueSortedCounts(data);
  const std::size_t n = truth_ascending.size();

  std::vector<RunningStat> per_position(n);
  Rng master(seed);
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng trial_rng = master.Fork();
    std::vector<double> noisy =
        SampleNoisySortedCounts(data, epsilon, &trial_rng);
    std::vector<double> fitted = IsotonicRegression(noisy);
    for (std::size_t i = 0; i < n; ++i) {
      double d = fitted[i] - truth_ascending[i];
      per_position[i].Add(d * d);
    }
  }

  ErrorProfile profile;
  profile.true_sorted_descending.assign(truth_ascending.rbegin(),
                                        truth_ascending.rend());
  profile.sbar_error.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    profile.sbar_error[i] = per_position[n - 1 - i].Mean();
  }
  profile.stilde_error = 2.0 / (epsilon * epsilon);
  return profile;
}

}  // namespace dphist
