#include "experiments/runner.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "estimators/range_engine.h"
#include "estimators/universal.h"
#include "inference/isotonic.h"
#include "mechanism/laplace_mechanism.h"
#include "query/hierarchical_query.h"

namespace dphist {

std::vector<UnattributedCell> RunUnattributedExperiment(
    const Histogram& data, const UnattributedExperimentConfig& config) {
  DPHIST_CHECK(config.trials > 0);
  const std::vector<double> truth = TrueSortedCounts(data);
  const double n = static_cast<double>(truth.size());

  std::vector<UnattributedCell> cells;
  Rng master(config.seed);
  for (double epsilon : config.epsilons) {
    RunningStat error_by_estimator[3];
    for (std::int64_t t = 0; t < config.trials; ++t) {
      Rng trial_rng = master.Fork();
      std::vector<double> noisy =
          SampleNoisySortedCounts(data, epsilon, &trial_rng);
      int idx = 0;
      for (UnattributedEstimator estimator : kAllUnattributedEstimators) {
        std::vector<double> estimate =
            ApplyUnattributedEstimator(estimator, noisy);
        error_by_estimator[idx++].Add(SquaredError(estimate, truth));
      }
    }
    int idx = 0;
    for (UnattributedEstimator estimator : kAllUnattributedEstimators) {
      double total = error_by_estimator[idx++].Mean();
      cells.push_back(UnattributedCell{epsilon, estimator, total, total / n});
    }
  }
  return cells;
}

std::vector<UniversalCell> RunUniversalExperiment(
    const Histogram& data, const UniversalExperimentConfig& config) {
  DPHIST_CHECK(config.trials > 0);
  DPHIST_CHECK(config.ranges_per_size > 0);
  const std::int64_t domain_size = data.size();
  const std::vector<std::int64_t> sizes = Fig6RangeSizes(domain_size);

  std::vector<UniversalCell> cells;
  Rng master(config.seed);
  for (double epsilon : config.epsilons) {
    UniversalOptions options;
    options.epsilon = epsilon;
    options.branching = config.branching;
    options.round_to_nonnegative_integers =
        config.round_to_nonnegative_integers;
    options.prune_nonpositive_subtrees = config.prune_nonpositive_subtrees;

    // error[estimator][size index]
    std::vector<RunningStat> errors_l(sizes.size());
    std::vector<RunningStat> errors_ht(sizes.size());
    std::vector<RunningStat> errors_hb(sizes.size());

    HierarchicalQuery h_query(domain_size, config.branching);
    LaplaceMechanism mechanism(epsilon);

    for (std::int64_t t = 0; t < config.trials; ++t) {
      Rng trial_rng = master.Fork();
      LTildeEstimator l_tilde(data, options, &trial_rng);
      // One hierarchical draw shared by H~ and H-bar.
      std::vector<double> noisy_nodes =
          mechanism.AnswerQuery(h_query, data, &trial_rng);
      HTildeEstimator h_tilde(domain_size, options, noisy_nodes);
      HBarEstimator h_bar(domain_size, options, noisy_nodes);

      for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::vector<Interval> ranges = RandomRangesOfSize(
            domain_size, sizes[s], config.ranges_per_size, &trial_rng);
        for (const Interval& q : ranges) {
          double truth = data.Count(q);
          double dl = l_tilde.RangeCount(q) - truth;
          double dht = h_tilde.RangeCount(q) - truth;
          double dhb = h_bar.RangeCount(q) - truth;
          errors_l[s].Add(dl * dl);
          errors_ht[s].Add(dht * dht);
          errors_hb[s].Add(dhb * dhb);
        }
      }
    }
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      cells.push_back(
          UniversalCell{epsilon, "L~", sizes[s], errors_l[s].Mean()});
      cells.push_back(
          UniversalCell{epsilon, "H~", sizes[s], errors_ht[s].Mean()});
      cells.push_back(
          UniversalCell{epsilon, "H-bar", sizes[s], errors_hb[s].Mean()});
    }
  }
  return cells;
}

ErrorProfile RunErrorProfile(const Histogram& data, double epsilon,
                             std::int64_t trials, std::uint64_t seed) {
  DPHIST_CHECK(trials > 0);
  // Work in ascending order (the inference order), flip for display.
  const std::vector<double> truth_ascending = TrueSortedCounts(data);
  const std::size_t n = truth_ascending.size();

  std::vector<RunningStat> per_position(n);
  Rng master(seed);
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng trial_rng = master.Fork();
    std::vector<double> noisy =
        SampleNoisySortedCounts(data, epsilon, &trial_rng);
    std::vector<double> fitted = IsotonicRegression(noisy);
    for (std::size_t i = 0; i < n; ++i) {
      double d = fitted[i] - truth_ascending[i];
      per_position[i].Add(d * d);
    }
  }

  ErrorProfile profile;
  profile.true_sorted_descending.assign(truth_ascending.rbegin(),
                                        truth_ascending.rend());
  profile.sbar_error.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    profile.sbar_error[i] = per_position[n - 1 - i].Mean();
  }
  profile.stilde_error = 2.0 / (epsilon * epsilon);
  return profile;
}

}  // namespace dphist
