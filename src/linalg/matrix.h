// Dense row-major matrix and vector helpers.
//
// This is a deliberately small linear-algebra kernel: the paper's closed
// forms (Theorems 1 and 3) are the production path, and this module exists
// to (a) solve the generic equality-constrained least-squares problems of
// Section 2.2 / the intro's grades example, and (b) cross-validate the
// closed forms against textbook OLS in tests. Sizes are therefore modest
// and clarity wins over blocking/vectorization tricks.

#ifndef DPHIST_LINALG_MATRIX_H_
#define DPHIST_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dphist::linalg {

/// Column vector; plain std::vector<double> for interoperability with the
/// rest of the library.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// A rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds a matrix from a row-major brace list, e.g.
  /// Matrix::FromRows({{1, 0}, {0, 1}}). Rows must be equal length.
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// The n x n identity.
  static Matrix Identity(std::size_t n);

  /// A diagonal matrix with the given entries.
  static Matrix Diagonal(const Vector& entries);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access (no bounds check in release; DPHIST_DCHECKed).
  double& operator()(std::size_t i, std::size_t j);
  double operator()(std::size_t i, std::size_t j) const;

  /// The transpose.
  Matrix Transpose() const;

  /// Matrix product this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v. Requires cols() == v.size().
  Vector Multiply(const Vector& v) const;

  /// Componentwise sum. Requires equal shapes.
  Matrix Add(const Matrix& other) const;

  /// Componentwise difference. Requires equal shapes.
  Matrix Subtract(const Matrix& other) const;

  /// Scalar multiple.
  Matrix Scale(double factor) const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Human-readable rendering for test failure messages.
  std::string ToString() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Dot product. Requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Componentwise a + b. Requires equal sizes.
Vector Add(const Vector& a, const Vector& b);

/// Componentwise a - b. Requires equal sizes.
Vector Subtract(const Vector& a, const Vector& b);

/// Scalar multiple of a vector.
Vector Scale(const Vector& a, double factor);

/// Euclidean norm.
double Norm2(const Vector& a);

}  // namespace dphist::linalg

#endif  // DPHIST_LINALG_MATRIX_H_
