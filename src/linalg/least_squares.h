// Ordinary and equality-constrained least squares.
//
// Two problems from the paper are expressed here:
//
//  1. OLS (Section 4.1): the noisy hierarchical answers are y = X q + noise
//     where q holds the unknown leaf counts and X maps leaves to tree nodes.
//     The minimum-L2 consistent estimate is the OLS fit X q_hat. Theorem 3's
//     two-pass recurrence computes the same thing in linear time; tests use
//     this module as the ground truth it must match.
//
//  2. Affine projection (Section 2.2, Definition 2.4): given noisy answers
//     q_tilde and equality constraints A q = b, find the closest consistent
//     vector. This also solves the intro's student-grades example.

#ifndef DPHIST_LINALG_LEAST_SQUARES_H_
#define DPHIST_LINALG_LEAST_SQUARES_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dphist::linalg {

/// Solves min_x ||a x - y||_2 by Householder QR. `a` must be m x n with
/// m >= n and full column rank; y.size() must equal m.
Result<Vector> SolveOls(const Matrix& a, const Vector& y);

/// Returns the fitted values a * x_hat of the OLS solution.
Result<Vector> OlsFittedValues(const Matrix& a, const Vector& y);

/// Projects `target` onto the affine subspace { q : a q = b }:
///   argmin_q ||q - target||_2  subject to  a q = b.
/// Solved via the KKT system: q = target + a^T lambda with
/// (a a^T) lambda = b - a * target. `a` must have full row rank.
Result<Vector> ProjectOntoAffineSubspace(const Matrix& a, const Vector& b,
                                         const Vector& target);

}  // namespace dphist::linalg

#endif  // DPHIST_LINALG_LEAST_SQUARES_H_
