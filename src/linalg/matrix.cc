#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dphist::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  DPHIST_CHECK(rows > 0 && cols > 0);
}

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  DPHIST_CHECK(rows.size() > 0);
  std::size_t n_cols = rows.begin()->size();
  DPHIST_CHECK(n_cols > 0);
  Matrix m(rows.size(), n_cols);
  std::size_t i = 0;
  for (const auto& row : rows) {
    DPHIST_CHECK_MSG(row.size() == n_cols, "ragged row in Matrix::FromRows");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  DPHIST_DCHECK(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  DPHIST_DCHECK(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DPHIST_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::Multiply(const Vector& v) const {
  DPHIST_CHECK(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  DPHIST_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  DPHIST_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * factor;
  }
  return out;
}

double Matrix::MaxAbs() const {
  double worst = 0.0;
  for (double v : data_) worst = std::max(worst, std::abs(v));
  return worst;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? ", " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  DPHIST_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vector Add(const Vector& a, const Vector& b) {
  DPHIST_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  DPHIST_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double factor) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * factor;
  return out;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

}  // namespace dphist::linalg
