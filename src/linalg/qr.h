// Householder QR factorization and least-squares solves.
//
// QR is the numerically robust path for the tall systems that arise when
// cross-checking hierarchical inference: the observation matrix X maps n
// leaf counts to m >= n tree counts and is full column rank by
// construction, so min ||X q - y||_2 has the unique solution R^-1 Q^T y.

#ifndef DPHIST_LINALG_QR_H_
#define DPHIST_LINALG_QR_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dphist::linalg {

/// Householder QR of an m x n matrix with m >= n.
class QrFactorization {
 public:
  /// Factorizes `a`. Fails with InvalidArgument if m < n or if `a` is
  /// (numerically) column-rank-deficient.
  static Result<QrFactorization> Compute(const Matrix& a);

  /// Solves the least-squares problem min ||A x - b||_2.
  /// Requires b.size() == m.
  Vector SolveLeastSquares(const Vector& b) const;

 private:
  QrFactorization(Matrix packed, Vector betas)
      : packed_(std::move(packed)), betas_(std::move(betas)) {}

  /// Householder vectors below the diagonal, R on and above it.
  Matrix packed_;
  /// Householder scalars (2 / v^T v per reflector).
  Vector betas_;
};

}  // namespace dphist::linalg

#endif  // DPHIST_LINALG_QR_H_
