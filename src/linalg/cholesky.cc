#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dphist::linalg {

Result<CholeskyFactorization> CholeskyFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  std::size_t n = a.rows();
  // Relative pivot threshold: an exactly singular matrix can produce a
  // pivot of ~1e-16 instead of 0 through round-off, which would otherwise
  // slip past an exact <= 0 test and blow up the solve.
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(a(i, i)));
  }
  const double pivot_floor = 1e-10 * std::max(1.0, max_diag);
  Matrix lower(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= lower(j, k) * lower(j, k);
    if (diag <= pivot_floor || !std::isfinite(diag)) {
      return Status::InvalidArgument(
          "matrix is not numerically positive definite");
    }
    lower(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      lower(i, j) = sum / lower(j, j);
    }
  }
  return CholeskyFactorization(std::move(lower));
}

Vector CholeskyFactorization::Solve(const Vector& b) const {
  std::size_t n = lower_.rows();
  DPHIST_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower_(i, k) * y[k];
    y[i] = sum / lower_(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower_(k, i) * x[k];
    x[i] = sum / lower_(i, i);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  auto factor = CholeskyFactorization::Compute(a);
  if (!factor.ok()) return factor.status();
  return factor.value().Solve(b);
}

}  // namespace dphist::linalg
