#include "linalg/least_squares.h"

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/qr.h"

namespace dphist::linalg {

Result<Vector> SolveOls(const Matrix& a, const Vector& y) {
  if (y.size() != a.rows()) {
    return Status::InvalidArgument("OLS: y.size() must equal a.rows()");
  }
  auto qr = QrFactorization::Compute(a);
  if (!qr.ok()) return qr.status();
  return qr.value().SolveLeastSquares(y);
}

Result<Vector> OlsFittedValues(const Matrix& a, const Vector& y) {
  auto x = SolveOls(a, y);
  if (!x.ok()) return x.status();
  return a.Multiply(x.value());
}

Result<Vector> ProjectOntoAffineSubspace(const Matrix& a, const Vector& b,
                                         const Vector& target) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("projection: b.size() must equal a.rows()");
  }
  if (target.size() != a.cols()) {
    return Status::InvalidArgument(
        "projection: target.size() must equal a.cols()");
  }
  // Schur complement of the KKT system.
  Matrix gram = a.Multiply(a.Transpose());
  Vector residual = Subtract(b, a.Multiply(target));
  auto lambda = SolveSpd(gram, residual);
  if (!lambda.ok()) {
    return Status::InvalidArgument(
        "projection: constraint matrix is row-rank-deficient (" +
        lambda.status().message() + ")");
  }
  Vector correction = a.Transpose().Multiply(lambda.value());
  return Add(target, correction);
}

}  // namespace dphist::linalg
