// Cholesky factorization A = L L^T for symmetric positive-definite systems.
//
// Used by the equality-constrained least-squares solver (the KKT system's
// Schur complement A A^T is SPD when the constraint matrix has full row
// rank) and by the normal-equations OLS path.

#ifndef DPHIST_LINALG_CHOLESKY_H_
#define DPHIST_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace dphist::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix.
class CholeskyFactorization {
 public:
  /// Factorizes `a`, which must be square and symmetric positive-definite.
  /// Fails with InvalidArgument if `a` is not square or not (numerically)
  /// positive definite.
  static Result<CholeskyFactorization> Compute(const Matrix& a);

  /// Solves A x = b given the factorization. Requires b.size() == n.
  Vector Solve(const Vector& b) const;

  /// The lower-triangular factor L.
  const Matrix& lower() const { return lower_; }

 private:
  explicit CholeskyFactorization(Matrix lower) : lower_(std::move(lower)) {}
  Matrix lower_;
};

/// Convenience one-shot solve of the SPD system A x = b.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

}  // namespace dphist::linalg

#endif  // DPHIST_LINALG_CHOLESKY_H_
