#include "linalg/qr.h"

#include <cmath>

#include "common/check.h"

namespace dphist::linalg {

Result<QrFactorization> QrFactorization::Compute(const Matrix& a) {
  std::size_t m = a.rows();
  std::size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  Matrix packed = a;
  Vector betas(n, 0.0);

  for (std::size_t j = 0; j < n; ++j) {
    // Build the Householder reflector for column j below the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = j; i < m; ++i) norm_sq += packed(i, j) * packed(i, j);
    double norm = std::sqrt(norm_sq);
    if (norm <= 1e-12) {
      return Status::InvalidArgument("matrix is column-rank-deficient");
    }
    double alpha = packed(j, j) >= 0.0 ? -norm : norm;
    // v = x - alpha * e1, stored in place; v[j] is the pivot component.
    double vj = packed(j, j) - alpha;
    packed(j, j) = alpha;  // R diagonal entry.
    // v^T v = norm_sq - 2 alpha x_j + alpha^2 = 2 (norm_sq - alpha x_j)
    // using alpha^2 = norm_sq.
    double vtv = vj * vj;
    for (std::size_t i = j + 1; i < m; ++i) {
      vtv += packed(i, j) * packed(i, j);
    }
    if (vtv <= 1e-24) {
      betas[j] = 0.0;
      continue;
    }
    double beta = 2.0 / vtv;
    betas[j] = beta;

    // Apply the reflector to the remaining columns: A := (I - beta v v^T) A.
    for (std::size_t col = j + 1; col < n; ++col) {
      double dot = vj * packed(j, col);
      for (std::size_t i = j + 1; i < m; ++i) {
        dot += packed(i, j) * packed(i, col);
      }
      double scale = beta * dot;
      packed(j, col) -= scale * vj;
      for (std::size_t i = j + 1; i < m; ++i) {
        packed(i, col) -= scale * packed(i, j);
      }
    }
    // Store v's tail in the column below the diagonal and remember vj by
    // normalizing: store tail / vj so v = (1, tail...) * vj. We instead keep
    // the tail as-is and stash vj in a parallel location: pack vj into the
    // beta via sign? Simpler: normalize the stored tail by vj and fold vj^2
    // into beta.
    for (std::size_t i = j + 1; i < m; ++i) {
      packed(i, j) /= vj;
    }
    betas[j] = beta * vj * vj;
  }
  return QrFactorization(std::move(packed), std::move(betas));
}

Vector QrFactorization::SolveLeastSquares(const Vector& b) const {
  std::size_t m = packed_.rows();
  std::size_t n = packed_.cols();
  DPHIST_CHECK(b.size() == m);

  // Apply Q^T to b: reflectors are v = (1, tail...) with scalar betas_.
  Vector y = b;
  for (std::size_t j = 0; j < n; ++j) {
    if (betas_[j] == 0.0) continue;
    double dot = y[j];
    for (std::size_t i = j + 1; i < m; ++i) dot += packed_(i, j) * y[i];
    double scale = betas_[j] * dot;
    y[j] -= scale;
    for (std::size_t i = j + 1; i < m; ++i) y[i] -= scale * packed_(i, j);
  }

  // Back-substitute R x = y[0..n).
  Vector x(n);
  for (std::size_t jj = n; jj > 0; --jj) {
    std::size_t j = jj - 1;
    double sum = y[j];
    for (std::size_t k = j + 1; k < n; ++k) sum -= packed_(j, k) * x[k];
    x[j] = sum / packed_(j, j);
  }
  return x;
}

}  // namespace dphist::linalg
