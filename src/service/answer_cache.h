// Thread-safe LRU cache of range answers, keyed on (epoch, range).
//
// The serving layer memoizes computed range counts so repeated traffic —
// many clients asking the same popular ranges — pays one estimator walk
// and then a hash lookup. The snapshot epoch is part of the key, so a
// republish never needs invalidation: entries from an old epoch simply
// stop being asked for and age out of the LRU order.
//
// Concurrency: the key space is partitioned across independent lock
// shards (hash-selected), each holding its own mutex, hash map, and LRU
// list. Readers on different shards never contend; within a shard, both
// hits and misses take one short critical section. A concurrent miss on
// the same key may compute the answer twice and insert twice — the
// second insert overwrites with an identical value (answers are a pure
// function of the immutable snapshot), so the race is benign.

#ifndef DPHIST_SERVICE_ANSWER_CACHE_H_
#define DPHIST_SERVICE_ANSWER_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "domain/interval.h"

namespace dphist {

/// Sharded LRU map from (epoch, lo, hi) to a cached answer.
class AnswerCache {
 public:
  /// `capacity` is the minimum total number of cached answers across all
  /// lock shards (the effective total is capacity rounded up to a
  /// multiple of the lock shards, so a hot set that fits the declared
  /// capacity never thrashes); 0 disables the cache entirely (Lookup
  /// always misses, Insert is a no-op). `lock_shards` is rounded up to a
  /// power of two and shrunk if the capacity cannot fill every shard.
  explicit AnswerCache(std::int64_t capacity, std::int64_t lock_shards = 16);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// True and fills `*out` when (epoch, range) is cached; refreshes the
  /// entry's LRU position.
  bool Lookup(std::uint64_t epoch, const Interval& range, double* out);

  /// Caches the answer, evicting the least-recently-used entry of the
  /// key's lock shard when that shard is full.
  void Insert(std::uint64_t epoch, const Interval& range, double answer);

  /// Batched Lookup: fills out[i] and sets hit[i] for every cached
  /// ranges[i]. Keys are grouped by lock shard first, so each shard's
  /// mutex is acquired at most once per internal chunk of the batch
  /// instead of once per query — the lock-amortization QueryBatch relies
  /// on. No heap allocation.
  void LookupMany(std::uint64_t epoch, const Interval* ranges,
                  std::size_t count, double* out, bool* hit);

  /// Batched Insert of every entry whose skip[i] is false (pass nullptr
  /// to insert all), with the same per-shard lock batching. Typically
  /// called with LookupMany's hit array as `skip` so only the misses
  /// just computed are inserted.
  void InsertMany(std::uint64_t epoch, const Interval* ranges,
                  const double* answers, std::size_t count,
                  const bool* skip);

  /// Drops every entry from an epoch older than `epoch`, freeing their
  /// capacity immediately instead of waiting for LRU aging; returns the
  /// number dropped (also counted in stats().epoch_evictions). The
  /// QueryService calls this on every snapshot swap, so entries from a
  /// replaced release are never reachable afterwards.
  std::int64_t EvictOlderEpochs(std::uint64_t epoch);

  /// Drops every entry (stats are kept).
  void Clear();

  bool enabled() const { return capacity_ > 0; }
  std::int64_t capacity() const { return capacity_; }

  /// Entries currently cached, summed over lock shards.
  std::int64_t size() const;

  /// Records `count` computed answers the admission policy kept out of
  /// the cache (Snapshot::AdmitToCache said recomputing is as cheap as a
  /// hit). Pure bookkeeping — shows up as stats().admission_rejects.
  void NoteAdmissionRejects(std::uint64_t count) {
    admission_rejects_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Monotonic counters; cheap relaxed atomics, safe to read anytime.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;        // LRU capacity evictions
    std::uint64_t epoch_evictions = 0;  // proactive EvictOlderEpochs drops
    std::uint64_t admission_rejects = 0;  // answers kept out by admission
  };
  Stats stats() const;

 private:
  struct Key {
    std::uint64_t epoch;
    std::int64_t lo;
    std::int64_t hi;
    bool operator==(const Key& other) const {
      return epoch == other.epoch && lo == other.lo && hi == other.hi;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    double answer;
  };
  struct Shard {
    Mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru DPHIST_GUARDED_BY(mutex);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        DPHIST_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const Key& key);

  /// Queries per stack-allocated batching chunk in LookupMany/InsertMany.
  static constexpr std::size_t kBatchChunk = 64;

  std::int64_t capacity_;
  std::int64_t per_shard_capacity_;
  std::size_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> epoch_evictions_{0};
  std::atomic<std::uint64_t> admission_rejects_{0};
};

}  // namespace dphist

#endif  // DPHIST_SERVICE_ANSWER_CACHE_H_
