#include "service/answer_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dphist {
namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash step.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t RoundUpPowerOfTwo(std::int64_t value) {
  std::size_t p = 1;
  while (p < static_cast<std::size_t>(value)) p <<= 1;
  return p;
}

}  // namespace

std::size_t AnswerCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = Mix(key.epoch);
  h = Mix(h ^ static_cast<std::uint64_t>(key.lo));
  h = Mix(h ^ static_cast<std::uint64_t>(key.hi));
  return static_cast<std::size_t>(h);
}

AnswerCache::AnswerCache(std::int64_t capacity, std::int64_t lock_shards)
    : capacity_(capacity > 0 ? capacity : 0) {
  DPHIST_CHECK_MSG(lock_shards >= 1, "lock_shards must be >= 1");
  std::size_t shard_count = RoundUpPowerOfTwo(lock_shards);
  // Never spread the capacity so thin that a shard holds nothing.
  while (shard_count > 1 &&
         capacity_ / static_cast<std::int64_t>(shard_count) < 1) {
    shard_count >>= 1;
  }
  shard_mask_ = shard_count - 1;
  // Ceil-divide so no hot set that fits the declared capacity thrashes;
  // the effective total is capacity rounded up to a shard multiple.
  per_shard_capacity_ =
      capacity_ > 0 ? (capacity_ + static_cast<std::int64_t>(shard_count) -
                       1) /
                          static_cast<std::int64_t>(shard_count)
                    : 0;
  shards_ = std::make_unique<Shard[]>(shard_count);
}

AnswerCache::Shard& AnswerCache::ShardFor(const Key& key) {
  return shards_[KeyHash{}(key)&shard_mask_];
}

bool AnswerCache::Lookup(std::uint64_t epoch, const Interval& range,
                         double* out) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Key key{epoch, range.lo(), range.hi()};
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->answer;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void AnswerCache::Insert(std::uint64_t epoch, const Interval& range,
                         double answer) {
  if (capacity_ == 0) return;
  const Key key{epoch, range.lo(), range.hi()};
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Benign double-compute race: same immutable snapshot, same answer.
    it->second->answer = answer;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (static_cast<std::int64_t>(shard.lru.size()) >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, answer});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void AnswerCache::LookupMany(std::uint64_t epoch, const Interval* ranges,
                             std::size_t count, double* out, bool* hit) {
  if (capacity_ == 0) {
    for (std::size_t i = 0; i < count; ++i) hit[i] = false;
    misses_.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  std::uint64_t found = 0;
  for (std::size_t base = 0; base < count; base += kBatchChunk) {
    const std::size_t chunk = std::min(kBatchChunk, count - base);
    // Group the chunk's keys by lock shard so each shard's mutex is
    // taken once per chunk, not once per query. Stack scratch only.
    std::size_t shard_of[kBatchChunk];
    for (std::size_t i = 0; i < chunk; ++i) {
      const Key key{epoch, ranges[base + i].lo(), ranges[base + i].hi()};
      shard_of[i] = KeyHash{}(key)&shard_mask_;
      hit[base + i] = false;
    }
    bool done[kBatchChunk] = {};
    for (std::size_t i = 0; i < chunk; ++i) {
      if (done[i]) continue;
      Shard& shard = shards_[shard_of[i]];
      MutexLock lock(shard.mutex);
      for (std::size_t j = i; j < chunk; ++j) {
        if (done[j] || shard_of[j] != shard_of[i]) continue;
        done[j] = true;
        const Key key{epoch, ranges[base + j].lo(), ranges[base + j].hi()};
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          out[base + j] = it->second->answer;
          hit[base + j] = true;
          ++found;
        }
      }
    }
  }
  hits_.fetch_add(found, std::memory_order_relaxed);
  misses_.fetch_add(count - found, std::memory_order_relaxed);
}

void AnswerCache::InsertMany(std::uint64_t epoch, const Interval* ranges,
                             const double* answers, std::size_t count,
                             const bool* skip) {
  if (capacity_ == 0) return;
  std::uint64_t inserted = 0;
  std::uint64_t evicted = 0;
  for (std::size_t base = 0; base < count; base += kBatchChunk) {
    const std::size_t chunk = std::min(kBatchChunk, count - base);
    std::size_t shard_of[kBatchChunk];
    bool done[kBatchChunk] = {};
    for (std::size_t i = 0; i < chunk; ++i) {
      if (skip != nullptr && skip[base + i]) {
        done[i] = true;
        continue;
      }
      const Key key{epoch, ranges[base + i].lo(), ranges[base + i].hi()};
      shard_of[i] = KeyHash{}(key)&shard_mask_;
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      if (done[i]) continue;
      Shard& shard = shards_[shard_of[i]];
      MutexLock lock(shard.mutex);
      for (std::size_t j = i; j < chunk; ++j) {
        if (done[j] || shard_of[j] != shard_of[i]) continue;
        done[j] = true;
        const Key key{epoch, ranges[base + j].lo(), ranges[base + j].hi()};
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
          // Benign double-compute race: same immutable snapshot, same
          // answer.
          it->second->answer = answers[base + j];
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          continue;
        }
        if (static_cast<std::int64_t>(shard.lru.size()) >=
            per_shard_capacity_) {
          shard.index.erase(shard.lru.back().key);
          shard.lru.pop_back();
          ++evicted;
        }
        shard.lru.push_front(Entry{key, answers[base + j]});
        shard.index.emplace(key, shard.lru.begin());
        ++inserted;
      }
    }
  }
  insertions_.fetch_add(inserted, std::memory_order_relaxed);
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

std::int64_t AnswerCache::EvictOlderEpochs(std::uint64_t epoch) {
  if (capacity_ == 0) return 0;
  std::int64_t dropped = 0;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.epoch < epoch) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  epoch_evictions_.fetch_add(static_cast<std::uint64_t>(dropped),
                             std::memory_order_relaxed);
  return dropped;
}

void AnswerCache::Clear() {
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    MutexLock lock(shards_[s].mutex);
    shards_[s].lru.clear();
    shards_[s].index.clear();
  }
}

std::int64_t AnswerCache::size() const {
  std::int64_t total = 0;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    MutexLock lock(shards_[s].mutex);
    total += static_cast<std::int64_t>(shards_[s].lru.size());
  }
  return total;
}

AnswerCache::Stats AnswerCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.epoch_evictions = epoch_evictions_.load(std::memory_order_relaxed);
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dphist
