#include "service/query_service.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace dphist {

QueryService::QueryService(const QueryServiceOptions& options)
    : cache_(options.cache_capacity, options.cache_lock_shards) {}

Result<std::shared_ptr<const Snapshot>> QueryService::Publish(
    const Histogram& data, const SnapshotOptions& options,
    std::uint64_t seed) {
  // Serializing publishers keeps epoch order equal to publish order; the
  // expensive Build happens inside this writer-only lock, which readers
  // never touch.
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const std::uint64_t epoch = last_epoch_ + 1;
  Rng rng(seed);
  Result<std::shared_ptr<const Snapshot>> built =
      Snapshot::Build(data, options, epoch, &rng);
  if (!built.ok()) return built;
  last_epoch_ = epoch;
  snapshot_.store(built.value(), std::memory_order_release);
  return built;
}

std::uint64_t QueryService::QueryBatch(const Interval* ranges,
                                       std::size_t count, double* out) const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  DPHIST_CHECK_MSG(snap != nullptr, "QueryBatch before the first Publish");
  if (!cache_.enabled()) {
    snap->RangeCountsInto(ranges, count, out);
    return snap->epoch();
  }
  const std::uint64_t epoch = snap->epoch();
  for (std::size_t i = 0; i < count; ++i) {
    if (cache_.Lookup(epoch, ranges[i], &out[i])) continue;
    out[i] = snap->RangeCount(ranges[i]);
    cache_.Insert(epoch, ranges[i], out[i]);
  }
  return epoch;
}

std::uint64_t QueryService::Query(const Interval& range, double* out) const {
  return QueryBatch(&range, 1, out);
}

std::uint64_t QueryService::current_epoch() const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  return snap == nullptr ? 0 : snap->epoch();
}

}  // namespace dphist
