#include "service/query_service.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "engine/answer_engine.h"

namespace dphist {

QueryService::QueryService(const QueryServiceOptions& options)
    : cache_(options.cache_capacity, options.cache_lock_shards),
      planner_options_(options.planner) {
  if (options.observed_reservoir > 0) {
    // Spread the capacity over the stripes (ceil, so it is never lost to
    // rounding); each stripe samples its own sub-stream and
    // ObservedWorkload merges them with per-stripe weights.
    const std::size_t per_stripe =
        (static_cast<std::size_t>(options.observed_reservoir) +
         kLengthStripes - 1) /
        kLengthStripes;
    for (auto& stripe : reservoirs_) {
      stripe = std::make_unique<ReservoirStripe>(per_stripe);
    }
  }
}

Result<QueryService::PendingPublish> QueryService::BuildForPublish(
    const Histogram& data, const SnapshotOptions& options,
    std::uint64_t seed, const planner::WorkloadProfile* workload) {
  SnapshotOptions resolved = options;
  if (options.strategy == StrategyKind::kAuto) {
    // Plan against the best available picture of the traffic: an
    // explicit profile beats observation, observation beats the neutral
    // prior. Planning happens before the publish lock — it reads no
    // service state that a concurrent publisher could change.
    planner::WorkloadProfile profile =
        workload != nullptr ? *workload : ObservedWorkload(data.size());
    if (profile.empty()) {
      profile = planner::WorkloadProfile::GeometricSweep(data.size());
    }
    Result<SnapshotOptions> planned =
        planner::ResolveAutoStrategy(resolved, profile, planner_options_);
    if (!planned.ok()) return planned.status();
    resolved = planned.value();
  }
  // Serializing publishers keeps epoch order equal to publish order;
  // the expensive Build happens under the publish token (not the
  // mutex), which readers never touch. The token rides inside the
  // PendingPublish until it is committed or abandoned.
  const std::uint64_t epoch = AcquirePublishToken();
  Rng rng(seed);
  Result<std::shared_ptr<const Snapshot>> built =
      Snapshot::Build(data, resolved, epoch, &rng);
  if (!built.ok()) {
    ReleasePublishToken();
    return built.status();
  }
  return PendingPublish(this, std::move(built).value());
}

std::uint64_t QueryService::AcquirePublishToken() {
  MutexLock lock(publish_mutex_);
  while (publishing_) publish_cv_.Wait(publish_mutex_);
  publishing_ = true;
  return last_epoch_ + 1;
}

void QueryService::ReleasePublishToken() {
  {
    MutexLock lock(publish_mutex_);
    publishing_ = false;
  }
  publish_cv_.NotifyOne();
}

void QueryService::PendingPublish::Abandon() {
  if (service_ == nullptr) return;
  service_->ReleasePublishToken();
  service_ = nullptr;
}

std::shared_ptr<const Snapshot> QueryService::CommitPublish(
    PendingPublish pending) {
  DPHIST_CHECK_MSG(pending.service_ == this && pending.snapshot_ != nullptr,
                   "CommitPublish needs a pending publish from this service");
  const std::uint64_t epoch = pending.snapshot_->epoch();
  // Swap and purge BEFORE releasing the publish token: the next
  // publisher may only observe last_epoch_ == epoch once this snapshot
  // is the one readers see, or its own (newer) swap could be overwritten
  // by ours.
  snapshot_.store(pending.snapshot_, std::memory_order_release);
  // Entries keyed by older epochs can never be served again (readers
  // that loaded the old snapshot before the swap still look up under the
  // old epoch, and a concurrent re-insert of such an entry is dropped at
  // the next swap); purge them now instead of letting them squat on LRU
  // capacity until they age out.
  const std::int64_t evicted = cache_.EvictOlderEpochs(epoch);
  {
    MutexLock lock(publish_mutex_);
    last_epoch_ = epoch;
    publishing_ = false;
  }
  publish_cv_.NotifyOne();
  pending.service_ = nullptr;  // token released; Abandon must not re-release
  {
    MutexLock stats_lock(swap_stats_mutex_);
    swap_stats_.publishes += 1;
    swap_stats_.last_epoch = epoch;
    swap_stats_.last_swap_evictions = evicted;
    swap_stats_.total_swap_evictions += evicted;
  }
  return std::move(pending.snapshot_);
}

Result<std::shared_ptr<const Snapshot>> QueryService::Publish(
    const Histogram& data, const SnapshotOptions& options,
    std::uint64_t seed, const planner::WorkloadProfile* workload) {
  Result<PendingPublish> pending =
      BuildForPublish(data, options, seed, workload);
  if (!pending.ok()) return pending.status();
  return CommitPublish(std::move(pending).value());
}

Result<std::shared_ptr<const Snapshot>> QueryService::PublishRestored(
    std::shared_ptr<const Snapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("PublishRestored needs a snapshot");
  }
  {
    MutexLock lock(publish_mutex_);
    while (publishing_) publish_cv_.Wait(publish_mutex_);
    if (snapshot->epoch() <= last_epoch_) {
      return Status::FailedPrecondition(
          "recovered epoch " + std::to_string(snapshot->epoch()) +
          " is not ahead of the current epoch " +
          std::to_string(last_epoch_));
    }
    publishing_ = true;
  }
  PendingPublish pending(this, std::move(snapshot));
  return CommitPublish(std::move(pending));
}

Result<std::shared_ptr<const Snapshot>> QueryService::PublishFromPlan(
    const Histogram& data, const planner::Plan& plan, std::uint64_t seed) {
  if (plan.options.strategy == StrategyKind::kAuto) {
    return Status::InvalidArgument(
        "PublishFromPlan needs a resolved plan (strategy is still auto)");
  }
  return Publish(data, plan.options, seed);
}

std::uint64_t QueryService::QueryBatch(const Interval* ranges,
                                       std::size_t count, double* out) const {
  return QueryBatch(ranges, count, out, nullptr);
}

std::uint64_t QueryService::QueryBatch(const Interval* ranges,
                                       std::size_t count, double* out,
                                       std::uint64_t* cache_hits) const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  DPHIST_CHECK_MSG(snap != nullptr, "QueryBatch before the first Publish");
  return QueryBatchOn(*snap, ranges, count, out, cache_hits);
}

Result<std::uint64_t> QueryService::TryQueryBatch(
    const Interval* ranges, std::size_t count, double* out,
    std::uint64_t* cache_hits) const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no published snapshot yet — queries need a Publish first");
  }
  Status valid = snap->ValidateRanges(ranges, count);
  if (!valid.ok()) return valid;
  return QueryBatchOn(*snap, ranges, count, out, cache_hits);
}

Status QueryService::ValidateBatch(const Interval* ranges,
                                   std::size_t count) const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no published snapshot yet — queries need a Publish first");
  }
  return snap->ValidateRanges(ranges, count);
}

std::uint64_t QueryService::QueryBatchOn(const Snapshot& snap,
                                         const Interval* ranges,
                                         std::size_t count, double* out,
                                         std::uint64_t* cache_hits) const {
  // Feed the observed-workload histogram the planner consumes: one
  // relaxed increment per query, on this thread's counter stripe — no
  // locks, no heap, and no hot cache line shared across readers.
  const std::size_t stripe_index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kLengthStripes;
  auto& stripe = observed_lengths_[stripe_index];
  for (std::size_t i = 0; i < count; ++i) {
    const auto length = static_cast<std::uint64_t>(ranges[i].Length());
    stripe[static_cast<std::size_t>(std::bit_width(length)) - 1].fetch_add(
        1, std::memory_order_relaxed);
  }
  if (reservoirs_[stripe_index] != nullptr) {
    // Optional exact-length sampling (one short lock per batch): keeps
    // raw (lo, hi) pairs so a replan from observation can match a
    // replan from the raw workload instead of bucket midpoints.
    ReservoirStripe& res = *reservoirs_[stripe_index];
    MutexLock lock(res.mutex);
    for (std::size_t i = 0; i < count; ++i) res.reservoir.Observe(ranges[i]);
  }
  const engine::AnswerPlan* plan = snap.answer_plan();
  if (!cache_.enabled()) {
    // Whole-batch fast path: prefix-served releases run through the
    // columnar engine (one kernel sweep, zero allocations); walker
    // strategies keep the estimator batch loop.
    if (plan != nullptr) {
      engine::AnswerBatch(*plan, ranges, /*sel=*/nullptr, count, out);
    } else {
      snap.RangeCountsInto(ranges, count, out);
    }
    return snap.epoch();
  }
  const std::uint64_t epoch = snap.epoch();
  constexpr std::size_t kChunk = 64;
  std::uint64_t admission_rejects = 0;
  for (std::size_t base = 0; base < count; base += kChunk) {
    const std::size_t chunk = std::min(kChunk, count - base);
    bool hit[kChunk];
    cache_.LookupMany(epoch, ranges + base, chunk, out + base, hit);
    if (cache_hits != nullptr) {
      // Count before the admission loop below repurposes hit[] as an
      // insert-skip mask (rejected answers are marked "hit" but were
      // computed, not served from the cache).
      for (std::size_t i = 0; i < chunk; ++i) {
        if (hit[i]) ++*cache_hits;
      }
    }
    if (plan != nullptr) {
      // Engine path: answer this chunk's misses as ONE selected batch
      // (the engine scatter-gathers through `sel`), then run admission.
      std::int32_t miss[kChunk];
      double miss_out[kChunk];
      std::size_t misses = 0;
      for (std::size_t i = 0; i < chunk; ++i) {
        if (!hit[i]) miss[misses++] = static_cast<std::int32_t>(i);
      }
      engine::AnswerBatch(*plan, ranges + base, miss, misses, miss_out);
      for (std::size_t m = 0; m < misses; ++m) {
        out[base + static_cast<std::size_t>(miss[m])] = miss_out[m];
      }
    }
    bool insert_any = false;
    for (std::size_t i = 0; i < chunk; ++i) {
      if (hit[i]) continue;
      if (plan == nullptr) {
        out[base + i] = snap.RangeCount(ranges[base + i]);
      }
      // Admission policy: answers as cheap to recompute as a cache hit
      // never enter the cache — marking them "hit" makes InsertMany
      // skip them, preserving capacity for expensive ranges.
      if (snap.AdmitToCache(ranges[base + i])) {
        insert_any = true;
      } else {
        hit[i] = true;
        ++admission_rejects;
      }
    }
    if (insert_any) {
      cache_.InsertMany(epoch, ranges + base, out + base, chunk, hit);
    }
  }
  if (admission_rejects > 0) cache_.NoteAdmissionRejects(admission_rejects);
  return epoch;
}

std::uint64_t QueryService::Query(const Interval& range, double* out) const {
  return QueryBatch(&range, 1, out);
}

planner::WorkloadProfile QueryService::ObservedWorkload(
    std::int64_t domain_size) const {
  planner::WorkloadProfile profile(domain_size);
  if (reservoirs_[0] != nullptr) {
    // Exact-length path: merge the per-stripe reservoirs. Each stripe
    // contributes its sample weighted by its own seen/|sample|, so the
    // merged profile is an unbiased length histogram of the full stream.
    for (const auto& stripe : reservoirs_) {
      MutexLock lock(stripe->mutex);
      stripe->reservoir.AddTo(&profile);
    }
    if (!profile.empty()) return profile;
    // Nothing sampled yet — fall through to the bucketed counters
    // (always empty too in that case, returning an empty profile).
  }
  for (std::size_t b = 0; b < kLengthBuckets; ++b) {
    std::uint64_t seen = 0;
    for (std::size_t s = 0; s < kLengthStripes; ++s) {
      seen += observed_lengths_[s][b].load(std::memory_order_relaxed);
    }
    if (seen == 0) continue;
    // Midpoint of the bucket [2^b, 2^(b+1) - 1], clamped to the domain.
    const std::int64_t lo = std::int64_t{1} << b;
    const std::int64_t representative =
        std::min(domain_size, (3 * lo - 1) / 2);
    profile.AddLength(representative, static_cast<double>(seen));
  }
  return profile;
}

std::uint64_t QueryService::observed_query_count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kLengthStripes; ++s) {
    for (std::size_t b = 0; b < kLengthBuckets; ++b) {
      total += observed_lengths_[s][b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t QueryService::current_epoch() const {
  std::shared_ptr<const Snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  return snap == nullptr ? 0 : snap->epoch();
}

QueryService::SwapStats QueryService::swap_stats() const {
  MutexLock lock(swap_stats_mutex_);
  return swap_stats_;
}

}  // namespace dphist
