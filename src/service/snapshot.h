// Immutable published estimator state for the serving layer.
//
// A Snapshot is one epsilon-DP release frozen for concurrent reading: it
// owns per-shard range-count estimators (HBar/HTilde/LTilde/wavelet)
// built from one interaction with the private data, plus the epoch
// number the QueryService assigned when publishing it. Snapshots are
// immutable after Build, so any number of threads may answer ranges from
// one concurrently with no synchronization; republishing at a new
// epsilon swaps in a *new* Snapshot rather than mutating this one.
//
// Sharding: the domain is split into contiguous shards of equal width
// and each shard gets its own estimator over its sub-histogram. Every
// record lives in exactly one shard, so the per-shard releases compose
// in parallel (McSherry's parallel composition) and the whole snapshot
// is still epsilon-DP. A range spanning shards is answered by summing
// the clipped per-shard answers; since shard noise draws are
// independent, the exact variance of a spanning answer is the sum of
// the per-shard closed-form variances — which is what the conformance
// harness in tests/support/ checks.

#ifndef DPHIST_SERVICE_SNAPSHOT_H_
#define DPHIST_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "engine/answer_plan.h"
#include "estimators/range_engine.h"

namespace dphist {

/// Which estimator family a snapshot publishes.
enum class StrategyKind {
  kLTilde,   // noisy unit counts (L~)
  kHTilde,   // noisy hierarchical counts (H~)
  kHBar,     // H~ + constrained inference (H-bar)
  kWavelet,  // Privelet weighted Haar
  kAuto,     // let the cost-based planner pick (src/planner/planner.h);
             // must be resolved before Snapshot::Build
};

/// Short stable name ("ltilde", "htilde", "hbar", "wavelet", "auto").
const char* StrategyKindName(StrategyKind kind);

/// Inverse of StrategyKindName; also accepts the display names
/// ("L~", "H~", "H-bar").
Result<StrategyKind> ParseStrategyKind(const std::string& name);

/// Everything that defines one published release.
struct SnapshotOptions {
  /// Privacy parameter of the release (per shard; parallel composition
  /// keeps the whole snapshot at this epsilon).
  double epsilon = 1.0;
  StrategyKind strategy = StrategyKind::kHBar;
  /// Tree branching factor (H~/H-bar only).
  std::int64_t branching = 2;
  /// Number of domain shards; clamped to the domain size. 1 = unsharded.
  std::int64_t shards = 1;
  /// Section 5.2 protocol knobs, forwarded to the estimators.
  bool round_to_nonnegative_integers = true;
  bool prune_nonpositive_subtrees = true;
  /// Worker threads for Build's per-shard estimator construction; 0 =
  /// hardware concurrency. Never affects the release's bits: shard RNG
  /// streams are forked in shard order before any worker runs, so the
  /// snapshot is a pure function of (data, options, rng) at any count.
  std::int64_t build_threads = 1;
  /// Cache admission threshold, in units of one O(1) lookup: an answer
  /// whose estimated recompute cost (RangeCountEstimator::RangeCostHint)
  /// is below this is never memoized — recomputing it is as cheap as a
  /// cache hit, so the entry would only squat on LRU capacity. 2.0 means
  /// "strictly more than a single prefix difference / leaf read".
  double cache_admit_min_cost = 2.0;
};

/// One immutable epsilon-DP release, safe for lock-free concurrent reads.
class Snapshot {
 public:
  /// Draws the noise and builds every shard estimator, fanning the
  /// per-shard construction out over options.build_threads workers. Each
  /// shard forks its own stream from `rng` in shard order before the
  /// fan-out, so the release is a deterministic function of
  /// (data, options, rng state) — bit-identical at every thread count.
  /// Fails on non-positive epsilon, branching < 2, shards < 1, an empty
  /// domain, or an unresolved kAuto strategy.
  static Result<std::shared_ptr<const Snapshot>> Build(
      const Histogram& data, const SnapshotOptions& options,
      std::uint64_t epoch, Rng* rng);

  /// Rebuilds a published snapshot from persisted per-shard estimator
  /// state (each shard's RangeCountEstimator::SerializableState, in
  /// domain order). Shard geometry is recomputed by Build's formula, so
  /// `shard_states.size()` must equal the count Build would have chosen
  /// for (options.shards, domain_size); each shard's vector must match
  /// the strategy's expected shape for its sub-domain. No noise is
  /// drawn — answers are bit-identical to the release that was
  /// persisted. Fails with a Status (never aborts) on any mismatch, so
  /// corrupt or stale state files are refusable.
  static Result<std::shared_ptr<const Snapshot>> Restore(
      const SnapshotOptions& options, std::uint64_t epoch,
      std::int64_t domain_size,
      const std::vector<std::vector<double>>& shard_states);

  /// Epoch assigned by the publisher; cache keys include it so answers
  /// from different releases can never be confused.
  std::uint64_t epoch() const { return epoch_; }

  double epsilon() const { return options_.epsilon; }
  StrategyKind strategy() const { return options_.strategy; }
  const SnapshotOptions& options() const { return options_; }

  /// The (unpadded) domain size the release covers.
  std::int64_t domain_size() const { return domain_size_; }

  /// Actual shard count after clamping (>= 1).
  std::int64_t shard_count() const {
    return static_cast<std::int64_t>(shards_.size());
  }

  /// Positions per shard (the last shard may be narrower).
  std::int64_t shard_width() const { return shard_width_; }

  /// The shard estimators, in domain order.
  const RangeCountEstimator& shard(std::int64_t index) const;

  /// The flattened columnar answer state for the batch answer engine
  /// (engine/answer_engine.h), built once at publish/restore time. Null
  /// when any shard answers by decomposition walk (H~, inconsistent
  /// H-bar) — those releases keep the walker path below, which is also
  /// the bit-identity reference the engine is tested against.
  const engine::AnswerPlan* answer_plan() const { return answer_plan_.get(); }

  /// Serving-path validation: Ok iff every range lies inside
  /// [0, domain_size). A violation is an OutOfRange naming the first bad
  /// range — surfaced as a session "error:" line by the transports,
  /// where the walker/engine paths would CHECK-abort.
  Status ValidateRanges(const Interval* ranges, std::size_t count) const;

  /// Cache admission policy: false when `range` is so cheap to recompute
  /// from this release that memoizing it wastes LRU capacity. A range
  /// spanning several shards is always admitted (its recomputation sums
  /// one answer per shard touched); a single-shard range is admitted
  /// only when that shard's own cost estimate
  /// (RangeCountEstimator::RangeCostHint) reaches
  /// options.cache_admit_min_cost — so on prefix-served releases (L~,
  /// consistent H-bar, wavelet) nothing single-shard is cached, while
  /// decomposition-walk releases (H~, inconsistent H-bar) cache
  /// everything. QueryService::QueryBatch consults this before inserting
  /// misses and counts the skips as admission_rejects.
  bool AdmitToCache(const Interval& range) const;

  /// Estimated count for `range` (must lie within [0, domain_size)).
  /// Sums clipped per-shard answers; no heap allocation.
  double RangeCount(const Interval& range) const;

  /// Batched form: fills out[i] with the answer for ranges[i]. With a
  /// single shard this forwards the whole batch to the estimator's
  /// RangeCountsInto (one virtual dispatch, zero allocations).
  void RangeCountsInto(const Interval* ranges, std::size_t count,
                       double* out) const;

 private:
  Snapshot(SnapshotOptions options, std::uint64_t epoch,
           std::int64_t domain_size, std::int64_t shard_width,
           std::vector<std::unique_ptr<RangeCountEstimator>> shards)
      : options_(options),
        epoch_(epoch),
        domain_size_(domain_size),
        shard_width_(shard_width),
        shards_(std::move(shards)),
        answer_plan_(engine::BuildAnswerPlan(shards_.data(), shard_count(),
                                             domain_size_, shard_width_)) {}

  SnapshotOptions options_;
  std::uint64_t epoch_;
  std::int64_t domain_size_;
  std::int64_t shard_width_;
  std::vector<std::unique_ptr<RangeCountEstimator>> shards_;
  std::unique_ptr<const engine::AnswerPlan> answer_plan_;
};

}  // namespace dphist

#endif  // DPHIST_SERVICE_SNAPSHOT_H_
