#include "service/snapshot.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "estimators/universal.h"
#include "estimators/wavelet.h"

namespace dphist {
namespace {

/// The counts of `data` restricted to [lo, hi], as a shard-local
/// histogram over positions 0..hi-lo.
Histogram SliceHistogram(const Histogram& data, std::int64_t lo,
                         std::int64_t hi) {
  const std::vector<double>& counts = data.counts();
  std::vector<double> slice(counts.begin() + lo, counts.begin() + hi + 1);
  return Histogram(std::move(slice), data.domain().attribute());
}

/// Serving-path shard construction: every failure (including a
/// StrategyKind no case handles, which older revisions CHECK-aborted
/// on) is a Status the session layer can surface as an error line. The
/// validating Create factories re-check the per-shard inputs, so a
/// corrupted slice can never abort a live server.
Result<std::unique_ptr<RangeCountEstimator>> BuildShard(
    const Histogram& shard_data, const SnapshotOptions& options, Rng* rng) {
  UniversalOptions universal;
  universal.epsilon = options.epsilon;
  universal.branching = options.branching;
  universal.round_to_nonnegative_integers =
      options.round_to_nonnegative_integers;
  universal.prune_nonpositive_subtrees = options.prune_nonpositive_subtrees;
  switch (options.strategy) {
    case StrategyKind::kLTilde: {
      Result<std::unique_ptr<LTildeEstimator>> built =
          LTildeEstimator::Create(shard_data, universal, rng);
      if (!built.ok()) return built.status();
      return std::unique_ptr<RangeCountEstimator>(std::move(built).value());
    }
    case StrategyKind::kHTilde: {
      Result<std::unique_ptr<HTildeEstimator>> built =
          HTildeEstimator::Create(shard_data, universal, rng);
      if (!built.ok()) return built.status();
      return std::unique_ptr<RangeCountEstimator>(std::move(built).value());
    }
    case StrategyKind::kHBar: {
      Result<std::unique_ptr<HBarEstimator>> built =
          HBarEstimator::Create(shard_data, universal, rng);
      if (!built.ok()) return built.status();
      return std::unique_ptr<RangeCountEstimator>(std::move(built).value());
    }
    case StrategyKind::kWavelet: {
      WaveletOptions wavelet;
      wavelet.epsilon = options.epsilon;
      wavelet.round_to_nonnegative_integers =
          options.round_to_nonnegative_integers;
      Result<std::unique_ptr<WaveletEstimator>> built =
          WaveletEstimator::Create(shard_data, wavelet, rng);
      if (!built.ok()) return built.status();
      return std::unique_ptr<RangeCountEstimator>(std::move(built).value());
    }
    case StrategyKind::kAuto:
      break;  // rejected in Build before any shard is constructed
  }
  return Status::Internal("cannot build a shard for an unknown strategy");
}

}  // namespace

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLTilde:
      return "ltilde";
    case StrategyKind::kHTilde:
      return "htilde";
    case StrategyKind::kHBar:
      return "hbar";
    case StrategyKind::kWavelet:
      return "wavelet";
    case StrategyKind::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<StrategyKind> ParseStrategyKind(const std::string& name) {
  if (name == "ltilde" || name == "L~") return StrategyKind::kLTilde;
  if (name == "htilde" || name == "H~") return StrategyKind::kHTilde;
  if (name == "hbar" || name == "H-bar") return StrategyKind::kHBar;
  if (name == "wavelet") return StrategyKind::kWavelet;
  if (name == "auto") return StrategyKind::kAuto;
  return Status::InvalidArgument("unknown strategy: " + name);
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Build(
    const Histogram& data, const SnapshotOptions& options,
    std::uint64_t epoch, Rng* rng) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.strategy == StrategyKind::kAuto) {
    return Status::InvalidArgument(
        "auto strategy must be resolved by the planner before Build "
        "(QueryService::Publish and serve --strategy auto resolve it)");
  }
  const std::int64_t n = data.size();
  if (n < 1) return Status::InvalidArgument("domain must be non-empty");

  const std::int64_t requested = std::min(options.shards, n);
  const std::int64_t width = (n + requested - 1) / requested;
  const std::int64_t count = (n + width - 1) / width;

  // Fork every shard stream up front, in shard order, so the release is
  // reproducible regardless of how the estimator constructors consume
  // their streams AND regardless of how the build below is scheduled.
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) shard_rngs.push_back(rng->Fork());

  std::vector<std::unique_ptr<RangeCountEstimator>> shards(
      static_cast<std::size_t>(count));
  std::vector<Status> shard_status(static_cast<std::size_t>(count));
  ParallelFor(count, ResolveThreadCount(options.build_threads),
              [&](std::int64_t i) {
                const std::int64_t lo = i * width;
                const std::int64_t hi = std::min(n - 1, lo + width - 1);
                Result<std::unique_ptr<RangeCountEstimator>> built =
                    BuildShard(SliceHistogram(data, lo, hi), options,
                               &shard_rngs[static_cast<std::size_t>(i)]);
                if (!built.ok()) {
                  shard_status[static_cast<std::size_t>(i)] = built.status();
                  return;
                }
                shards[static_cast<std::size_t>(i)] = std::move(built).value();
              });
  for (const Status& status : shard_status) {
    if (!status.ok()) return status;
  }
  return std::shared_ptr<const Snapshot>(
      new Snapshot(options, epoch, n, width, std::move(shards)));
}

namespace {

Result<std::unique_ptr<RangeCountEstimator>> RestoreShard(
    std::int64_t shard_domain, const SnapshotOptions& options,
    std::vector<double> state) {
  UniversalOptions universal;
  universal.epsilon = options.epsilon;
  universal.branching = options.branching;
  universal.round_to_nonnegative_integers =
      options.round_to_nonnegative_integers;
  universal.prune_nonpositive_subtrees = options.prune_nonpositive_subtrees;
  switch (options.strategy) {
    case StrategyKind::kLTilde: {
      if (static_cast<std::int64_t>(state.size()) != shard_domain) {
        return Status::IoError("persisted L~ shard has the wrong width");
      }
      Result<std::unique_ptr<LTildeEstimator>> restored =
          LTildeEstimator::Restore(universal, std::move(state));
      if (!restored.ok()) return restored.status();
      return std::unique_ptr<RangeCountEstimator>(
          std::move(restored).value());
    }
    case StrategyKind::kHTilde: {
      Result<std::unique_ptr<HTildeEstimator>> restored =
          HTildeEstimator::Restore(shard_domain, universal, std::move(state));
      if (!restored.ok()) return restored.status();
      return std::unique_ptr<RangeCountEstimator>(
          std::move(restored).value());
    }
    case StrategyKind::kHBar: {
      Result<std::unique_ptr<HBarEstimator>> restored =
          HBarEstimator::Restore(shard_domain, universal, std::move(state));
      if (!restored.ok()) return restored.status();
      return std::unique_ptr<RangeCountEstimator>(
          std::move(restored).value());
    }
    case StrategyKind::kWavelet: {
      if (static_cast<std::int64_t>(state.size()) != shard_domain) {
        return Status::IoError("persisted wavelet shard has the wrong width");
      }
      WaveletOptions wavelet;
      wavelet.epsilon = options.epsilon;
      wavelet.round_to_nonnegative_integers =
          options.round_to_nonnegative_integers;
      Result<std::unique_ptr<WaveletEstimator>> restored =
          WaveletEstimator::Restore(wavelet, std::move(state));
      if (!restored.ok()) return restored.status();
      return std::unique_ptr<RangeCountEstimator>(
          std::move(restored).value());
    }
    case StrategyKind::kAuto:
      break;
  }
  return Status::IoError("persisted snapshot has an unrestorable strategy");
}

}  // namespace

Result<std::shared_ptr<const Snapshot>> Snapshot::Restore(
    const SnapshotOptions& options, std::uint64_t epoch,
    std::int64_t domain_size,
    const std::vector<std::vector<double>>& shard_states) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.branching < 2) {
    return Status::InvalidArgument("branching must be >= 2");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (domain_size < 1) {
    return Status::InvalidArgument("domain must be non-empty");
  }
  const std::int64_t n = domain_size;
  const std::int64_t requested = std::min(options.shards, n);
  const std::int64_t width = (n + requested - 1) / requested;
  const std::int64_t count = (n + width - 1) / width;
  if (static_cast<std::int64_t>(shard_states.size()) != count) {
    return Status::IoError(
        "persisted snapshot shard count does not match its options");
  }
  std::vector<std::unique_ptr<RangeCountEstimator>> shards;
  shards.reserve(shard_states.size());
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t lo = i * width;
    const std::int64_t hi = std::min(n - 1, lo + width - 1);
    Result<std::unique_ptr<RangeCountEstimator>> shard = RestoreShard(
        hi - lo + 1, options, shard_states[static_cast<std::size_t>(i)]);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard).value());
  }
  return std::shared_ptr<const Snapshot>(
      new Snapshot(options, epoch, n, width, std::move(shards)));
}

bool Snapshot::AdmitToCache(const Interval& range) const {
  const std::int64_t first = range.lo() / shard_width_;
  const std::int64_t last = range.hi() / shard_width_;
  // Spanning ranges recompute as one answer per shard touched plus the
  // summation — always at least two lookups, always worth caching.
  if (first != last) return true;
  const std::int64_t base = first * shard_width_;
  return shards_[static_cast<std::size_t>(first)]->RangeCostHint(
             Interval(range.lo() - base, range.hi() - base)) >=
         options_.cache_admit_min_cost;
}

const RangeCountEstimator& Snapshot::shard(std::int64_t index) const {
  DPHIST_CHECK_MSG(index >= 0 && index < shard_count(),
                   "shard index out of range");
  return *shards_[static_cast<std::size_t>(index)];
}

Status Snapshot::ValidateRanges(const Interval* ranges,
                                std::size_t count) const {
  for (std::size_t i = 0; i < count; ++i) {
    if (ranges[i].lo() < 0 || ranges[i].hi() >= domain_size_) {
      return Status(StatusCode::kOutOfRange,
                    "range [" + std::to_string(ranges[i].lo()) + ", " +
                        std::to_string(ranges[i].hi()) +
                        "] (query " + std::to_string(i + 1) +
                        ") is outside the snapshot's domain [0, " +
                        std::to_string(domain_size_ - 1) + "]");
    }
  }
  return Status::Ok();
}

double Snapshot::RangeCount(const Interval& range) const {
  DPHIST_CHECK_MSG(range.lo() >= 0 && range.hi() < domain_size_,
                   "range outside the snapshot's domain");
  const std::int64_t first = range.lo() / shard_width_;
  const std::int64_t last = range.hi() / shard_width_;
  if (first == last) {
    const std::int64_t base = first * shard_width_;
    return shards_[static_cast<std::size_t>(first)]->RangeCount(
        Interval(range.lo() - base, range.hi() - base));
  }
  double total = 0.0;
  for (std::int64_t s = first; s <= last; ++s) {
    const std::int64_t base = s * shard_width_;
    const std::int64_t hi =
        std::min({range.hi(), base + shard_width_ - 1, domain_size_ - 1});
    const std::int64_t lo = std::max(range.lo(), base);
    total += shards_[static_cast<std::size_t>(s)]->RangeCount(
        Interval(lo - base, hi - base));
  }
  return total;
}

void Snapshot::RangeCountsInto(const Interval* ranges, std::size_t count,
                               double* out) const {
  if (shards_.size() == 1) {
    shards_[0]->RangeCountsInto(ranges, count, out);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) out[i] = RangeCount(ranges[i]);
}

}  // namespace dphist
