// Thread-safe, read-mostly query serving over published DP releases.
//
// QueryService multiplexes any number of concurrent readers over one
// current Snapshot (see snapshot.h) plus an optional shared LRU answer
// cache (see answer_cache.h). The snapshot pointer is swapped atomically
// on republish, so:
//
//   - readers never block, not even while a publish is building the next
//     release (construction happens outside the swap);
//   - a batch is answered entirely against the single snapshot loaded at
//     its start, so its answers are internally consistent — one epoch,
//     one release — even when a swap lands mid-batch;
//   - cache keys include the epoch, so answers computed under different
//     releases can never be served for one another.
//
// Lifetime: readers hold a shared_ptr to the snapshot for the duration
// of a batch; a replaced snapshot is destroyed when its last in-flight
// batch finishes.

#ifndef DPHIST_SERVICE_QUERY_SERVICE_H_
#define DPHIST_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "service/answer_cache.h"
#include "service/snapshot.h"

namespace dphist {

/// Serving-side knobs (the per-release knobs live in SnapshotOptions).
struct QueryServiceOptions {
  /// Total cached answers across the cache's lock shards; 0 disables
  /// caching, which also makes the batch path allocation-free.
  std::int64_t cache_capacity = 0;
  /// Lock shards of the answer cache (rounded up to a power of two).
  std::int64_t cache_lock_shards = 16;
};

/// Concurrent range-count server over atomically swappable snapshots.
class QueryService {
 public:
  explicit QueryService(const QueryServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Builds a release from `data` and atomically swaps it in as the
  /// current snapshot with a fresh monotonically increasing epoch.
  /// Building happens outside the swap, so concurrent readers keep
  /// answering from the previous snapshot until the new one is ready.
  /// Concurrent publishers are serialized; readers are never blocked.
  Result<std::shared_ptr<const Snapshot>> Publish(
      const Histogram& data, const SnapshotOptions& options,
      std::uint64_t seed);

  /// The currently published snapshot; null before the first Publish.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Answers `count` ranges into `out`, all against the single snapshot
  /// current when the batch started, and returns that snapshot's epoch.
  /// Cached answers are reused and misses are cached. Requires a
  /// published snapshot. With the cache disabled this performs zero heap
  /// allocations (single-shard snapshots additionally pay only one
  /// virtual dispatch for the whole batch).
  std::uint64_t QueryBatch(const Interval* ranges, std::size_t count,
                           double* out) const;

  /// Single-range convenience form of QueryBatch.
  std::uint64_t Query(const Interval& range, double* out) const;

  bool cache_enabled() const { return cache_.enabled(); }
  AnswerCache::Stats cache_stats() const { return cache_.stats(); }

  /// Epoch of the current snapshot; 0 before the first Publish.
  std::uint64_t current_epoch() const;

 private:
  mutable AnswerCache cache_;
  /// Serializes publishers so epochs increase in publish order.
  std::mutex publish_mutex_;
  std::uint64_t last_epoch_ = 0;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

}  // namespace dphist

#endif  // DPHIST_SERVICE_QUERY_SERVICE_H_
