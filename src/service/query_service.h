// Thread-safe, read-mostly query serving over published DP releases.
//
// QueryService multiplexes any number of concurrent readers over one
// current Snapshot (see snapshot.h) plus an optional shared LRU answer
// cache (see answer_cache.h). The snapshot pointer is swapped atomically
// on republish, so:
//
//   - readers never block, not even while a publish is building the next
//     release (construction happens outside the swap);
//   - a batch is answered entirely against the single snapshot loaded at
//     its start, so its answers are internally consistent — one epoch,
//     one release — even when a swap lands mid-batch;
//   - cache keys include the epoch, so answers computed under different
//     releases can never be served for one another — and a swap
//     additionally purges every entry from older epochs up front
//     (AnswerCache::EvictOlderEpochs) so dead entries never squat on
//     capacity.
//
// Publishing with SnapshotOptions{strategy = kAuto} invokes the
// cost-based planner (src/planner/planner.h): the service keeps a
// lock-free log2-bucketed histogram of every query length it has
// answered, and the planner picks the variance-minimizing
// (strategy, shard count) for that observed workload — or for an
// explicitly supplied WorkloadProfile, or for a neutral geometric sweep
// when nothing has been observed yet.
//
// Lifetime: readers hold a shared_ptr to the snapshot for the duration
// of a batch; a replaced snapshot is destroyed when its last in-flight
// batch finishes.

#ifndef DPHIST_SERVICE_QUERY_SERVICE_H_
#define DPHIST_SERVICE_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "domain/histogram.h"
#include "domain/interval.h"
#include "planner/planner.h"
#include "planner/workload_profile.h"
#include "service/answer_cache.h"
#include "service/snapshot.h"

namespace dphist {

/// Serving-side knobs (the per-release knobs live in SnapshotOptions).
struct QueryServiceOptions {
  /// Total cached answers across the cache's lock shards; 0 disables
  /// caching, which also makes the batch path allocation-free.
  std::int64_t cache_capacity = 0;
  /// Lock shards of the answer cache (rounded up to a power of two).
  std::int64_t cache_lock_shards = 16;
  /// Candidate enumeration used when a publish must resolve kAuto.
  planner::PlannerOptions planner;
  /// Capacity of the exact-length query reservoir sampled from answered
  /// traffic (spread over the counter stripes). 0 disables it: the
  /// observed profile then only knows log2-bucketed lengths, and a
  /// replan from observation can differ from one given the raw workload
  /// (see planner::QueryReservoir). Enabling it adds one short
  /// mutex-protected reservoir update per answered query.
  std::int64_t observed_reservoir = 0;
};

/// Concurrent range-count server over atomically swappable snapshots.
class QueryService {
 public:
  explicit QueryService(const QueryServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Builds a release from `data` and atomically swaps it in as the
  /// current snapshot with a fresh monotonically increasing epoch,
  /// then proactively purges cache entries from older epochs.
  /// Building happens outside the swap, so concurrent readers keep
  /// answering from the previous snapshot until the new one is ready.
  /// Concurrent publishers are serialized; readers are never blocked.
  ///
  /// options.strategy == kAuto is resolved by the cost-based planner
  /// against `workload` when given, else against the observed traffic
  /// profile, else against a neutral geometric length sweep. The
  /// resolved choice is readable from the returned snapshot's options().
  Result<std::shared_ptr<const Snapshot>> Publish(
      const Histogram& data, const SnapshotOptions& options,
      std::uint64_t seed,
      const planner::WorkloadProfile* workload = nullptr);

  /// A release that has been built but is not yet visible to readers.
  /// Holds the publish token (publishing_), so no other publish can
  /// interleave between building and committing (or abandoning) it.
  /// Destroying a PendingPublish without committing aborts the publish:
  /// the token is released, readers never saw the snapshot, and its
  /// epoch number is reused by the next publish. The EpochManager
  /// threads its durable WAL append between BuildForPublish and
  /// CommitPublish so the in-memory swap becomes visible only after the
  /// spend that paid for it is on disk.
  ///
  /// (A condition token rather than a moved std::unique_lock: each
  /// critical section stays self-contained, which keeps the serialization
  /// verifiable by the thread-safety analysis — a lock whose ownership
  /// travels across function boundaries is invisible to it.)
  class PendingPublish {
   public:
    PendingPublish(PendingPublish&& other) noexcept
        : service_(std::exchange(other.service_, nullptr)),
          snapshot_(std::move(other.snapshot_)) {}
    PendingPublish& operator=(PendingPublish&& other) noexcept {
      if (this != &other) {
        Abandon();
        service_ = std::exchange(other.service_, nullptr);
        snapshot_ = std::move(other.snapshot_);
      }
      return *this;
    }
    ~PendingPublish() { Abandon(); }

    const std::shared_ptr<const Snapshot>& snapshot() const {
      return snapshot_;
    }
    std::uint64_t epoch() const { return snapshot_->epoch(); }

   private:
    friend class QueryService;
    PendingPublish(QueryService* service,
                   std::shared_ptr<const Snapshot> snapshot)
        : service_(service), snapshot_(std::move(snapshot)) {}

    /// Releases the publish token when still held (uncommitted).
    void Abandon();

    QueryService* service_;  // null once committed or moved from
    std::shared_ptr<const Snapshot> snapshot_;
  };

  /// The first half of Publish: resolves kAuto exactly as Publish does,
  /// assigns the next epoch, and builds the release — without making it
  /// visible. Pass the result to CommitPublish to swap it in, or drop it
  /// to abandon the publish entirely.
  Result<PendingPublish> BuildForPublish(
      const Histogram& data, const SnapshotOptions& options,
      std::uint64_t seed,
      const planner::WorkloadProfile* workload = nullptr);

  /// The second half of Publish: atomically swaps the pending snapshot
  /// in, purges stale cache epochs, and records the swap stats. Returns
  /// the now-current snapshot.
  std::shared_ptr<const Snapshot> CommitPublish(PendingPublish pending);

  /// Installs a snapshot recovered from durable storage as the current
  /// release. Unlike Publish this assigns no new epoch — the snapshot
  /// keeps the epoch it was persisted under, which must be greater than
  /// the service's current epoch (recovery happens before fresh
  /// publishes, so in practice into an empty service).
  Result<std::shared_ptr<const Snapshot>> PublishRestored(
      std::shared_ptr<const Snapshot> snapshot);

  /// Publishes the configuration a planner already chose (plan.options
  /// is concrete and ready for Snapshot::Build). The hook the runtime's
  /// EpochManager uses: it runs ChoosePlan itself — off the serving
  /// thread — and hands the decision here, so Publish never re-plans.
  Result<std::shared_ptr<const Snapshot>> PublishFromPlan(
      const Histogram& data, const planner::Plan& plan, std::uint64_t seed);

  /// The currently published snapshot; null before the first Publish.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Answers `count` ranges into `out`, all against the single snapshot
  /// current when the batch started, and returns that snapshot's epoch.
  /// Cached answers are reused (batched per-lock-shard lookups) and
  /// misses are cached. Requires a published snapshot. With the cache
  /// disabled this performs zero heap allocations (single-shard
  /// snapshots additionally pay only one virtual dispatch for the whole
  /// batch). Every query's length is recorded in the observed-workload
  /// histogram that kAuto planning consumes.
  std::uint64_t QueryBatch(const Interval* ranges, std::size_t count,
                           double* out) const;

  /// As above, additionally adding the number of this batch's answers
  /// served from the cache to `*cache_hits` (left untouched when null).
  /// cache_stats() is a global counter; per-session accounting needs the
  /// per-batch figure, which only the batch itself can attribute.
  std::uint64_t QueryBatch(const Interval* ranges, std::size_t count,
                           double* out, std::uint64_t* cache_hits) const;

  /// Validating form for the serving transports: answering before the
  /// first Publish or asking for a range outside the snapshot's domain
  /// returns a Status (surfaced as a session "error:" line) where
  /// QueryBatch would CHECK-abort the server. On success behaves exactly
  /// like QueryBatch and returns the batch's epoch.
  Result<std::uint64_t> TryQueryBatch(const Interval* ranges,
                                      std::size_t count, double* out,
                                      std::uint64_t* cache_hits) const;

  /// The validation half of TryQueryBatch alone — for callers that
  /// pre-validate a run once and then fan slices out through QueryBatch.
  Status ValidateBatch(const Interval* ranges, std::size_t count) const;

  /// Single-range convenience form of QueryBatch.
  std::uint64_t Query(const Interval& range, double* out) const;

  /// The traffic seen so far as a planner profile over `domain_size`
  /// positions: query lengths are log2-bucketed at record time and each
  /// non-empty bucket contributes its midpoint length (clamped to the
  /// domain). Empty when nothing has been answered yet.
  planner::WorkloadProfile ObservedWorkload(std::int64_t domain_size) const;

  /// Total queries answered so far (sums the length-counter stripes).
  /// The EpochManager's every-N and drift triggers anchor on this.
  std::uint64_t observed_query_count() const;

  bool cache_enabled() const { return cache_.enabled(); }
  AnswerCache::Stats cache_stats() const { return cache_.stats(); }

  /// Entries currently cached (sums the cache's lock shards).
  std::int64_t cache_size() const { return cache_.size(); }

  /// Epoch of the current snapshot; 0 before the first Publish.
  std::uint64_t current_epoch() const;

  /// Publish/swap lifecycle counters for the runtime's stats surface.
  struct SwapStats {
    std::uint64_t publishes = 0;        // successful snapshot swaps
    std::uint64_t last_epoch = 0;       // epoch of the latest swap
    std::int64_t last_swap_evictions = 0;   // stale entries purged by it
    std::int64_t total_swap_evictions = 0;  // across every swap
  };
  SwapStats swap_stats() const;

 private:
  /// Blocks until no other publish is in flight and takes the publish
  /// token; returns the epoch the next publish will use (stable while
  /// the token is held, because only CommitPublish advances it).
  std::uint64_t AcquirePublishToken() DPHIST_EXCLUDES(publish_mutex_);
  /// Releases the token without committing (failed or abandoned build);
  /// the epoch reserved by Acquire is reused by the next publisher.
  void ReleasePublishToken() DPHIST_EXCLUDES(publish_mutex_);

  /// The answering core shared by QueryBatch and TryQueryBatch, running
  /// against an already-loaded (and validated) snapshot. Cache-miss runs
  /// route through the batch answer engine when the snapshot carries an
  /// AnswerPlan; walker strategies keep the per-query path.
  std::uint64_t QueryBatchOn(const Snapshot& snap, const Interval* ranges,
                             std::size_t count, double* out,
                             std::uint64_t* cache_hits) const;

  /// floor(log2(length)) buckets; 63 covers any int64 length.
  static constexpr std::size_t kLengthBuckets = 63;
  /// Counter stripes, selected by thread id once per batch, so reader
  /// threads on different stripes never contend on a hot bucket's cache
  /// line; ObservedWorkload sums across stripes.
  static constexpr std::size_t kLengthStripes = 8;

  mutable AnswerCache cache_;
  planner::PlannerOptions planner_options_;
  /// Serializes publishers so epochs increase in publish order. The
  /// mutex itself is only held for short flag/epoch updates; the
  /// publishing_ token is what is held across an entire Snapshot::Build,
  /// so a builder never blocks anyone who just needs the mutex.
  Mutex publish_mutex_;
  CondVar publish_cv_;  // wakes publishers waiting for the token
  /// The publish token: true while one publisher is building or
  /// committing. Taken by AcquirePublishToken, released by
  /// CommitPublish or PendingPublish::Abandon.
  bool publishing_ DPHIST_GUARDED_BY(publish_mutex_) = false;
  std::uint64_t last_epoch_ DPHIST_GUARDED_BY(publish_mutex_) = 0;
  /// Guards swap_stats_ alone — a stats read must never wait on a
  /// publish in flight.
  mutable Mutex swap_stats_mutex_;
  SwapStats swap_stats_ DPHIST_GUARDED_BY(swap_stats_mutex_);
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  /// observed_lengths_[s][b] counts answered queries with
  /// 2^b <= length < 2^(b+1) recorded by stripe s; relaxed increments
  /// on the read path.
  mutable std::array<std::array<std::atomic<std::uint64_t>, kLengthBuckets>,
                     kLengthStripes>
      observed_lengths_{};
  /// Optional exact-length sampling beside the buckets: one reservoir
  /// per counter stripe (same stripe selection), each behind its own
  /// mutex so concurrent readers rarely contend. Null when disabled.
  struct ReservoirStripe {
    Mutex mutex;
    planner::QueryReservoir reservoir DPHIST_GUARDED_BY(mutex);
    explicit ReservoirStripe(std::size_t capacity) : reservoir(capacity) {}
  };
  std::array<std::unique_ptr<ReservoirStripe>, kLengthStripes> reservoirs_;
};

}  // namespace dphist

#endif  // DPHIST_SERVICE_QUERY_SERVICE_H_
