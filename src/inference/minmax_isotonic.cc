#include "inference/minmax_isotonic.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dphist {
namespace {

/// prefix[i] = sum of values[0..i); makes any M~[i,j] an O(1) lookup.
std::vector<double> PrefixSums(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  return prefix;
}

double MeanOf(const std::vector<double>& prefix, std::size_t i,
              std::size_t j) {
  // Mean of values[i..j] inclusive, 0-indexed.
  return (prefix[j + 1] - prefix[i]) / static_cast<double>(j - i + 1);
}

}  // namespace

std::vector<double> MinMaxLowerSolution(const std::vector<double>& values) {
  std::size_t n = values.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  std::vector<double> prefix = PrefixSums(values);

  // g[j] = max_{i <= j} mean(i, j), computed in O(n) per j.
  std::vector<double> g(n, -std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      g[j] = std::max(g[j], MeanOf(prefix, i, j));
    }
  }
  // L_k = min_{j >= k} g[j]: one suffix-min sweep.
  double suffix_min = std::numeric_limits<double>::infinity();
  for (std::size_t kk = n; kk > 0; --kk) {
    std::size_t k = kk - 1;
    suffix_min = std::min(suffix_min, g[k]);
    out[k] = suffix_min;
  }
  return out;
}

std::vector<double> MinMaxUpperSolution(const std::vector<double>& values) {
  std::size_t n = values.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  std::vector<double> prefix = PrefixSums(values);

  // f[i] = min_{j >= i} mean(i, j).
  std::vector<double> f(n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      f[i] = std::min(f[i], MeanOf(prefix, i, j));
    }
  }
  // U_k = max_{i <= k} f[i]: one prefix-max sweep.
  double prefix_max = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    prefix_max = std::max(prefix_max, f[k]);
    out[k] = prefix_max;
  }
  return out;
}

}  // namespace dphist
