// Isotonic regression: the constrained-inference step for the sorted query
// S (Section 3.1).
//
// Given the noisy answer s~ the analyst seeks the vector s-bar minimizing
// ||s~ - s||_2 subject to s[i] <= s[i+1]. The paper gives the min-max
// closed form (Theorem 1) and notes the statistics literature's linear-time
// algorithms; this module implements the classic pool-adjacent-violators
// algorithm (PAVA, Barlow et al. 1972), which computes the same unique
// minimizer in O(n). minmax_isotonic.h evaluates Theorem 1's formula
// directly so tests can confirm the two agree.

#ifndef DPHIST_INFERENCE_ISOTONIC_H_
#define DPHIST_INFERENCE_ISOTONIC_H_

#include <vector>

namespace dphist {

/// The unique non-decreasing vector closest to `values` in L2.
/// O(n) time, O(n) space. Empty input yields empty output.
std::vector<double> IsotonicRegression(const std::vector<double>& values);

/// Weighted variant: minimizes sum_i w[i] (s[i] - values[i])^2 subject to
/// s non-decreasing. Requires weights.size() == values.size() and all
/// weights > 0.
std::vector<double> WeightedIsotonicRegression(
    const std::vector<double>& values, const std::vector<double>& weights);

/// The unique non-increasing vector closest to `values` in L2 (used when a
/// caller keeps counts in descending rank order, as Figure 7 plots them).
std::vector<double> AntitonicRegression(const std::vector<double>& values);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_ISOTONIC_H_
