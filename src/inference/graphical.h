// Graphical degree sequences — Appendix B's future-work item for the
// unattributed-histogram task: "a constraint enforcing that the output
// sequence is graphical, i.e. the degree sequence of some graph".
//
// After S-bar + rounding, the released sequence is sorted, integral, and
// non-negative, but may still fail to be realizable as a simple graph
// (odd degree sum, or an Erdos-Gallai inequality violated). This module
// provides the Erdos-Gallai characterization and a repair heuristic that
// nudges a sequence to the "nearest" graphical one (greedy, small-L1
// adjustments; an exact minimum-L2 projection onto the graphical
// polytope is open — which is why the paper left it as future work).

#ifndef DPHIST_INFERENCE_GRAPHICAL_H_
#define DPHIST_INFERENCE_GRAPHICAL_H_

#include <cstdint>
#include <vector>

namespace dphist {

/// True iff `degrees` (any order; values need not be sorted) is the
/// degree sequence of some simple undirected graph, by the Erdos-Gallai
/// theorem. Negative entries or entries >= n make it non-graphical.
bool IsGraphicalDegreeSequence(const std::vector<std::int64_t>& degrees);

/// Adjusts `degrees` to a graphical sequence with small L1 changes:
/// clamps to [0, n-1], fixes odd parity, then resolves Erdos-Gallai
/// violations by lowering the largest degrees. The result is graphical
/// and preserves the input's ordering by rank. Input values may be in
/// any order; output is returned in the same positions.
std::vector<std::int64_t> RepairToGraphical(
    const std::vector<std::int64_t>& degrees);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_GRAPHICAL_H_
