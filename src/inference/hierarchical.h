// Hierarchical constrained inference: Theorem 3's two-pass recurrence.
//
// Given the noisy tree counts h~ = H~(I), the minimum-L2 vector satisfying
// every "parent equals sum of children" constraint is computed in two
// linear scans of the tree:
//
//  Bottom-up (the z pass): z[v] is the best linear unbiased estimate of
//  node v's count using only v's subtree. For a leaf z[v] = h~[v]; for an
//  internal node at height l (leaves have height 1),
//
//      z[v] = (k^l - k^(l-1)) / (k^l - 1) * h~[v]
//           + (k^(l-1) - 1)   / (k^l - 1) * sum_{u in succ(v)} z[u],
//
//  an inverse-variance weighting of the node's own noisy count against the
//  sum of its children's subtree estimates.
//
//  Top-down (the h pass): h[root] = z[root]; descending, any mismatch
//  between h[u] and the sum of its children's z values is split equally
//  among the k children:
//
//      h[v] = z[v] + (1/k) * (h[u] - sum_{w in succ(u)} z[w]).
//
// The result is the least-squares (OLS) estimate of every node count
// (Theorem 4: minimal MSE among linear unbiased estimators), computed in
// O(m) instead of the O(n^3) of a dense solve.

#ifndef DPHIST_INFERENCE_HIERARCHICAL_H_
#define DPHIST_INFERENCE_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "tree/tree_layout.h"

namespace dphist {

/// Output of hierarchical inference: consistent estimates for every node.
struct HierarchicalInferenceResult {
  /// h-bar for every tree node, BFS order; parent = sum of children holds
  /// exactly (to floating-point round-off).
  std::vector<double> node_estimates;
  /// The intermediate z estimates (exposed for tests of the Theorem 3
  /// identities and for the root-variance analysis).
  std::vector<double> subtree_estimates;
};

/// Runs the two-pass inference. `noisy` must have tree.node_count()
/// entries in BFS order.
HierarchicalInferenceResult HierarchicalInference(
    const TreeLayout& tree, const std::vector<double>& noisy);

/// Extracts the first `domain_size` leaf estimates (dropping padding) from
/// a node-estimate vector.
std::vector<double> LeafEstimates(const TreeLayout& tree,
                                  const std::vector<double>& node_estimates,
                                  std::int64_t domain_size);

/// Maximum violation of the parent-equals-children-sum constraints; zero
/// (up to round-off) on any HierarchicalInference output. Exposed so tests
/// and callers can audit consistency of arbitrary node vectors.
double MaxConsistencyViolation(const TreeLayout& tree,
                               const std::vector<double>& node_values);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_HIERARCHICAL_H_
