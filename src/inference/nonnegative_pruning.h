// Non-negativity pruning (Section 4.2's sparsity heuristic).
//
// After hierarchical inference, any subtree whose root estimate is <= 0 is
// set to zero wholesale. The paper motivates this with sparse domains:
// H-bar sees noisy observations at *higher* levels of the tree, so it can
// recognize an empty region from one near-zero ancestor count where L~
// would assign spurious positive counts to half the leaves. Incorporating
// true non-negativity constraints into the inference is flagged as future
// work in the paper; this is deliberately the paper's simple heuristic.

#ifndef DPHIST_INFERENCE_NONNEGATIVE_PRUNING_H_
#define DPHIST_INFERENCE_NONNEGATIVE_PRUNING_H_

#include <vector>

#include "tree/tree_layout.h"

namespace dphist {

/// Returns a copy of `node_estimates` where every subtree rooted at a node
/// with estimate <= 0 is zeroed (the root of the subtree and all of its
/// descendants).
std::vector<double> PruneNonPositiveSubtrees(
    const TreeLayout& tree, const std::vector<double>& node_estimates);

/// Componentwise round to the nearest non-negative integer — the
/// integrality/non-negativity post-processing Section 5.2 applies to every
/// estimator before measuring error.
std::vector<double> RoundToNonNegativeIntegers(
    const std::vector<double>& values);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_NONNEGATIVE_PRUNING_H_
