// Generic constrained inference (Section 2.2, Definition 2.4).
//
// For query sequences without the special structure of S or H, the
// minimum-L2 consistent answer is the projection of the noisy answer onto
// the affine subspace defined by the constraint set gamma-Q. This module
// provides a small builder for linear equality constraints plus the
// projection itself (delegating to linalg). It solves, e.g., the intro's
// student-grades example where gamma = { x_t = x_p + x_F,
// x_p = x_A + x_B + x_C + x_D }.

#ifndef DPHIST_INFERENCE_CONSTRAINED_LS_H_
#define DPHIST_INFERENCE_CONSTRAINED_LS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dphist {

/// A set of linear equality constraints sum_i coeff_i q[i] = rhs over a
/// fixed-length answer vector.
class ConstraintSystem {
 public:
  /// Constraints over answer vectors of length `variable_count` (> 0).
  explicit ConstraintSystem(std::int64_t variable_count);

  /// Number of answer-vector entries.
  std::int64_t variable_count() const { return variable_count_; }

  /// Number of constraints added so far.
  std::int64_t constraint_count() const {
    return static_cast<std::int64_t>(rows_.size());
  }

  /// Adds sum of (coefficient * q[index]) terms = rhs. Indices must be in
  /// range and distinct within one constraint.
  void AddConstraint(
      const std::vector<std::pair<std::int64_t, double>>& terms, double rhs);

  /// Convenience: adds the constraint q[target] = sum_i q[parts[i]]
  /// (e.g. "passing students = A + B + C + D").
  void AddSumConstraint(std::int64_t target,
                        const std::vector<std::int64_t>& parts);

  /// True iff `answers` satisfies every constraint within `tolerance`.
  bool IsSatisfied(const std::vector<double>& answers,
                   double tolerance = 1e-9) const;

  /// Largest absolute constraint violation of `answers`.
  double MaxViolation(const std::vector<double>& answers) const;

  /// The dense constraint matrix A and right-hand side b with A q = b.
  /// Requires at least one constraint.
  std::pair<linalg::Matrix, linalg::Vector> ToMatrix() const;

 private:
  std::int64_t variable_count_;
  std::vector<std::vector<std::pair<std::int64_t, double>>> rows_;
  std::vector<double> rhs_;
};

/// Minimum-L2 consistent answer: argmin_q ||q - noisy||_2 subject to the
/// constraint system. Fails if the constraints are redundant
/// (row-rank-deficient) or infeasible as posed.
Result<std::vector<double>> ConstrainedLeastSquares(
    const ConstraintSystem& constraints, const std::vector<double>& noisy);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_CONSTRAINED_LS_H_
