// Direct evaluation of Theorem 1's min-max closed form.
//
//   L_k = min_{j in [k,n]} max_{i in [1,j]} M~[i,j]
//   U_k = max_{i in [1,k]} min_{j in [i,n]} M~[i,j]
//
// where M~[i,j] is the mean of the noisy subsequence s~[i..j]. Theorem 1
// states the minimum-L2 sorted solution is s-bar[k] = L_k = U_k. The
// formulas are evaluated with prefix sums in O(n^2) total — quadratic, so
// this is the reference implementation used by tests and small examples;
// production code uses the O(n) PAVA in isotonic.h, which must (and is
// tested to) produce identical output.

#ifndef DPHIST_INFERENCE_MINMAX_ISOTONIC_H_
#define DPHIST_INFERENCE_MINMAX_ISOTONIC_H_

#include <vector>

namespace dphist {

/// All L_k values of Theorem 1 (0-indexed: element k-1 holds L_k).
std::vector<double> MinMaxLowerSolution(const std::vector<double>& values);

/// All U_k values of Theorem 1 (0-indexed).
std::vector<double> MinMaxUpperSolution(const std::vector<double>& values);

}  // namespace dphist

#endif  // DPHIST_INFERENCE_MINMAX_ISOTONIC_H_
