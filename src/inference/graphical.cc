#include "inference/graphical.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dphist {
namespace {

/// Returns (first violated k, excess) for a descending sequence, or
/// (0, 0) if every Erdos-Gallai inequality holds. `k` is 1-based.
std::pair<std::int64_t, std::int64_t> FirstErdosGallaiViolation(
    const std::vector<std::int64_t>& descending) {
  const std::int64_t n = static_cast<std::int64_t>(descending.size());
  std::vector<std::int64_t> suffix(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t i = n - 1; i >= 0; --i) {
    suffix[static_cast<std::size_t>(i)] =
        suffix[static_cast<std::size_t>(i) + 1] +
        descending[static_cast<std::size_t>(i)];
  }
  std::int64_t prefix = 0;
  for (std::int64_t k = 1; k <= n; ++k) {
    prefix += descending[static_cast<std::size_t>(k - 1)];
    // Tail term: sum_{i>k} min(d_i, k). Sequence is descending, so find
    // the first index j >= k (0-based) with d_j <= k.
    auto it = std::lower_bound(descending.begin() + k, descending.end(), k,
                               [](std::int64_t d, std::int64_t bound) {
                                 return d > bound;  // first d <= k
                               });
    std::int64_t j = it - descending.begin();
    std::int64_t tail = (j - k) * k + suffix[static_cast<std::size_t>(j)];
    std::int64_t rhs = k * (k - 1) + tail;
    if (prefix > rhs) return {k, prefix - rhs};
  }
  return {0, 0};
}

}  // namespace

bool IsGraphicalDegreeSequence(const std::vector<std::int64_t>& degrees) {
  const std::int64_t n = static_cast<std::int64_t>(degrees.size());
  if (n == 0) return true;
  std::int64_t sum = 0;
  for (std::int64_t d : degrees) {
    if (d < 0 || d >= n) return false;
    sum += d;
  }
  if (sum % 2 != 0) return false;
  std::vector<std::int64_t> descending = degrees;
  std::sort(descending.begin(), descending.end(),
            std::greater<std::int64_t>());
  return FirstErdosGallaiViolation(descending).first == 0;
}

std::vector<std::int64_t> RepairToGraphical(
    const std::vector<std::int64_t>& degrees) {
  const std::int64_t n = static_cast<std::int64_t>(degrees.size());
  if (n == 0) return {};

  // Work on (value, original position) pairs so the result lands back in
  // the caller's positions.
  std::vector<std::pair<std::int64_t, std::size_t>> entries;
  entries.reserve(degrees.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    std::int64_t clamped = std::min(std::max<std::int64_t>(degrees[i], 0),
                                    n - 1);
    entries.emplace_back(clamped, i);
  }

  // Each outer iteration strictly decreases the degree sum (or finishes),
  // and the all-zero sequence is graphical, so this terminates.
  while (true) {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<std::int64_t> values(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      values[i] = entries[i].first;
    }
    std::int64_t sum = std::accumulate(values.begin(), values.end(),
                                       std::int64_t{0});
    if (sum % 2 != 0) {
      // Decrement the largest positive entry to fix parity.
      for (auto& entry : entries) {
        if (entry.first > 0) {
          --entry.first;
          break;
        }
      }
      continue;
    }
    auto [k, excess] = FirstErdosGallaiViolation(values);
    if (k == 0) break;
    // Remove `excess` units from the top-k block, round-robin, so the
    // reduction is spread rather than dumped on one hub.
    std::int64_t remaining = excess;
    std::size_t cursor = 0;
    while (remaining > 0) {
      std::size_t index = cursor % static_cast<std::size_t>(k);
      if (entries[index].first > 0) {
        --entries[index].first;
        --remaining;
      }
      ++cursor;
      // Degenerate safety: if the whole block hit zero, parity/EG can no
      // longer be violated by it; break and let the outer loop re-check.
      if (cursor > static_cast<std::size_t>(k) * 2048) break;
    }
  }

  std::vector<std::int64_t> repaired(degrees.size(), 0);
  for (const auto& [value, position] : entries) {
    repaired[position] = value;
  }
  return repaired;
}

}  // namespace dphist
