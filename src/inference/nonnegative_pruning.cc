#include "inference/nonnegative_pruning.h"

#include <cmath>

#include "common/check.h"

namespace dphist {

std::vector<double> PruneNonPositiveSubtrees(
    const TreeLayout& tree, const std::vector<double>& node_estimates) {
  DPHIST_CHECK(node_estimates.size() ==
               static_cast<std::size_t>(tree.node_count()));
  std::vector<double> out = node_estimates;
  // BFS order means parents precede children, so a single forward sweep
  // propagates "zeroed" state downward: once a node is zeroed, each child
  // is zeroed either because its own estimate is <= 0 or because we force
  // it here.
  std::vector<bool> zeroed(out.size(), false);
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    bool parent_zeroed =
        !tree.IsRoot(v) && zeroed[static_cast<std::size_t>(tree.Parent(v))];
    if (parent_zeroed || out[static_cast<std::size_t>(v)] <= 0.0) {
      zeroed[static_cast<std::size_t>(v)] = true;
      out[static_cast<std::size_t>(v)] = 0.0;
    }
  }
  return out;
}

std::vector<double> RoundToNonNegativeIntegers(
    const std::vector<double>& values) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] <= 0.0 ? 0.0 : std::round(values[i]);
  }
  return out;
}

}  // namespace dphist
