#include "inference/hierarchical.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dphist {

HierarchicalInferenceResult HierarchicalInference(
    const TreeLayout& tree, const std::vector<double>& noisy) {
  DPHIST_CHECK_MSG(
      noisy.size() == static_cast<std::size_t>(tree.node_count()),
      "noisy vector size must equal the tree's node count");
  const std::int64_t k = tree.branching();
  const std::int64_t m = tree.node_count();
  const std::int64_t height = tree.height();

  // Per-depth weights: a node at depth d has height l = height - d.
  // alpha[l] multiplies the node's own noisy count, beta[l] the children
  // sum. Precomputing avoids k^l recomputation per node.
  std::vector<double> alpha(static_cast<std::size_t>(height) + 1, 0.0);
  std::vector<double> beta(static_cast<std::size_t>(height) + 1, 0.0);
  double k_pow = static_cast<double>(k);  // k^1
  for (std::int64_t l = 2; l <= height; ++l) {
    double k_lm1 = k_pow;  // k^(l-1)
    k_pow *= static_cast<double>(k);
    double denom = k_pow - 1.0;
    alpha[static_cast<std::size_t>(l)] = (k_pow - k_lm1) / denom;
    beta[static_cast<std::size_t>(l)] = (k_lm1 - 1.0) / denom;
  }

  HierarchicalInferenceResult result;
  result.subtree_estimates.assign(noisy.begin(), noisy.end());
  std::vector<double>& z = result.subtree_estimates;

  // Bottom-up z pass. Children have larger ids, so iterate ids descending.
  // Leaves keep z[v] = h~[v] from the copy above.
  for (std::int64_t v = m - 1; v >= 0; --v) {
    if (tree.IsLeaf(v)) continue;
    std::int64_t l = height - tree.Depth(v);
    double child_sum = 0.0;
    std::int64_t first = tree.FirstChild(v);
    for (std::int64_t c = 0; c < k; ++c) {
      child_sum += z[static_cast<std::size_t>(first + c)];
    }
    z[static_cast<std::size_t>(v)] =
        alpha[static_cast<std::size_t>(l)] * noisy[static_cast<std::size_t>(v)] +
        beta[static_cast<std::size_t>(l)] * child_sum;
  }

  // Top-down h pass.
  std::vector<double>& h = result.node_estimates;
  h.assign(z.begin(), z.end());
  for (std::int64_t u = 0; u < m; ++u) {
    if (tree.IsLeaf(u)) continue;
    double child_z_sum = 0.0;
    std::int64_t first = tree.FirstChild(u);
    for (std::int64_t c = 0; c < k; ++c) {
      child_z_sum += z[static_cast<std::size_t>(first + c)];
    }
    double adjustment =
        (h[static_cast<std::size_t>(u)] - child_z_sum) / static_cast<double>(k);
    for (std::int64_t c = 0; c < k; ++c) {
      // h[child] starts at z[child] (from the copy) and receives the
      // parent's correction; parents are processed before children because
      // BFS ids increase with depth.
      h[static_cast<std::size_t>(first + c)] =
          z[static_cast<std::size_t>(first + c)] + adjustment;
    }
  }
  return result;
}

std::vector<double> LeafEstimates(const TreeLayout& tree,
                                  const std::vector<double>& node_estimates,
                                  std::int64_t domain_size) {
  DPHIST_CHECK(node_estimates.size() ==
               static_cast<std::size_t>(tree.node_count()));
  DPHIST_CHECK(domain_size >= 1 && domain_size <= tree.leaf_count());
  std::vector<double> leaves(static_cast<std::size_t>(domain_size));
  for (std::int64_t pos = 0; pos < domain_size; ++pos) {
    leaves[static_cast<std::size_t>(pos)] =
        node_estimates[static_cast<std::size_t>(tree.LeafNode(pos))];
  }
  return leaves;
}

double MaxConsistencyViolation(const TreeLayout& tree,
                               const std::vector<double>& node_values) {
  DPHIST_CHECK(node_values.size() ==
               static_cast<std::size_t>(tree.node_count()));
  double worst = 0.0;
  for (std::int64_t v = 0; v < tree.node_count(); ++v) {
    if (tree.IsLeaf(v)) continue;
    double child_sum = 0.0;
    std::int64_t first = tree.FirstChild(v);
    for (std::int64_t c = 0; c < tree.branching(); ++c) {
      child_sum += node_values[static_cast<std::size_t>(first + c)];
    }
    worst = std::max(
        worst, std::abs(node_values[static_cast<std::size_t>(v)] - child_sum));
  }
  return worst;
}

}  // namespace dphist
