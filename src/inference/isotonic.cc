#include "inference/isotonic.h"

#include <algorithm>

#include "common/check.h"

namespace dphist {
namespace {

/// A maximal constant run of the solution: the weighted mean of the inputs
/// it pools, the pooled weight, and how many inputs it spans.
struct Block {
  double mean;
  double weight;
  std::size_t span;
};

}  // namespace

std::vector<double> WeightedIsotonicRegression(
    const std::vector<double>& values, const std::vector<double>& weights) {
  DPHIST_CHECK(values.size() == weights.size());
  std::vector<Block> stack;
  stack.reserve(values.size());

  for (std::size_t i = 0; i < values.size(); ++i) {
    DPHIST_CHECK_MSG(weights[i] > 0.0, "isotonic weights must be positive");
    Block block{values[i], weights[i], 1};
    // Pool while the new block violates monotonicity against the stack top.
    while (!stack.empty() && stack.back().mean >= block.mean) {
      const Block& top = stack.back();
      double w = top.weight + block.weight;
      block.mean = (top.mean * top.weight + block.mean * block.weight) / w;
      block.weight = w;
      block.span += top.span;
      stack.pop_back();
    }
    stack.push_back(block);
  }

  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& block : stack) {
    out.insert(out.end(), block.span, block.mean);
  }
  return out;
}

std::vector<double> IsotonicRegression(const std::vector<double>& values) {
  return WeightedIsotonicRegression(
      values, std::vector<double>(values.size(), 1.0));
}

std::vector<double> AntitonicRegression(const std::vector<double>& values) {
  std::vector<double> reversed(values.rbegin(), values.rend());
  std::vector<double> fitted = IsotonicRegression(reversed);
  std::reverse(fitted.begin(), fitted.end());
  return fitted;
}

}  // namespace dphist
