#include "inference/constrained_ls.h"

#include <cmath>
#include <set>

#include "common/check.h"
#include "linalg/least_squares.h"

namespace dphist {

ConstraintSystem::ConstraintSystem(std::int64_t variable_count)
    : variable_count_(variable_count) {
  DPHIST_CHECK(variable_count > 0);
}

void ConstraintSystem::AddConstraint(
    const std::vector<std::pair<std::int64_t, double>>& terms, double rhs) {
  DPHIST_CHECK_MSG(!terms.empty(), "constraint needs at least one term");
  std::set<std::int64_t> seen;
  for (const auto& [index, coefficient] : terms) {
    DPHIST_CHECK(index >= 0 && index < variable_count_);
    DPHIST_CHECK_MSG(seen.insert(index).second,
                     "duplicate index in one constraint");
    (void)coefficient;
  }
  rows_.push_back(terms);
  rhs_.push_back(rhs);
}

void ConstraintSystem::AddSumConstraint(
    std::int64_t target, const std::vector<std::int64_t>& parts) {
  std::vector<std::pair<std::int64_t, double>> terms;
  terms.reserve(parts.size() + 1);
  terms.emplace_back(target, 1.0);
  for (std::int64_t part : parts) terms.emplace_back(part, -1.0);
  AddConstraint(terms, 0.0);
}

bool ConstraintSystem::IsSatisfied(const std::vector<double>& answers,
                                   double tolerance) const {
  return MaxViolation(answers) <= tolerance;
}

double ConstraintSystem::MaxViolation(
    const std::vector<double>& answers) const {
  DPHIST_CHECK(answers.size() == static_cast<std::size_t>(variable_count_));
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    double lhs = 0.0;
    for (const auto& [index, coefficient] : rows_[r]) {
      lhs += coefficient * answers[static_cast<std::size_t>(index)];
    }
    worst = std::max(worst, std::abs(lhs - rhs_[r]));
  }
  return worst;
}

std::pair<linalg::Matrix, linalg::Vector> ConstraintSystem::ToMatrix() const {
  DPHIST_CHECK_MSG(!rows_.empty(), "no constraints added");
  linalg::Matrix a(rows_.size(), static_cast<std::size_t>(variable_count_));
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [index, coefficient] : rows_[r]) {
      a(r, static_cast<std::size_t>(index)) = coefficient;
    }
  }
  return {a, rhs_};
}

Result<std::vector<double>> ConstrainedLeastSquares(
    const ConstraintSystem& constraints, const std::vector<double>& noisy) {
  if (noisy.size() != static_cast<std::size_t>(constraints.variable_count())) {
    return Status::InvalidArgument(
        "noisy answer length does not match the constraint system");
  }
  if (constraints.constraint_count() == 0) {
    return noisy;  // Nothing to enforce; the projection is the identity.
  }
  auto [a, b] = constraints.ToMatrix();
  return linalg::ProjectOntoAffineSubspace(a, b, noisy);
}

}  // namespace dphist
