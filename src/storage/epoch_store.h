// Durable state of the adaptive serving runtime: the WAL of privacy
// spends plus the page-checksummed snapshot of the last published epoch.
//
// Layout of a state directory (`serve --state-dir DIR`):
//
//   DIR/wal.log      append-only WriteAheadLog (see wal.h): one kSpend
//                    record per accountant charge, one kEpochSwap per
//                    publish that became visible. The privacy ledger IS
//                    this file — recovery refolds it bit-exactly.
//   DIR/snapshot.db  fixed-size checksummed pages (page.h): page 0 is a
//                    kSnapshotMeta header (epoch, domain, the resolved
//                    SnapshotOptions, byte count and CRC of the data
//                    stream), pages 1..N carry the serialized per-shard
//                    estimator state and the planner's WorkloadProfile.
//                    Replaced atomically (tmp + rename) by every
//                    publish, so the file is always a complete epoch.
//
// Ordering contract with the EpochManager (all under the busy token):
//
//   gate -> AppendSpend -> build -> AppendEpochSwap -> PersistSnapshot
//        -> commit (in-memory swap)
//
// A crash between AppendSpend and the commit loses at most the epsilon
// of a release that never served a byte — conservative by construction:
// budget can be lost to a crash, never minted, and no served release is
// ever uncharged. A build failure after the spend is rolled back by
// truncating the WAL to the offset AppendSpend returned (plus
// PrivacyAccountant::RollbackLast in memory, which matches the
// truncated replay bit for bit).
//
// Not thread-safe; the EpochManager serializes all calls.

#ifndef DPHIST_STORAGE_EPOCH_STORE_H_
#define DPHIST_STORAGE_EPOCH_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mechanism/privacy_accountant.h"
#include "planner/workload_profile.h"
#include "service/snapshot.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace dphist::storage {

/// Everything Recover() reconstructs from a state directory.
struct RecoveredState {
  /// The spend ledger in WAL order; folding it reproduces the crashed
  /// process's accountant bit for bit (PrivacyAccountant::ImportLedger).
  std::vector<PrivacyAccountant::Entry> ledger;
  /// Highest epoch a kEpochSwap record committed; 0 when none did.
  std::uint64_t last_swap_epoch = 0;
  /// True when the WAL ended in a partial record (crash mid-append);
  /// the torn tail was truncated away before this was returned.
  bool wal_tail_torn = false;
  /// The last persisted release, rebuilt with bit-identical answers;
  /// null when no snapshot has ever been persisted.
  std::shared_ptr<const Snapshot> snapshot;
  /// The planner profile persisted with the snapshot, if any — lets a
  /// restarted server replan sensibly before new traffic accumulates.
  std::optional<planner::WorkloadProfile> profile;
};

class EpochStore {
 public:
  /// Opens (creating the directory and an empty WAL if needed) the
  /// durable state at `dir`.
  static Result<std::unique_ptr<EpochStore>> Open(const std::string& dir);

  /// Durably records one accountant charge BEFORE the release it pays
  /// for is built. Returns the record's WAL offset for RollbackTo.
  Result<std::uint64_t> AppendSpend(double epsilon,
                                    const std::string& purpose);

  /// Durably records that `epoch` is about to become the served epoch.
  Status AppendEpochSwap(std::uint64_t epoch);

  /// Rolls the WAL back to `wal_offset` (an offset AppendSpend or
  /// AppendEpochSwap returned / preceded) after the action the records
  /// described failed before becoming visible.
  Status RollbackTo(std::uint64_t wal_offset);

  /// Atomically replaces snapshot.db with the serialized `snapshot`
  /// (via SerializableState per shard) plus the optional planner
  /// profile. The old snapshot file survives any failure here.
  Status PersistSnapshot(const Snapshot& snapshot,
                         const planner::WorkloadProfile* profile);

  /// Replays the WAL (truncating a torn tail) and loads the persisted
  /// snapshot, refusing loudly — IoError, never garbage — on any
  /// checksum or structure violation that is not a crash signature.
  Result<RecoveredState> Recover();

  const std::string& dir() const { return dir_; }
  std::uint64_t wal_size() const { return wal_->size(); }

  struct Stats {
    std::uint64_t spends_logged = 0;
    std::uint64_t swaps_logged = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t snapshots_persisted = 0;
    std::uint64_t snapshot_pages_written = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  EpochStore(std::string dir, std::unique_ptr<WriteAheadLog> wal)
      : dir_(std::move(dir)), wal_(std::move(wal)) {}

  std::string dir_;
  std::unique_ptr<WriteAheadLog> wal_;
  Stats stats_;
};

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_EPOCH_STORE_H_
