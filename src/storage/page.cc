#include "storage/page.h"

#include <cstring>

#include "storage/codec.h"

namespace dphist::storage {
namespace {

/// The CRC-32 lookup table, built once on first use.
const std::uint32_t* Crc32Table() {
  static const auto* table = [] {
    auto* t = new std::array<std::uint32_t, 256>();
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      (*t)[i] = crc;
    }
    return t;
  }();
  return table->data();
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const std::uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

Status SealPage(PageType type, const void* payload, std::size_t payload_size,
                Page* page) {
  if (payload_size > kPagePayloadCapacity) {
    return Status::InvalidArgument("page payload exceeds capacity");
  }
  ByteWriter header;
  header.U32(kPageMagic);
  header.U16(kPageFormatVersion);
  header.U16(static_cast<std::uint16_t>(type));
  header.U32(static_cast<std::uint32_t>(payload_size));
  header.U32(Crc32(payload, payload_size));
  page->bytes.fill(0);
  std::memcpy(page->bytes.data(), header.data().data(), kPageHeaderSize);
  if (payload_size > 0) {
    std::memcpy(page->bytes.data() + kPageHeaderSize, payload, payload_size);
  }
  return Status::Ok();
}

Result<PageView> OpenPage(const Page& page) {
  ByteReader header(page.bytes.data(), kPageHeaderSize);
  const std::uint32_t magic = header.U32();
  const std::uint16_t version = header.U16();
  const std::uint16_t type = header.U16();
  const std::uint32_t payload_size = header.U32();
  const std::uint32_t checksum = header.U32();
  if (magic != kPageMagic) {
    return Status::IoError("corrupt page: bad magic");
  }
  if (version != kPageFormatVersion) {
    return Status::IoError("unsupported page format version " +
                           std::to_string(version));
  }
  if (payload_size > kPagePayloadCapacity) {
    return Status::IoError("corrupt page: payload length exceeds capacity");
  }
  const char* payload = page.bytes.data() + kPageHeaderSize;
  if (Crc32(payload, payload_size) != checksum) {
    return Status::IoError("corrupt page: checksum mismatch");
  }
  PageView view;
  view.type = static_cast<PageType>(type);
  view.payload = std::string_view(payload, payload_size);
  return view;
}

}  // namespace dphist::storage
