// Page-granular file IO for the durable epoch store.
//
// DiskManager owns one file descriptor and reads/writes whole Pages at
// page-aligned offsets via pread/pwrite, so concurrent-position
// bookkeeping never exists and a crashed process can reopen the file
// and see exactly the pages that were synced. All errors are Status
// (IoError with errno text) — storage failures degrade the server, they
// never abort it.
//
// Not thread-safe: the epoch store serializes all storage traffic under
// the EpochManager's busy token (publishes) or startup (recovery).

#ifndef DPHIST_STORAGE_DISK_MANAGER_H_
#define DPHIST_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace dphist::storage {

class DiskManager {
 public:
  /// Opens `path` for page IO. With `create` true the file is created
  /// (and truncated to empty) if absent; false requires an existing
  /// file. Fails with IoError when the existing file's size is not a
  /// whole number of pages (a torn final page from a crashed write —
  /// the caller decides whether that is tolerable).
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   bool create);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Reads page `page_id` (0-based). Fails past the end of the file.
  Status ReadPage(std::uint64_t page_id, Page* page) const;

  /// Writes page `page_id`, extending the file when page_id ==
  /// page_count(). Gaps are refused (the snapshot codec writes densely).
  Status WritePage(std::uint64_t page_id, const Page& page);

  /// fsync — pages written before this call survive a crash after it.
  Status Sync();

  std::uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t syncs = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  DiskManager(std::string path, int fd, std::uint64_t page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  std::string path_;
  int fd_;
  std::uint64_t page_count_;
  mutable Stats stats_;
};

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_DISK_MANAGER_H_
