// Write-ahead log of privacy-budget spends and epoch swaps.
//
// The accountant's ledger is the privacy guarantee's memory: sequential
// composition (paper Section 2.1) sums epsilon over every release ever
// made, so the ledger must survive the process. Every record is
// appended AND fsynced before the action it describes becomes visible
// in memory:
//
//   kSpend      one accountant Spend — epsilon (bit-exact) + purpose.
//               Appended after the budget gate admits the spend and
//               before the snapshot build starts, so a crash at any
//               later point still counts the epsilon (conservative:
//               budget can be lost to a crash, never minted by one).
//   kEpochSwap  the publish that spend paid for is about to become the
//               served epoch. Recovery uses these to anchor the epoch
//               counter; a spend with no following swap is the
//               signature of a crash mid-publish.
//
// Replay semantics: a torn tail (partial final record — the crash wrote
// some bytes of an append that never fsynced) is NOT corruption; replay
// returns every complete record and reports the clean prefix length so
// the store can truncate the tail away. A checksum or structure error
// in the middle of the file IS corruption and fails with IoError —
// serving from a ledger that cannot be reproduced exactly would void
// the privacy guarantee.
//
// Not thread-safe; serialized by the epoch store.

#ifndef DPHIST_STORAGE_WAL_H_
#define DPHIST_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dphist::storage {

enum class WalRecordType : std::uint16_t {
  kSpend = 1,
  kEpochSwap = 2,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kSpend;
  /// kSpend fields: the exact epsilon charged and the ledger label.
  double epsilon = 0.0;
  std::string purpose;
  /// kEpochSwap field: the epoch becoming current.
  std::uint64_t epoch = 0;
};

/// What a replay found.
struct WalReplay {
  std::vector<WalRecord> records;
  /// File offset just past the last complete record. Smaller than the
  /// file size exactly when a torn tail was skipped.
  std::uint64_t clean_size = 0;
  bool tail_torn = false;
};

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends and fsyncs one record. Returns the offset the record
  /// starts at — pass it to TruncateTo to roll the record back (only
  /// valid while nothing was appended after it).
  Result<std::uint64_t> Append(const WalRecord& record);

  /// Drops everything at and after `offset` (rollback of the most
  /// recent append(s) when the action they described failed).
  Status TruncateTo(std::uint64_t offset);

  /// Reads the log from the start (see replay semantics above).
  Result<WalReplay> Replay() const;

  /// Current append offset.
  std::uint64_t size() const { return size_; }

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t truncations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  WriteAheadLog(std::string path, int fd, std::uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  std::uint64_t size_;
  Stats stats_;
};

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_WAL_H_
