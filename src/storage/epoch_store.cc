#include "storage/epoch_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/codec.h"
#include "storage/page.h"

namespace dphist::storage {
namespace {

constexpr std::uint16_t kSnapshotFormatVersion = 1;
constexpr char kWalFile[] = "wal.log";
constexpr char kSnapshotFile[] = "snapshot.db";
constexpr char kSnapshotTmpFile[] = "snapshot.db.tmp";
/// Recovery's pool only rescans the file once; keep it small.
constexpr std::size_t kPoolFrames = 32;

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// fsync on the directory so a rename inside it is itself durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc < 0) {
    errno = saved;
    return ErrnoStatus("fsync dir " + dir);
  }
  return Status::Ok();
}

Result<StrategyKind> DecodeStrategy(std::uint16_t code) {
  switch (code) {
    case 0:
      return StrategyKind::kLTilde;
    case 1:
      return StrategyKind::kHTilde;
    case 2:
      return StrategyKind::kHBar;
    case 3:
      return StrategyKind::kWavelet;
    default:
      // kAuto is never persisted — a publish resolves it first.
      return Status::IoError("snapshot meta has an unknown strategy code");
  }
}

std::uint16_t EncodeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLTilde:
      return 0;
    case StrategyKind::kHTilde:
      return 1;
    case StrategyKind::kHBar:
      return 2;
    case StrategyKind::kWavelet:
      return 3;
    case StrategyKind::kAuto:
      break;
  }
  return 0xffff;  // refused by DecodeStrategy on the way back in
}

/// The snapshot's data stream: every shard's estimator state in domain
/// order, then the optional planner profile.
Result<std::string> EncodeDataStream(const Snapshot& snapshot,
                                     const planner::WorkloadProfile* profile) {
  ByteWriter out;
  out.U64(static_cast<std::uint64_t>(snapshot.shard_count()));
  for (std::int64_t i = 0; i < snapshot.shard_count(); ++i) {
    const std::vector<double>* state = snapshot.shard(i).SerializableState();
    if (state == nullptr) {
      return Status::FailedPrecondition(
          "shard estimator \"" + snapshot.shard(i).Name() +
          "\" does not support persistence");
    }
    out.F64Vector(*state);
  }
  out.U8(profile != nullptr ? 1 : 0);
  if (profile != nullptr) {
    out.I64(profile->domain_size());
    out.U64(static_cast<std::uint64_t>(profile->length_weights().size()));
    for (const auto& [length, weight] : profile->length_weights()) {
      out.I64(length);
      out.F64(weight);
    }
    for (double bin : profile->position_heat()) out.F64(bin);
  }
  return out.data();
}

struct DecodedDataStream {
  std::vector<std::vector<double>> shard_states;
  std::optional<planner::WorkloadProfile> profile;
};

Result<DecodedDataStream> DecodeDataStream(std::string_view stream) {
  ByteReader in(stream);
  DecodedDataStream out;
  const std::uint64_t shard_count = in.U64();
  if (shard_count > stream.size() / 8 + 1) {
    return Status::IoError("snapshot data stream: absurd shard count");
  }
  out.shard_states.reserve(static_cast<std::size_t>(shard_count));
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    out.shard_states.push_back(in.F64Vector());
  }
  const bool has_profile = in.U8() != 0;
  if (has_profile) {
    const std::int64_t domain = in.I64();
    const std::uint64_t n_lengths = in.U64();
    if (n_lengths > stream.size() / 16 + 1) {
      return Status::IoError("snapshot data stream: absurd profile size");
    }
    std::map<std::int64_t, double> lengths;
    for (std::uint64_t i = 0; i < n_lengths; ++i) {
      const std::int64_t length = in.I64();
      lengths[length] = in.F64();
    }
    std::array<double, planner::WorkloadProfile::kHeatBins> heat{};
    for (double& bin : heat) bin = in.F64();
    if (!in.ok()) {
      return Status::IoError("snapshot data stream: truncated profile");
    }
    Result<planner::WorkloadProfile> profile =
        planner::WorkloadProfile::Restore(domain, std::move(lengths), heat);
    if (!profile.ok()) return profile.status();
    out.profile.emplace(std::move(profile).value());
  }
  if (!in.ok() || !in.AtEnd()) {
    return Status::IoError("snapshot data stream: structure mismatch");
  }
  return out;
}

/// The meta page's payload: format, epoch, domain, resolved options,
/// and the length + CRC of the data stream in the following pages.
std::string EncodeMetaPayload(const Snapshot& snapshot,
                              const std::string& data_stream) {
  const SnapshotOptions& options = snapshot.options();
  ByteWriter out;
  out.U16(kSnapshotFormatVersion);
  out.U64(snapshot.epoch());
  out.I64(snapshot.domain_size());
  out.F64(options.epsilon);
  out.U16(EncodeStrategy(options.strategy));
  out.I64(options.branching);
  out.I64(options.shards);
  out.U8(options.round_to_nonnegative_integers ? 1 : 0);
  out.U8(options.prune_nonpositive_subtrees ? 1 : 0);
  out.I64(options.build_threads);
  out.F64(options.cache_admit_min_cost);
  out.U64(static_cast<std::uint64_t>(data_stream.size()));
  out.U32(Crc32(data_stream.data(), data_stream.size()));
  return out.data();
}

struct DecodedMeta {
  std::uint64_t epoch = 0;
  std::int64_t domain_size = 0;
  SnapshotOptions options;
  std::uint64_t data_bytes = 0;
  std::uint32_t data_crc = 0;
};

Result<DecodedMeta> DecodeMetaPayload(std::string_view payload) {
  ByteReader in(payload);
  const std::uint16_t version = in.U16();
  if (version != kSnapshotFormatVersion) {
    return Status::IoError("snapshot meta: unsupported format version " +
                           std::to_string(version));
  }
  DecodedMeta meta;
  meta.epoch = in.U64();
  meta.domain_size = in.I64();
  meta.options.epsilon = in.F64();
  Result<StrategyKind> strategy = DecodeStrategy(in.U16());
  if (!strategy.ok()) return strategy.status();
  meta.options.strategy = strategy.value();
  meta.options.branching = in.I64();
  meta.options.shards = in.I64();
  meta.options.round_to_nonnegative_integers = in.U8() != 0;
  meta.options.prune_nonpositive_subtrees = in.U8() != 0;
  meta.options.build_threads = in.I64();
  meta.options.cache_admit_min_cost = in.F64();
  meta.data_bytes = in.U64();
  meta.data_crc = in.U32();
  if (!in.ok() || !in.AtEnd()) {
    return Status::IoError("snapshot meta: structure mismatch");
  }
  return meta;
}

}  // namespace

Result<std::unique_ptr<EpochStore>> EpochStore::Open(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) < 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + dir);
  }
  // A leftover tmp file is a publish that never committed; drop it so it
  // can never be confused for durable state.
  (void)::unlink((dir + "/" + kSnapshotTmpFile).c_str());
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(dir + "/" + kWalFile);
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<EpochStore>(
      new EpochStore(dir, std::move(wal).value()));
}

Result<std::uint64_t> EpochStore::AppendSpend(double epsilon,
                                              const std::string& purpose) {
  WalRecord record;
  record.type = WalRecordType::kSpend;
  record.epsilon = epsilon;
  record.purpose = purpose;
  Result<std::uint64_t> offset = wal_->Append(record);
  if (offset.ok()) stats_.spends_logged += 1;
  return offset;
}

Status EpochStore::AppendEpochSwap(std::uint64_t epoch) {
  WalRecord record;
  record.type = WalRecordType::kEpochSwap;
  record.epoch = epoch;
  Result<std::uint64_t> offset = wal_->Append(record);
  if (!offset.ok()) return offset.status();
  stats_.swaps_logged += 1;
  return Status::Ok();
}

Status EpochStore::RollbackTo(std::uint64_t wal_offset) {
  Status status = wal_->TruncateTo(wal_offset);
  if (status.ok()) stats_.rollbacks += 1;
  return status;
}

Status EpochStore::PersistSnapshot(const Snapshot& snapshot,
                                   const planner::WorkloadProfile* profile) {
  Result<std::string> stream = EncodeDataStream(snapshot, profile);
  if (!stream.ok()) return stream.status();
  const std::string& data = stream.value();
  const std::string meta = EncodeMetaPayload(snapshot, data);

  const std::string tmp_path = dir_ + "/" + kSnapshotTmpFile;
  {
    Result<std::unique_ptr<DiskManager>> disk =
        DiskManager::Open(tmp_path, /*create=*/true);
    if (!disk.ok()) return disk.status();
    BufferPool pool(disk.value().get(), kPoolFrames);

    Page page;
    Status sealed = SealPage(PageType::kSnapshotMeta, meta.data(),
                             meta.size(), &page);
    if (!sealed.ok()) return sealed;
    Status put = pool.Put(0, page);
    if (!put.ok()) return put;

    std::uint64_t page_id = 1;
    for (std::size_t offset = 0; offset < data.size();
         offset += kPagePayloadCapacity) {
      const std::size_t chunk =
          std::min(kPagePayloadCapacity, data.size() - offset);
      sealed = SealPage(PageType::kSnapshotData, data.data() + offset, chunk,
                        &page);
      if (!sealed.ok()) return sealed;
      put = pool.Put(page_id, page);
      if (!put.ok()) return put;
      ++page_id;
    }
    // An empty data stream is impossible (shard count is always
    // present), but an empty-page guard costs nothing: the reader walks
    // pages by data_bytes, not by file size.
    Status flushed = pool.FlushAll();
    if (!flushed.ok()) return flushed;
    stats_.snapshot_pages_written += page_id;
  }

  const std::string final_path = dir_ + "/" + kSnapshotFile;
  if (::rename(tmp_path.c_str(), final_path.c_str()) < 0) {
    return ErrnoStatus("rename " + tmp_path);
  }
  Status synced = SyncDir(dir_);
  if (!synced.ok()) return synced;
  stats_.snapshots_persisted += 1;
  return Status::Ok();
}

Result<RecoveredState> EpochStore::Recover() {
  RecoveredState state;

  Result<WalReplay> replay = wal_->Replay();
  if (!replay.ok()) return replay.status();
  if (replay.value().tail_torn) {
    // Truncate the torn append away so the next spend lands on a clean
    // boundary — the file then matches the ledger we return exactly.
    Status truncated = wal_->TruncateTo(replay.value().clean_size);
    if (!truncated.ok()) return truncated;
    state.wal_tail_torn = true;
  }
  for (const WalRecord& record : replay.value().records) {
    switch (record.type) {
      case WalRecordType::kSpend:
        state.ledger.push_back(
            PrivacyAccountant::Entry{record.epsilon, record.purpose});
        break;
      case WalRecordType::kEpochSwap:
        if (record.epoch > state.last_swap_epoch) {
          state.last_swap_epoch = record.epoch;
        }
        break;
    }
  }

  const std::string snapshot_path = dir_ + "/" + kSnapshotFile;
  struct stat info {};
  if (::stat(snapshot_path.c_str(), &info) < 0) {
    if (errno == ENOENT) return state;  // never persisted: WAL-only state
    return ErrnoStatus("stat " + snapshot_path);
  }

  Result<std::unique_ptr<DiskManager>> disk =
      DiskManager::Open(snapshot_path, /*create=*/false);
  if (!disk.ok()) return disk.status();
  BufferPool pool(disk.value().get(), kPoolFrames);

  Result<std::shared_ptr<const Page>> meta_page = pool.Fetch(0);
  if (!meta_page.ok()) return meta_page.status();
  Result<PageView> meta_view = OpenPage(*meta_page.value());
  if (!meta_view.ok()) return meta_view.status();
  if (meta_view.value().type != PageType::kSnapshotMeta) {
    return Status::IoError("snapshot page 0 is not a meta page");
  }
  Result<DecodedMeta> meta = DecodeMetaPayload(meta_view.value().payload);
  if (!meta.ok()) return meta.status();

  std::string data;
  data.reserve(meta.value().data_bytes);
  std::uint64_t page_id = 1;
  while (data.size() < meta.value().data_bytes) {
    Result<std::shared_ptr<const Page>> page = pool.Fetch(page_id);
    if (!page.ok()) return page.status();
    Result<PageView> view = OpenPage(*page.value());
    if (!view.ok()) return view.status();
    if (view.value().type != PageType::kSnapshotData) {
      return Status::IoError("snapshot page " + std::to_string(page_id) +
                             " is not a data page");
    }
    data.append(view.value().payload);
    ++page_id;
  }
  if (data.size() != meta.value().data_bytes) {
    return Status::IoError("snapshot data stream length mismatch");
  }
  if (Crc32(data.data(), data.size()) != meta.value().data_crc) {
    return Status::IoError("snapshot data stream checksum mismatch");
  }

  Result<DecodedDataStream> decoded = DecodeDataStream(data);
  if (!decoded.ok()) return decoded.status();
  DecodedDataStream stream = std::move(decoded).value();

  Result<std::shared_ptr<const Snapshot>> snapshot = Snapshot::Restore(
      meta.value().options, meta.value().epoch, meta.value().domain_size,
      stream.shard_states);
  if (!snapshot.ok()) return snapshot.status();
  state.snapshot = std::move(snapshot).value();
  state.profile = std::move(stream.profile);
  return state;
}

}  // namespace dphist::storage
