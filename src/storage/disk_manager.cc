#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dphist::storage {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path, bool create) {
  const int flags = create ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat info {};
  if (::fstat(fd, &info) < 0) {
    Status status = ErrnoStatus("fstat " + path);
    ::close(fd);
    return status;
  }
  const auto size = static_cast<std::uint64_t>(info.st_size);
  if (size % kPageSize != 0) {
    ::close(fd);
    return Status::IoError("page file " + path +
                           " is not a whole number of pages (torn write?)");
  }
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, fd, size / kPageSize));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::ReadPage(std::uint64_t page_id, Page* page) const {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id) +
                              " past end of " + path_);
  }
  std::size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pread(
        fd_, page->bytes.data() + done, kPageSize - done,
        static_cast<off_t>(page_id * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (n == 0) {
      return Status::IoError("short read in " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
  stats_.reads += 1;
  return Status::Ok();
}

Status DiskManager::WritePage(std::uint64_t page_id, const Page& page) {
  if (page_id > page_count_) {
    return Status::InvalidArgument("page write would leave a gap in " +
                                   path_);
  }
  std::size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(
        fd_, page.bytes.data() + done, kPageSize - done,
        static_cast<off_t>(page_id * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
  if (page_id == page_count_) page_count_ += 1;
  stats_.writes += 1;
  return Status::Ok();
}

Status DiskManager::Sync() {
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("fsync " + path_);
  stats_.syncs += 1;
  return Status::Ok();
}

}  // namespace dphist::storage
