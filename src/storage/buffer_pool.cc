#include "storage/buffer_pool.h"

#include <algorithm>
#include <utility>

namespace dphist::storage {

BufferPool::BufferPool(DiskManager* disk, std::size_t capacity)
    : disk_(disk), capacity_(std::max<std::size_t>(1, capacity)) {}

BufferPool::~BufferPool() {
  // Best effort: a pool dropped without FlushAll loses dirty frames by
  // design (the epoch store always flushes before rename), but writing
  // them back here costs nothing and helps tests that forget.
  (void)FlushAll();
}

void BufferPool::Touch(std::list<Frame>::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
}

Status BufferPool::EnsureCapacity() {
  while (frames_.size() >= capacity_) {
    Frame& victim = frames_.back();
    if (victim.dirty) {
      Status written = disk_->WritePage(victim.page_id, *victim.page);
      if (!written.ok()) return written;
      stats_.writebacks += 1;
    }
    index_.erase(victim.page_id);
    frames_.pop_back();
    stats_.evictions += 1;
  }
  return Status::Ok();
}

Result<std::shared_ptr<const Page>> BufferPool::Fetch(std::uint64_t page_id) {
  auto found = index_.find(page_id);
  if (found != index_.end()) {
    stats_.hits += 1;
    Touch(found->second);
    return std::shared_ptr<const Page>(found->second->page);
  }
  stats_.misses += 1;
  auto page = std::make_shared<Page>();
  Status read = disk_->ReadPage(page_id, page.get());
  if (!read.ok()) return read;
  Status room = EnsureCapacity();
  if (!room.ok()) return room;
  frames_.push_front(Frame{page_id, page, /*dirty=*/false});
  index_[page_id] = frames_.begin();
  return std::shared_ptr<const Page>(std::move(page));
}

Status BufferPool::Put(std::uint64_t page_id, const Page& page) {
  auto found = index_.find(page_id);
  if (found != index_.end()) {
    *found->second->page = page;
    found->second->dirty = true;
    Touch(found->second);
    return Status::Ok();
  }
  // A brand-new page must exist on disk before it can be evicted-clean
  // later; write it through immediately when it extends the file so
  // DiskManager's no-gaps invariant sees pages in append order even if
  // LRU order would have flushed them backwards.
  if (page_id >= disk_->page_count()) {
    Status written = disk_->WritePage(page_id, page);
    if (!written.ok()) return written;
    stats_.writebacks += 1;
    Status room = EnsureCapacity();
    if (!room.ok()) return room;
    frames_.push_front(
        Frame{page_id, std::make_shared<Page>(page), /*dirty=*/false});
    index_[page_id] = frames_.begin();
    return Status::Ok();
  }
  Status room = EnsureCapacity();
  if (!room.ok()) return room;
  frames_.push_front(
      Frame{page_id, std::make_shared<Page>(page), /*dirty=*/true});
  index_[page_id] = frames_.begin();
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (!frame.dirty) continue;
    Status written = disk_->WritePage(frame.page_id, *frame.page);
    if (!written.ok()) return written;
    frame.dirty = false;
    stats_.writebacks += 1;
  }
  return disk_->Sync();
}

}  // namespace dphist::storage
