#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "storage/codec.h"
#include "storage/page.h"

namespace dphist::storage {
namespace {

/// "DPW1" — every record starts with this.
constexpr std::uint32_t kWalMagic = 0x31575044;
constexpr std::uint16_t kWalVersion = 1;
/// magic u32 + version u16 + type u16 + payload_len u32 + crc u32.
constexpr std::size_t kWalHeaderSize = 16;
/// A structurally absurd payload length is treated as corruption, not
/// as a gigantic allocation attempt.
constexpr std::uint32_t kWalMaxPayload = 1u << 20;

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

std::string EncodePayload(const WalRecord& record) {
  ByteWriter payload;
  switch (record.type) {
    case WalRecordType::kSpend:
      payload.F64(record.epsilon);
      payload.String(record.purpose);
      break;
    case WalRecordType::kEpochSwap:
      payload.U64(record.epoch);
      break;
  }
  return payload.data();
}

Result<WalRecord> DecodePayload(WalRecordType type, std::string_view bytes) {
  WalRecord record;
  record.type = type;
  ByteReader reader(bytes);
  switch (type) {
    case WalRecordType::kSpend:
      record.epsilon = reader.F64();
      record.purpose = reader.String();
      break;
    case WalRecordType::kEpochSwap:
      record.epoch = reader.U64();
      break;
    default:
      return Status::IoError("corrupt WAL record: unknown type");
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::IoError("corrupt WAL record: payload structure");
  }
  return record;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat info {};
  if (::fstat(fd, &info) < 0) {
    Status status = ErrnoStatus("fstat " + path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(
      path, fd, static_cast<std::uint64_t>(info.st_size)));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::uint64_t> WriteAheadLog::Append(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  ByteWriter framed;
  framed.U32(kWalMagic);
  framed.U16(kWalVersion);
  framed.U16(static_cast<std::uint16_t>(record.type));
  framed.U32(static_cast<std::uint32_t>(payload.size()));
  framed.U32(Crc32(payload.data(), payload.size()));
  framed.Bytes(payload.data(), payload.size());

  const std::uint64_t offset = size_;
  const std::string& bytes = framed.data();
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Drop whatever partial bytes landed so the in-memory offset and
      // the file stay consistent; a torn tail here would otherwise be
      // blamed on the NEXT crash.
      (void)::ftruncate(fd_, static_cast<off_t>(offset));
      return ErrnoStatus("write " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    (void)::ftruncate(fd_, static_cast<off_t>(offset));
    return ErrnoStatus("fsync " + path_);
  }
  size_ = offset + bytes.size();
  stats_.appends += 1;
  return offset;
}

Status WriteAheadLog::TruncateTo(std::uint64_t offset) {
  if (offset > size_) {
    return Status::InvalidArgument("WAL truncate past the end");
  }
  if (::ftruncate(fd_, static_cast<off_t>(offset)) < 0) {
    return ErrnoStatus("ftruncate " + path_);
  }
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("fsync " + path_);
  size_ = offset;
  stats_.truncations += 1;
  return Status::Ok();
}

Result<WalReplay> WriteAheadLog::Replay() const {
  std::string contents(size_, '\0');
  std::size_t done = 0;
  while (done < contents.size()) {
    const ssize_t n =
        ::pread(fd_, contents.data() + done, contents.size() - done,
                static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (n == 0) break;  // file shorter than expected: treat as torn
    done += static_cast<std::size_t>(n);
  }
  contents.resize(done);

  WalReplay replay;
  std::size_t offset = 0;
  while (offset < contents.size()) {
    const std::size_t remaining = contents.size() - offset;
    if (remaining < kWalHeaderSize) {
      // Crash mid-append: not even a full header made it out.
      replay.tail_torn = true;
      break;
    }
    ByteReader header(contents.data() + offset, kWalHeaderSize);
    const std::uint32_t magic = header.U32();
    const std::uint16_t version = header.U16();
    const std::uint16_t type = header.U16();
    const std::uint32_t payload_size = header.U32();
    const std::uint32_t checksum = header.U32();
    if (magic != kWalMagic || version != kWalVersion ||
        payload_size > kWalMaxPayload) {
      // The header bytes are fully present but wrong. Appends are the
      // only writer and each is fsynced whole, so this is corruption,
      // not a torn append.
      return Status::IoError("corrupt WAL record header at offset " +
                             std::to_string(offset) + " in " + path_);
    }
    if (remaining < kWalHeaderSize + payload_size) {
      // Complete header, partial payload: the fsync never finished.
      replay.tail_torn = true;
      break;
    }
    const std::string_view payload(contents.data() + offset + kWalHeaderSize,
                                   payload_size);
    if (Crc32(payload.data(), payload.size()) != checksum) {
      if (offset + kWalHeaderSize + payload_size == contents.size()) {
        // A final record whose length made it into the file metadata
        // but whose data blocks never fully persisted reads back as a
        // full-length record with a wrong checksum — a crash signature,
        // so tolerate it exactly like a short tail.
        replay.tail_torn = true;
        break;
      }
      return Status::IoError("corrupt WAL record payload at offset " +
                             std::to_string(offset) + " in " + path_);
    }
    Result<WalRecord> record =
        DecodePayload(static_cast<WalRecordType>(type), payload);
    if (!record.ok()) return record.status();
    replay.records.push_back(std::move(record).value());
    offset += kWalHeaderSize + payload_size;
  }
  replay.clean_size = offset;
  return replay;
}

}  // namespace dphist::storage
