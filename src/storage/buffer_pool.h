// Small LRU buffer pool over a DiskManager.
//
// The snapshot codec reads and writes whole files of pages; the pool
// keeps the hot ones in memory so recovery's meta page (re-read for
// validation) and a restart's sequential scan do not hit the disk once
// per access. Frames are handed out as shared_ptr — a frame stays alive
// (pinned) for as long as a caller holds the handle, even across an
// eviction, so there is no use-after-evict. Dirty frames are written
// back on eviction and by FlushAll (which also syncs).
//
// Not thread-safe, like the DiskManager underneath: all storage traffic
// is serialized by the epoch store.

#ifndef DPHIST_STORAGE_BUFFER_POOL_H_
#define DPHIST_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dphist::storage {

class BufferPool {
 public:
  /// A pool of at most `capacity` frames (>= 1) over `disk` (not owned;
  /// must outlive the pool).
  BufferPool(DiskManager* disk, std::size_t capacity);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The page, reading through to disk on a miss. The handle pins the
  /// bytes for its lifetime.
  Result<std::shared_ptr<const Page>> Fetch(std::uint64_t page_id);

  /// Installs `page` as the new contents of `page_id` (dirty; written
  /// back on eviction or FlushAll). page_id may extend the file by one,
  /// exactly like DiskManager::WritePage.
  Status Put(std::uint64_t page_id, const Page& page);

  /// Writes every dirty frame back and syncs the file.
  Status FlushAll();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Frame {
    std::uint64_t page_id = 0;
    std::shared_ptr<Page> page;
    bool dirty = false;
  };

  /// Moves `it` to the most-recently-used position.
  void Touch(std::list<Frame>::iterator it);

  /// Evicts the least-recently-used frame (writing it back if dirty)
  /// until a slot is free.
  Status EnsureCapacity();

  DiskManager* disk_;
  std::size_t capacity_;
  /// MRU at the front.
  std::list<Frame> frames_;
  std::map<std::uint64_t, std::list<Frame>::iterator> index_;
  Stats stats_;
};

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_BUFFER_POOL_H_
