// Byte-level serialization helpers for the durable epoch store.
//
// Everything the storage layer writes — WAL record payloads, snapshot
// page payloads — goes through these two classes so the on-disk
// encoding is defined in exactly one place: fixed-width little-endian
// integers, IEEE-754 doubles carried bit-exactly through a uint64
// round-trip (recovery must reproduce estimator state and the
// accountant ledger to the last bit, so no decimal formatting is ever
// involved), and u32-length-prefixed strings.

#ifndef DPHIST_STORAGE_CODEC_H_
#define DPHIST_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace dphist::storage {

/// Appends fixed-width little-endian values to a growing byte buffer.
class ByteWriter {
 public:
  void U8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void U16(std::uint16_t value) { AppendLittleEndian(value, 2); }
  void U32(std::uint32_t value) { AppendLittleEndian(value, 4); }
  void U64(std::uint64_t value) { AppendLittleEndian(value, 8); }

  void I64(std::int64_t value) {
    U64(static_cast<std::uint64_t>(value));
  }

  /// Bit-exact: the double's object representation, not its decimal
  /// rendering, so replay reproduces NaN payloads and -0.0 too.
  void F64(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  void Bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// u32 length prefix + raw bytes.
  void String(std::string_view value) {
    U32(static_cast<std::uint32_t>(value.size()));
    buf_.append(value.data(), value.size());
  }

  void F64Vector(const std::vector<double>& values) {
    U64(static_cast<std::uint64_t>(values.size()));
    for (double v : values) F64(v);
  }

  const std::string& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  void AppendLittleEndian(std::uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// Reads a ByteWriter stream back. Never throws and never reads past the
/// end: any underrun (or oversized string) latches ok() false and every
/// subsequent read returns zero — callers validate ok() once at the end
/// of a parse instead of checking every field.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit ByteReader(std::string_view data)
      : ByteReader(data.data(), data.size()) {}

  std::uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }

  std::uint16_t U16() { return static_cast<std::uint16_t>(ReadLE(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(ReadLE(4)); }
  std::uint64_t U64() { return ReadLE(8); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() {
    const std::uint64_t bits = U64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string String() {
    const std::uint32_t size = U32();
    if (!Require(size)) return {};
    std::string out(p_, size);
    p_ += size;
    return out;
  }

  std::vector<double> F64Vector() {
    const std::uint64_t count = U64();
    // Each element needs 8 bytes; reject counts the remaining bytes
    // cannot hold instead of attempting a huge allocation.
    if (count > Remaining() / 8) {
      ok_ = false;
      return {};
    }
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(F64());
    return out;
  }

  std::size_t Remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool AtEnd() const { return p_ == end_; }
  bool ok() const { return ok_; }

 private:
  bool Require(std::size_t bytes) {
    if (!ok_ || Remaining() < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t ReadLE(int bytes) {
    if (!Require(static_cast<std::size_t>(bytes))) return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < bytes; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p_++))
               << (8 * i);
    }
    return value;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_CODEC_H_
