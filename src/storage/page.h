// Checksummed fixed-size page format — the unit of snapshot-file IO.
//
// Every page of the durable epoch store's snapshot file is exactly
// kPageSize bytes: a 16-byte header (magic, format version, page type,
// payload length, CRC32 of the payload) followed by up to
// kPagePayloadCapacity payload bytes and zero padding. A page is sealed
// once when written and verified on every read, so a torn write, a
// bit flip, or a file from a different format version surfaces as a
// Status at open time — never as garbage estimator state served to
// clients.

#ifndef DPHIST_STORAGE_PAGE_H_
#define DPHIST_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace dphist::storage {

inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageHeaderSize = 16;
inline constexpr std::size_t kPagePayloadCapacity =
    kPageSize - kPageHeaderSize;

/// "DPG1" — rejects files that are not dphist snapshot pages at all.
inline constexpr std::uint32_t kPageMagic = 0x31475044;
inline constexpr std::uint16_t kPageFormatVersion = 1;

enum class PageType : std::uint16_t {
  kFree = 0,
  kSnapshotMeta = 1,  // epoch/options/profile header of a snapshot file
  kSnapshotData = 2,  // one chunk of the serialized estimator state
};

/// One fixed-size disk page. Plain bytes; sealed/verified by the
/// functions below.
struct Page {
  std::array<char, kPageSize> bytes{};
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG checksum) of `size`
/// bytes. `seed` chains multi-buffer checksums: pass the previous call's
/// result to continue a running CRC.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// What OpenPage found in a verified page.
struct PageView {
  PageType type = PageType::kFree;
  /// Points into the Page passed to OpenPage; valid while it lives.
  std::string_view payload;
};

/// Writes header + payload + zero padding into `page`. Fails when the
/// payload exceeds kPagePayloadCapacity.
Status SealPage(PageType type, const void* payload, std::size_t payload_size,
                Page* page);

/// Verifies magic, version, payload length, and checksum; any mismatch
/// is an IoError naming what failed (a corrupt page must refuse loudly,
/// not decode as a shorter or different payload).
Result<PageView> OpenPage(const Page& page);

}  // namespace dphist::storage

#endif  // DPHIST_STORAGE_PAGE_H_
