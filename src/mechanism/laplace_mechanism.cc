#include "mechanism/laplace_mechanism.h"

#include "common/check.h"

namespace dphist {

LaplaceMechanism::LaplaceMechanism(double epsilon) : epsilon_(epsilon) {
  DPHIST_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
}

double LaplaceMechanism::NoiseScale(const QuerySequence& query) const {
  return query.Sensitivity() / epsilon_;
}

double LaplaceMechanism::NoiseVariance(const QuerySequence& query) const {
  double b = NoiseScale(query);
  return 2.0 * b * b;
}

std::vector<double> LaplaceMechanism::AnswerQuery(const QuerySequence& query,
                                                  const Histogram& data,
                                                  Rng* rng) const {
  return Perturb(query.Evaluate(data), NoiseScale(query), rng);
}

std::vector<double> LaplaceMechanism::Perturb(std::vector<double> answers,
                                              double noise_scale,
                                              Rng* rng) const {
  PerturbInPlace(&answers, noise_scale, rng);
  return answers;
}

void LaplaceMechanism::PerturbInPlace(std::vector<double>* answers,
                                      double noise_scale, Rng* rng) const {
  DPHIST_CHECK(answers != nullptr);
  DPHIST_CHECK(rng != nullptr);
  LaplaceDistribution noise(noise_scale);
  noise.AddSamplesTo(answers->data(), answers->size(), rng);
}

}  // namespace dphist
