// The Laplace mechanism (Dwork et al. 2006; Proposition 1 of the paper).
//
// For a query sequence Q with sensitivity Delta-Q, the randomized answer
//   Q~(I) = Q(I) + <Lap(Delta-Q / epsilon)>^d
// is epsilon-differentially private. This is the *only* place dphist
// touches the private data with randomness; everything downstream
// (constrained inference, range engines) is post-processing and cannot
// weaken the guarantee (Proposition 2).

#ifndef DPHIST_MECHANISM_LAPLACE_MECHANISM_H_
#define DPHIST_MECHANISM_LAPLACE_MECHANISM_H_

#include <vector>

#include "common/laplace.h"
#include "common/rng.h"
#include "domain/histogram.h"
#include "query/query_sequence.h"

namespace dphist {

/// Answers query sequences under epsilon-differential privacy.
class LaplaceMechanism {
 public:
  /// Constructs a mechanism with privacy parameter epsilon > 0.
  explicit LaplaceMechanism(double epsilon);

  /// The privacy parameter.
  double epsilon() const { return epsilon_; }

  /// The noise scale b = Delta-Q / epsilon used for `query`.
  double NoiseScale(const QuerySequence& query) const;

  /// Per-component noise variance 2 b^2 for `query`; this is the exact
  /// per-answer mean squared error of the mechanism.
  double NoiseVariance(const QuerySequence& query) const;

  /// Evaluates `query` on `data` and perturbs each answer with i.i.d.
  /// Laplace noise scaled to the query's sensitivity.
  std::vector<double> AnswerQuery(const QuerySequence& query,
                                  const Histogram& data, Rng* rng) const;

  /// Adds Laplace noise with the given scale to every component of
  /// `answers`; exposed for callers that evaluate queries themselves.
  /// Takes the vector by value and perturbs it in place: pass an rvalue
  /// (as AnswerQuery does) and the whole operation is copy-free.
  std::vector<double> Perturb(std::vector<double> answers, double noise_scale,
                              Rng* rng) const;

  /// In-place form for callers that own a reusable buffer.
  void PerturbInPlace(std::vector<double>* answers, double noise_scale,
                      Rng* rng) const;

 private:
  double epsilon_;
};

}  // namespace dphist

#endif  // DPHIST_MECHANISM_LAPLACE_MECHANISM_H_
