#include "mechanism/privacy_accountant.h"

#include "common/check.h"

namespace dphist {

PrivacyAccountant::PrivacyAccountant(double total_budget)
    : total_budget_(total_budget) {
  DPHIST_CHECK_MSG(total_budget > 0.0, "privacy budget must be positive");
}

bool PrivacyAccountant::CanSpend(double epsilon) const {
  // Tolerance absorbs accumulated floating-point drift across many spends.
  return epsilon > 0.0 && spent_ + epsilon <= total_budget_ * (1.0 + 1e-12);
}

Status PrivacyAccountant::Spend(double epsilon, const std::string& purpose) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!CanSpend(epsilon)) {
    return Status::FailedPrecondition(
        "privacy budget exhausted: requested " + std::to_string(epsilon) +
        ", remaining " + std::to_string(remaining()));
  }
  spent_ += epsilon;
  ledger_.push_back(Entry{epsilon, purpose});
  return Status::Ok();
}

}  // namespace dphist
