#include "mechanism/privacy_accountant.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace dphist {

PrivacyAccountant::PrivacyAccountant(double total_budget)
    : total_budget_(total_budget) {
  DPHIST_CHECK_MSG(total_budget > 0.0, "privacy budget must be positive");
}

void PrivacyAccountant::Fold(double epsilon, double* sum,
                             double* compensation) {
  // Neumaier's variant of Kahan summation: the branch captures the
  // rounding error regardless of which operand is larger, so the state
  // (sum, compensation) after N folds is a deterministic function of
  // the epsilon sequence — what makes WAL replay bit-exact.
  const double t = *sum + epsilon;
  if (std::abs(*sum) >= std::abs(epsilon)) {
    *compensation += (*sum - t) + epsilon;
  } else {
    *compensation += (epsilon - t) + *sum;
  }
  *sum = t;
}

bool PrivacyAccountant::CanSpend(double epsilon) const {
  if (epsilon <= 0.0) return false;
  // Simulate the exact fold Spend would perform; no tolerance needed —
  // the compensated total of spends that exactly exhaust the budget
  // compares equal to it, while any real overspend compares greater.
  double sum = sum_;
  double compensation = compensation_;
  Fold(epsilon, &sum, &compensation);
  return sum + compensation <= total_budget_;
}

Status PrivacyAccountant::Spend(double epsilon, const std::string& purpose) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!CanSpend(epsilon)) {
    return Status::FailedPrecondition(
        "privacy budget exhausted: requested " + std::to_string(epsilon) +
        ", remaining " + std::to_string(remaining()));
  }
  Fold(epsilon, &sum_, &compensation_);
  ledger_.push_back(Entry{epsilon, purpose});
  return Status::Ok();
}

Status PrivacyAccountant::RollbackLast() {
  if (ledger_.empty()) {
    return Status::FailedPrecondition("nothing to roll back");
  }
  ledger_.pop_back();
  // Refold the surviving prefix from scratch rather than subtracting:
  // subtraction does not invert a compensated fold, but the refold is
  // exactly the computation a WAL replay of the truncated log performs,
  // so the two states agree bit for bit.
  sum_ = 0.0;
  compensation_ = 0.0;
  for (const Entry& entry : ledger_) {
    Fold(entry.epsilon, &sum_, &compensation_);
  }
  return Status::Ok();
}

Status PrivacyAccountant::ImportLedger(std::vector<Entry> entries) {
  if (!ledger_.empty()) {
    return Status::FailedPrecondition(
        "ImportLedger needs a fresh accountant");
  }
  for (const Entry& entry : entries) {
    if (entry.epsilon <= 0.0) {
      return Status::InvalidArgument(
          "ledger entry with non-positive epsilon");
    }
  }
  ledger_ = std::move(entries);
  for (const Entry& entry : ledger_) {
    Fold(entry.epsilon, &sum_, &compensation_);
  }
  return Status::Ok();
}

}  // namespace dphist
