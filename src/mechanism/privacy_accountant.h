// Sequential-composition privacy accounting.
//
// The paper's protocol (Section 2.1): answering the i-th query sequence
// with an epsilon_i-DP mechanism makes the whole interaction
// (sum_i epsilon_i)-DP. PrivacyAccountant tracks that sum against a total
// budget so a data owner can refuse queries that would overspend.
//
// The running sum is Neumaier-compensated, for two reasons beyond
// accuracy:
//   - CanSpend is derived from the exact compensated fold, so the gate
//     needs no floating-point tolerance: many small spends that sum to
//     exactly the budget are admitted, anything beyond the correctly
//     rounded sum is refused;
//   - the state after any sequence of Spend calls is a pure fold over
//     the ledger entries in order. Replaying a persisted ledger
//     (storage/epoch_store.h WAL recovery) or rolling the last entry
//     back therefore reproduces spent() BIT-identically — the durable
//     accounting across restarts is exact, not approximately equal.

#ifndef DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_
#define DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dphist {

/// Tracks cumulative epsilon spent across query sequences.
class PrivacyAccountant {
 public:
  /// An accountant with the given total budget (> 0; infinity for
  /// unlimited).
  explicit PrivacyAccountant(double total_budget);

  /// The configured budget.
  double total_budget() const { return total_budget_; }

  /// Epsilon consumed so far: the compensated ledger fold.
  double spent() const { return sum_ + compensation_; }

  /// Budget still available, clamped to zero — user-facing messages
  /// must never report a negative remaining budget.
  double remaining() const {
    const double left = total_budget_ - spent();
    return left > 0.0 ? left : 0.0;
  }

  /// True iff a further `epsilon` expenditure fits in the budget,
  /// decided by simulating the exact fold Spend would perform — no
  /// drift tolerance, and CanSpend(e) true guarantees Spend(e) succeeds.
  bool CanSpend(double epsilon) const;

  /// Records an expenditure labelled `purpose`. Fails with
  /// FailedPrecondition (and records nothing) if it exceeds the budget;
  /// fails with InvalidArgument for non-positive epsilon.
  Status Spend(double epsilon, const std::string& purpose);

  /// Removes the most recent ledger entry and restores spent() to the
  /// bit-exact fold of the remaining entries — the in-memory mirror of
  /// truncating the entry's WAL record. Fails on an empty ledger.
  Status RollbackLast();

  /// One ledger entry per successful Spend call.
  struct Entry {
    double epsilon;
    std::string purpose;
  };

  /// Replaces this (required empty) accountant's history with a
  /// persisted ledger, folding the entries in order so spent() equals
  /// what the original accountant computed, bit for bit. Entries are
  /// NOT re-gated against the budget: they describe releases that
  /// already happened — importing a ledger that exceeds the current
  /// budget simply leaves CanSpend refusing everything. Non-positive
  /// epsilons are rejected (a ledger that gated its spends can never
  /// contain one).
  Status ImportLedger(std::vector<Entry> entries);

  /// The expenditure ledger in order.
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  /// One Neumaier step: folds `epsilon` into (sum, compensation).
  static void Fold(double epsilon, double* sum, double* compensation);

  double total_budget_;
  /// Neumaier compensated-summation state; spent() = sum_ +
  /// compensation_ and both are pure functions of the ledger sequence.
  double sum_ = 0.0;
  double compensation_ = 0.0;
  std::vector<Entry> ledger_;
};

}  // namespace dphist

#endif  // DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_
