// Sequential-composition privacy accounting.
//
// The paper's protocol (Section 2.1): answering the i-th query sequence
// with an epsilon_i-DP mechanism makes the whole interaction
// (sum_i epsilon_i)-DP. PrivacyAccountant tracks that sum against a total
// budget so a data owner can refuse queries that would overspend.

#ifndef DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_
#define DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dphist {

/// Tracks cumulative epsilon spent across query sequences.
class PrivacyAccountant {
 public:
  /// An accountant with the given total budget (> 0).
  explicit PrivacyAccountant(double total_budget);

  /// The configured budget.
  double total_budget() const { return total_budget_; }

  /// Epsilon consumed so far.
  double spent() const { return spent_; }

  /// Budget still available.
  double remaining() const { return total_budget_ - spent_; }

  /// True iff a further `epsilon` expenditure fits in the budget.
  bool CanSpend(double epsilon) const;

  /// Records an expenditure labelled `purpose`. Fails with
  /// FailedPrecondition (and records nothing) if it exceeds the budget;
  /// fails with InvalidArgument for non-positive epsilon.
  Status Spend(double epsilon, const std::string& purpose);

  /// One ledger entry per successful Spend call.
  struct Entry {
    double epsilon;
    std::string purpose;
  };

  /// The expenditure ledger in order.
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  double total_budget_;
  double spent_ = 0.0;
  std::vector<Entry> ledger_;
};

}  // namespace dphist

#endif  // DPHIST_MECHANISM_PRIVACY_ACCOUNTANT_H_
