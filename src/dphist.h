// Umbrella header: include everything a typical dphist user needs.
//
//   #include "dphist.h"
//
// Fine-grained headers remain available for users who want to keep
// compile times tight; this file simply aggregates the public API in
// dependency order.

#ifndef DPHIST_DPHIST_H_
#define DPHIST_DPHIST_H_

// Substrate.
#include "common/laplace.h"      // IWYU pragma: export
#include "common/parallel.h"     // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/statistics.h"   // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "domain/grid.h"         // IWYU pragma: export
#include "domain/histogram.h"    // IWYU pragma: export
#include "domain/interval.h"     // IWYU pragma: export
#include "tree/quadtree.h"       // IWYU pragma: export
#include "tree/range_decomposition.h"  // IWYU pragma: export
#include "tree/tree_layout.h"    // IWYU pragma: export

// Queries and privacy mechanisms.
#include "mechanism/laplace_mechanism.h"   // IWYU pragma: export
#include "mechanism/privacy_accountant.h"  // IWYU pragma: export
#include "query/hierarchical_query.h"      // IWYU pragma: export
#include "query/sorted_query.h"            // IWYU pragma: export
#include "query/unit_query.h"              // IWYU pragma: export

// Constrained inference (the paper's contribution).
#include "inference/constrained_ls.h"      // IWYU pragma: export
#include "inference/graphical.h"           // IWYU pragma: export
#include "inference/hierarchical.h"        // IWYU pragma: export
#include "inference/isotonic.h"            // IWYU pragma: export
#include "inference/nonnegative_pruning.h" // IWYU pragma: export

// Estimators and analysis.
#include "analysis/strategy_matrix.h"        // IWYU pragma: export
#include "estimators/blum_histogram.h"       // IWYU pragma: export
#include "estimators/continual_counter.h"    // IWYU pragma: export
#include "estimators/range_engine.h"         // IWYU pragma: export
#include "estimators/unattributed.h"         // IWYU pragma: export
#include "estimators/universal.h"            // IWYU pragma: export
#include "estimators/universal2d.h"          // IWYU pragma: export
#include "estimators/wavelet.h"              // IWYU pragma: export

// Serving layer.
#include "service/answer_cache.h"   // IWYU pragma: export
#include "service/query_service.h"  // IWYU pragma: export
#include "service/snapshot.h"       // IWYU pragma: export

// Synthetic data.
#include "data/csv.h"             // IWYU pragma: export
#include "data/nettrace.h"        // IWYU pragma: export
#include "data/search_logs.h"     // IWYU pragma: export
#include "data/social_network.h"  // IWYU pragma: export
#include "data/spatial.h"         // IWYU pragma: export
#include "data/zipf.h"            // IWYU pragma: export

#endif  // DPHIST_DPHIST_H_
