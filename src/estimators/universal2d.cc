#include "estimators/universal2d.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/laplace.h"
#include "inference/hierarchical.h"
#include "inference/nonnegative_pruning.h"

namespace dphist {
namespace {

double RoundAnswer(double answer, bool enabled) {
  if (!enabled) return answer;
  return answer <= 0.0 ? 0.0 : std::round(answer);
}

Status ValidateGridBuild(const GridHistogram& data,
                         const Universal2dOptions& options, const Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("2-D estimator needs an RNG");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.rows() < 1 || data.cols() < 1) {
    return Status::InvalidArgument("2-D estimator needs a non-empty grid");
  }
  return Status::Ok();
}

}  // namespace

std::vector<double> EvaluateQuadtreeCounts(const QuadtreeLayout& quad,
                                           const GridHistogram& data) {
  DPHIST_CHECK_MSG(data.rows() <= quad.side() && data.cols() <= quad.side(),
                   "grid does not fit the quadtree");
  const TreeLayout& tree = quad.tree();
  std::vector<double> counts(static_cast<std::size_t>(tree.node_count()),
                             0.0);
  for (std::int64_t r = 0; r < data.rows(); ++r) {
    for (std::int64_t c = 0; c < data.cols(); ++c) {
      counts[static_cast<std::size_t>(quad.LeafNode(r, c))] = data.At(r, c);
    }
  }
  for (std::int64_t v = tree.node_count() - 1; v > 0; --v) {
    counts[static_cast<std::size_t>(tree.Parent(v))] +=
        counts[static_cast<std::size_t>(v)];
  }
  return counts;
}

L2dEstimator::L2dEstimator(const GridHistogram& data,
                           const Universal2dOptions& options, Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers),
      noisy_(data.rows(), data.cols(), data.attribute()) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK_MSG(options.epsilon > 0.0, "epsilon must be positive");
  LaplaceDistribution noise(1.0 / options.epsilon);
  for (std::int64_t r = 0; r < data.rows(); ++r) {
    for (std::int64_t c = 0; c < data.cols(); ++c) {
      noisy_.Set(r, c, data.At(r, c) + noise.Sample(rng));
    }
  }
}

Result<std::unique_ptr<L2dEstimator>> L2dEstimator::Create(
    const GridHistogram& data, const Universal2dOptions& options, Rng* rng) {
  Status valid = ValidateGridBuild(data, options, rng);
  if (!valid.ok()) return valid;
  return std::make_unique<L2dEstimator>(data, options, rng);
}

double L2dEstimator::RectCount(const Rect& rect) const {
  return RoundAnswer(noisy_.Count(rect), round_answers_);
}

Quad2dTildeEstimator::Quad2dTildeEstimator(const GridHistogram& data,
                                           const Universal2dOptions& options,
                                           Rng* rng)
    : round_answers_(options.round_to_nonnegative_integers),
      rows_(data.rows()),
      cols_(data.cols()),
      quad_(data.rows(), data.cols()) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK_MSG(options.epsilon > 0.0, "epsilon must be positive");
  nodes_ = EvaluateQuadtreeCounts(quad_, data);
  LaplaceDistribution noise(static_cast<double>(quad_.height()) /
                            options.epsilon);
  for (double& v : nodes_) v += noise.Sample(rng);
}

Result<std::unique_ptr<Quad2dTildeEstimator>> Quad2dTildeEstimator::Create(
    const GridHistogram& data, const Universal2dOptions& options, Rng* rng) {
  Status valid = ValidateGridBuild(data, options, rng);
  if (!valid.ok()) return valid;
  return std::make_unique<Quad2dTildeEstimator>(data, options, rng);
}

double Quad2dTildeEstimator::RectCount(const Rect& rect) const {
  DPHIST_CHECK_MSG(rect.row_hi() < rows_ && rect.col_hi() < cols_,
                   "rect outside the estimator's grid");
  double total = 0.0;
  for (std::int64_t v : quad_.DecomposeRect(rect)) {
    total += nodes_[static_cast<std::size_t>(v)];
  }
  return RoundAnswer(total, round_answers_);
}

Quad2dBarEstimator::Quad2dBarEstimator(const GridHistogram& data,
                                       const Universal2dOptions& options,
                                       Rng* rng)
    : rows_(data.rows()),
      cols_(data.cols()),
      quad_(data.rows(), data.cols()) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK_MSG(options.epsilon > 0.0, "epsilon must be positive");
  std::vector<double> noisy = EvaluateQuadtreeCounts(quad_, data);
  LaplaceDistribution noise(static_cast<double>(quad_.height()) /
                            options.epsilon);
  for (double& v : noisy) v += noise.Sample(rng);
  FinishConstruction(options, noisy);
}

Quad2dBarEstimator::Quad2dBarEstimator(std::int64_t rows, std::int64_t cols,
                                       const Universal2dOptions& options,
                                       const std::vector<double>& noisy_nodes)
    : rows_(rows), cols_(cols), quad_(rows, cols) {
  FinishConstruction(options, noisy_nodes);
}

void Quad2dBarEstimator::FinishConstruction(
    const Universal2dOptions& options,
    const std::vector<double>& noisy_nodes) {
  DPHIST_CHECK_MSG(noisy_nodes.size() ==
                       static_cast<std::size_t>(quad_.node_count()),
                   "noisy node vector does not match the quadtree");
  HierarchicalInferenceResult inference =
      HierarchicalInference(quad_.tree(), noisy_nodes);
  nodes_ = std::move(inference.node_estimates);
  if (options.prune_nonpositive_subtrees) {
    nodes_ = PruneNonPositiveSubtrees(quad_.tree(), nodes_);
  }
  if (options.round_to_nonnegative_integers) {
    nodes_ = RoundToNonNegativeIntegers(nodes_);
  }
}

Result<std::unique_ptr<Quad2dBarEstimator>> Quad2dBarEstimator::Create(
    const GridHistogram& data, const Universal2dOptions& options, Rng* rng) {
  Status valid = ValidateGridBuild(data, options, rng);
  if (!valid.ok()) return valid;
  return std::make_unique<Quad2dBarEstimator>(data, options, rng);
}

double Quad2dBarEstimator::RectCount(const Rect& rect) const {
  DPHIST_CHECK_MSG(rect.row_hi() < rows_ && rect.col_hi() < cols_,
                   "rect outside the estimator's grid");
  double total = 0.0;
  for (std::int64_t v : quad_.DecomposeRect(rect)) {
    total += nodes_[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace dphist
