// Private continual release of a running count — the Chan, Shi, Song
// (ICALP 2010) "binary mechanism" that Section 6 describes as "a
// differentially private counter that is similar to H, in which items are
// hierarchically aggregated by arrival time".
//
// A stream of per-step counts arrives over a fixed horizon T. After every
// step the data owner can publish the running total; naively adding fresh
// Laplace noise to each released prefix would cost epsilon per release
// (or variance linear in t for a fixed budget). The binary mechanism
// instead maintains noisy sums over the dyadic intervals of the timeline
// — exactly the H query over arrival time. One stream item touches the
// log2(T)+1 dyadic intervals on its leaf-to-root path, so adding
// Lap(height/epsilon) noise to every interval once (when it completes)
// makes the ENTIRE release sequence epsilon-DP, and every prefix is
// reconstructed from at most popcount(t) <= log2(T)+1 noisy sums:
// error O(log^3 T / eps^2) at every time step, independent of t.

#ifndef DPHIST_ESTIMATORS_CONTINUAL_COUNTER_H_
#define DPHIST_ESTIMATORS_CONTINUAL_COUNTER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tree/tree_layout.h"

namespace dphist {

/// Streaming epsilon-DP counter over a fixed horizon.
class ContinualCounter {
 public:
  /// A counter for up to `horizon` time steps at privacy `epsilon`.
  /// The Rng is captured (copied) so the noise stream is self-contained.
  ContinualCounter(std::int64_t horizon, double epsilon, const Rng& rng);

  /// Validating construction for serving paths: a non-positive horizon
  /// or epsilon becomes a Status instead of aborting the process.
  static Result<ContinualCounter> Create(std::int64_t horizon, double epsilon,
                                         const Rng& rng);

  /// Ingests the count of the next time step. Checked: at most horizon
  /// observations.
  void Observe(double count);

  /// Number of observations so far.
  std::int64_t steps() const { return steps_; }

  /// The horizon T.
  std::int64_t horizon() const { return horizon_; }

  /// The privacy parameter covering the whole stream of releases.
  double epsilon() const { return epsilon_; }

  /// The per-dyadic-interval noise scale, height / epsilon.
  double noise_scale() const { return noise_scale_; }

  /// epsilon-DP estimate of the total count over steps 1..t. Requires
  /// 1 <= t <= steps(). Repeated calls return identical values (noise is
  /// fixed per dyadic interval).
  double PrefixEstimate(std::int64_t t) const;

  /// PrefixEstimate at the current step; 0 before any observation.
  double RunningTotal() const;

  /// Number of noisy dyadic sums combined for PrefixEstimate(t)
  /// (= popcount(t); exposed for tests and error analysis).
  static std::int64_t TermCount(std::int64_t t);

 private:
  /// Completes all dyadic nodes whose interval ends at leaf position
  /// `pos` (0-based): fixes their noisy value.
  void CompleteNodesEndingAt(std::int64_t pos);

  std::int64_t horizon_;
  double epsilon_;
  double noise_scale_;
  TreeLayout tree_;
  Rng rng_;
  std::int64_t steps_ = 0;
  /// Exact running sums per node (internal bookkeeping, never released).
  std::vector<double> exact_;
  /// Noisy value per node, fixed when the node's interval completes.
  std::vector<double> noisy_;
  std::vector<bool> completed_;
};

}  // namespace dphist

#endif  // DPHIST_ESTIMATORS_CONTINUAL_COUNTER_H_
