#include "estimators/unattributed.h"

#include <algorithm>

#include "common/check.h"
#include "inference/isotonic.h"
#include "inference/nonnegative_pruning.h"
#include "mechanism/laplace_mechanism.h"
#include "query/sorted_query.h"

namespace dphist {

std::string UnattributedEstimatorName(UnattributedEstimator estimator) {
  switch (estimator) {
    case UnattributedEstimator::kSTilde:
      return "S~";
    case UnattributedEstimator::kSTildeRounded:
      return "S~r";
    case UnattributedEstimator::kSBar:
      return "S-bar";
  }
  return "?";
}

std::vector<double> TrueSortedCounts(const Histogram& data) {
  return data.SortedCounts();
}

std::vector<double> SampleNoisySortedCounts(const Histogram& data,
                                            double epsilon, Rng* rng) {
  SortedQuery query(data.size());
  LaplaceMechanism mechanism(epsilon);
  return mechanism.AnswerQuery(query, data, rng);
}

std::vector<double> ApplyUnattributedEstimator(
    UnattributedEstimator estimator, const std::vector<double>& noisy) {
  switch (estimator) {
    case UnattributedEstimator::kSTilde:
      return noisy;
    case UnattributedEstimator::kSTildeRounded: {
      std::vector<double> sorted = noisy;
      std::sort(sorted.begin(), sorted.end());
      return RoundToNonNegativeIntegers(sorted);
    }
    case UnattributedEstimator::kSBar:
      return IsotonicRegression(noisy);
  }
  DPHIST_CHECK_MSG(false, "unknown estimator");
  return {};
}

}  // namespace dphist
