#include "estimators/range_engine.h"

#include "common/check.h"

namespace dphist {

void RangeCountEstimator::RangeCountsInto(const Interval* ranges,
                                          std::size_t count,
                                          double* out) const {
  DPHIST_CHECK(count == 0 || (ranges != nullptr && out != nullptr));
  for (std::size_t i = 0; i < count; ++i) out[i] = RangeCount(ranges[i]);
}

std::vector<double> RangeCountEstimator::RangeCounts(
    const std::vector<Interval>& ranges) const {
  std::vector<double> out(ranges.size());
  RangeCountsInto(ranges.data(), ranges.size(), out.data());
  return out;
}

std::vector<Interval> RandomRangesOfSize(std::int64_t domain_size,
                                         std::int64_t size,
                                         std::int64_t count, Rng* rng) {
  DPHIST_CHECK(rng != nullptr);
  DPHIST_CHECK(size >= 1 && size <= domain_size);
  DPHIST_CHECK(count >= 0);
  std::vector<Interval> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::int64_t lo = rng->NextInt(0, domain_size - size);
    out.emplace_back(lo, lo + size - 1);
  }
  return out;
}

std::vector<std::int64_t> Fig6RangeSizes(std::int64_t domain_size) {
  DPHIST_CHECK(domain_size >= 2);
  // Match the paper: sizes 2^i for i = 1 .. height-2 where height is the
  // binary tree height over the (padded) domain; height-2 keeps the
  // largest range at a quarter of the padded domain.
  std::int64_t padded = 1;
  std::int64_t height = 1;
  while (padded < domain_size) {
    padded *= 2;
    ++height;
  }
  std::vector<std::int64_t> sizes;
  std::int64_t size = 2;
  for (std::int64_t i = 1; i <= height - 2; ++i) {
    if (size > domain_size) break;
    sizes.push_back(size);
    size *= 2;
  }
  return sizes;
}

}  // namespace dphist
